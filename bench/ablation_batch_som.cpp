/**
 * @file
 * Ablation: sequential (the paper's) vs batch SOM training.
 *
 * The paper trains sequentially — "randomly select a characteristic
 * vector; get the best matching unit; adjust the weight" — while
 * Kohonen's batch map is deterministic and order-independent. This
 * bench compares map quality (quantization and topographic error) and
 * the downstream partitions on the SAR machine A characterization.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const core::CaseStudyConfig config = bench::configFromFlags(cl);

    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::paperSuite();
    const workload::SarCounterSynthesizer sar(config.sar);
    const core::CharacteristicVectors cv = core::characterizeFromSar(
        sar.collect(suite.profiles(), workload::machineA()));

    som::SomConfig som_config = config.pipeline.som;
    som_config.rows = 8;
    som_config.cols = 10;

    // Sequential training at several step budgets.
    std::cout << "Ablation: sequential vs batch SOM training (SAR "
                 "machine A, 8x10 map)\n\n";
    util::TextTable table({"training", "quantization error",
                           "topographic error",
                           "ARI vs seq-4000 @ k=6"});

    som::SomConfig reference_config = som_config;
    reference_config.steps = 4000;
    const auto reference =
        som::SelfOrganizingMap::train(cv.features, reference_config);
    const auto reference_partition =
        cluster::agglomerate(reference.mapAll(cv.features))
            .cutAtCount(6);

    auto report = [&](const std::string &label,
                      const som::SelfOrganizingMap &map) {
        const auto partition =
            cluster::agglomerate(map.mapAll(cv.features)).cutAtCount(6);
        table.addRow(
            {label, str::fixed(map.quantizationError(cv.features), 3),
             str::fixed(map.topographicError(cv.features), 3),
             str::fixed(scoring::adjustedRandIndex(partition,
                                                   reference_partition),
                        3)});
    };

    for (std::size_t steps : {500u, 2000u, 4000u, 8000u}) {
        som::SomConfig c = som_config;
        c.steps = steps;
        report("sequential " + std::to_string(steps),
               som::SelfOrganizingMap::train(cv.features, c));
    }
    for (std::size_t epochs : {3u, 10u, 30u}) {
        auto map =
            som::SelfOrganizingMap::initialize(cv.features, som_config);
        map.trainBatch(epochs);
        report("batch " + std::to_string(epochs) + " epochs", map);
    }
    std::cout << table.render() << "\n";
    std::cout << "batch training reaches comparable quantization error "
                 "in a handful of deterministic epochs; the paper's "
                 "sequential rule needs thousands of sampled steps.\n";
    return 0;
}
