/**
 * @file
 * Ablation: planted-partition recovery per synthetic workload family.
 *
 * The `src/gen` families plant the cluster structure first and
 * synthesize features around it, so the pipeline's recovered
 * clustering can be judged against exact ground truth — the check a
 * real suite can never offer. For each family this bench sweeps a
 * seed range, runs the full MICA -> SOM -> linkage pipeline on the
 * generated features, and reports the adjusted Rand index between the
 * recovered partition (at the planted k) and the planted one:
 * min / mean over seeds, plus how often recovery clears the 0.8 floor
 * the `ctest -L gen` suite pins on the default seed.
 *
 * Flags: --seeds=N (default 20), --seed=N (sweep base, default 0x6E11).
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const auto base =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x6E11));
    const auto seeds =
        static_cast<std::uint64_t>(cl.getInt("seeds", 20));

    std::cout << "Ablation: planted-partition recovery (adjusted Rand "
                 "index vs ground truth, "
              << seeds << " seeds per family)\n\n";
    util::TextTable table(
        {"family", "min ARI", "mean ARI", ">= 0.8", "exact"});
    for (const std::string &family : gen::familyNames()) {
        const gen::FamilyKind kind = gen::familyFromName(family);
        double min_ari = 1.0, sum_ari = 0.0;
        std::size_t floor_hits = 0, exact = 0;
        for (std::uint64_t s = 0; s < seeds; ++s) {
            const gen::FamilyConfig config =
                gen::defaultConfig(kind, base + s);
            const gen::GeneratedSuite suite = gen::generateSuite(config);
            const core::CharacteristicVectors vectors =
                core::characterizeFromMica(suite.features,
                                           suite.workloadNames());
            core::PipelineConfig pipeline;
            pipeline.autoSizeSom(config.workloads);
            const core::ClusterAnalysis analysis =
                core::analyzeClusters(vectors, pipeline);
            const scoring::Partition *recovered = nullptr;
            for (const auto &partition : analysis.partitions)
                if (partition.clusterCount() == config.clusters)
                    recovered = &partition;
            HM_REQUIRE(recovered != nullptr,
                       "k sweep missed the planted cluster count "
                           << config.clusters);
            const double ari =
                scoring::adjustedRandIndex(*recovered, suite.planted);
            min_ari = std::min(min_ari, ari);
            sum_ari += ari;
            floor_hits += ari >= 0.8 ? 1 : 0;
            exact += ari >= 1.0 ? 1 : 0;
        }
        const double n = static_cast<double>(seeds);
        table.addRow({gen::familyName(kind), str::fixed(min_ari, 3),
                      str::fixed(sum_ari / n, 3),
                      std::to_string(floor_hits) + "/" +
                          std::to_string(seeds),
                      std::to_string(exact) + "/" +
                          std::to_string(seeds)});
    }
    std::cout << table.render() << "\n";
    std::cout << "\nreading: well-separated families (bigdata) should "
                 "recover near-exactly on every seed; the stress "
                 "families (correlated-cluster, heavy-tail) are built "
                 "to sit closer to the floor — a clustering change "
                 "that moves their min ARI moved real behavior.\n";
    return 0;
}
