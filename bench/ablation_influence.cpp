/**
 * @file
 * Ablation: leave-one-out workload influence, plain vs hierarchical.
 *
 * Under a plain mean every member of a redundant block carries full
 * weight; under the hierarchical mean a member of a cluster of n_i
 * carries ~1/(k*n_i). This bench quantifies it on the paper suite:
 * each SciMark2 kernel's influence on the HGM collapses once the
 * kernels share a cluster, while singleton workloads (javac, chart)
 * keep theirs — the per-workload view of redundancy cancellation.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);

    // The SciMark2-collapsed partition at k = 9 (paper's diagnosis).
    const scoring::Partition diagnosed = scoring::Partition::fromGroups(
        {{0}, {1}, {2}, {3}, {4}, {5, 6, 7, 8, 9}, {10}, {11}, {12}});
    const auto names = workload::paperWorkloadNames();

    const auto influences = scoring::leaveOneOutInfluence(
        stats::MeanKind::Geometric, result.scoresA, diagnosed);

    std::cout << "Ablation: leave-one-out influence on the machine A "
                 "suite score (SciMark2 as one cluster)\n\n";
    util::TextTable table({"workload", "cluster size",
                           "plain GM influence %",
                           "HGM influence %"});
    const auto sizes = diagnosed.clusterSizes();
    for (const auto &inf : influences) {
        table.addRow(
            {names[inf.workload],
             std::to_string(sizes[diagnosed.label(inf.workload)]),
             str::fixed(100.0 * inf.plainInfluence, 2),
             str::fixed(100.0 * inf.hierarchicalInfluence, 2)});
    }
    std::cout << table.render() << "\n";

    double scimark_plain = 0.0, scimark_hier = 0.0;
    double singleton_hier = 0.0;
    std::size_t singleton_count = 0;
    for (const auto &inf : influences) {
        if (inf.workload >= 5 && inf.workload <= 9) {
            scimark_plain += inf.plainInfluence / 5.0;
            scimark_hier += inf.hierarchicalInfluence / 5.0;
        } else {
            singleton_hier += inf.hierarchicalInfluence;
            ++singleton_count;
        }
    }
    singleton_hier /= static_cast<double>(singleton_count);
    std::cout << "mean SciMark2 influence: plain "
              << str::fixed(100.0 * scimark_plain, 2) << "% -> HGM "
              << str::fixed(100.0 * scimark_hier, 2)
              << "%; mean singleton HGM influence "
              << str::fixed(100.0 * singleton_hier, 2) << "%\n";
    std::cout << "clustering demotes each redundant kernel from a full "
                 "vote to a fifth of one cluster's vote.\n";
    return 0;
}
