/**
 * @file
 * Ablation: linkage criterion. The paper picks complete linkage
 * ("the distance of the furthest pair of points"); how much do the
 * partitions — and therefore the HGM scores — change under single,
 * average, weighted and Ward linkage on the same SOM positions?
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const core::CaseStudyConfig config = bench::configFromFlags(cl);
    const core::CaseStudyResult result = core::runCaseStudy(config);

    const linalg::Matrix &positions =
        result.sarMachineA.analysis.gridPositions;
    const auto &a = result.scoresA;
    const auto &b = result.scoresB;

    std::cout << "Ablation: linkage criterion on machine A SOM "
                 "positions (A/B HGM ratio per k)\n\n";

    const cluster::Linkage linkages[] = {
        cluster::Linkage::Single, cluster::Linkage::Complete,
        cluster::Linkage::Average, cluster::Linkage::Weighted,
        cluster::Linkage::Ward};

    util::TextTable table({"", "single", "complete (paper)", "average",
                           "weighted", "ward"});
    std::vector<cluster::Dendrogram> dendrograms;
    for (cluster::Linkage linkage : linkages)
        dendrograms.push_back(cluster::agglomerate(positions, linkage));

    for (std::size_t k = 2; k <= 8; ++k) {
        std::vector<std::string> row = {std::to_string(k) + " Clusters"};
        for (const auto &dendrogram : dendrograms) {
            const scoring::Partition p = dendrogram.cutAtCount(k);
            row.push_back(str::fixed(
                scoring::hierarchicalGeometricMean(a, p) /
                    scoring::hierarchicalGeometricMean(b, p),
                3));
        }
        table.addRow(std::move(row));
    }
    std::cout << table.render() << "\n";

    // Partition agreement vs the paper's complete linkage at k = 6.
    const scoring::Partition reference = dendrograms[1].cutAtCount(6);
    std::cout << "partition agreement with complete linkage at k = 6 "
                 "(adjusted Rand index):\n";
    const char *names[] = {"single", "complete", "average", "weighted",
                           "ward"};
    for (std::size_t i = 0; i < dendrograms.size(); ++i) {
        std::cout << "  " << str::padRight(names[i], 10) << " "
                  << str::fixed(
                         scoring::adjustedRandIndex(
                             reference, dendrograms[i].cutAtCount(6)),
                         3)
                  << "\n";
    }

    // Cophenetic fidelity of each linkage to the raw distances.
    std::cout << "\ncophenetic correlation (tree vs raw distances):\n";
    for (std::size_t i = 0; i < dendrograms.size(); ++i) {
        std::cout << "  " << str::padRight(names[i], 10) << " "
                  << str::fixed(cluster::copheneticCorrelation(
                                    positions, dendrograms[i]),
                                3)
                  << "\n";
    }
    return 0;
}
