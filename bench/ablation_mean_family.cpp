/**
 * @file
 * Ablation: HGM vs HAM vs HHM vs plain and weighted means, on the same
 * partitions (the "war of the benchmark means" — Section VI — applied
 * hierarchically).
 *
 * The paper evaluates HGM only; this bench fills in the other two
 * families it defines in Section II, on the published Table III scores
 * and the machine A cluster sweep.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);
    const auto &partitions = result.sarMachineA.analysis.partitions;
    const auto &a = result.scoresA;
    const auto &b = result.scoresB;

    std::cout << "Ablation: mean family on the machine A cluster sweep\n"
              << "(scores = Table III speedups; each cell is the A/B "
                 "ratio)\n\n";

    util::TextTable table({"", "plain", "hierarchical arithmetic",
                           "hierarchical geometric",
                           "hierarchical harmonic"});
    for (const auto &partition : partitions) {
        std::vector<std::string> row = {
            std::to_string(partition.clusterCount()) + " Clusters", "-"};
        for (stats::MeanKind kind :
             {stats::MeanKind::Arithmetic, stats::MeanKind::Geometric,
              stats::MeanKind::Harmonic}) {
            const double ratio =
                scoring::hierarchicalMean(kind, a, partition) /
                scoring::hierarchicalMean(kind, b, partition);
            row.push_back(str::fixed(ratio, 3));
        }
        table.addRow(std::move(row));
    }
    table.addSeparator();
    std::vector<std::string> plain_row = {"plain (k = n)", ""};
    for (stats::MeanKind kind :
         {stats::MeanKind::Arithmetic, stats::MeanKind::Geometric,
          stats::MeanKind::Harmonic}) {
        plain_row.push_back(str::fixed(
            stats::mean(kind, a) / stats::mean(kind, b), 3));
    }
    table.addRow(std::move(plain_row));
    std::cout << table.render() << "\n";

    // Hierarchical-vs-weighted equivalence: the implied weights of the
    // recommended partition, printed for inspection.
    const auto rec = result.sarMachineA.recommendation;
    const scoring::Partition &chosen =
        partitions[rec.recommended - partitions.front().clusterCount()];
    std::cout << "implied per-workload weights at recommended k = "
              << rec.recommended << " (HGM == weighted GM with these):\n";
    const auto weights = scoring::impliedWeights(chosen);
    const auto names = workload::paperWorkloadNames();
    for (std::size_t i = 0; i < weights.size(); ++i) {
        std::cout << "  " << str::padRight(names[i], 22) << " "
                  << str::fixed(weights[i], 4) << "\n";
    }
    return 0;
}
