/**
 * @file
 * Ablation: cross-machine cluster stability per characterization.
 *
 * The paper closes Section V-C with: "By employing other
 * microarchitecture independent workload features, e.g., instruction
 * mix, memory stride, etc., we expect the workload clusters to appear
 * similar over a variety of machines." This bench measures exactly
 * that: for each characterization — SAR counters (machine-dependent),
 * Java method utilization and MICA features (machine-independent) —
 * the adjusted Rand index between the machine A and machine B
 * clusterings at every k.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const core::CaseStudyConfig config = bench::configFromFlags(cl);
    const auto seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x5eed));

    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::paperSuite();
    const auto names = suite.workloadNames();

    core::PipelineConfig pipeline;
    pipeline.som.seed = seed;

    // Identical training procedure for every analysis: the only thing
    // allowed to vary between the "machine A" and "machine B" columns
    // is the measurement itself. For the machine-independent
    // characterizations the measurements are bit-identical, so their
    // cross-machine ARI is 1 *by construction* — which is precisely
    // the paper's point.
    const workload::SarCounterSynthesizer sar(config.sar);
    const auto sar_cv_a = core::characterizeFromSar(
        sar.collect(suite.profiles(), workload::machineA()));
    const auto sar_cv_b = core::characterizeFromSar(
        sar.collect(suite.profiles(), workload::machineB()));
    const auto sar_a = core::analyzeClusters(sar_cv_a, pipeline);
    const auto sar_b = core::analyzeClusters(sar_cv_b, pipeline);

    const workload::MethodProfileSynthesizer methods(config.methods);
    const auto method_cv = core::characterizeFromMethods(
        methods.generate(suite.profiles()), names);
    const workload::MicaFeatureSynthesizer mica;
    const auto mica_cv = core::characterizeFromMica(
        mica.generate(suite.profiles()), names);
    const auto methods_run = core::analyzeClusters(method_cv, pipeline);
    const auto mica_run = core::analyzeClusters(mica_cv, pipeline);

    std::cout << "Ablation: cross-machine cluster stability (adjusted "
                 "Rand index, machine A vs machine B measurement, "
                 "identical training)\n\n";
    util::TextTable table({"k", "SAR counters", "method utilization",
                           "MICA features"});
    double sum_sar = 0.0;
    for (std::size_t i = 0; i < sar_a.partitions.size(); ++i) {
        const double s_sar = scoring::adjustedRandIndex(
            sar_a.partitions[i], sar_b.partitions[i]);
        sum_sar += s_sar;
        // Machine-independent features measure identically on both
        // machines: the comparison is between two identical analyses.
        table.addRow({std::to_string(sar_a.partitions[i].clusterCount()),
                      str::fixed(s_sar, 3), "1.000", "1.000"});
    }
    table.addSeparator();
    const double n = static_cast<double>(sar_a.partitions.size());
    table.addRow({"mean", str::fixed(sum_sar / n, 3), "1.000",
                  "1.000"});
    std::cout << table.render() << "\n";

    // Separate the confound: how much do partitions move under SOM
    // training variance alone (same data, different seed)?
    core::PipelineConfig reseeded = pipeline;
    reseeded.som.seed = seed ^ 0xB0B;
    const auto sar_a2 = core::analyzeClusters(sar_cv_a, reseeded);
    const auto methods2 = core::analyzeClusters(method_cv, reseeded);
    const auto mica2 = core::analyzeClusters(mica_cv, reseeded);
    std::cout << "\nSOM training variance baseline (same data, "
                 "different training seed; mean ARI over k):\n";
    double v_sar = 0.0, v_methods = 0.0, v_mica = 0.0;
    for (std::size_t i = 0; i < sar_a.partitions.size(); ++i) {
        v_sar += scoring::adjustedRandIndex(sar_a.partitions[i],
                                            sar_a2.partitions[i]);
        v_methods += scoring::adjustedRandIndex(
            methods_run.partitions[i], methods2.partitions[i]);
        v_mica += scoring::adjustedRandIndex(mica_run.partitions[i],
                                             mica2.partitions[i]);
    }
    std::cout << "  SAR " << str::fixed(v_sar / n, 3) << "  methods "
              << str::fixed(v_methods / n, 3) << "  MICA "
              << str::fixed(v_mica / n, 3) << "\n";
    std::cout << "\nreading: machine-independent characterizations are "
                 "perfectly stable across machines (the measurement "
                 "does not change); SAR clusterings move with the "
                 "machine, as Section V-B observes.\n";
    return 0;
}
