/**
 * @file
 * Ablation: measurement-noise sensitivity.
 *
 * How stable are the discovered partitions and the HGM scores when the
 * SAR counter noise grows? For each noise level the SAR panel is
 * resynthesized, the full pipeline re-run, and the resulting partition
 * compared (adjusted Rand index at the recommended k) against the
 * noise-free clustering; the HGM ratio at k = 6 is tracked alongside.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const auto seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x5eed));

    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::paperSuite();
    const auto a = workload::paper::table3SpeedupsA();
    const auto b = workload::paper::table3SpeedupsB();

    core::PipelineConfig pipeline;
    pipeline.som.seed = seed;

    auto analyzeAtNoise = [&](double noise) {
        workload::SarConfig sar_config;
        sar_config.seed = seed ^ 0xC0FFEE;
        sar_config.noiseSigma = noise;
        const workload::SarCounterSynthesizer sar(sar_config);
        return core::analyzeClusters(
            core::characterizeFromSar(
                sar.collect(suite.profiles(), workload::machineA())),
            pipeline);
    };

    std::cout << "Ablation: SAR noise sensitivity (machine A)\n\n";
    const core::ClusterAnalysis baseline = analyzeAtNoise(0.0);

    util::TextTable table({"noise sigma", "ARI vs noise-free @ k=6",
                           "HGM ratio @ k=6",
                           "SciMark2 coagulation"});
    for (double noise : {0.0, 0.01, 0.03, 0.05, 0.10, 0.20, 0.40}) {
        const core::ClusterAnalysis analysis = analyzeAtNoise(noise);
        const scoring::Partition p6 =
            analysis.dendrogram.cutAtCount(6);
        const double ratio =
            scoring::hierarchicalGeometricMean(a, p6) /
            scoring::hierarchicalGeometricMean(b, p6);
        const core::RedundancyReport redundancy =
            core::analyzeRedundancy(analysis,
                                    core::paperOriginGroups());
        table.addRow(
            {str::fixed(noise, 2),
             str::fixed(scoring::adjustedRandIndex(
                            baseline.dendrogram.cutAtCount(6), p6),
                        3),
             str::fixed(ratio, 3),
             str::fixed(redundancy.groups[1].coagulation, 3)});
    }
    std::cout << table.render() << "\n";
    std::cout << "plain GM ratio for reference: "
              << str::fixed(stats::geometricMean(a) /
                                stats::geometricMean(b),
                            3)
              << "\n";
    return 0;
}
