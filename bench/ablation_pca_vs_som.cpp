/**
 * @file
 * Ablation: SOM vs PCA as the dimension-reduction stage.
 *
 * Section III-A argues SOM preserves more structure than picking two
 * principal components, especially for the non-linear bit-vector data
 * of the method-utilization characterization. This bench clusters the
 * same characteristic vectors three ways — SOM positions, PCA-2D
 * projections, and the raw high-dimensional vectors (ground truth) —
 * and compares the resulting partitions and scores.
 */

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace hiermeans;

void
compare(const std::string &label, const core::CharacteristicVectors &cv,
        const std::vector<double> &a, const std::vector<double> &b,
        std::uint64_t seed)
{
    // Ground truth: complete linkage on the raw standardized vectors.
    const cluster::Dendrogram raw =
        cluster::agglomerate(cv.features, cluster::Linkage::Complete);

    // SOM reduction.
    som::SomConfig som_config;
    som_config.rows = 8;
    som_config.cols = 10;
    som_config.steps = 4000;
    som_config.seed = seed;
    const som::SelfOrganizingMap map =
        som::SelfOrganizingMap::train(cv.features, som_config);
    const cluster::Dendrogram som_tree = cluster::agglomerate(
        map.mapAll(cv.features), cluster::Linkage::Complete);

    // PCA-2D reduction.
    const linalg::Pca pca = linalg::Pca::fit(cv.features);
    const cluster::Dendrogram pca_tree = cluster::agglomerate(
        pca.projectAll(cv.features, 2), cluster::Linkage::Complete);

    std::cout << label << "\n";
    std::cout << "  PCA first two components explain "
              << str::fixed(100.0 * pca.cumulativeExplainedVariance(2), 1)
              << "% of variance\n";
    util::TextTable table({"k", "ARI SOM vs raw", "ARI PCA vs raw",
                           "HGM ratio raw", "HGM ratio SOM",
                           "HGM ratio PCA"});
    for (std::size_t k = 2; k <= 8; ++k) {
        const scoring::Partition p_raw = raw.cutAtCount(k);
        const scoring::Partition p_som = som_tree.cutAtCount(k);
        const scoring::Partition p_pca = pca_tree.cutAtCount(k);
        auto ratio = [&](const scoring::Partition &p) {
            return scoring::hierarchicalGeometricMean(a, p) /
                   scoring::hierarchicalGeometricMean(b, p);
        };
        table.addRow({std::to_string(k),
                      str::fixed(scoring::adjustedRandIndex(p_som, p_raw),
                                 3),
                      str::fixed(scoring::adjustedRandIndex(p_pca, p_raw),
                                 3),
                      str::fixed(ratio(p_raw), 3),
                      str::fixed(ratio(p_som), 3),
                      str::fixed(ratio(p_pca), 3)});
    }
    std::cout << table.render() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const core::CaseStudyConfig config = bench::configFromFlags(cl);
    const auto seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x5eed));

    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::paperSuite();
    const auto a = workload::paper::table3SpeedupsA();
    const auto b = workload::paper::table3SpeedupsB();

    std::cout << "Ablation: SOM vs PCA dimension reduction\n\n";

    const workload::SarCounterSynthesizer sar(config.sar);
    compare("SAR counters, machine A:",
            core::characterizeFromSar(
                sar.collect(suite.profiles(), workload::machineA())),
            a, b, seed);

    const workload::MethodProfileSynthesizer methods(config.methods);
    compare("Java method utilization (bit vectors, the non-linear "
            "case the paper highlights):",
            core::characterizeFromMethods(
                methods.generate(suite.profiles()),
                suite.workloadNames()),
            a, b, seed);
    return 0;
}
