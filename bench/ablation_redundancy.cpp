/**
 * @file
 * Ablation: redundancy injection. Sweeps the number of duplicated
 * workloads and shows the plain mean drifting while the hierarchical
 * mean holds — the quantitative version of the paper's "susceptible to
 * malicious tweaks" motivation, run over every mean family and over
 * every workload in the Table III suite as the duplication target.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const std::size_t copies =
        static_cast<std::size_t>(cl.getInt("copies", 4));

    const auto scores = workload::paper::table3SpeedupsA();
    const auto names = workload::paperWorkloadNames();
    const scoring::Partition base =
        scoring::Partition::discrete(scores.size());

    std::cout << "Ablation: duplicate-injection drift after " << copies
              << " copies, per target workload (machine A scores)\n\n";

    util::TextTable table({"duplicated workload", "plain GM drift %",
                           "HGM drift %", "plain AM drift %",
                           "HAM drift %"});
    for (std::size_t target = 0; target < scores.size(); ++target) {
        const auto gm = scoring::redundancyDriftSweep(
            stats::MeanKind::Geometric, scores, base, target, copies);
        const auto am = scoring::redundancyDriftSweep(
            stats::MeanKind::Arithmetic, scores, base, target, copies);
        table.addRow(
            {names[target],
             str::fixed(100.0 * gm.back().plainDrift, 2),
             str::fixed(100.0 * gm.back().hierarchicalDrift, 2),
             str::fixed(100.0 * am.back().plainDrift, 2),
             str::fixed(100.0 * am.back().hierarchicalDrift, 2)});
    }
    std::cout << table.render() << "\n";

    std::cout << "gaming headroom (duplicate the best workload "
              << copies << "x):\n";
    for (stats::MeanKind kind :
         {stats::MeanKind::Arithmetic, stats::MeanKind::Geometric,
          stats::MeanKind::Harmonic}) {
        std::cout << "  " << str::padRight(stats::meanKindName(kind), 11)
                  << " +"
                  << str::fixed(100.0 * scoring::gamingHeadroom(
                                            kind, scores, copies),
                                2)
                  << "%\n";
    }
    std::cout << "\nhierarchical drift is identically zero: duplicates "
                 "join their original's cluster and the inner mean "
                 "absorbs them.\n";
    return 0;
}
