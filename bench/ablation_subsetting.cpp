/**
 * @file
 * Ablation: hierarchical means vs benchmark subsetting.
 *
 * The related work (Section VI) uses cluster structure to *subset*
 * suites; hiermeans reweights instead. This bench compares the two
 * corrections on the paper suite: at every k, the subset's plain GM
 * (one medoid per cluster) versus the full suite's HGM, on both
 * machines — plus the residual error of each subset and the chosen
 * representatives at the recommended k.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);
    const core::ClusterAnalysis &analysis = result.sarMachineA.analysis;
    const auto names = workload::paperWorkloadNames();

    std::cout << "Ablation: subsetting vs hierarchical means (machine A "
                 "clusters, Table III scores)\n\n";

    util::TextTable table({"k", "HGM A", "subset GM A", "err %", "HGM B",
                           "subset GM B", "err %"});
    for (const auto &partition : analysis.partitions) {
        const core::SuiteSubset subset = core::subsetSuite(
            partition, analysis.gridPositions, result.scoresA);
        const core::SubsetFidelity fa = core::evaluateSubset(
            subset, stats::MeanKind::Geometric, result.scoresA);
        const core::SubsetFidelity fb = core::evaluateSubset(
            subset, stats::MeanKind::Geometric, result.scoresB);
        table.addRow({std::to_string(partition.clusterCount()),
                      str::fixed(fa.fullHierarchicalMean, 3),
                      str::fixed(fa.subsetMean, 3),
                      str::fixed(100.0 * fa.errorVsHierarchical, 1),
                      str::fixed(fb.fullHierarchicalMean, 3),
                      str::fixed(fb.subsetMean, 3),
                      str::fixed(100.0 * fb.errorVsHierarchical, 1)});
    }
    std::cout << table.render() << "\n";

    const std::size_t rec =
        result.sarMachineA.recommendation.recommended;
    const scoring::Partition chosen =
        analysis.dendrogram.cutAtCount(rec);
    const core::SuiteSubset subset = core::subsetSuite(
        chosen, analysis.gridPositions, result.scoresA);
    std::cout << "representatives at recommended k = " << rec << ":\n";
    for (const std::string &name : subset.names(names))
        std::cout << "  " << name << "\n";
    std::cout << "\nReading: a subset scores with " << rec
              << " runs instead of 13 but inherits the medoid's "
                 "idiosyncrasies; the hierarchical mean keeps all "
                 "measurements and weighs clusters equally.\n";
    return 0;
}
