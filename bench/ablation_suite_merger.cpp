/**
 * @file
 * Ablation: the suite-merger scenario that motivates the paper.
 *
 * "It is getting more popular to release a new benchmark by merging
 * workloads directly from existing benchmark suites ... such a
 * workload adoption process tends to significantly increase artificial
 * redundancy." (Section I)
 *
 * This bench scores the 8-workload pre-merger suite (SPECjvm98 +
 * DaCapo), then merges the five SciMark2 kernels in, and shows what
 * each scoring method does to the A/B verdict:
 *  - the plain GM swings hard (five near-identical kernels where B is
 *    competitive suddenly cast five votes);
 *  - the HGM with the merged block as one cluster barely moves —
 *    the merger added one new behavior, and it gets one vote.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    (void)argc;
    (void)argv;

    const auto a = workload::paper::table3SpeedupsA();
    const auto b = workload::paper::table3SpeedupsB();
    const auto names = workload::paperWorkloadNames();

    // Pre-merger suite: indices 0-4 (SPECjvm98) and 10-12 (DaCapo).
    std::vector<double> pre_a, pre_b;
    for (std::size_t i : {0u, 1u, 2u, 3u, 4u, 10u, 11u, 12u}) {
        pre_a.push_back(a[i]);
        pre_b.push_back(b[i]);
    }

    const double pre_gm_a = stats::geometricMean(pre_a);
    const double pre_gm_b = stats::geometricMean(pre_b);
    const double post_gm_a = stats::geometricMean(a);
    const double post_gm_b = stats::geometricMean(b);

    // Post-merger hierarchical scoring: the 8 original workloads keep
    // their own (singleton) clusters, the adopted block is one cluster.
    const scoring::Partition merged = scoring::Partition::fromGroups(
        {{0}, {1}, {2}, {3}, {4}, {5, 6, 7, 8, 9}, {10}, {11}, {12}});
    const double post_hgm_a =
        scoring::hierarchicalGeometricMean(a, merged);
    const double post_hgm_b =
        scoring::hierarchicalGeometricMean(b, merged);

    std::cout << "Ablation: merging SciMark2 into a SPECjvm98+DaCapo "
                 "suite (Table III scores)\n\n";
    util::TextTable table({"suite / method", "A", "B", "ratio A/B"});
    table.addRow({"pre-merger (8 workloads), plain GM",
                  str::fixed(pre_gm_a, 3), str::fixed(pre_gm_b, 3),
                  str::fixed(pre_gm_a / pre_gm_b, 3)});
    table.addRow({"post-merger (13), plain GM",
                  str::fixed(post_gm_a, 3), str::fixed(post_gm_b, 3),
                  str::fixed(post_gm_a / post_gm_b, 3)});
    table.addRow({"post-merger (13), HGM (block = 1 cluster)",
                  str::fixed(post_hgm_a, 3), str::fixed(post_hgm_b, 3),
                  str::fixed(post_hgm_a / post_hgm_b, 3)});
    std::cout << table.render() << "\n";

    const double plain_swing =
        std::abs(post_gm_a / post_gm_b - pre_gm_a / pre_gm_b);
    const double hgm_swing =
        std::abs(post_hgm_a / post_hgm_b - pre_gm_a / pre_gm_b);
    std::cout << "verdict swing caused by the merger: plain GM "
              << str::fixed(plain_swing, 3) << ", HGM "
              << str::fixed(hgm_swing, 3) << "\n";
    std::cout << "the adopted block casts "
              << (plain_swing > hgm_swing ? "five votes under the "
                                            "plain mean but one vote "
                                            "under the HGM.\n"
                                          : "a comparable vote either "
                                            "way (unexpected).\n");

    // Per-copy escalation: add the kernels one at a time.
    std::cout << "\nplain-GM ratio as kernels are adopted one by "
                 "one:\n";
    util::TextTable escalation(
        {"kernels adopted", "plain ratio", "HGM ratio (block "
                                           "clustered)"});
    for (std::size_t m = 0; m <= 5; ++m) {
        std::vector<double> cur_a = pre_a, cur_b = pre_b;
        std::vector<std::vector<std::size_t>> groups;
        for (std::size_t i = 0; i < 8; ++i)
            groups.push_back({i});
        std::vector<std::size_t> block;
        for (std::size_t k = 0; k < m; ++k) {
            cur_a.push_back(a[5 + k]);
            cur_b.push_back(b[5 + k]);
            block.push_back(8 + k);
        }
        if (!block.empty())
            groups.push_back(block);
        const scoring::Partition p =
            scoring::Partition::fromGroups(groups);
        escalation.addRow(
            {std::to_string(m),
             str::fixed(stats::geometricMean(cur_a) /
                            stats::geometricMean(cur_b),
                        3),
             str::fixed(scoring::hierarchicalGeometricMean(cur_a, p) /
                            scoring::hierarchicalGeometricMean(cur_b,
                                                               p),
                        3)});
    }
    std::cout << escalation.render();
    return 0;
}
