/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries.
 *
 * Every bench accepts:
 *   --seed=N                 master seed for the synthetic substrate
 *   --scores=paper|simulated score source (default paper; `simulated`
 *                            drives everything through the execution
 *                            model instead of the published Table III)
 *   --mean=gm|am|hm          hierarchical mean family (default gm)
 */

#ifndef HIERMEANS_BENCH_BENCH_COMMON_H
#define HIERMEANS_BENCH_BENCH_COMMON_H

#include <iostream>
#include <string>

#include "src/hiermeans.h"

namespace hiermeans {
namespace bench {

/** Build a case-study config from the standard bench flags. */
inline core::CaseStudyConfig
configFromFlags(const util::CommandLine &cl)
{
    core::CaseStudyConfig config;
    config.scoreSource =
        str::toLower(cl.getString("scores", "paper")) == "simulated"
            ? core::ScoreSource::Simulated
            : core::ScoreSource::Paper;
    config.meanKind = stats::parseMeanKind(cl.getString("mean", "gm"));
    const auto seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x5eed));
    config.sar.seed = seed ^ 0xC0FFEE;
    config.methods.seed = seed ^ 0xBEEF;
    config.pipeline.som.seed = seed;
    config.run.seed = seed ^ 0xD1CE;
    return config;
}

/** Parse flags and run the case study once. */
inline core::CaseStudyResult
runFromFlags(int argc, char **argv)
{
    const auto cl = util::CommandLine::parse(argc, argv);
    return core::runCaseStudy(configFromFlags(cl));
}

/**
 * Print a published HGM table (Tables IV/V/VI) side by side with our
 * measured report so shape agreement is visible at a glance.
 */
inline void
printPaperVsMeasured(std::ostream &os,
                     const std::vector<workload::paper::HgmRow> &paper,
                     const scoring::ScoreReport &measured)
{
    util::TextTable table({"", "paper A", "paper B", "paper ratio",
                           "ours A", "ours B", "ours ratio"});
    for (std::size_t i = 0; i < paper.size(); ++i) {
        std::vector<std::string> row = {
            std::to_string(paper[i].clusters) + " Clusters",
            str::fixed(paper[i].scoreA, 2), str::fixed(paper[i].scoreB, 2),
            str::fixed(paper[i].ratio, 2)};
        if (i < measured.rows.size()) {
            row.push_back(str::fixed(measured.rows[i].scoreA, 2));
            row.push_back(str::fixed(measured.rows[i].scoreB, 2));
            row.push_back(str::fixed(measured.rows[i].ratio, 2));
        }
        table.addRow(std::move(row));
    }
    table.addSeparator();
    table.addRow({"Geometric Mean", "2.10", "1.94", "1.08",
                  str::fixed(measured.plainA, 2),
                  str::fixed(measured.plainB, 2),
                  str::fixed(measured.plainRatio, 2)});
    os << table.render();
}

} // namespace bench
} // namespace hiermeans

#endif // HIERMEANS_BENCH_BENCH_COMMON_H
