# Bench binaries: one per reproduced table/figure plus ablations and a
# google-benchmark perf suite. Included from the top-level CMakeLists
# (not add_subdirectory) so ${CMAKE_BINARY_DIR}/bench holds only the
# executables and `for b in build/bench/*; do $b; done` just works.

set(HM_BENCHES
    table3_speedups
    table4_hgm_machine_a
    table5_hgm_machine_b
    table6_hgm_methods
    fig2_kernel
    fig3_som_machine_a
    fig4_dendro_machine_a
    fig5_som_machine_b
    fig6_dendro_machine_b
    fig7_som_methods
    fig8_dendro_methods
    ablation_mean_family
    ablation_linkage
    ablation_pca_vs_som
    ablation_redundancy
    ablation_noise
    ablation_mica_stability
    ablation_subsetting
    ablation_batch_som
    ablation_influence
    ablation_suite_merger
    ablation_gen_recovery
    reference_distribution
    consensus_clustering
    robustness_bootstrap
    perf_engine_throughput
    perf_server_throughput
    perf_store_replay)

foreach(bench IN LISTS HM_BENCHES)
    add_executable(${bench} ${CMAKE_SOURCE_DIR}/bench/${bench}.cpp)
    target_link_libraries(${bench} PRIVATE hiermeans)
    target_include_directories(${bench} PRIVATE ${CMAKE_SOURCE_DIR})
    set_target_properties(${bench} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

add_executable(perf_microbench ${CMAKE_SOURCE_DIR}/bench/perf_microbench.cpp)
target_link_libraries(perf_microbench PRIVATE hiermeans benchmark::benchmark)
target_include_directories(perf_microbench PRIVATE ${CMAKE_SOURCE_DIR})
set_target_properties(perf_microbench PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
