/**
 * @file
 * Extension: consensus clustering across the three characterizations.
 *
 * The paper's Section V punchline is that clustering "heavily depends
 * on how the workloads are characterized" and recommends fixing one
 * reference distribution by decree. This bench builds the principled
 * alternative: combine the SAR-on-A, SAR-on-B and method-utilization
 * partition sweeps through their co-association matrix and score with
 * the consensus partitions. SciMark2's five kernels co-occur in every
 * view, so the consensus keeps them fused while contested pairs split.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);
    const auto names = workload::paperWorkloadNames();

    // Pool every partition from every characterization's sweep.
    std::vector<scoring::Partition> views;
    for (const core::CaseStudyBranch *branch :
         {&result.sarMachineA, &result.sarMachineB, &result.methods}) {
        for (const auto &p : branch->analysis.partitions)
            views.push_back(p);
    }

    const core::ConsensusResult consensus =
        core::consensusCluster(views, 2, 8);

    std::cout << "Consensus clustering over " << views.size()
              << " partitions from 3 characterizations\n";
    std::cout << "pairwise unanimity: "
              << str::fixed(100.0 * consensus.unanimity, 1) << "%\n\n";

    // Co-association of the SciMark2 block vs everything else.
    const auto sc =
        workload::indicesOfOrigin(workload::SuiteOrigin::SciMark2);
    double intra = 0.0;
    std::size_t intra_n = 0;
    for (std::size_t i : sc) {
        for (std::size_t j : sc) {
            if (i < j) {
                intra += consensus.coAssociation(i, j);
                ++intra_n;
            }
        }
    }
    std::cout << "mean SciMark2 pairwise co-association: "
              << str::fixed(intra / static_cast<double>(intra_n), 3)
              << " (1.0 = together in every view)\n\n";

    std::cout << cluster::renderVerticalDendrogram(
        consensus.dendrogram, names,
        "Consensus dendrogram (height = disagreement fraction)", 12);

    // Score against the consensus partitions.
    const scoring::ScoreReport report = scoring::buildScoreReport(
        stats::MeanKind::Geometric, result.scoresA, result.scoresB,
        consensus.partitions);
    std::cout << "\nHGM against the consensus partitions:\n\n"
              << report.render("A", "B") << "\n";

    // Compare the consensus cut with each single-view cut at k = 6.
    const scoring::Partition consensus6 =
        consensus.dendrogram.cutAtCount(6);
    std::cout << "agreement of single views with the consensus at "
                 "k = 6 (ARI):\n";
    const struct
    {
        const char *label;
        const core::CaseStudyBranch *branch;
    } branches[] = {{"SAR machine A", &result.sarMachineA},
                    {"SAR machine B", &result.sarMachineB},
                    {"method utilization", &result.methods}};
    for (const auto &b : branches) {
        std::cout << "  " << str::padRight(b.label, 20) << " "
                  << str::fixed(
                         scoring::adjustedRandIndex(
                             consensus6,
                             b.branch->analysis.dendrogram.cutAtCount(
                                 6)),
                         3)
                  << "\n";
    }
    return 0;
}
