/**
 * @file
 * Regenerates Figure 2: behavior of the h_ci neighborhood kernel as
 * training progresses — the Gaussian narrows and flattens as both the
 * learning rate alpha(n) and the radius sigma(n) decay.
 *
 * Prints the kernel value series h(d) for several training steps plus
 * an ASCII profile sketch.
 */

#include <iostream>

#include "src/hiermeans.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    using namespace hiermeans::som;
    const auto cl = util::CommandLine::parse(argc, argv);

    const std::size_t steps =
        static_cast<std::size_t>(cl.getInt("steps", 4000));
    const DecaySchedule alpha(DecayKind::Exponential, 0.5, 0.01, steps);
    const DecaySchedule sigma(DecayKind::Exponential, 5.0, 0.4, steps);

    std::cout << "Figure 2: behavior of the h_ci function over training "
                 "steps\n";
    std::cout << "h_ci(n) = alpha(n) * exp(-d^2 / (2 sigma^2(n)))\n\n";

    const std::size_t checkpoints[] = {0, steps / 8, steps / 4,
                                       steps / 2, steps - 1};
    util::TextTable table({"grid distance d", "n=0", "n=1/8", "n=1/4",
                           "n=1/2", "n=end"});
    for (double d = 0.0; d <= 8.0; d += 1.0) {
        std::vector<std::string> row = {str::fixed(d, 0)};
        for (std::size_t n : checkpoints) {
            row.push_back(str::fixed(
                kernelValue(KernelKind::Gaussian, d * d, alpha.value(n),
                            sigma.value(n)),
                4));
        }
        table.addRow(std::move(row));
    }
    std::cout << table.render() << "\n";

    // ASCII profile: each checkpoint as one bar chart over distance.
    std::cout << "kernel profile sketch (40 cols = h of 0.5):\n";
    for (std::size_t n : checkpoints) {
        std::cout << "  n = " << str::padLeft(std::to_string(n), 6)
                  << "  alpha = "
                  << str::fixed(alpha.value(n), 3) << "  sigma = "
                  << str::fixed(sigma.value(n), 3) << "\n";
        for (double d = 0.0; d <= 6.0; d += 1.0) {
            const double h = kernelValue(
                KernelKind::Gaussian, d * d, alpha.value(n),
                sigma.value(n));
            const auto bar = static_cast<std::size_t>(h / 0.5 * 40.0);
            std::cout << "    d=" << str::fixed(d, 0) << " |"
                      << str::repeat('#', bar) << "\n";
        }
    }
    return 0;
}
