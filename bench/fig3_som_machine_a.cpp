/**
 * @file
 * Regenerates Figure 3: workload distribution on machine A — the SOM
 * map of the SAR-counter characteristic vectors. The paper's findings
 * to look for: SPECjvm98 spreads along one dimension, DaCapo along the
 * other, and the five SciMark2 kernels coagulate into a dense blob.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);

    std::cout << result.sarMachineA.analysis.renderMap(
        "Figure 3: Workload Distribution on Machine A (SAR counters)");
    std::cout << "\nU-matrix (ridges = cluster boundaries):\n";
    std::cout << som::renderUMatrix(
        som::uMatrix(result.sarMachineA.analysis.map), "");
    std::cout << "\nredundancy by origin suite:\n"
              << result.sarMachineA.redundancy.render();
    return 0;
}
