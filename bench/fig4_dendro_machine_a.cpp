/**
 * @file
 * Regenerates Figure 4: clustering results on machine A. The paper
 * shows two cuts of the same dendrogram: merging distance 4 yields 4
 * clusters ({javac}, {jess, mtrt}, {chart, xalan}, rest) and a lower
 * distance yields 6 clusters with SciMark2 exclusive.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);
    const core::ClusterAnalysis &analysis = result.sarMachineA.analysis;
    const auto &names = analysis.vectors.workloadNames;

    std::cout << cluster::renderVerticalDendrogram(
        analysis.dendrogram, names,
        "(vertical view, as in the paper)", 16);
    std::cout << "\n";
    std::cout << analysis.renderDendrogram(
        "Figure 4: Clustering Results on Machine A (complete linkage, "
        "Euclidean)");
    std::cout << "\n"
              << cluster::renderMergeSchedule(analysis.dendrogram, names);

    // The paper's two cuts: pick the distances that produce 4 and 6
    // clusters on our dendrogram.
    std::cout << "\nFigure 4(a) analogue (cut at 4 clusters):\n";
    std::cout << cluster::renderCutAtCount(analysis.dendrogram, names, 4);
    std::cout << "\nFigure 4(b) analogue (cut at 6 clusters):\n";
    std::cout << cluster::renderCutAtCount(analysis.dendrogram, names, 6);

    std::cout << "\npaper narration for comparison (Figure 4(a), "
                 "merging distance 4):\n";
    const auto paper_groups =
        workload::paper::figure4aFourClusterGroups();
    const scoring::Partition paper_partition =
        scoring::Partition::fromGroups(paper_groups);
    std::cout << "  " << paper_partition.toString(names) << "\n";
    std::cout << "\nagreement with our 4-cluster cut (adjusted Rand "
                 "index): "
              << str::fixed(
                     scoring::adjustedRandIndex(
                         paper_partition,
                         analysis.dendrogram.cutAtCount(4)),
                     3)
              << "\n";
    return 0;
}
