/**
 * @file
 * Regenerates Figure 5: workload distribution on machine B. The paper:
 * "the SciMark2 workloads again form a dense cluster ... This behavior
 * is significant since SciMark2 workloads appear as a single cluster
 * on two different machines."
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);

    std::cout << result.sarMachineB.analysis.renderMap(
        "Figure 5: Workload Distribution on Machine B (SAR counters)");
    std::cout << "\nU-matrix (ridges = cluster boundaries):\n";
    std::cout << som::renderUMatrix(
        som::uMatrix(result.sarMachineB.analysis.map), "");
    std::cout << "\nredundancy by origin suite:\n"
              << result.sarMachineB.redundancy.render();

    // Cross-machine agreement (Section V-B.2): SciMark2 coagulates on
    // both machines even though the overall clusterings differ.
    const auto &a = result.sarMachineA.analysis.partitions;
    const auto &b = result.sarMachineB.analysis.partitions;
    std::cout << "\ncluster agreement between machines A and B "
                 "(adjusted Rand index per k):\n";
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
        std::cout << "  k = " << a[i].clusterCount() << ": ARI = "
                  << str::fixed(scoring::adjustedRandIndex(a[i], b[i]), 3)
                  << "\n";
    }
    return 0;
}
