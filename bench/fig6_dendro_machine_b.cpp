/**
 * @file
 * Regenerates Figure 6: clustering results on machine B. The paper:
 * "When the merging distance is chosen as 3, SciMark2 workloads again
 * manifest as an exclusive cluster."
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);
    const core::ClusterAnalysis &analysis = result.sarMachineB.analysis;
    const auto &names = analysis.vectors.workloadNames;

    std::cout << cluster::renderVerticalDendrogram(
        analysis.dendrogram, names,
        "(vertical view, as in the paper)", 16);
    std::cout << "\n";
    std::cout << analysis.renderDendrogram(
        "Figure 6: Clustering Results on Machine B (complete linkage, "
        "Euclidean)");
    std::cout << "\n"
              << cluster::renderMergeSchedule(analysis.dendrogram, names);

    // Scan cuts for the one where SciMark2 appears as an exclusive
    // cluster, mirroring the paper's distance-3 observation.
    const auto sc =
        workload::indicesOfOrigin(workload::SuiteOrigin::SciMark2);
    std::vector<std::size_t> sorted_sc = sc;
    for (std::size_t k = 2; k <= 13; ++k) {
        const scoring::Partition cut =
            analysis.dendrogram.cutAtCount(k);
        for (const auto &group : cut.groups()) {
            if (group == sorted_sc) {
                std::cout << "\nSciMark2 appears as an exclusive "
                             "cluster at k = "
                          << k << ":\n";
                std::cout << cluster::renderCutAtCount(
                    analysis.dendrogram, names, k);
                return 0;
            }
        }
    }
    std::cout << "\nSciMark2 did not appear as an exclusive cluster in "
                 "any cut of this dendrogram.\n";
    return 0;
}
