/**
 * @file
 * Regenerates Figure 7: workload distribution when characterized with
 * Java method utilization. The paper: "Since SciMark2 workloads map to
 * the same single cell, they appear in a single cluster no matter
 * which merging distance is chosen."
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);

    std::cout << result.methods.analysis.renderMap(
        "Figure 7: Workload Distribution (Java method utilization)");
    std::cout << "\nredundancy by origin suite:\n"
              << result.methods.redundancy.render();

    const auto sc =
        workload::indicesOfOrigin(workload::SuiteOrigin::SciMark2);
    bool one_cell = true;
    for (std::size_t i : sc) {
        one_cell &= result.methods.analysis.bmus[i] ==
                    result.methods.analysis.bmus[sc[0]];
    }
    std::cout << "\nSciMark2 on a single cell: "
              << (one_cell ? "YES (matches the paper)" : "no") << "\n";
    return 0;
}
