/**
 * @file
 * Regenerates Figure 8: clustering results based on Java method
 * utilization. The paper's key feature: the five SciMark2 kernels merge
 * at distance 0 (identical characteristic vectors), so they are one
 * cluster at every merging distance.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);
    const core::ClusterAnalysis &analysis = result.methods.analysis;
    const auto &names = analysis.vectors.workloadNames;

    std::cout << cluster::renderVerticalDendrogram(
        analysis.dendrogram, names,
        "(vertical view, as in the paper)", 16);
    std::cout << "\n";
    std::cout << analysis.renderDendrogram(
        "Figure 8: Clustering Results Based on Java Method Utilization");
    std::cout << "\n"
              << cluster::renderMergeSchedule(analysis.dendrogram, names);

    // SciMark2 merges at height zero.
    std::size_t zero_merges = 0;
    for (const auto &merge : analysis.dendrogram.merges()) {
        if (merge.height == 0.0)
            ++zero_merges;
    }
    std::cout << "\nzero-distance merges (identical reduced vectors): "
              << zero_merges << " (expect 4: the five SciMark2 kernels "
                                "collapsing pairwise)\n";

    std::cout << "\ncuts at k = 2 and k = 6:\n";
    std::cout << cluster::renderCutAtCount(analysis.dendrogram, names, 2);
    std::cout << cluster::renderCutAtCount(analysis.dendrogram, names, 6);
    return 0;
}
