/**
 * @file
 * Throughput benchmark for the concurrent scoring engine.
 *
 * Builds a repeated-request mix (--requests total over --distinct
 * unique fingerprints, the shape of a suite-subsetting study that
 * re-scores shared cluster analyses) and measures three runs:
 *
 *   1. cold, 1 engine thread   — the serial baseline;
 *   2. cold, --threads threads — pool speedup (near-linear on enough
 *      cores; duplicate requests are deduped in flight in both runs);
 *   3. warm repeat of the same mix on the same engine — every request
 *      served by the content-addressed cache.
 *
 * Emits a human-readable table plus one machine-readable JSON line
 * (requests/s, speedups, cache-hit ratio) for the bench trajectory.
 *
 * Flags: --requests=32 --distinct=8 --threads=4 --workloads=16
 *        --features=12 --som-steps=4000 --seed=1 [--json-only]
 */

#include <chrono>
#include <iostream>
#include <sstream>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

engine::ScoreRequest
makeRequest(std::uint64_t variant, std::size_t num_workloads,
            std::size_t num_features, std::size_t som_steps,
            std::uint64_t seed)
{
    rng::Engine rng(seed * 1000003 + variant);
    engine::ScoreRequest request;
    request.id = "v" + std::to_string(variant);
    request.features =
        linalg::Matrix(num_workloads, num_features);
    for (std::size_t r = 0; r < num_workloads; ++r) {
        for (std::size_t c = 0; c < num_features; ++c)
            request.features(r, c) = rng.uniform(-2.0, 2.0);
    }
    for (std::size_t r = 0; r < num_workloads; ++r) {
        request.workloads.push_back("w" + std::to_string(r));
        request.scoresA.push_back(rng.uniform(0.5, 4.0));
        request.scoresB.push_back(rng.uniform(0.5, 4.0));
    }
    for (std::size_t c = 0; c < num_features; ++c)
        request.featureNames.push_back("f" + std::to_string(c));
    request.config.autoSizeSom(num_workloads);
    request.config.som.steps = som_steps;
    request.seed = seed + variant;
    return request;
}

/** Run the mix through a fresh submission pass; returns wall ms. */
double
runMix(engine::ScoringEngine &engine,
       const std::vector<engine::ScoreRequest> &mix)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::future<engine::ScoreResult>> futures;
    futures.reserve(mix.size());
    for (const engine::ScoreRequest &request : mix)
        futures.push_back(engine.submit(request));
    for (auto &future : futures) {
        const engine::ScoreResult result = future.get();
        HM_ASSERT(result.ok, "bench request failed: " << result.error);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cl = util::CommandLine::parse(argc, argv);
    const auto requests =
        static_cast<std::size_t>(cl.getInt("requests", 32));
    const auto distinct =
        static_cast<std::size_t>(cl.getInt("distinct", 8));
    const auto threads =
        static_cast<std::size_t>(cl.getInt("threads", 4));
    const auto num_workloads =
        static_cast<std::size_t>(cl.getInt("workloads", 16));
    const auto num_features =
        static_cast<std::size_t>(cl.getInt("features", 12));
    const auto som_steps =
        static_cast<std::size_t>(cl.getInt("som-steps", 4000));
    const auto seed = static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const bool json_only = cl.getBool("json-only", false);

    std::vector<engine::ScoreRequest> mix;
    mix.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
        mix.push_back(makeRequest(i % distinct, num_workloads,
                                  num_features, som_steps, seed));
        mix.back().id += "-r" + std::to_string(i / distinct);
    }

    // 1. Cold, single-threaded baseline (fresh engine and cache).
    engine::ScoringEngine::Config serial_config;
    serial_config.threads = 1;
    engine::ScoringEngine serial_engine(serial_config);
    const double cold_serial_ms = runMix(serial_engine, mix);

    // 2. Cold, pooled (fresh engine again — nothing cached).
    engine::ScoringEngine::Config pooled_config;
    pooled_config.threads = threads;
    engine::ScoringEngine pooled_engine(pooled_config);
    const double cold_pooled_ms = runMix(pooled_engine, mix);

    // 3. Warm repeat on the pooled engine: all cache hits.
    const double warm_ms = runMix(pooled_engine, mix);

    const auto per_second = [requests](double ms) {
        return 1000.0 * static_cast<double>(requests) / ms;
    };
    const double speedup = cold_serial_ms / cold_pooled_ms;
    const double warm_speedup = cold_pooled_ms / warm_ms;
    const auto warm_snapshot = pooled_engine.metrics().snapshot();

    if (!json_only) {
        util::TextTable table(
            {"run", "threads", "wall ms", "requests/s"});
        table.addRow({"cold serial", "1",
                      str::fixed(cold_serial_ms, 1),
                      str::fixed(per_second(cold_serial_ms), 1)});
        table.addRow({"cold pooled", std::to_string(threads),
                      str::fixed(cold_pooled_ms, 1),
                      str::fixed(per_second(cold_pooled_ms), 1)});
        table.addRow({"warm cache", std::to_string(threads),
                      str::fixed(warm_ms, 1),
                      str::fixed(per_second(warm_ms), 1)});
        std::cout << "engine throughput (" << requests
                  << " requests, " << distinct << " distinct)\n"
                  << table.render() << "\n"
                  << "pool speedup (cold "
                  << threads << "t vs 1t): x"
                  << str::fixed(speedup, 2) << "\n"
                  << "warm-cache speedup vs cold pooled: x"
                  << str::fixed(warm_speedup, 2) << "\n\n"
                  << pooled_engine.metrics().render() << "\n";
    }

    // One-line JSON for the bench trajectory.
    std::ostringstream json;
    json << "{\"bench\":\"perf_engine_throughput\""
         << ",\"requests\":" << requests
         << ",\"distinct\":" << distinct
         << ",\"threads\":" << threads
         << ",\"cold_serial_ms\":" << str::fixed(cold_serial_ms, 3)
         << ",\"cold_pooled_ms\":" << str::fixed(cold_pooled_ms, 3)
         << ",\"warm_ms\":" << str::fixed(warm_ms, 3)
         << ",\"pool_speedup\":" << str::fixed(speedup, 3)
         << ",\"warm_speedup\":" << str::fixed(warm_speedup, 3)
         << ",\"requests_per_s_cold\":"
         << str::fixed(per_second(cold_pooled_ms), 2)
         << ",\"requests_per_s_warm\":"
         << str::fixed(per_second(warm_ms), 2)
         << ",\"cache_hit_ratio\":"
         << str::fixed(warm_snapshot.cacheHitRatio, 4) << "}";
    std::cout << json.str() << "\n";
    return 0;
}
