/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot paths: SOM
 * training, BMU search, agglomerative clustering, hierarchical means
 * and the synthetic substrates.
 */

#include <benchmark/benchmark.h>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

linalg::Matrix
randomData(std::size_t n, std::size_t d, std::uint64_t seed)
{
    rng::Engine engine(seed);
    linalg::Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = engine.normal(0.0, 1.0);
    return m;
}

void
BM_SomTrain(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto d = static_cast<std::size_t>(state.range(1));
    const linalg::Matrix data = randomData(n, d, 1);
    som::SomConfig config;
    config.rows = 8;
    config.cols = 10;
    config.steps = 2000;
    for (auto _ : state) {
        auto map = som::SelfOrganizingMap::train(data, config);
        benchmark::DoNotOptimize(map.weights());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_SomTrain)->Args({13, 200})->Args({50, 200})->Args({13, 1000});

void
BM_SomBmu(benchmark::State &state)
{
    const auto d = static_cast<std::size_t>(state.range(0));
    const linalg::Matrix data = randomData(13, d, 2);
    som::SomConfig config;
    config.steps = 500;
    const auto map = som::SelfOrganizingMap::train(data, config);
    const linalg::Vector query = data.row(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(map.bestMatchingUnit(query));
}
BENCHMARK(BM_SomBmu)->Arg(200)->Arg(1000);

void
BM_Agglomerate(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const linalg::Matrix data = randomData(n, 2, 3);
    for (auto _ : state) {
        auto d = cluster::agglomerate(data, cluster::Linkage::Complete);
        benchmark::DoNotOptimize(d.merges());
    }
}
BENCHMARK(BM_Agglomerate)->Arg(13)->Arg(50)->Arg(150);

void
BM_HierarchicalMean(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Engine engine(4);
    std::vector<double> scores;
    std::vector<std::size_t> labels;
    for (std::size_t i = 0; i < n; ++i) {
        scores.push_back(engine.uniform(0.5, 5.0));
        labels.push_back(engine.below(1 + n / 4));
    }
    const scoring::Partition p = scoring::Partition::fromLabels(labels);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            scoring::hierarchicalGeometricMean(scores, p));
    }
}
BENCHMARK(BM_HierarchicalMean)->Arg(13)->Arg(100)->Arg(1000);

void
BM_SarPanel(benchmark::State &state)
{
    const auto counters = static_cast<std::size_t>(state.range(0));
    workload::SarConfig config;
    config.counters = counters;
    const workload::SarCounterSynthesizer synth(config);
    const auto &profiles = workload::paperSuiteProfiles();
    for (auto _ : state) {
        auto panel = synth.collect(profiles, workload::machineA());
        benchmark::DoNotOptimize(panel.runs.size());
    }
}
BENCHMARK(BM_SarPanel)->Arg(220)->Arg(1000);

void
BM_FullPipeline(benchmark::State &state)
{
    const workload::SarCounterSynthesizer sar{workload::SarConfig{}};
    const auto &profiles = workload::paperSuiteProfiles();
    const auto vectors = core::characterizeFromSar(
        sar.collect(profiles, workload::machineA()));
    core::PipelineConfig config;
    for (auto _ : state) {
        auto analysis = core::analyzeClusters(vectors, config);
        benchmark::DoNotOptimize(analysis.partitions.size());
    }
}
BENCHMARK(BM_FullPipeline);

void
BM_Calibration(benchmark::State &state)
{
    for (auto _ : state) {
        for (const auto &row : workload::paper::table3()) {
            benchmark::DoNotOptimize(
                workload::ExecutionModel::calibrateToSpeedups(
                    workload::machineA(), workload::machineB(),
                    workload::referenceMachine(), row.speedupA,
                    row.speedupB, 100.0));
        }
    }
}
BENCHMARK(BM_Calibration);

} // namespace

BENCHMARK_MAIN();
