/**
 * @file
 * Throughput benchmark for the HTTP serving layer.
 *
 * Starts an in-process server::Server on an ephemeral loopback port,
 * writes a synthetic scores/features CSV pair to a scratch directory,
 * and drives `POST /v1/score` through the blocking HttpClient in three
 * phases:
 *
 *   1. cold     — every distinct manifest line once; each request
 *                 executes the full pipeline;
 *   2. warm     — the same mix repeated; every request is a result
 *                 cache hit, so this isolates server+codec overhead;
 *   3. wire A/B — the same all-cache-hit mix once more, as JSON and
 *                 as negotiated binary frames, on /v1/score and
 *                 /v1/batch: what the binary wire format buys in
 *                 latency and bytes per request;
 *   4. overload — more closed-loop clients than the admission queue
 *                 admits, counting 503 sheds (clients retry after the
 *                 advertised Retry-After).
 *
 * Emits a table plus one machine-readable JSON line; warm_rps should
 * exceed cold_rps by orders of magnitude on any machine, and the
 * binary batch path must move fewer bytes per line than NDJSON (the
 * exit code asserts both).
 *
 * Flags: --distinct=6 --threads=2 --queue-depth=2 --workloads=12
 *        --features=8 --som-steps=400 --batch-repeat=5
 *        --overload-clients=6 --overload-s=1 --seed=1 [--json-only]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

/** Synthetic CSV pair on disk; removed on destruction. */
struct ScratchData
{
    std::string scoresPath;
    std::string featuresPath;

    ScratchData(std::size_t num_workloads, std::size_t num_features,
                std::uint64_t seed)
    {
        const std::string stem =
            "/tmp/hiermeans_srvbench_" + std::to_string(::getpid());
        scoresPath = stem + "_scores.csv";
        featuresPath = stem + "_features.csv";

        rng::Engine rng(seed);
        std::string scores = "workload,mA,mB\n";
        std::string features = "workload";
        for (std::size_t c = 0; c < num_features; ++c)
            features += ",f" + std::to_string(c);
        features += "\n";
        for (std::size_t r = 0; r < num_workloads; ++r) {
            const std::string name = "w" + std::to_string(r);
            scores += name + "," + str::fixed(rng.uniform(0.5, 4.0), 6) +
                      "," + str::fixed(rng.uniform(0.5, 4.0), 6) + "\n";
            features += name;
            for (std::size_t c = 0; c < num_features; ++c)
                features += "," + str::fixed(rng.uniform(-2.0, 2.0), 6);
            features += "\n";
        }
        util::writeFile(scoresPath, scores);
        util::writeFile(featuresPath, features);
    }

    ~ScratchData()
    {
        std::remove(scoresPath.c_str());
        std::remove(featuresPath.c_str());
    }
};

/** Serial closed-loop pass over @p mix; returns wall milliseconds. */
double
runMix(server::HttpClient &client,
       const std::vector<std::string> &mix)
{
    const auto start = std::chrono::steady_clock::now();
    for (const std::string &line : mix) {
        const auto response =
            client.roundTrip("POST", "/v1/score", line, "text/plain");
        HM_ASSERT(response.status == 200,
                  "bench request failed with HTTP "
                      << response.status << ": " << response.body);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

/** One timed pass of a wire-format A/B arm. */
struct WirePass
{
    double ms = 0.0;
    std::size_t requests = 0;
    std::size_t requestBytes = 0;
    std::size_t responseBytes = 0;

    double
    bytesPerRequest() const
    {
        return requests == 0
                   ? 0.0
                   : static_cast<double>(requestBytes + responseBytes) /
                         static_cast<double>(requests);
    }
};

/** /v1/score over @p mix in one negotiated format. */
WirePass
runScoreFormat(server::HttpClient &client,
               const std::vector<std::string> &mix, bool binary)
{
    const server::HttpClient::Headers headers =
        binary ? server::HttpClient::Headers{
                     {"Accept", wire::acceptBoth()}}
               : server::HttpClient::Headers{};
    WirePass pass;
    const auto start = std::chrono::steady_clock::now();
    for (const std::string &line : mix) {
        const std::string body =
            binary ? wire::encodeScoreRequest(line) : line;
        const auto response = client.roundTrip(
            "POST", "/v1/score", body,
            binary ? wire::kMediaType : "text/plain", headers);
        HM_ASSERT(response.status == 200,
                  "wire A/B request failed with HTTP "
                      << response.status << ": " << response.body);
        ++pass.requests;
        pass.requestBytes += body.size();
        pass.responseBytes += response.body.size();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    pass.ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    return pass;
}

/** /v1/batch over @p mix as one document, @p repeat times. */
WirePass
runBatchFormat(server::HttpClient &client,
               const std::vector<std::string> &mix, std::size_t repeat,
               bool binary)
{
    std::string text;
    for (const std::string &line : mix)
        text += line + "\n";
    const std::string body =
        binary ? wire::encodeBatchManifest(mix) : text;
    const server::HttpClient::Headers headers =
        binary ? server::HttpClient::Headers{
                     {"Accept", wire::acceptBoth()}}
               : server::HttpClient::Headers{};
    WirePass pass;
    std::string last;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < repeat; ++r) {
        const auto response = client.roundTrip(
            "POST", "/v1/batch", body,
            binary ? wire::kMediaType : "text/plain", headers);
        HM_ASSERT(response.status == 200,
                  "wire A/B batch failed with HTTP "
                      << response.status << ": " << response.body);
        pass.requests += mix.size();
        pass.requestBytes += body.size();
        pass.responseBytes += response.body.size();
        last = response.body;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    pass.ms =
        std::chrono::duration<double, std::milli>(elapsed).count();

    // Sanity outside the timed loop: every line answered.
    std::size_t answered = 0;
    if (binary) {
        wire::FrameReader reader(last);
        wire::Frame frame;
        while (reader.next(frame))
            ++answered;
        HM_ASSERT(!reader.sawCorruption(),
                  "corrupt batch stream: " << reader.corruption());
    } else {
        for (const std::string &row : str::split(last, '\n'))
            answered += row.empty() ? 0 : 1;
    }
    HM_ASSERT(answered == mix.size(),
              "batch answered " << answered << " of " << mix.size()
                                << " lines");
    return pass;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cl = util::CommandLine::parse(argc, argv);
    const auto distinct =
        static_cast<std::size_t>(cl.getInt("distinct", 6));
    const auto threads =
        static_cast<std::size_t>(cl.getInt("threads", 2));
    const auto queue_depth =
        static_cast<std::size_t>(cl.getInt("queue-depth", 2));
    const auto num_workloads =
        static_cast<std::size_t>(cl.getInt("workloads", 12));
    const auto num_features =
        static_cast<std::size_t>(cl.getInt("features", 8));
    const auto som_steps =
        static_cast<std::size_t>(cl.getInt("som-steps", 400));
    const auto overload_clients =
        static_cast<std::size_t>(cl.getInt("overload-clients", 6));
    const double overload_s = cl.getDouble("overload-s", 1.0);
    const auto seed = static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const bool json_only = cl.getBool("json-only", false);

    ScratchData data(num_workloads, num_features, seed);

    std::vector<std::string> mix;
    for (std::size_t i = 0; i < distinct; ++i) {
        mix.push_back("id=v" + std::to_string(i) +
                      " scores=" + data.scoresPath +
                      " features=" + data.featuresPath +
                      " machine-a=mA machine-b=mB som-steps=" +
                      std::to_string(som_steps) + " seed=" +
                      std::to_string(seed + i));
    }

    server::Server::Config config;
    config.port = 0; // ephemeral loopback port.
    config.engine.threads = threads;
    config.queueDepth = queue_depth;
    config.connectionThreads = queue_depth + overload_clients + 2;
    server::Server server(config);
    server.start();

    server::HttpClient client("127.0.0.1", server.port());

    // 1. Cold: every pipeline executes.
    const double cold_ms = runMix(client, mix);
    // 2. Warm: the identical mix is all cache hits.
    const double warm_ms = runMix(client, mix);

    // 2b. Tracing overhead on the warm path: the same all-cache-hit
    // mix repeated, once with the tracer disarmed (the default) and
    // once armed, in the same process. The disarmed side is the
    // shipping configuration — each span site costs one relaxed
    // atomic load — so armed-vs-disarmed bounds what `--trace` buys.
    std::vector<std::string> warm_mix;
    const auto warm_repeat =
        static_cast<std::size_t>(cl.getInt("warm-repeat", 20));
    for (std::size_t r = 0; r < warm_repeat; ++r)
        for (const std::string &line : mix)
            warm_mix.push_back(line);
    const double untraced_ms = runMix(client, warm_mix);
    obs::Tracer::Config trace_config;
    trace_config.enabled = true;
    trace_config.keepRecent = 8; // bound memory under the repeat loop.
    obs::Tracer::instance().configure(trace_config);
    const double traced_ms = runMix(client, warm_mix);
    obs::Tracer::instance().reset();

    // 3. Wire A/B: the all-cache-hit mix as JSON and as binary, on
    // both endpoints. Cache hits isolate codec + transport cost —
    // exactly the part the binary format is meant to shrink.
    const auto batch_repeat =
        static_cast<std::size_t>(cl.getInt("batch-repeat", 5));
    const WirePass score_json =
        runScoreFormat(client, warm_mix, false);
    const WirePass score_binary =
        runScoreFormat(client, warm_mix, true);
    const WirePass batch_json =
        runBatchFormat(client, warm_mix, batch_repeat, false);
    const WirePass batch_binary =
        runBatchFormat(client, warm_mix, batch_repeat, true);

    // 4. Overload: more closed-loop clients than the queue admits.
    std::atomic<std::uint64_t> overload_ok{0};
    std::atomic<std::uint64_t> overload_shed{0};
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(overload_s));
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < overload_clients; ++i) {
        clients.emplace_back([&, i] {
            server::HttpClient c("127.0.0.1", server.port());
            std::size_t next = i;
            while (std::chrono::steady_clock::now() < deadline) {
                // Vary the seed so overload requests miss the cache
                // and occupy the engine long enough to fill the gate.
                const std::string line =
                    mix[next % mix.size()] + " seed=" +
                    std::to_string(seed + 1000 + next * 7 + i);
                ++next;
                try {
                    const auto response = c.roundTrip(
                        "POST", "/v1/score", line, "text/plain");
                    if (response.status == 200) {
                        ++overload_ok;
                    } else if (response.status == 503) {
                        ++overload_shed;
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(20));
                    }
                } catch (const Error &) {
                    break;
                }
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    server.stop();

    const auto rps = [](std::size_t n, double ms) {
        return ms > 0.0 ? static_cast<double>(n) * 1000.0 / ms : 0.0;
    };
    const double cold_rps = rps(mix.size(), cold_ms);
    const double warm_rps = rps(mix.size(), warm_ms);
    const double untraced_rps = rps(warm_mix.size(), untraced_ms);
    const double traced_rps = rps(warm_mix.size(), traced_ms);
    const double trace_overhead_pct =
        untraced_ms > 0.0 ? (traced_ms / untraced_ms - 1.0) * 100.0
                          : 0.0;

    if (!json_only) {
        util::TextTable table({"phase", "requests", "wall ms", "req/s"});
        table.addRow({"cold", std::to_string(mix.size()),
                      str::fixed(cold_ms, 1), str::fixed(cold_rps, 1)});
        table.addRow({"warm", std::to_string(mix.size()),
                      str::fixed(warm_ms, 1), str::fixed(warm_rps, 1)});
        table.addRow({"warm untraced", std::to_string(warm_mix.size()),
                      str::fixed(untraced_ms, 1),
                      str::fixed(untraced_rps, 1)});
        table.addRow({"warm traced", std::to_string(warm_mix.size()),
                      str::fixed(traced_ms, 1),
                      str::fixed(traced_rps, 1)});
        table.addRow({"score json", std::to_string(score_json.requests),
                      str::fixed(score_json.ms, 1),
                      str::fixed(rps(score_json.requests, score_json.ms),
                                 1)});
        table.addRow(
            {"score binary", std::to_string(score_binary.requests),
             str::fixed(score_binary.ms, 1),
             str::fixed(rps(score_binary.requests, score_binary.ms),
                        1)});
        table.addRow({"batch json", std::to_string(batch_json.requests),
                      str::fixed(batch_json.ms, 1),
                      str::fixed(rps(batch_json.requests, batch_json.ms),
                                 1)});
        table.addRow(
            {"batch binary", std::to_string(batch_binary.requests),
             str::fixed(batch_binary.ms, 1),
             str::fixed(rps(batch_binary.requests, batch_binary.ms),
                        1)});
        table.addRow(
            {"overload",
             std::to_string(overload_ok.load() + overload_shed.load()),
             str::fixed(overload_s * 1000.0, 1),
             str::fixed(static_cast<double>(overload_ok.load()) /
                            overload_s,
                        1)});
        std::cout << "Serving-layer throughput ("
                  << threads << " engine threads, queue depth "
                  << queue_depth << ")\n\n"
                  << table.render() << "\n"
                  << "overload: " << overload_ok.load() << " served, "
                  << overload_shed.load() << " shed with 503\n"
                  << "tracing: " << str::fixed(trace_overhead_pct, 2)
                  << "% warm-path overhead when armed\n"
                  << "wire: binary moves "
                  << str::fixed(score_binary.bytesPerRequest(), 1)
                  << " B/req on /v1/score (json "
                  << str::fixed(score_json.bytesPerRequest(), 1)
                  << ") and "
                  << str::fixed(batch_binary.bytesPerRequest(), 1)
                  << " B/line on /v1/batch (json "
                  << str::fixed(batch_json.bytesPerRequest(), 1)
                  << ")\n\n";
    }
    std::printf(
        "{\"bench\":\"perf_server_throughput\",\"distinct\":%zu,"
        "\"cold_ms\":%s,\"cold_rps\":%s,\"warm_ms\":%s,"
        "\"warm_rps\":%s,\"warm_speedup\":%s,"
        "\"warm_untraced_rps\":%s,\"warm_traced_rps\":%s,"
        "\"trace_overhead_pct\":%s,"
        "\"score_json_ms\":%s,\"score_binary_ms\":%s,"
        "\"score_json_bytes_per_request\":%s,"
        "\"score_binary_bytes_per_request\":%s,"
        "\"batch_json_ms\":%s,\"batch_binary_ms\":%s,"
        "\"batch_json_bytes_per_line\":%s,"
        "\"batch_binary_bytes_per_line\":%s,"
        "\"overload_served\":%llu,"
        "\"overload_shed_503\":%llu}\n",
        mix.size(), server::json::number(cold_ms).c_str(),
        server::json::number(cold_rps).c_str(),
        server::json::number(warm_ms).c_str(),
        server::json::number(warm_rps).c_str(),
        server::json::number(warm_ms > 0.0 ? cold_ms / warm_ms : 0.0)
            .c_str(),
        server::json::number(untraced_rps).c_str(),
        server::json::number(traced_rps).c_str(),
        server::json::number(trace_overhead_pct).c_str(),
        server::json::number(score_json.ms).c_str(),
        server::json::number(score_binary.ms).c_str(),
        server::json::number(score_json.bytesPerRequest()).c_str(),
        server::json::number(score_binary.bytesPerRequest()).c_str(),
        server::json::number(batch_json.ms).c_str(),
        server::json::number(batch_binary.ms).c_str(),
        server::json::number(batch_json.bytesPerRequest()).c_str(),
        server::json::number(batch_binary.bytesPerRequest()).c_str(),
        static_cast<unsigned long long>(overload_ok.load()),
        static_cast<unsigned long long>(overload_shed.load()));
    // Bytes per request are deterministic, so the binary-must-beat-
    // JSON contract is safe to enforce; latency is reported but left
    // to the caller (timing on shared machines is noisy).
    const bool binary_smaller =
        score_binary.bytesPerRequest() < score_json.bytesPerRequest() &&
        batch_binary.bytesPerRequest() < batch_json.bytesPerRequest();
    return warm_rps > cold_rps && binary_smaller ? 0 : 1;
}
