/**
 * @file
 * Throughput benchmark for the HTTP serving layer.
 *
 * Starts an in-process server::Server on an ephemeral loopback port,
 * writes a synthetic scores/features CSV pair to a scratch directory,
 * and drives `POST /v1/score` through the blocking HttpClient in three
 * phases:
 *
 *   1. cold     — every distinct manifest line once; each request
 *                 executes the full pipeline;
 *   2. warm     — the same mix repeated; every request is a result
 *                 cache hit, so this isolates server+codec overhead;
 *   3. overload — more closed-loop clients than the admission queue
 *                 admits, counting 503 sheds (clients retry after the
 *                 advertised Retry-After).
 *
 * Emits a table plus one machine-readable JSON line; warm_rps should
 * exceed cold_rps by orders of magnitude on any machine.
 *
 * Flags: --distinct=6 --threads=2 --queue-depth=2 --workloads=12
 *        --features=8 --som-steps=400 --overload-clients=6
 *        --overload-s=1 --seed=1 [--json-only]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

/** Synthetic CSV pair on disk; removed on destruction. */
struct ScratchData
{
    std::string scoresPath;
    std::string featuresPath;

    ScratchData(std::size_t num_workloads, std::size_t num_features,
                std::uint64_t seed)
    {
        const std::string stem =
            "/tmp/hiermeans_srvbench_" + std::to_string(::getpid());
        scoresPath = stem + "_scores.csv";
        featuresPath = stem + "_features.csv";

        rng::Engine rng(seed);
        std::string scores = "workload,mA,mB\n";
        std::string features = "workload";
        for (std::size_t c = 0; c < num_features; ++c)
            features += ",f" + std::to_string(c);
        features += "\n";
        for (std::size_t r = 0; r < num_workloads; ++r) {
            const std::string name = "w" + std::to_string(r);
            scores += name + "," + str::fixed(rng.uniform(0.5, 4.0), 6) +
                      "," + str::fixed(rng.uniform(0.5, 4.0), 6) + "\n";
            features += name;
            for (std::size_t c = 0; c < num_features; ++c)
                features += "," + str::fixed(rng.uniform(-2.0, 2.0), 6);
            features += "\n";
        }
        util::writeFile(scoresPath, scores);
        util::writeFile(featuresPath, features);
    }

    ~ScratchData()
    {
        std::remove(scoresPath.c_str());
        std::remove(featuresPath.c_str());
    }
};

/** Serial closed-loop pass over @p mix; returns wall milliseconds. */
double
runMix(server::HttpClient &client,
       const std::vector<std::string> &mix)
{
    const auto start = std::chrono::steady_clock::now();
    for (const std::string &line : mix) {
        const auto response =
            client.roundTrip("POST", "/v1/score", line, "text/plain");
        HM_ASSERT(response.status == 200,
                  "bench request failed with HTTP "
                      << response.status << ": " << response.body);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cl = util::CommandLine::parse(argc, argv);
    const auto distinct =
        static_cast<std::size_t>(cl.getInt("distinct", 6));
    const auto threads =
        static_cast<std::size_t>(cl.getInt("threads", 2));
    const auto queue_depth =
        static_cast<std::size_t>(cl.getInt("queue-depth", 2));
    const auto num_workloads =
        static_cast<std::size_t>(cl.getInt("workloads", 12));
    const auto num_features =
        static_cast<std::size_t>(cl.getInt("features", 8));
    const auto som_steps =
        static_cast<std::size_t>(cl.getInt("som-steps", 400));
    const auto overload_clients =
        static_cast<std::size_t>(cl.getInt("overload-clients", 6));
    const double overload_s = cl.getDouble("overload-s", 1.0);
    const auto seed = static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const bool json_only = cl.getBool("json-only", false);

    ScratchData data(num_workloads, num_features, seed);

    std::vector<std::string> mix;
    for (std::size_t i = 0; i < distinct; ++i) {
        mix.push_back("id=v" + std::to_string(i) +
                      " scores=" + data.scoresPath +
                      " features=" + data.featuresPath +
                      " machine-a=mA machine-b=mB som-steps=" +
                      std::to_string(som_steps) + " seed=" +
                      std::to_string(seed + i));
    }

    server::Server::Config config;
    config.port = 0; // ephemeral loopback port.
    config.engine.threads = threads;
    config.queueDepth = queue_depth;
    config.connectionThreads = queue_depth + overload_clients + 2;
    server::Server server(config);
    server.start();

    server::HttpClient client("127.0.0.1", server.port());

    // 1. Cold: every pipeline executes.
    const double cold_ms = runMix(client, mix);
    // 2. Warm: the identical mix is all cache hits.
    const double warm_ms = runMix(client, mix);

    // 2b. Tracing overhead on the warm path: the same all-cache-hit
    // mix repeated, once with the tracer disarmed (the default) and
    // once armed, in the same process. The disarmed side is the
    // shipping configuration — each span site costs one relaxed
    // atomic load — so armed-vs-disarmed bounds what `--trace` buys.
    std::vector<std::string> warm_mix;
    const auto warm_repeat =
        static_cast<std::size_t>(cl.getInt("warm-repeat", 20));
    for (std::size_t r = 0; r < warm_repeat; ++r)
        for (const std::string &line : mix)
            warm_mix.push_back(line);
    const double untraced_ms = runMix(client, warm_mix);
    obs::Tracer::Config trace_config;
    trace_config.enabled = true;
    trace_config.keepRecent = 8; // bound memory under the repeat loop.
    obs::Tracer::instance().configure(trace_config);
    const double traced_ms = runMix(client, warm_mix);
    obs::Tracer::instance().reset();

    // 3. Overload: more closed-loop clients than the queue admits.
    std::atomic<std::uint64_t> overload_ok{0};
    std::atomic<std::uint64_t> overload_shed{0};
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(overload_s));
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < overload_clients; ++i) {
        clients.emplace_back([&, i] {
            server::HttpClient c("127.0.0.1", server.port());
            std::size_t next = i;
            while (std::chrono::steady_clock::now() < deadline) {
                // Vary the seed so overload requests miss the cache
                // and occupy the engine long enough to fill the gate.
                const std::string line =
                    mix[next % mix.size()] + " seed=" +
                    std::to_string(seed + 1000 + next * 7 + i);
                ++next;
                try {
                    const auto response = c.roundTrip(
                        "POST", "/v1/score", line, "text/plain");
                    if (response.status == 200) {
                        ++overload_ok;
                    } else if (response.status == 503) {
                        ++overload_shed;
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(20));
                    }
                } catch (const Error &) {
                    break;
                }
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    server.stop();

    const auto rps = [](std::size_t n, double ms) {
        return ms > 0.0 ? static_cast<double>(n) * 1000.0 / ms : 0.0;
    };
    const double cold_rps = rps(mix.size(), cold_ms);
    const double warm_rps = rps(mix.size(), warm_ms);
    const double untraced_rps = rps(warm_mix.size(), untraced_ms);
    const double traced_rps = rps(warm_mix.size(), traced_ms);
    const double trace_overhead_pct =
        untraced_ms > 0.0 ? (traced_ms / untraced_ms - 1.0) * 100.0
                          : 0.0;

    if (!json_only) {
        util::TextTable table({"phase", "requests", "wall ms", "req/s"});
        table.addRow({"cold", std::to_string(mix.size()),
                      str::fixed(cold_ms, 1), str::fixed(cold_rps, 1)});
        table.addRow({"warm", std::to_string(mix.size()),
                      str::fixed(warm_ms, 1), str::fixed(warm_rps, 1)});
        table.addRow({"warm untraced", std::to_string(warm_mix.size()),
                      str::fixed(untraced_ms, 1),
                      str::fixed(untraced_rps, 1)});
        table.addRow({"warm traced", std::to_string(warm_mix.size()),
                      str::fixed(traced_ms, 1),
                      str::fixed(traced_rps, 1)});
        table.addRow(
            {"overload",
             std::to_string(overload_ok.load() + overload_shed.load()),
             str::fixed(overload_s * 1000.0, 1),
             str::fixed(static_cast<double>(overload_ok.load()) /
                            overload_s,
                        1)});
        std::cout << "Serving-layer throughput ("
                  << threads << " engine threads, queue depth "
                  << queue_depth << ")\n\n"
                  << table.render() << "\n"
                  << "overload: " << overload_ok.load() << " served, "
                  << overload_shed.load() << " shed with 503\n"
                  << "tracing: " << str::fixed(trace_overhead_pct, 2)
                  << "% warm-path overhead when armed\n\n";
    }
    std::printf(
        "{\"bench\":\"perf_server_throughput\",\"distinct\":%zu,"
        "\"cold_ms\":%s,\"cold_rps\":%s,\"warm_ms\":%s,"
        "\"warm_rps\":%s,\"warm_speedup\":%s,"
        "\"warm_untraced_rps\":%s,\"warm_traced_rps\":%s,"
        "\"trace_overhead_pct\":%s,\"overload_served\":%llu,"
        "\"overload_shed_503\":%llu}\n",
        mix.size(), server::json::number(cold_ms).c_str(),
        server::json::number(cold_rps).c_str(),
        server::json::number(warm_ms).c_str(),
        server::json::number(warm_rps).c_str(),
        server::json::number(warm_ms > 0.0 ? cold_ms / warm_ms : 0.0)
            .c_str(),
        server::json::number(untraced_rps).c_str(),
        server::json::number(traced_rps).c_str(),
        server::json::number(trace_overhead_pct).c_str(),
        static_cast<unsigned long long>(overload_ok.load()),
        static_cast<unsigned long long>(overload_shed.load()));
    return warm_rps > cold_rps ? 0 : 1;
}
