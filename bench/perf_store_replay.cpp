/**
 * @file
 * Durability cost benchmark for the state store (src/store).
 *
 * Two questions the persistence layer must answer with numbers:
 *
 *   1. What does the WAL append path cost, and what does the fsync
 *      cadence buy? Appends --records realistic ScoreRecorded frames
 *      under fsync-every 0 (page cache only), 32, and 1 (full
 *      durability) and reports records/s and MB/s for each.
 *   2. How fast is a cold boot? Builds WALs of increasing length
 *      (quarter, half, full --records) and times StateStore::open()
 *      replaying each into a fresh state — the recovery latency a
 *      restarted hmserved pays before it can listen.
 *
 * Emits a human-readable table plus one machine-readable JSON line
 * for the bench trajectory.
 *
 * Flags: --records=4000 --workloads=16 --rows=4 --seed=1 [--json-only]
 */

#include <chrono>
#include <iostream>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

/** One realistic persisted score: a report with --rows candidate
 *  partitions over --workloads workloads, like a kmax sweep. */
store::ScoreRecord
makeRecord(std::uint64_t sequence, std::size_t num_workloads,
           std::size_t num_rows, rng::Engine &rng)
{
    store::ScoreRecord record;
    record.sequence = sequence;
    record.id = "bench-" + std::to_string(sequence);
    record.fingerprint = rng();
    record.recommendedK = 1 + sequence % num_rows;
    record.ratio = rng.uniform(0.8, 1.6);
    record.plainRatio = record.ratio * rng.uniform(0.9, 1.0);
    record.wallMillis = rng.uniform(5.0, 80.0);
    for (std::size_t r = 0; r < num_rows; ++r) {
        scoring::ScoreReportRow row;
        row.clusterCount = r + 2;
        std::vector<std::size_t> labels(num_workloads);
        for (std::size_t w = 0; w < num_workloads; ++w)
            labels[w] = rng.below(row.clusterCount);
        row.partition = scoring::Partition::fromLabels(labels);
        row.scoreB = rng.uniform(1.0, 3.0);
        row.scoreA = row.scoreB * rng.uniform(0.8, 1.6);
        row.ratio = row.scoreA / row.scoreB;
        record.report.rows.push_back(row);
    }
    record.report.plainA = rng.uniform(1.0, 3.0);
    record.report.plainB = rng.uniform(1.0, 3.0);
    record.report.plainRatio =
        record.report.plainA / record.report.plainB;
    return record;
}

double
wallMillisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Append @p payloads to a fresh WAL under @p fsync_every; returns
 *  wall ms (the file is left in place for the caller). */
double
appendAll(const std::string &path,
          const std::vector<std::string> &payloads,
          std::size_t fsync_every)
{
    util::removeFile(path);
    store::WalWriter wal(path, store::WalWriter::Config{fsync_every});
    const auto start = std::chrono::steady_clock::now();
    for (const std::string &payload : payloads)
        wal.append(store::RecordType::ScoreRecorded, payload);
    return wallMillisSince(start);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cl = util::CommandLine::parse(argc, argv);
    const auto records =
        static_cast<std::size_t>(cl.getInt("records", 4000));
    const auto num_workloads =
        static_cast<std::size_t>(cl.getInt("workloads", 16));
    const auto num_rows = static_cast<std::size_t>(cl.getInt("rows", 4));
    const auto seed = static_cast<std::uint64_t>(cl.getInt("seed", 1));
    const bool json_only = cl.getBool("json-only", false);
    HM_REQUIRE(records >= 4, "--records must be >= 4");

    const std::string dir =
        "/tmp/hiermeans_perf_store_" + std::to_string(::getpid());
    util::ensureDir(dir);
    const std::string wal_path = dir + "/wal.log";

    // Pre-encode every payload so the timers below see only the
    // framing + I/O cost, not the codec.
    rng::Engine rng(seed);
    std::vector<std::string> payloads;
    payloads.reserve(records);
    std::uint64_t payload_bytes = 0;
    for (std::size_t i = 0; i < records; ++i) {
        payloads.push_back(store::encodeScoreRecorded(
            makeRecord(i + 1, num_workloads, num_rows, rng)));
        payload_bytes += payloads.back().size();
    }
    const double mb = static_cast<double>(payload_bytes) / 1.0e6;

    // 1. Append throughput across fsync cadences.
    const std::size_t cadences[] = {0, 32, 1};
    double append_ms[3] = {0.0, 0.0, 0.0};
    for (std::size_t c = 0; c < 3; ++c)
        append_ms[c] = appendAll(wal_path, payloads, cadences[c]);
    // The cadence-1 file (written last) doubles as the full-length
    // recovery input below.

    // 2. Cold-boot recovery wall time vs WAL length.
    const std::size_t lengths[] = {records / 4, records / 2, records};
    double replay_ms[3] = {0.0, 0.0, 0.0};
    for (std::size_t l = 0; l < 3; ++l) {
        // The previous StateStore's destructor snapshots the dir on
        // close; start each boot from a WAL-only state again.
        for (const std::string &name : util::listDir(dir))
            util::removeFile(dir + "/" + name);
        if (lengths[l] != records) {
            const std::vector<std::string> prefix(
                payloads.begin(),
                payloads.begin() +
                    static_cast<std::ptrdiff_t>(lengths[l]));
            appendAll(wal_path, prefix, 0);
        } else {
            appendAll(wal_path, payloads, 0);
        }
        store::StateStore::Config config;
        config.dataDir = dir;
        config.fsyncEvery = 0;
        config.snapshotEvery = 0;
        store::StateStore boot(config);
        const auto start = std::chrono::steady_clock::now();
        const store::RecoveryInfo info = boot.open();
        replay_ms[l] = wallMillisSince(start);
        HM_ASSERT(info.walApplied == lengths[l],
                  "replay applied " << info.walApplied << " of "
                                    << lengths[l]);
    }
    for (const std::string &name : util::listDir(dir))
        util::removeFile(dir + "/" + name);
    ::rmdir(dir.c_str());

    const auto per_second = [records](double ms) {
        return 1000.0 * static_cast<double>(records) / ms;
    };
    if (!json_only) {
        util::TextTable append_table(
            {"fsync-every", "wall ms", "records/s", "MB/s"});
        for (std::size_t c = 0; c < 3; ++c) {
            append_table.addRow(
                {std::to_string(cadences[c]),
                 str::fixed(append_ms[c], 1),
                 str::fixed(per_second(append_ms[c]), 0),
                 str::fixed(1000.0 * mb / append_ms[c], 1)});
        }
        util::TextTable replay_table(
            {"wal records", "wall ms", "records/s"});
        for (std::size_t l = 0; l < 3; ++l) {
            replay_table.addRow(
                {std::to_string(lengths[l]),
                 str::fixed(replay_ms[l], 1),
                 str::fixed(1000.0 *
                                static_cast<double>(lengths[l]) /
                                replay_ms[l],
                            0)});
        }
        std::cout << "WAL append (" << records << " records, "
                  << str::fixed(mb, 2) << " MB of payload)\n"
                  << append_table.render() << "\n"
                  << "durability tax (fsync-every 1 vs 0): x"
                  << str::fixed(append_ms[2] / append_ms[0], 2)
                  << " slower\n\n"
                  << "cold-boot recovery (snapshotless replay)\n"
                  << replay_table.render() << "\n";
    }

    std::ostringstream json;
    json << "{\"bench\":\"perf_store_replay\""
         << ",\"records\":" << records
         << ",\"payload_mb\":" << str::fixed(mb, 3)
         << ",\"append_ms_fsync0\":" << str::fixed(append_ms[0], 3)
         << ",\"append_ms_fsync32\":" << str::fixed(append_ms[1], 3)
         << ",\"append_ms_fsync1\":" << str::fixed(append_ms[2], 3)
         << ",\"appends_per_s_fsync0\":"
         << str::fixed(per_second(append_ms[0]), 1)
         << ",\"appends_per_s_fsync1\":"
         << str::fixed(per_second(append_ms[2]), 1)
         << ",\"durability_tax\":"
         << str::fixed(append_ms[2] / append_ms[0], 3)
         << ",\"replay_ms_quarter\":" << str::fixed(replay_ms[0], 3)
         << ",\"replay_ms_half\":" << str::fixed(replay_ms[1], 3)
         << ",\"replay_ms_full\":" << str::fixed(replay_ms[2], 3)
         << ",\"replays_per_s\":"
         << str::fixed(1000.0 * static_cast<double>(records) /
                           replay_ms[2],
                       1)
         << "}";
    std::cout << json.str() << "\n";
    return 0;
}
