/**
 * @file
 * The Section V-B.2 standardization workflow, made concrete.
 *
 * "We should emphasize that, in order to accept the hierarchical means
 * as a standard, a reference cluster distribution on a reference
 * machine should be determined first since clusters might appear
 * differently on different machines."
 *
 * This bench (1) derives the reference cluster distribution from the
 * machine A SAR characterization at the recommended k, (2) scores both
 * machines against that fixed distribution, (3) shows the discrepancy
 * that would arise if each vendor instead clustered on its own machine,
 * and (4) round-trips the distribution through the CSV format the
 * hmscore tool consumes (`--partition=FILE`).
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);
    const auto names = workload::paperWorkloadNames();

    // (1) The committee derives the reference distribution once, on
    // the designated reference setup (machine A here).
    const std::size_t k =
        result.sarMachineA.recommendation.recommended;
    const scoring::Partition reference =
        result.sarMachineA.analysis.dendrogram.cutAtCount(k);
    std::cout << "reference cluster distribution (machine A, k = " << k
              << "):\n  " << reference.toString(names) << "\n\n";

    // (2) Everyone scores against it.
    const double hgm_a = scoring::hierarchicalGeometricMean(
        result.scoresA, reference);
    const double hgm_b = scoring::hierarchicalGeometricMean(
        result.scoresB, reference);
    std::cout << "scores against the reference distribution: A = "
              << str::fixed(hgm_a, 3) << ", B = " << str::fixed(hgm_b, 3)
              << ", ratio = " << str::fixed(hgm_a / hgm_b, 3) << "\n\n";

    // (3) The failure mode the paper warns about: vendor B clusters on
    // its own machine and reports a different number. Shown at the
    // paper's recommended k = 6, where the two machines' clusterings
    // genuinely differ.
    const std::size_t k_paper = 6;
    const scoring::Partition committee_6 =
        result.sarMachineA.analysis.dendrogram.cutAtCount(k_paper);
    const scoring::Partition vendor_b =
        result.sarMachineB.analysis.dendrogram.cutAtCount(k_paper);
    const double self_a = scoring::hierarchicalGeometricMean(
        result.scoresA, committee_6);
    const double self_b = scoring::hierarchicalGeometricMean(
        result.scoresB, vendor_b);
    const double std_a = scoring::hierarchicalGeometricMean(
        result.scoresA, committee_6);
    const double std_b = scoring::hierarchicalGeometricMean(
        result.scoresB, committee_6);
    std::cout << "if each vendor clustered on its own machine at k = "
              << k_paper << " (the paper's pick):\n";
    std::cout << "  A reports " << str::fixed(self_a, 3)
              << " (A-clusters), B reports " << str::fixed(self_b, 3)
              << " (B-clusters); partition agreement ARI = "
              << str::fixed(
                     scoring::adjustedRandIndex(committee_6, vendor_b),
                     3)
              << "\n";
    std::cout << "  ratio computed from mismatched clusterings: "
              << str::fixed(self_a / self_b, 3)
              << " vs the standardized "
              << str::fixed(std_a / std_b, 3) << "\n\n";

    // (4) Publishable artifact: the CSV the hmscore tool consumes.
    std::cout << "publishable reference file "
                 "(hmscore --partition=FILE):\n";
    std::cout << core::partitionToCsv(reference, names);

    // Round-trip sanity (what a vendor's tool would parse back).
    const scoring::Partition parsed = core::parsePartitionCsv(
        core::partitionToCsv(reference, names), names);
    std::cout << "\nround-trip check: "
              << (parsed == reference ? "OK" : "MISMATCH") << "\n";
    return 0;
}
