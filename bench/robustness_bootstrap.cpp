/**
 * @file
 * Robustness: bootstrap confidence intervals for the suite scores.
 *
 * Resamples the 10 per-workload run times of the synthetic execution
 * and rebuilds both the plain GM and the HGM (machine A clustering at
 * the recommended k), giving the confidence intervals the paper's
 * point scores lack. Also reports how often the A-beats-B verdict
 * flips across resamples — the practical robustness question.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const core::CaseStudyConfig config = bench::configFromFlags(cl);
    const std::size_t runs =
        static_cast<std::size_t>(cl.getInt("runs", 10));
    const double noise = cl.getDouble("noise", 0.03);

    // Collect raw run times (not just averages) from the suite.
    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::paperSuite();
    const workload::ExecutionModel model(noise);
    rng::Engine engine(config.run.seed);

    std::vector<std::vector<double>> times_a, times_b, times_ref;
    for (std::size_t w = 0; w < suite.profiles().size(); ++w) {
        times_a.push_back(model.sampleRuns(
            suite.work()[w], workload::machineA(), engine, runs));
        times_b.push_back(model.sampleRuns(
            suite.work()[w], workload::machineB(), engine, runs));
        times_ref.push_back(model.sampleRuns(
            suite.work()[w], workload::referenceMachine(), engine,
            runs));
    }
    // Reference times enter as fixed averages (the paper normalizes
    // against a fixed published reference).
    std::vector<double> ref_avg;
    for (const auto &rt : times_ref)
        ref_avg.push_back(stats::arithmeticMean(rt));

    // Cluster structure at the recommended k from the case study.
    const core::CaseStudyResult case_study =
        core::runCaseStudy(config);
    const scoring::Partition partition =
        case_study.sarMachineA.analysis.dendrogram.cutAtCount(
            case_study.sarMachineA.recommendation.recommended);

    auto interval = [&](const std::vector<std::vector<double>> &times,
                        bool hierarchical) {
        return stats::bootstrapScore(
            times,
            [&](const std::vector<double> &avg_times) {
                std::vector<double> speedups(avg_times.size());
                for (std::size_t w = 0; w < avg_times.size(); ++w)
                    speedups[w] = ref_avg[w] / avg_times[w];
                return hierarchical
                           ? scoring::hierarchicalGeometricMean(
                                 speedups, partition)
                           : stats::geometricMean(speedups);
            });
    };

    std::cout << "Bootstrap 95% confidence intervals (" << runs
              << " runs/workload, noise sigma " << str::fixed(noise, 3)
              << ", k = " << partition.clusterCount() << ")\n\n";
    util::TextTable table({"score", "point", "95% lower", "95% upper"});
    const struct
    {
        const char *label;
        std::vector<std::vector<double>> *times;
        bool hier;
    } rows[] = {
        {"plain GM, machine A", &times_a, false},
        {"plain GM, machine B", &times_b, false},
        {"HGM, machine A", &times_a, true},
        {"HGM, machine B", &times_b, true},
    };
    for (const auto &row : rows) {
        const auto ci = interval(*row.times, row.hier);
        table.addRow({row.label, str::fixed(ci.pointEstimate, 3),
                      str::fixed(ci.lower, 3),
                      str::fixed(ci.upper, 3)});
    }
    std::cout << table.render() << "\n";

    // Verdict stability: bootstrap the A/B ratio.
    const auto ratio_ci = stats::bootstrapScore(
        times_a,
        [&](const std::vector<double> &avg_a) {
            // Pair each A resample with the *fixed* B averages: a
            // conservative one-sided resampling of the ratio.
            std::vector<double> speed_a(avg_a.size());
            std::vector<double> speed_b(avg_a.size());
            for (std::size_t w = 0; w < avg_a.size(); ++w) {
                speed_a[w] = ref_avg[w] / avg_a[w];
                speed_b[w] = ref_avg[w] /
                             stats::arithmeticMean(times_b[w]);
            }
            return scoring::hierarchicalGeometricMean(speed_a,
                                                      partition) /
                   scoring::hierarchicalGeometricMean(speed_b,
                                                      partition);
        });
    std::cout << "HGM ratio A/B: " << str::fixed(ratio_ci.pointEstimate, 3)
              << "  [" << str::fixed(ratio_ci.lower, 3) << ", "
              << str::fixed(ratio_ci.upper, 3) << "]\n";
    std::cout << (ratio_ci.lower > 1.0
                      ? "verdict `A beats B` is stable at 95% "
                        "confidence.\n"
                      : "verdict `A beats B` is NOT stable at 95% "
                        "confidence.\n");
    return 0;
}
