/**
 * @file
 * Regenerates Table III: relative workload speedup on machines A and B.
 *
 * Runs the 13-workload suite 10 times per machine through the synthetic
 * execution model (component work calibrated to the published
 * speedups), averages the run times, normalizes against the reference
 * machine, and prints measured speedups next to the published ones.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);

    workload::RunConfig run;
    run.seed = static_cast<std::uint64_t>(cl.getInt("seed", 0xD1CE));
    run.runsPerWorkload =
        static_cast<std::size_t>(cl.getInt("runs", 10));

    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::paperSuite();
    const scoring::ScoreTable table = suite.run(run);
    const std::size_t a = table.machineIndex("A");
    const std::size_t b = table.machineIndex("B");
    const std::size_t ref = table.machineIndex("reference");

    std::cout << "Table III: relative workload speedup on machines A "
                 "and B\n(" << run.runsPerWorkload
              << " runs averaged per cell; paper values alongside)\n\n";

    util::TextTable out({"", "paper A", "paper B", "paper A/B", "ours A",
                         "ours B", "ours A/B"});
    const auto &t3 = workload::paper::table3();
    for (std::size_t w = 0; w < t3.size(); ++w) {
        const double sa = table.speedup(w, a, ref);
        const double sb = table.speedup(w, b, ref);
        out.addRow({t3[w].workload, str::fixed(t3[w].speedupA, 2),
                    str::fixed(t3[w].speedupB, 2),
                    str::fixed(t3[w].ratio, 2), str::fixed(sa, 2),
                    str::fixed(sb, 2), str::fixed(sa / sb, 2)});
    }
    out.addSeparator();
    const double gm_a =
        table.plainScore(stats::MeanKind::Geometric, a, ref);
    const double gm_b =
        table.plainScore(stats::MeanKind::Geometric, b, ref);
    out.addRow({"Geometric Mean", "2.10", "1.94", "1.08",
                str::fixed(gm_a, 2), str::fixed(gm_b, 2),
                str::fixed(gm_a / gm_b, 2)});
    std::cout << out.render();
    return 0;
}
