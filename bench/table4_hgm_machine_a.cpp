/**
 * @file
 * Regenerates Table IV: hierarchical geometric mean based on the
 * clustering results from machine A (SAR counters), k = 2..8.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);

    std::cout << "Table IV: HGM based on clustering results from "
                 "machine A (SAR counters)\n\n";
    bench::printPaperVsMeasured(std::cout, workload::paper::table4(),
                                result.sarMachineA.report);
    std::cout << "\nrecommendation: "
              << result.sarMachineA.recommendation.explain() << "\n";
    std::cout << "(the paper recommends k = 6 on machine A; ratios "
                 "converge to the plain 1.08 as k grows)\n";
    return 0;
}
