/**
 * @file
 * Regenerates Table V: hierarchical geometric mean based on the
 * clustering results from machine B (SAR counters), k = 2..8.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);

    std::cout << "Table V: HGM based on clustering results from "
                 "machine B (SAR counters)\n\n";
    bench::printPaperVsMeasured(std::cout, workload::paper::table5(),
                                result.sarMachineB.report);
    std::cout << "\nrecommendation: "
              << result.sarMachineB.recommendation.explain() << "\n";
    std::cout << "(machine B's clusters differ from machine A's — the "
                 "paper's argument for fixing a reference cluster "
                 "distribution)\n";
    return 0;
}
