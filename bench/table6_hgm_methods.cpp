/**
 * @file
 * Regenerates Table VI: hierarchical geometric mean based on the Java
 * method-utilization clustering (machine-independent), k = 2..8.
 */

#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const core::CaseStudyResult result =
        bench::runFromFlags(argc, argv);

    std::cout << "Table VI: HGM based on Java method utilization\n\n";
    bench::printPaperVsMeasured(std::cout, workload::paper::table6(),
                                result.methods.report);
    std::cout << "\nrecommendation: "
              << result.methods.recommendation.explain() << "\n";
    std::cout << "(SciMark2 maps to a single SOM cell, so it is one "
                 "cluster at every merging distance)\n";
    return 0;
}
