/**
 * @file
 * Generate a complete markdown report plus CSV exports for the case
 * study — the artifact a benchmark committee would circulate.
 *
 * Flags:
 *   --out=DIR     output directory (default: .)
 *   --seed=N, --scores=paper|simulated, --mean=gm|am|hm  as elsewhere
 */

#include <filesystem>
#include <iostream>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

void
writeFile(const std::filesystem::path &path, const std::string &content)
{
    util::writeFile(path.string(), content);
    std::cout << "wrote " << path.string() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cl = util::CommandLine::parse(argc, argv);
    const std::filesystem::path out_dir = cl.getString("out", ".");
    std::filesystem::create_directories(out_dir);

    core::CaseStudyConfig config;
    config.scoreSource =
        str::toLower(cl.getString("scores", "paper")) == "simulated"
            ? core::ScoreSource::Simulated
            : core::ScoreSource::Paper;
    config.meanKind = stats::parseMeanKind(cl.getString("mean", "gm"));
    config.pipeline.som.seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x5eed));

    const core::CaseStudyResult result = core::runCaseStudy(config);

    // Markdown report.
    writeFile(out_dir / "case_study.md",
              core::renderMarkdownReport(result));

    // CSV exports: one per score table.
    writeFile(out_dir / "table4_machine_a.csv",
              core::scoreReportToCsv(result.sarMachineA.report, "A",
                                     "B"));
    writeFile(out_dir / "table5_machine_b.csv",
              core::scoreReportToCsv(result.sarMachineB.report, "A",
                                     "B"));
    writeFile(out_dir / "table6_methods.csv",
              core::scoreReportToCsv(result.methods.report, "A", "B"));

    // Speedup table as CSV (Table III form).
    util::CsvDocument speedups;
    speedups.rows.push_back({"workload", "A", "B", "ratio"});
    const auto names = workload::paperWorkloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        speedups.rows.push_back(
            {names[w], str::fixed(result.scoresA[w], 4),
             str::fixed(result.scoresB[w], 4),
             str::fixed(result.scoresA[w] / result.scoresB[w], 4)});
    }
    writeFile(out_dir / "table3_speedups.csv",
              util::writeCsv(speedups));

    std::cout << "done; open " << (out_dir / "case_study.md").string()
              << "\n";
    return 0;
}
