/**
 * @file
 * The "malicious tweak" scenario from the paper's abstract: workload
 * redundancy "renders the benchmark scores biased, making the score of
 * a suite susceptible to malicious tweaks."
 *
 * A vendor whose machine wins on one workload lobbies near-copies of
 * it into the suite. This example sweeps the number of injected copies
 * and prints how far the plain geometric mean drifts versus the
 * hierarchical geometric mean (with honest clustering), plus the
 * vendor's best-case "gaming headroom" for all three mean families.
 */

#include <iostream>

#include "src/hiermeans.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const std::size_t max_copies =
        static_cast<std::size_t>(cl.getInt("copies", 8));

    // The honest suite: vendor V's machine vs a rival R.
    const std::vector<std::string> names = {
        "render", "compress", "query", "simulate", "serve"};
    const std::vector<double> vendor = {1.1, 0.9, 1.0, 3.5, 1.2};
    const std::vector<double> rival = {1.3, 1.1, 1.2, 1.4, 1.3};

    std::cout << "Honest suite: vendor wins only `simulate` (3.5 vs "
                 "1.4).\n";
    std::cout << "plain GM: vendor = "
              << str::fixed(stats::geometricMean(vendor), 3)
              << ", rival = "
              << str::fixed(stats::geometricMean(rival), 3) << "\n\n";

    // The vendor injects near-copies of `simulate` (index 3). With a
    // redundancy-aware pipeline, each copy is clustered with the
    // original; the base partition keeps everything else discrete.
    const scoring::Partition base = scoring::Partition::discrete(5);

    const auto vendor_sweep = scoring::redundancyDriftSweep(
        stats::MeanKind::Geometric, vendor, base, 3, max_copies);
    const auto rival_sweep = scoring::redundancyDriftSweep(
        stats::MeanKind::Geometric, rival, base, 3, max_copies);

    util::TextTable table({"copies of `simulate`", "plain GM (V)",
                           "HGM (V)", "plain ratio V/R", "HGM ratio V/R"});
    for (std::size_t i = 0; i < vendor_sweep.size(); ++i) {
        table.addRow(
            {std::to_string(vendor_sweep[i].copies),
             str::fixed(vendor_sweep[i].plainMean, 3),
             str::fixed(vendor_sweep[i].hierarchicalMean, 3),
             str::fixed(vendor_sweep[i].plainMean /
                            rival_sweep[i].plainMean,
                        3),
             str::fixed(vendor_sweep[i].hierarchicalMean /
                            rival_sweep[i].hierarchicalMean,
                        3)});
    }
    std::cout << table.render() << "\n";

    const double final_plain_drift = vendor_sweep.back().plainDrift;
    std::cout << "After " << max_copies
              << " injected copies the plain GM drifted "
              << str::fixed(100.0 * final_plain_drift, 1)
              << "% while the HGM moved "
              << str::fixed(100.0 * vendor_sweep.back().hierarchicalDrift,
                            1)
              << "%.\n\n";

    std::cout << "Gaming headroom (best-case relative score gain from "
              << max_copies << " copies of the best workload):\n";
    for (stats::MeanKind kind :
         {stats::MeanKind::Arithmetic, stats::MeanKind::Geometric,
          stats::MeanKind::Harmonic}) {
        std::cout << "  plain " << str::padRight(
                         stats::meanKindName(kind), 11)
                  << ": +"
                  << str::fixed(100.0 * scoring::gamingHeadroom(
                                            kind, vendor, max_copies),
                                1)
                  << "%   (hierarchical: +0.0% by construction)\n";
    }
    return 0;
}
