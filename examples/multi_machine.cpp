/**
 * @file
 * Comparing more than two machines — the vendor-bakeoff scenario.
 *
 * The paper compares machines A and B; a real evaluation usually adds
 * the next candidate. This example defines a hypothetical machine C
 * (a newer desktop-class part), runs the full suite on A, B, C and the
 * reference machine through the execution model, clusters with the
 * machine-independent method-utilization characterization, and prints
 * the N-machine hierarchical-mean table — including whether the
 * machine ranking is stable across cluster counts.
 */

#include <iostream>

#include "src/hiermeans.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    const auto seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x5eed));

    // Machine C: a newer desktop part — strong CPU and memory, decent
    // JVM services, good I/O.
    workload::MachineSpec machine_c;
    machine_c.name = "C";
    machine_c.cpu = "hypothetical next-generation desktop CPU";
    machine_c.clockGhz = 2.4;
    machine_c.l2CacheMb = 4.0;
    machine_c.memoryGb = 4.0;
    machine_c.cpuRate = 9.0;
    machine_c.memRate = 2.2;
    machine_c.mlatRate = 1.3;
    machine_c.sysRate = 6.0;
    machine_c.ioRate = 1.4;
    machine_c.memoryPressureFactor = 0.7;

    // Reuse the calibrated component work of the paper suite, but run
    // it on four machines.
    const workload::BenchmarkSuite paper_suite =
        workload::BenchmarkSuite::paperSuite();
    const workload::BenchmarkSuite suite(
        paper_suite.profiles(), paper_suite.work(),
        {workload::machineA(), workload::machineB(), machine_c,
         workload::referenceMachine()});

    workload::RunConfig run;
    run.seed = seed ^ 0xD1CE;
    const scoring::ScoreTable table = suite.run(run);
    const std::size_t ref = table.machineIndex("reference");

    const std::vector<std::string> machines = {"A", "B", "C"};
    std::vector<std::vector<double>> machine_scores;
    for (const std::string &m : machines) {
        machine_scores.push_back(
            table.speedups(table.machineIndex(m), ref));
    }

    // Machine-independent clustering: identical regardless of which
    // machine we measured on, so one partition serves all columns.
    const workload::MethodProfileSynthesizer methods;
    const core::CharacteristicVectors vectors =
        core::characterizeFromMethods(
            methods.generate(suite.profiles()), suite.workloadNames());
    core::PipelineConfig config;
    config.som.seed = seed;
    const core::ClusterAnalysis analysis =
        core::analyzeClusters(vectors, config);

    const scoring::MultiMachineReport report =
        scoring::buildMultiMachineReport(
            stats::MeanKind::Geometric, machine_scores, machines,
            analysis.partitions);

    std::cout << "Three-machine comparison (speedups vs the reference "
                 "machine, method-utilization clusters):\n\n";
    std::cout << report.render() << "\n";
    std::cout << (report.rankingStable()
                      ? "The machine ranking is stable across every "
                        "cluster count.\n"
                      : "The machine ranking changes with the cluster "
                        "count; fix a reference cluster distribution "
                        "before publishing.\n");

    // Which workloads drive machine C's score?
    const auto influences = scoring::leaveOneOutInfluence(
        stats::MeanKind::Geometric, machine_scores[2],
        analysis.partitions.front());
    std::cout << "\nmost influential workloads for machine C (HGM, "
                 "k = "
              << analysis.partitions.front().clusterCount() << "):\n";
    std::vector<std::size_t> order(influences.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return influences[a].hierarchicalInfluence >
                         influences[b].hierarchicalInfluence;
              });
    const auto names = suite.workloadNames();
    for (std::size_t i = 0; i < 3; ++i) {
        const auto &inf = influences[order[i]];
        std::cout << "  " << str::padRight(names[inf.workload], 22)
                  << " "
                  << str::fixed(100.0 * inf.hierarchicalInfluence, 2)
                  << " %\n";
    }
    return 0;
}
