/**
 * @file
 * Quickstart: score a small benchmark suite with a plain geometric mean
 * versus the Hierarchical Geometric Mean (HGM).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "src/hiermeans.h"

int
main()
{
    using namespace hiermeans;

    // A suite of six workloads scored on two machines (say, speedups
    // over some reference). Workloads 3, 4 and 5 are three variants of
    // the same numeric kernel — classic artificial redundancy.
    const std::vector<std::string> workloads = {
        "web-serving", "compile", "database",
        "fft-small", "fft-medium", "fft-large"};
    const std::vector<double> machine_x = {3.1, 2.4, 2.0, 0.9, 0.95, 0.92};
    const std::vector<double> machine_y = {2.2, 2.1, 1.7, 1.4, 1.45, 1.38};

    // Plain geometric means: the three redundant FFT variants vote
    // three times, dragging machine X down.
    const double plain_x = stats::geometricMean(machine_x);
    const double plain_y = stats::geometricMean(machine_y);
    std::cout << "plain GM:        X = " << str::fixed(plain_x, 3)
              << "  Y = " << str::fixed(plain_y, 3)
              << "  ratio = " << str::fixed(plain_x / plain_y, 3)
              << "\n";

    // Cluster the redundant kernels together and use the hierarchical
    // geometric mean: each *cluster* votes once.
    const scoring::Partition clusters =
        scoring::Partition::fromGroups({{0}, {1}, {2}, {3, 4, 5}});
    const double hgm_x =
        scoring::hierarchicalGeometricMean(machine_x, clusters);
    const double hgm_y =
        scoring::hierarchicalGeometricMean(machine_y, clusters);
    std::cout << "HGM (4 clusters): X = " << str::fixed(hgm_x, 3)
              << "  Y = " << str::fixed(hgm_y, 3)
              << "  ratio = " << str::fixed(hgm_x / hgm_y, 3) << "\n\n";

    // The cluster structure need not be hand-made: feed measured
    // characteristic vectors through the pipeline (here: a toy
    // 4-feature characterization) and let SOM + hierarchical
    // clustering discover the partition sweep.
    const linalg::Matrix features = linalg::Matrix::fromRows({
        {120.0, 3.0, 45.0, 0.2},  // web-serving
        {80.0, 9.0, 70.0, 0.4},   // compile
        {150.0, 2.0, 30.0, 0.7},  // database
        {10.0, 85.0, 5.0, 0.1},   // fft-small
        {11.0, 84.0, 5.5, 0.1},   // fft-medium
        {10.5, 86.0, 5.2, 0.1},   // fft-large
    });
    const core::CharacteristicVectors vectors = core::characterizeRaw(
        features, workloads, {"ipc", "fp%", "cache-miss", "io"});

    core::PipelineConfig config;
    config.som.rows = 6;
    config.som.cols = 6;
    config.som.steps = 2000;
    config.kMin = 2;
    config.kMax = 5;
    const core::ClusterAnalysis analysis =
        core::analyzeClusters(vectors, config);

    const scoring::ScoreReport report = core::scoreAgainstClusters(
        analysis, stats::MeanKind::Geometric, machine_x, machine_y);
    std::cout << report.render("X", "Y") << "\n";

    const auto rec = core::recommendClusterCount(analysis, report);
    std::cout << rec.explain() << "\n\n";
    std::cout << "partition at recommended k:\n  "
              << analysis.dendrogram.cutAtCount(rec.recommended)
                     .toString(workloads)
              << "\n";
    return 0;
}
