/**
 * @file
 * The paper's full case study, end to end (Sections IV and V).
 *
 * Composes the hypothetical SPECjvm2007-like suite (Table I), runs it
 * on the Table II machines through the synthetic execution model,
 * characterizes it with SAR counters on machines A and B and with Java
 * method utilization, and prints every artifact of Section V: the
 * Table III speedups, the three SOM maps, the three dendrograms, the
 * three HGM tables and the redundancy diagnosis.
 *
 * Flags:
 *   --scores=paper|simulated   score source (default paper)
 *   --mean=gm|am|hm            hierarchical mean family (default gm)
 *   --seed=N                   master seed for the synthetic substrate
 */

#include <iostream>

#include "src/hiermeans.h"

int
main(int argc, char **argv)
{
    using namespace hiermeans;
    const auto cl = util::CommandLine::parse(argc, argv);
    if (cl.has("help")) {
        std::cout << "usage: specjvm2007_case_study [--scores=paper|"
                     "simulated] [--mean=gm|am|hm] [--seed=N]\n";
        return 0;
    }

    core::CaseStudyConfig config;
    config.scoreSource =
        str::toLower(cl.getString("scores", "paper")) == "simulated"
            ? core::ScoreSource::Simulated
            : core::ScoreSource::Paper;
    config.meanKind = stats::parseMeanKind(cl.getString("mean", "gm"));
    const auto seed =
        static_cast<std::uint64_t>(cl.getInt("seed", 0x5eed));
    config.sar.seed = seed ^ 0xC0FFEE;
    config.methods.seed = seed ^ 0xBEEF;
    config.pipeline.som.seed = seed;
    config.run.seed = seed ^ 0xD1CE;

    const core::CaseStudyResult result = core::runCaseStudy(config);

    std::cout << "=== Table III: relative workload speedup on machines "
                 "A and B ===\n\n";
    std::cout << result.renderSpeedupTable() << "\n";

    const struct
    {
        const core::CaseStudyBranch &branch;
        const char *map_title;
        const char *tree_title;
        const char *table_title;
    } sections[] = {
        {result.sarMachineA, "Figure 3: Workload Distribution on "
                             "Machine A (SAR counters)",
         "Figure 4: Clustering Results on Machine A",
         "Table IV: HGM based on clustering results from machine A"},
        {result.sarMachineB, "Figure 5: Workload Distribution on "
                             "Machine B (SAR counters)",
         "Figure 6: Clustering Results on Machine B",
         "Table V: HGM based on clustering results from machine B"},
        {result.methods, "Figure 7: Workload Distribution "
                         "(Java method utilization)",
         "Figure 8: Clustering Results (Java method utilization)",
         "Table VI: HGM based on Java method utilization"},
    };

    for (const auto &section : sections) {
        std::cout << "\n" << section.map_title << "\n\n";
        std::cout << section.branch.analysis.renderMap(
            section.branch.label);
        std::cout << "\n" << section.tree_title << "\n\n";
        std::cout << section.branch.analysis.renderDendrogram(
            section.branch.label);
        std::cout << "\n" << section.table_title << "\n\n";
        std::cout << section.branch.report.render("A", "B") << "\n";
        std::cout << "recommendation: "
                  << section.branch.recommendation.explain() << "\n\n";
        std::cout << "redundancy by origin suite:\n"
                  << section.branch.redundancy.render() << "\n";
    }

    std::cout << "\nConclusion check: SciMark2 coagulates under every "
                 "characterization --\n";
    for (const auto &section : sections) {
        for (const auto &group : section.branch.redundancy.groups) {
            if (group.name != "SciMark2")
                continue;
            std::cout << "  " << str::padRight(section.branch.label, 28)
                      << " coagulation = "
                      << str::fixed(group.coagulation, 3)
                      << (group.appearsAsExclusiveCluster
                              ? "  (exclusive cluster)"
                              : "")
                      << "\n";
        }
    }
    return 0;
}
