/**
 * @file
 * Auditing a merged benchmark suite for artificial redundancy before
 * release — the consortium scenario from the paper's introduction:
 * "consider the case where we create a benchmark suite by merging data
 * mining and bioinformatics workloads. Since bioinformatics workloads
 * are a subset of data mining workloads, most of the bioinformatics
 * workloads would be redundant..."
 *
 * We compose such a merged suite synthetically, characterize it, and
 * let the redundancy analysis flag the adopted subset — the kind of
 * quantitative evidence a benchmark committee could act on.
 */

#include <iostream>

#include "src/hiermeans.h"

namespace {

using namespace hiermeans;

/** A synthetic workload group spec. */
struct GroupSpec
{
    std::string prefix;
    std::size_t count;
    std::array<double, workload::kLatentAxes> center;
    double spread;
};

workload::WorkloadProfile
makeProfile(const GroupSpec &spec, std::size_t index, rng::Engine &engine)
{
    workload::WorkloadProfile p;
    p.name = spec.prefix + std::to_string(index);
    p.methodSeedGroup = p.name;
    p.workUnits = engine.uniform(40.0, 120.0);
    p.workingSetMb = engine.uniform(8.0, 256.0);
    p.allocationMbPerSec = engine.uniform(1.0, 60.0);
    for (std::size_t a = 0; a < workload::kLatentAxes; ++a) {
        p.latent[a] = std::clamp(
            spec.center[a] + engine.normal(0.0, spec.spread), 0.0, 1.0);
    }
    p.libraries = {{"jdk.core", 0.5}};
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cl = util::CommandLine::parse(argc, argv);
    const auto seed = static_cast<std::uint64_t>(cl.getInt("seed", 77));
    rng::Engine engine(seed);

    // Data-mining workloads sample a broad behavior space; the adopted
    // bioinformatics set is a tight sub-population of it (sequence
    // kernels are all integer-compare + memory-stream heavy).
    const std::vector<GroupSpec> specs = {
        {"datamining.", 8,
         {0.6, 0.2, 0.5, 0.4, 0.2, 0.3, 0.4, 0.4}, 0.18},
        {"bioinf.", 5,
         {0.75, 0.05, 0.65, 0.15, 0.10, 0.10, 0.20, 0.15}, 0.02},
    };

    std::vector<workload::WorkloadProfile> profiles;
    std::vector<core::WorkloadGroup> groups;
    for (const GroupSpec &spec : specs) {
        core::WorkloadGroup group;
        group.name = spec.prefix;
        for (std::size_t i = 0; i < spec.count; ++i) {
            group.members.push_back(profiles.size());
            profiles.push_back(makeProfile(spec, i, engine));
        }
        groups.push_back(std::move(group));
    }

    // Characterize with the SAR-counter substrate on machine A.
    workload::SarConfig sar_config;
    sar_config.seed = seed ^ 0xAB;
    const workload::SarCounterSynthesizer sar(sar_config);
    const core::CharacteristicVectors vectors = core::characterizeFromSar(
        sar.collect(profiles, workload::machineA()));

    core::PipelineConfig config;
    config.som.seed = seed;
    config.kMax = 8;
    const core::ClusterAnalysis analysis =
        core::analyzeClusters(vectors, config);

    std::cout << "=== Suite audit: data mining + bioinformatics merge "
                 "===\n\n";
    std::cout << analysis.renderMap("Workload distribution") << "\n";
    std::cout << analysis.renderDendrogram("Merge hierarchy") << "\n";

    const core::RedundancyReport report =
        core::analyzeRedundancy(analysis, groups);
    std::cout << "\nredundancy by origin:\n" << report.render() << "\n";

    for (const auto &g : report.groups) {
        if (g.coagulated()) {
            std::cout << "WARNING: group `" << g.name << "` ("
                      << g.size
                      << " workloads) coagulates (intra/inter = "
                      << str::fixed(g.coagulation, 3)
                      << "); its members are mutually redundant.\n"
                      << "  -> score the suite with hierarchical means, "
                         "or drop members before release.\n";
        }
    }

    // Quantify the score distortion the redundancy would cause: two
    // hypothetical machines where the redundant group favors machine Q.
    std::vector<double> machine_p, machine_q;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const bool bio = i >= 8;
        machine_p.push_back(bio ? 1.0 : 2.4 + 0.1 * (i % 4));
        machine_q.push_back(bio ? 1.6 : 2.0 + 0.1 * (i % 4));
    }
    const double plain_ratio =
        stats::geometricMean(machine_p) / stats::geometricMean(machine_q);
    const auto report_scores = core::scoreAgainstClusters(
        analysis, stats::MeanKind::Geometric, machine_p, machine_q);
    std::cout << "\nscore comparison under the discovered clusters:\n"
              << report_scores.render("P", "Q") << "\n";

    // The corrective action the audit recommends: treat the flagged
    // bioinformatics block as a single cluster, everything else as is.
    std::vector<std::vector<std::size_t>> corrected_groups;
    for (std::size_t i = 0; i < 8; ++i)
        corrected_groups.push_back({i});
    corrected_groups.push_back({8, 9, 10, 11, 12});
    const scoring::Partition corrected =
        scoring::Partition::fromGroups(corrected_groups);
    const double hgm_ratio =
        scoring::hierarchicalGeometricMean(machine_p, corrected) /
        scoring::hierarchicalGeometricMean(machine_q, corrected);
    std::cout << "plain-GM ratio " << str::fixed(plain_ratio, 3)
              << " -> HGM ratio " << str::fixed(hgm_ratio, 3)
              << " once the bioinformatics block votes once: the "
                 "hierarchical mean undoes the block vote against P.\n";
    return 0;
}
