#include "src/client/cluster_client.h"

#include <chrono>
#include <utility>

#include "src/util/error.h"
#include "src/util/str.h"
#include "src/wire/wire.h"

namespace hiermeans {
namespace client {

namespace {

/**
 * Pull host + port out of a redirect Location. Accepts the absolute
 * form the mesh emits (`http://host:port/path`) and tolerates a bare
 * `host:port/path`. Returns false when no port can be found.
 */
bool
parseLocation(const std::string &location, std::string &host,
              std::uint16_t &port)
{
    std::string rest = location;
    const std::string scheme = "http://";
    if (rest.rfind(scheme, 0) == 0)
        rest = rest.substr(scheme.size());
    const std::size_t slash = rest.find('/');
    if (slash != std::string::npos)
        rest = rest.substr(0, slash);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 >= rest.size())
        return false;
    host = rest.substr(0, colon);
    unsigned long parsed = 0;
    for (std::size_t i = colon + 1; i < rest.size(); ++i) {
        const char c = rest[i];
        if (c < '0' || c > '9')
            return false;
        parsed = parsed * 10 + static_cast<unsigned long>(c - '0');
        if (parsed > 65535)
            return false;
    }
    if (host.empty() || parsed == 0)
        return false;
    port = static_cast<std::uint16_t>(parsed);
    return true;
}

} // namespace

std::vector<ClusterTarget>
parseTargets(const std::string &spec)
{
    std::vector<ClusterTarget> targets;
    for (const std::string &raw : str::split(spec, ',')) {
        const std::string entry = str::trim(raw);
        if (entry.empty())
            continue;
        ClusterTarget target;
        const std::size_t colon = entry.rfind(':');
        std::string port_text;
        if (colon == std::string::npos) {
            // Bare port: loopback shorthand for local meshes.
            port_text = entry;
        } else {
            target.host = entry.substr(0, colon);
            port_text = entry.substr(colon + 1);
            HM_REQUIRE(!target.host.empty(),
                       "targets: empty host in `" << entry << "`");
        }
        unsigned long parsed = 0;
        for (const char c : port_text) {
            HM_REQUIRE(c >= '0' && c <= '9',
                       "targets: bad port in `" << entry << "`");
            parsed = parsed * 10 + static_cast<unsigned long>(c - '0');
            HM_REQUIRE(parsed <= 65535,
                       "targets: port out of range in `" << entry << "`");
        }
        HM_REQUIRE(parsed != 0,
                   "targets: missing port in `" << entry << "`");
        target.port = static_cast<std::uint16_t>(parsed);
        targets.push_back(std::move(target));
    }
    HM_REQUIRE(!targets.empty(),
               "targets: no host:port entries in `" << spec << "`");
    return targets;
}

ClusterClient::ClusterClient(Config config) : config_(std::move(config))
{
    HM_REQUIRE(!config_.targets.empty(),
               "ClusterClient: at least one target required");
    clients_.reserve(config_.targets.size());
    stats_.resize(config_.targets.size());
    for (const ClusterTarget &target : config_.targets) {
        ScoringClient::Config one;
        one.host = target.host;
        one.port = target.port;
        one.retry = config_.retry;
        one.readTimeoutMillis = config_.readTimeoutMillis;
        one.binaryWire = config_.binaryWire;
        clients_.push_back(std::make_unique<ScoringClient>(one));
    }
}

std::size_t
ClusterClient::findTarget(const std::string &host,
                          std::uint16_t port) const
{
    for (std::size_t i = 0; i < config_.targets.size(); ++i) {
        if (config_.targets[i].port == port &&
            config_.targets[i].host == host)
            return i;
    }
    return config_.targets.size();
}

Outcome
ClusterClient::attempt(std::size_t index, const std::string &method,
                       const std::string &target, const std::string &body,
                       const std::string &content_type,
                       const std::string &trace_id,
                       double deadline_millis)
{
    TargetStats &stats = stats_[index];
    ++stats.attempts;
    Outcome outcome =
        clients_[index]->request(method, target, body, content_type,
                                 trace_id, deadline_millis);
    if (!outcome.haveResponse) {
        ++stats.byFailure[static_cast<std::size_t>(outcome.failure)];
        return outcome;
    }
    if (outcome.status >= 200 && outcome.status < 300)
        ++stats.http2xx;
    else if (outcome.status >= 400 && outcome.status < 500)
        ++stats.http4xx;
    else if (outcome.status >= 500)
        ++stats.http5xx;
    if (outcome.apiError == server::ApiError::MeshUnreachable)
        ++stats.meshUnreachable;
    return outcome;
}

Outcome
ClusterClient::request(const std::string &method,
                       const std::string &target, const std::string &body,
                       const std::string &content_type,
                       const std::string &trace_id)
{
    const std::size_t lap = clients_.size();
    const auto started = std::chrono::steady_clock::now();
    const bool has_deadline = config_.deadlineMillis > 0.0;
    // Remaining lap budget (-1 = no deadline, passed through to the
    // per-target client as "use your own config").
    const auto remaining = [&]() {
        if (!has_deadline)
            return -1.0;
        const double elapsed =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        return config_.deadlineMillis - elapsed;
    };
    const auto budgetSpent = [&](double left) {
        return has_deadline && left <= 0.0;
    };

    Outcome outcome;
    std::size_t answered = current_;
    for (std::size_t tried = 0; tried < lap; ++tried) {
        const double left = remaining();
        if (budgetSpent(left)) {
            outcome.haveResponse = false;
            outcome.failure = FailureClass::DeadlineExpired;
            outcome.error = "deadline budget spent after " +
                            std::to_string(tried) + " target(s)";
            return outcome;
        }
        const std::size_t index = (current_ + tried) % lap;
        outcome = attempt(index, method, target, body, content_type,
                          trace_id, left);
        // A transport failure, a router that cannot reach the shard
        // owner, and a node draining for restart all mean "try the
        // next node"; anything else is this cluster's answer.
        const bool rotate =
            !outcome.haveResponse ||
            outcome.apiError == server::ApiError::MeshUnreachable ||
            outcome.apiError == server::ApiError::Draining;
        if (!rotate) {
            answered = index;
            if (tried > 0)
                ++failovers_;
            break;
        }
        if (outcome.haveResponse &&
            outcome.apiError == server::ApiError::Draining)
            ++stats_[index].drainRotations;
        if (outcome.failure == FailureClass::DeadlineExpired)
            return outcome; // the lap budget died mid-attempt.
        answered = index;
    }

    // Follow router redirects (reads for suites owned elsewhere).
    std::size_t hops = 0;
    while (outcome.haveResponse && outcome.status == 307 &&
           config_.followRedirects && hops < config_.maxRedirects) {
        const std::string &location =
            outcome.response.header("location", "");
        std::string host;
        std::uint16_t port = 0;
        if (!parseLocation(location, host, port))
            break; // malformed Location: surface the 307 as-is.
        ++hops;
        const double left = remaining();
        if (budgetSpent(left)) {
            outcome.haveResponse = false;
            outcome.failure = FailureClass::DeadlineExpired;
            outcome.error =
                "deadline budget spent following redirects";
            break;
        }
        const std::size_t index = findTarget(host, port);
        if (index < clients_.size()) {
            outcome = attempt(index, method, target, body, content_type,
                              trace_id, left);
            if (outcome.haveResponse)
                ++stats_[index].redirectsFollowed;
            answered = index;
        } else {
            // A node outside our target list (partial --targets):
            // follow it with a one-shot client, unattributed.
            ScoringClient::Config one;
            one.host = host;
            one.port = port;
            one.retry = config_.retry;
            one.readTimeoutMillis = config_.readTimeoutMillis;
            one.binaryWire = config_.binaryWire;
            ScoringClient follower(one);
            outcome = follower.request(method, target, body,
                                       content_type, trace_id, left);
        }
    }

    if (outcome.haveResponse)
        current_ = answered; // stick with whoever answered.
    return outcome;
}

Outcome
ClusterClient::score(const std::string &line, const std::string &trace_id)
{
    if (config_.binaryWire && !jsonFallback_) {
        Outcome outcome =
            request("POST", "/v1/score", wire::encodeScoreRequest(line),
                    wire::kMediaType, trace_id);
        if (!outcome.haveResponse ||
            outcome.apiError != server::ApiError::UnsupportedMediaType)
            return outcome;
        // One node refusing the format downgrades the whole lap: a
        // mixed-version mesh serves every node the format it speaks.
        jsonFallback_ = true;
    }
    return request("POST", "/v1/score", line, "text/plain", trace_id);
}

Outcome
ClusterClient::health()
{
    return request("GET", "/healthz");
}

Outcome
ClusterClient::cluster()
{
    return request("GET", "/v1/cluster");
}

} // namespace client
} // namespace hiermeans
