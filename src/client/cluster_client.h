/**
 * @file
 * Multi-target front door to a hiermeans mesh.
 *
 * ClusterClient holds one ScoringClient per cluster node and layers
 * the cluster-side half of the resilience story on top of the
 * per-connection half (retry.h + scoring_client.h):
 *
 *   - *Failover.* A transport-class failure (refused / reset / timed
 *     out / other) or a `mesh_unreachable` envelope rotates to the
 *     next target and retries the request there, up to one full lap
 *     of the target list. The client is sticky: whichever target
 *     answered last is tried first next time.
 *   - *Redirects.* A 307 from a router node (reads for a suite owned
 *     elsewhere) is followed to the Location target — preferring the
 *     configured target that matches it, so the hop is attributed —
 *     with a small hop bound against redirect loops.
 *   - *Attribution.* Every attempt is tallied per target and per
 *     FailureClass, so `hmload --targets` can print which node ate
 *     which kind of failure instead of one blended counter.
 *
 * Like ScoringClient, one instance is not thread-safe; give each
 * worker thread its own.
 */

#ifndef HIERMEANS_CLIENT_CLUSTER_CLIENT_H
#define HIERMEANS_CLIENT_CLUSTER_CLIENT_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/client/scoring_client.h"

namespace hiermeans {
namespace client {

/** One node a ClusterClient may talk to. */
struct ClusterTarget
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    std::string label() const
    {
        return host + ":" + std::to_string(port);
    }
};

/**
 * Parse a target list: comma-separated `host:port` entries, a bare
 * entry meaning `127.0.0.1:port`. Throws InvalidArgument on malformed
 * or empty specs.
 */
std::vector<ClusterTarget> parseTargets(const std::string &spec);

/** Per-target attempt tallies (for hmload's breakdown). */
struct TargetStats
{
    std::uint64_t attempts = 0;  ///< requests sent to this target.
    std::uint64_t http2xx = 0;
    std::uint64_t http4xx = 0;
    std::uint64_t http5xx = 0;
    std::uint64_t redirectsFollowed = 0; ///< 307s answered here.
    std::uint64_t meshUnreachable = 0;   ///< 502 mesh_unreachable.
    std::uint64_t drainRotations = 0;    ///< 503 draining answers.

    /** Transport failures by FailureClass (index = enum value). */
    std::array<std::uint64_t, kFailureClassCount> byFailure{};

    std::uint64_t transportFailures() const
    {
        std::uint64_t total = 0;
        for (std::size_t i = 1; i < byFailure.size(); ++i)
            total += byFailure[i];
        return total;
    }
};

/** Failing-over, redirect-following client for a whole mesh. */
class ClusterClient
{
  public:
    struct Config
    {
        std::vector<ClusterTarget> targets;
        RetryPolicy retry; ///< per-target policy (scoring_client.h).

        /** Per-attempt response deadline; 0 waits forever. */
        int readTimeoutMillis = 0;

        /**
         * End-to-end budget per request() call in millis (0 = none),
         * spanning the whole failover lap and any redirect hops:
         * each attempt carries what's left as X-Hiermeans-Deadline,
         * and the lap stops when the budget is spent.
         */
        double deadlineMillis = 0.0;

        /** Follow 307 redirects from router nodes. */
        bool followRedirects = true;

        /** Redirect hop bound (guards against routing loops). */
        std::size_t maxRedirects = 4;

        /** Speak the binary wire format on score() by default, with
         *  the same sticky JSON fallback as ScoringClient. The flag
         *  is copied into every per-target client (and into one-shot
         *  redirect followers), so a mesh relay carrying the
         *  negotiated type end-to-end stays binary across nodes. */
        bool binaryWire = true;
    };

    explicit ClusterClient(Config config);

    /**
     * One request with per-target retries, cross-target failover and
     * redirect following. Never throws on network trouble — the
     * returned Outcome is the last target's verdict (so after a full
     * dead lap it carries the final failure class).
     */
    Outcome request(const std::string &method, const std::string &target,
                    const std::string &body = "",
                    const std::string &content_type = "text/plain",
                    const std::string &trace_id = "");

    /** POST one manifest line to /v1/score (binary wire format when
     *  Config::binaryWire, with sticky cluster-wide JSON fallback). */
    Outcome score(const std::string &line,
                  const std::string &trace_id = "");

    /** GET /healthz against the current (sticky) target. */
    Outcome health();

    /** GET /v1/cluster against the current (sticky) target. */
    Outcome cluster();

    const Config &config() const { return config_; }

    /** Index of the target the last answered request used. */
    std::size_t currentTarget() const { return current_; }

    /** Tallies, index-aligned with config().targets. */
    const std::vector<TargetStats> &stats() const { return stats_; }

    /** Cross-target failovers performed (rotations that helped). */
    std::uint64_t failovers() const { return failovers_; }

  private:
    /** Index of the configured target matching host:port, or npos. */
    std::size_t findTarget(const std::string &host,
                           std::uint16_t port) const;

    /** Issue one attempt against target @p index, tallying it.
     *  @p deadline_millis: remaining budget (-1 = no deadline). */
    Outcome attempt(std::size_t index, const std::string &method,
                    const std::string &target, const std::string &body,
                    const std::string &content_type,
                    const std::string &trace_id,
                    double deadline_millis = -1.0);

    Config config_;
    std::vector<std::unique_ptr<ScoringClient>> clients_;
    std::vector<TargetStats> stats_;
    std::size_t current_ = 0;
    std::uint64_t failovers_ = 0;
    bool jsonFallback_ = false; ///< sticky: set by the first 415.
};

} // namespace client
} // namespace hiermeans

#endif // HIERMEANS_CLIENT_CLUSTER_CLIENT_H
