#include "src/client/retry.h"

#include <algorithm>

#include "src/util/error.h"

namespace hiermeans {
namespace client {

RetrySchedule::RetrySchedule(const RetryPolicy &policy)
    : policy_(policy), engine_(policy.seed),
      previousMillis_(policy.baseMillis)
{
    HM_REQUIRE(policy_.maxAttempts >= 1,
               "RetryPolicy: maxAttempts must be >= 1");
    HM_REQUIRE(policy_.baseMillis >= 0.0,
               "RetryPolicy: baseMillis must be >= 0");
    HM_REQUIRE(policy_.capMillis >= policy_.baseMillis,
               "RetryPolicy: capMillis (" << policy_.capMillis
                                          << ") must be >= baseMillis ("
                                          << policy_.baseMillis << ")");
}

std::optional<double>
RetrySchedule::nextDelayMillis(double retry_after_millis)
{
    // The first attempt is free; only maxAttempts - 1 retries exist.
    if (retriesGranted_ + 1 >= policy_.maxAttempts)
        return std::nullopt;

    // Decorrelated jitter: uniform in [base, 3 * previous], capped.
    const double hi =
        std::max(policy_.baseMillis + 1e-9, 3.0 * previousMillis_);
    double delay = std::min(policy_.capMillis,
                            engine_.uniform(policy_.baseMillis, hi));
    delay = std::max(delay, retry_after_millis);

    if (sleptMillis_ + delay > policy_.budgetMillis)
        return std::nullopt;

    previousMillis_ = delay;
    sleptMillis_ += delay;
    ++retriesGranted_;
    return delay;
}

} // namespace client
} // namespace hiermeans
