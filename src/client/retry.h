/**
 * @file
 * Client-side retry policy with capped exponential backoff and
 * decorrelated jitter.
 *
 * The policy is pure data (how many attempts, how much sleep); a
 * RetrySchedule is one request's walk through it. Delays follow the
 * "decorrelated jitter" scheme — each delay is drawn uniformly from
 * [base, 3 * previous] and capped — which spreads retrying clients
 * apart instead of synchronising them into waves the way plain
 * exponential backoff does. The draw comes from a seeded rng::Engine,
 * so a fixed seed yields a bit-identical schedule: the chaos harness
 * depends on this.
 *
 * A server-provided `Retry-After` is honoured as a floor: the client
 * never knocks again earlier than the server asked it to. A total
 * sleep budget bounds worst-case added latency regardless of the
 * attempt count.
 */

#ifndef HIERMEANS_CLIENT_RETRY_H
#define HIERMEANS_CLIENT_RETRY_H

#include <cstdint>
#include <optional>

#include "src/util/rng.h"

namespace hiermeans {
namespace client {

/** What to retry, how often, and how long to wait. */
struct RetryPolicy
{
    /** Total tries including the first; 1 means never retry. */
    std::size_t maxAttempts = 4;

    /** Lower bound of every backoff draw. */
    double baseMillis = 50.0;

    /** Upper bound of every backoff draw. */
    double capMillis = 2000.0;

    /** Total sleep allowed across all retries of one request; once a
     *  delay would exceed the remainder, the request fails instead. */
    double budgetMillis = 10000.0;

    /** Seed for the jitter stream (deterministic schedules). */
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

    /** Retry connect-level failures (refused / reset / unreachable). */
    bool retryConnect = true;

    /** Retry 503 overload responses. */
    bool retryOverload = true;

    /** Retry timeouts (client read deadline or 504). Off by default in
     *  closed-loop tools would double-count slow work, so callers that
     *  measure the server usually disable this one. */
    bool retryTimeout = true;
};

/** One request's walk through a RetryPolicy. Not thread-safe. */
class RetrySchedule
{
  public:
    explicit RetrySchedule(const RetryPolicy &policy);

    /**
     * Ask permission for one more attempt after a retryable failure.
     * Returns the delay to sleep before it, or nullopt when the
     * attempt count or the sleep budget is exhausted.
     *
     * @p retry_after_millis is the server's Retry-After wish (0 when
     * absent); the drawn delay is raised to at least that.
     */
    std::optional<double> nextDelayMillis(double retry_after_millis = 0.0);

    /** Attempts granted so far (the first attempt is not counted —
     *  only retries pass through the schedule). */
    std::size_t retriesGranted() const { return retriesGranted_; }

    /** Total sleep handed out so far. */
    double sleptMillis() const { return sleptMillis_; }

  private:
    RetryPolicy policy_;
    rng::Engine engine_;
    double previousMillis_;
    std::size_t retriesGranted_ = 0;
    double sleptMillis_ = 0.0;
};

} // namespace client
} // namespace hiermeans

#endif // HIERMEANS_CLIENT_RETRY_H
