#include "src/client/scoring_client.h"

#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>

#include "src/server/json.h"
#include "src/server/router.h"
#include "src/server/wire_json.h"
#include "src/wire/wire.h"

namespace hiermeans {
namespace client {

const char *
failureClassName(FailureClass failure)
{
    switch (failure) {
    case FailureClass::None:            return "none";
    case FailureClass::ConnectRefused:  return "connect-refused";
    case FailureClass::ConnectionReset: return "connection-reset";
    case FailureClass::TimedOut:        return "timed-out";
    case FailureClass::NetOther:        return "net-other";
    case FailureClass::BadResponse:     return "bad-response";
    default:                            return "deadline-expired";
    }
}

FailureClass
classifyNetError(const net::NetError &error)
{
    switch (error.kind()) {
    case net::NetError::Kind::Refused:  return FailureClass::ConnectRefused;
    case net::NetError::Kind::Reset:    return FailureClass::ConnectionReset;
    case net::NetError::Kind::TimedOut: return FailureClass::TimedOut;
    default:                            return FailureClass::NetOther;
    }
}

namespace {

/** Retry-After seconds from @p response, as milliseconds (0 absent). */
double
retryAfterMillis(const server::HttpResponseParser::Response &response)
{
    static const std::string kEmpty;
    const std::string &value = response.header("retry-after", kEmpty);
    if (value.empty())
        return 0.0;
    char *end = nullptr;
    const double seconds = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || seconds <= 0.0)
        return 0.0;
    return seconds * 1000.0;
}

} // namespace

ScoringClient::ScoringClient(Config config)
    : config_(std::move(config)), http_(config_.host, config_.port)
{
    http_.setReadTimeoutMillis(config_.readTimeoutMillis);
}

bool
ScoringClient::shouldRetry(const Outcome &outcome) const
{
    if (outcome.haveResponse) {
        if (outcome.status == 503)
            // `draining` is a promise the node is going away, not a
            // transient: retrying it here only burns backoff budget.
            // The cluster layer rotates to another node instead.
            return outcome.apiError != server::ApiError::Draining &&
                   config_.retry.retryOverload;
        if (outcome.status == 504)
            // A spent end-to-end deadline is final: retrying cannot
            // conjure budget back. Server-side timeouts may retry.
            return outcome.apiError != server::ApiError::DeadlineExpired &&
                   config_.retry.retryTimeout;
        return false; // any other answer is final.
    }
    switch (outcome.failure) {
    case FailureClass::ConnectRefused:
    case FailureClass::ConnectionReset:
    case FailureClass::NetOther:
        return config_.retry.retryConnect;
    case FailureClass::TimedOut:
        return config_.retry.retryTimeout;
    default:
        return false; // BadResponse: the server is confused, not busy.
    }
}

Outcome
ScoringClient::request(const std::string &method, const std::string &target,
                       const std::string &body,
                       const std::string &content_type,
                       const std::string &trace_id,
                       double deadline_override_millis)
{
    // A non-negative override (ClusterClient threading one budget
    // across a failover lap) wins over the configured default.
    const double deadline = deadline_override_millis >= 0.0
                                ? deadline_override_millis
                                : config_.deadlineMillis;
    server::HttpClient::Headers headers;
    if (!trace_id.empty())
        headers.emplace_back("X-Hiermeans-Trace", trace_id);
    // A binary request announces both response formats it can decode
    // (error envelopes are always JSON, so JSON must stay accepted).
    if (wire::isWireMediaType(content_type))
        headers.emplace_back("Accept", wire::acceptBoth());

    const auto started = std::chrono::steady_clock::now();
    const auto remainingBudget = [&]() {
        if (deadline <= 0.0)
            return 0.0; // no deadline.
        const double elapsed =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        return deadline - elapsed;
    };

    RetrySchedule schedule(config_.retry);
    Outcome outcome;
    for (;;) {
        outcome.haveResponse = false;
        outcome.failure = FailureClass::None;
        outcome.error.clear();
        outcome.apiError = server::ApiError::None;

        server::HttpClient::Headers attempt_headers = headers;
        if (deadline > 0.0) {
            const double remaining = remainingBudget();
            if (remaining <= 0.0) {
                // The budget died between attempts (backoff ate it):
                // fail locally, no round trip.
                outcome.failure = FailureClass::DeadlineExpired;
                outcome.error = "deadline budget spent after " +
                                std::to_string(outcome.attempts - 1) +
                                " attempt(s)";
                return outcome;
            }
            attempt_headers.emplace_back(
                server::kDeadlineHeader,
                server::json::number(remaining));
        }
        try {
            outcome.response = http_.roundTrip(method, target, body,
                                               content_type,
                                               attempt_headers);
            outcome.haveResponse = true;
            outcome.status = outcome.response.status;
            outcome.requestBodyBytes = body.size();
            outcome.responseBodyBytes = outcome.response.body.size();
            static const std::string kZero = "0";
            outcome.stale =
                outcome.response.header("x-hiermeans-stale", kZero) == "1";
            outcome.traceId = outcome.response.header(
                "x-hiermeans-trace", trace_id);
            static const std::string kEmpty;
            if (wire::isWireMediaType(
                    outcome.response.header("content-type", kEmpty)) &&
                outcome.status == 200 && target == "/v1/score") {
                // Decode the binary answer back into the canonical
                // JSON envelope — byte-identical to the JSON path —
                // so everything downstream stays codec-blind.
                try {
                    const wire::ScoreDocument doc =
                        wire::decodeScoreReport(outcome.response.body);
                    outcome.wireBinary = true;
                    outcome.response.body =
                        server::okEnvelope(
                            server::scoreDocumentJson(doc),
                            outcome.traceId) +
                        "\n";
                } catch (const Error &decode_error) {
                    outcome.haveResponse = false;
                    outcome.failure = FailureClass::BadResponse;
                    outcome.error =
                        std::string("binary response decode failed: ") +
                        decode_error.what();
                }
            }
            if (outcome.status >= 400) {
                const std::optional<std::string> code =
                    server::json::findString(outcome.response.body,
                                             "code");
                if (code)
                    outcome.apiError = server::parseApiErrorCode(*code);
            }
        } catch (const net::NetError &error) {
            outcome.failure = classifyNetError(error);
            outcome.error = error.what();
        } catch (const Error &error) {
            outcome.failure = FailureClass::BadResponse;
            outcome.error = error.what();
        }

        if (!shouldRetry(outcome))
            return outcome;
        if (deadline > 0.0 && remainingBudget() <= 0.0) {
            if (!outcome.haveResponse) {
                outcome.failure = FailureClass::DeadlineExpired;
                outcome.error = "deadline budget spent after " +
                                std::to_string(outcome.attempts) +
                                " attempt(s)";
            }
            return outcome; // no budget left to retry in.
        }

        const double floor_millis =
            outcome.haveResponse ? retryAfterMillis(outcome.response) : 0.0;
        const std::optional<double> delay =
            schedule.nextDelayMillis(floor_millis);
        if (!delay.has_value())
            return outcome; // retries exhausted: report the last try.

        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(*delay));
        outcome.backoffMillis += *delay;
        ++outcome.attempts;
    }
}

Outcome
ScoringClient::score(const std::string &line,
                     const std::string &trace_id)
{
    if (config_.binaryWire && !jsonFallback_) {
        Outcome outcome =
            request("POST", "/v1/score", wire::encodeScoreRequest(line),
                    wire::kMediaType, trace_id);
        if (!outcome.haveResponse ||
            outcome.apiError != server::ApiError::UnsupportedMediaType)
            return outcome;
        // The daemon does not speak the binary format: downgrade to
        // JSON for the rest of this client's life and resend, so the
        // caller never sees the 415.
        jsonFallback_ = true;
    }
    return request("POST", "/v1/score", line, "text/plain", trace_id);
}

Outcome
ScoringClient::health()
{
    return request("GET", "/healthz");
}

Outcome
ScoringClient::metrics()
{
    return request("GET", "/metrics");
}

} // namespace client
} // namespace hiermeans
