/**
 * @file
 * The resilient front door to a hiermeans scoring daemon.
 *
 * ScoringClient wraps the blocking server::HttpClient with the
 * client-side half of the resilience story: connection failures are
 * classified into distinct kinds (refused / reset / timed out / other)
 * instead of a single opaque error, retryable outcomes are retried per
 * a RetryPolicy (exponential backoff + decorrelated jitter, honouring
 * the server's Retry-After), and degraded-mode responses are surfaced
 * via Outcome::stale so callers can count how often they were served
 * from the cache instead of a fresh score.
 *
 * `tools/hmload` uses it to attribute load-test errors precisely and
 * `tools/hmctl` uses it to probe a daemon's health from scripts.
 */

#ifndef HIERMEANS_CLIENT_SCORING_CLIENT_H
#define HIERMEANS_CLIENT_SCORING_CLIENT_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/client/retry.h"
#include "src/server/api.h"
#include "src/server/client.h"
#include "src/util/net.h"

namespace hiermeans {
namespace client {

/** How a request ultimately failed (None when it got a response). */
enum class FailureClass
{
    None,
    ConnectRefused,  ///< nothing listening (ECONNREFUSED).
    ConnectionReset, ///< peer vanished mid-exchange.
    TimedOut,        ///< client read deadline expired.
    NetOther,        ///< unreachable / resolution / exotic errno.
    BadResponse,     ///< unparsable HTTP came back.
    DeadlineExpired  ///< the end-to-end deadline budget ran out.
};

/** Number of FailureClass values (for per-class tallies). */
inline constexpr std::size_t kFailureClassCount = 7;

/** Display name ("none", "connect-refused", ...). */
const char *failureClassName(FailureClass failure);

/** Map a classified socket error onto the failure taxonomy. */
FailureClass classifyNetError(const net::NetError &error);

/** Everything a round trip produced, successful or not. */
struct Outcome
{
    bool haveResponse = false; ///< false: see failure/error.
    int status = 0;
    server::HttpResponseParser::Response response;
    FailureClass failure = FailureClass::None;
    std::string error; ///< human-readable failure detail.

    std::size_t attempts = 1;   ///< round trips performed.
    double backoffMillis = 0.0; ///< total retry sleep.
    bool stale = false; ///< response carried X-Hiermeans-Stale.

    /** Body bytes on the wire for the answered attempt (request sent,
     *  response received before any decode) — how hmload measures the
     *  binary format's size win. */
    std::size_t requestBodyBytes = 0;
    std::size_t responseBodyBytes = 0;

    /** The response arrived as a binary wire frame. Its body has been
     *  rewritten to the canonical JSON envelope (bit-identical to the
     *  JSON path), so consumers stay codec-blind. */
    bool wireBinary = false;

    /** Trace ID echoed by the server (X-Hiermeans-Trace), or the one
     *  we sent; empty when neither side traced the request. */
    std::string traceId;

    /** The envelope's stable error code (None on 2xx or when the
     *  body carried no recognizable envelope). */
    server::ApiError apiError = server::ApiError::None;

    bool ok() const { return haveResponse && status == 200; }
};

/** Retrying HTTP client for one scoring daemon. Not thread-safe. */
class ScoringClient
{
  public:
    struct Config
    {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;
        RetryPolicy retry;

        /** Per-attempt response deadline; 0 waits forever. */
        int readTimeoutMillis = 0;

        /**
         * End-to-end budget per request() call in millis (0 = none).
         * The remaining budget rides every attempt as
         * X-Hiermeans-Deadline — decremented across retries and
         * backoff sleeps — so the server can shed work the caller
         * has already given up on. When the budget is spent before
         * an attempt starts, the request fails locally with
         * FailureClass::DeadlineExpired instead of burning a round
         * trip.
         */
        double deadlineMillis = 0.0;

        /**
         * Speak the binary wire format by default: score() posts one
         * ScoreRequest frame with `Accept: application/x-hiermeans-wire,
         * application/json` and decodes a binary answer back into the
         * canonical JSON envelope. A 415 `unsupported_media_type`
         * (an older daemon, or injected via the server.wire.reject
         * fault) downgrades this client to JSON for its lifetime and
         * resends — callers never see the fallback happen.
         */
        bool binaryWire = true;
    };

    explicit ScoringClient(Config config);

    /**
     * One request with retries per the policy. Never throws on
     * network trouble — the Outcome says what happened. A non-empty
     * @p trace_id is sent as X-Hiermeans-Trace so the server's span
     * tree can be fetched under it afterwards.
     */
    Outcome request(const std::string &method, const std::string &target,
                    const std::string &body = "",
                    const std::string &content_type = "text/plain",
                    const std::string &trace_id = "",
                    double deadline_override_millis = -1.0);

    /** POST one manifest line to /v1/score (binary wire format when
     *  Config::binaryWire, with automatic sticky JSON fallback). */
    Outcome score(const std::string &line,
                  const std::string &trace_id = "");

    /** True once a 415 downgraded this client to JSON. */
    bool jsonFallback() const { return jsonFallback_; }

    /** GET /healthz. */
    Outcome health();

    /** GET /metrics. */
    Outcome metrics();

    /** Drop the connection (next request reconnects). */
    void disconnect() { http_.disconnect(); }

    const Config &config() const { return config_; }

  private:
    bool shouldRetry(const Outcome &outcome) const;

    Config config_;
    server::HttpClient http_;
    bool jsonFallback_ = false; ///< sticky: set by the first 415.
};

} // namespace client
} // namespace hiermeans

#endif // HIERMEANS_CLIENT_SCORING_CLIENT_H
