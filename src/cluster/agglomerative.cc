#include "src/cluster/agglomerative.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/util/error.h"

namespace hiermeans {
namespace cluster {

Dendrogram
agglomerate(const linalg::Matrix &points, Linkage linkage,
            linalg::Metric metric)
{
    HM_REQUIRE(points.rows() >= 1, "agglomerate: no points");
    if (linkage == Linkage::Ward) {
        HM_REQUIRE(metric == linalg::Metric::Euclidean,
                   "agglomerate: ward linkage requires the Euclidean "
                   "metric");
    }
    return agglomerateFromDistances(linalg::pairwiseDistances(points,
                                                              metric),
                                    linkage);
}

Dendrogram
agglomerateFromDistances(const linalg::Matrix &distances, Linkage linkage)
{
    const std::size_t n = distances.rows();
    HM_REQUIRE(n >= 1 && distances.cols() == n,
               "agglomerateFromDistances: matrix is " << distances.rows()
                                                      << "x"
                                                      << distances.cols());
    for (std::size_t i = 0; i < n; ++i) {
        HM_REQUIRE(distances(i, i) == 0.0,
                   "agglomerateFromDistances: nonzero diagonal at " << i);
        for (std::size_t j = i + 1; j < n; ++j) {
            HM_REQUIRE(std::abs(distances(i, j) - distances(j, i)) <= 1e-12,
                       "agglomerateFromDistances: asymmetric at (" << i
                                                                   << ", "
                                                                   << j
                                                                   << ")");
            HM_REQUIRE(distances(i, j) >= 0.0,
                       "agglomerateFromDistances: negative distance");
        }
    }

    if (n == 1)
        return Dendrogram(1, {});

    // active[c] -> current node id of cluster slot c (slots are reused
    // for merged clusters); -1-style sentinel via `alive`.
    linalg::Matrix work = distances;
    std::vector<std::size_t> node_id(n);
    std::vector<std::size_t> size(n, 1);
    std::vector<bool> alive(n, true);
    for (std::size_t i = 0; i < n; ++i)
        node_id[i] = i;

    std::vector<Merge> merges;
    merges.reserve(n - 1);

    for (std::size_t step = 0; step < n - 1; ++step) {
        // Find the closest live pair; ties resolved by smallest node
        // ids for determinism.
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0, bj = 0;
        bool found = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (!alive[i])
                continue;
            for (std::size_t j = i + 1; j < n; ++j) {
                if (!alive[j])
                    continue;
                const double d = work(i, j);
                if (d < best - 1e-15) {
                    best = d;
                    bi = i;
                    bj = j;
                    found = true;
                } else if (found && std::abs(d - best) <= 1e-15) {
                    const auto current =
                        std::minmax(node_id[i], node_id[j]);
                    const auto incumbent =
                        std::minmax(node_id[bi], node_id[bj]);
                    if (current < incumbent) {
                        bi = i;
                        bj = j;
                    }
                }
            }
        }
        HM_ASSERT(found, "agglomerate: no live pair found");

        Merge merge;
        merge.left = std::min(node_id[bi], node_id[bj]);
        merge.right = std::max(node_id[bi], node_id[bj]);
        merge.height = best;
        merge.size = size[bi] + size[bj];
        merges.push_back(merge);

        // Update distances from every other live cluster to bi (the
        // surviving slot) via Lance-Williams, then retire bj.
        for (std::size_t k = 0; k < n; ++k) {
            if (!alive[k] || k == bi || k == bj)
                continue;
            const LanceWilliams lw =
                lanceWilliams(linkage, size[bi], size[bj], size[k]);
            const double d = updateDistance(lw, work(k, bi), work(k, bj),
                                            work(bi, bj));
            work(k, bi) = d;
            work(bi, k) = d;
        }
        size[bi] += size[bj];
        alive[bj] = false;
        node_id[bi] = n + step;
    }
    return Dendrogram(n, std::move(merges));
}

} // namespace cluster
} // namespace hiermeans
