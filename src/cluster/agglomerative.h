/**
 * @file
 * Agglomerative hierarchical clustering (Section III-B of the paper).
 *
 * "In the beginning, the algorithm assigns each point a cluster. At
 * each iteration the closest pair of clusters are merged to create a
 * new cluster, reducing the number of clusters by one each time. The
 * algorithm proceeds until all the points result in a single cluster."
 *
 * Cluster-to-cluster distances are maintained with the Lance-Williams
 * recurrence; ties on the minimum distance are broken by the smallest
 * (left, right) node-id pair so results are fully deterministic.
 */

#ifndef HIERMEANS_CLUSTER_AGGLOMERATIVE_H
#define HIERMEANS_CLUSTER_AGGLOMERATIVE_H

#include "src/cluster/dendrogram.h"
#include "src/cluster/linkage.h"
#include "src/linalg/distance.h"
#include "src/linalg/matrix.h"

namespace hiermeans {
namespace cluster {

/**
 * Cluster the rows of @p points.
 *
 * @param points n x d observations (n >= 1).
 * @param linkage cluster-to-cluster distance criterion.
 * @param metric point-to-point distance (the paper uses Euclidean).
 */
Dendrogram agglomerate(const linalg::Matrix &points,
                       Linkage linkage = Linkage::Complete,
                       linalg::Metric metric = linalg::Metric::Euclidean);

/**
 * Cluster from a precomputed symmetric pairwise distance matrix with a
 * zero diagonal. Useful when distances come from a non-vector source.
 */
Dendrogram agglomerateFromDistances(const linalg::Matrix &distances,
                                    Linkage linkage = Linkage::Complete);

} // namespace cluster
} // namespace hiermeans

#endif // HIERMEANS_CLUSTER_AGGLOMERATIVE_H
