#include "src/cluster/dendrogram.h"

#include <algorithm>

#include "src/util/error.h"

namespace hiermeans {
namespace cluster {

namespace {

/** Union-find over leaf ids. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent_(n)
    {
        for (std::size_t i = 0; i < n; ++i)
            parent_[i] = i;
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    unite(std::size_t a, std::size_t b)
    {
        parent_[find(a)] = find(b);
    }

  private:
    std::vector<std::size_t> parent_;
};

} // namespace

Dendrogram::Dendrogram(std::size_t num_leaves, std::vector<Merge> merges)
    : numLeaves_(num_leaves), merges_(std::move(merges))
{
    HM_REQUIRE(numLeaves_ >= 1, "Dendrogram: no leaves");
    HM_REQUIRE(merges_.size() == numLeaves_ - 1,
               "Dendrogram: " << numLeaves_ << " leaves need "
                              << numLeaves_ - 1 << " merges, got "
                              << merges_.size());
    std::vector<bool> consumed(numLeaves_ + merges_.size(), false);
    for (std::size_t m = 0; m < merges_.size(); ++m) {
        const Merge &merge = merges_[m];
        const std::size_t new_id = numLeaves_ + m;
        HM_REQUIRE(merge.left < new_id && merge.right < new_id,
                   "Dendrogram: merge " << m << " references node ids "
                                        << merge.left << "/" << merge.right
                                        << " not yet created");
        HM_REQUIRE(merge.left != merge.right,
                   "Dendrogram: merge " << m << " merges a node with "
                                           "itself");
        HM_REQUIRE(!consumed[merge.left] && !consumed[merge.right],
                   "Dendrogram: merge " << m << " reuses a consumed node");
        HM_REQUIRE(merge.height >= 0.0, "Dendrogram: negative height");
        consumed[merge.left] = true;
        consumed[merge.right] = true;
    }
}

std::vector<double>
Dendrogram::heights() const
{
    std::vector<double> out;
    out.reserve(merges_.size());
    for (const Merge &m : merges_)
        out.push_back(m.height);
    return out;
}

bool
Dendrogram::heightsMonotone() const
{
    for (std::size_t i = 1; i < merges_.size(); ++i) {
        if (merges_[i].height < merges_[i - 1].height - 1e-12)
            return false;
    }
    return true;
}

std::vector<std::size_t>
Dendrogram::leavesUnder(std::size_t node) const
{
    HM_REQUIRE(node < numLeaves_ + merges_.size(),
               "leavesUnder: node " << node << " out of range");
    if (node < numLeaves_)
        return {node};
    std::vector<std::size_t> out;
    std::vector<std::size_t> stack = {node};
    while (!stack.empty()) {
        const std::size_t current = stack.back();
        stack.pop_back();
        if (current < numLeaves_) {
            out.push_back(current);
            continue;
        }
        const Merge &m = merges_[current - numLeaves_];
        stack.push_back(m.left);
        stack.push_back(m.right);
    }
    std::sort(out.begin(), out.end());
    return out;
}

scoring::Partition
Dendrogram::cutAtCount(std::size_t k) const
{
    HM_REQUIRE(k >= 1 && k <= numLeaves_,
               "cutAtCount: k " << k << " outside [1, " << numLeaves_
                                << "]");
    UnionFind uf(numLeaves_);
    // Apply the first (numLeaves_ - k) merges.
    const std::size_t applied = numLeaves_ - k;
    for (std::size_t m = 0; m < applied; ++m) {
        const std::size_t left_leaf = leavesUnder(merges_[m].left).front();
        const std::size_t right_leaf =
            leavesUnder(merges_[m].right).front();
        uf.unite(left_leaf, right_leaf);
    }
    std::vector<std::size_t> labels(numLeaves_);
    for (std::size_t i = 0; i < numLeaves_; ++i)
        labels[i] = uf.find(i);
    return scoring::Partition::fromLabels(labels);
}

scoring::Partition
Dendrogram::cutAtDistance(double distance) const
{
    UnionFind uf(numLeaves_);
    for (const Merge &m : merges_) {
        if (m.height > distance)
            continue;
        uf.unite(leavesUnder(m.left).front(), leavesUnder(m.right).front());
    }
    std::vector<std::size_t> labels(numLeaves_);
    for (std::size_t i = 0; i < numLeaves_; ++i)
        labels[i] = uf.find(i);
    return scoring::Partition::fromLabels(labels);
}

std::size_t
Dendrogram::clusterCountAtDistance(double distance) const
{
    return cutAtDistance(distance).clusterCount();
}

std::vector<scoring::Partition>
Dendrogram::partitionSweep(std::size_t k_min, std::size_t k_max) const
{
    k_min = std::max<std::size_t>(k_min, 1);
    k_max = std::min(k_max, numLeaves_);
    HM_REQUIRE(k_min <= k_max, "partitionSweep: empty range [" << k_min
                                                               << ", "
                                                               << k_max
                                                               << "]");
    std::vector<scoring::Partition> out;
    out.reserve(k_max - k_min + 1);
    for (std::size_t k = k_min; k <= k_max; ++k)
        out.push_back(cutAtCount(k));
    return out;
}

linalg::Matrix
Dendrogram::copheneticDistances() const
{
    linalg::Matrix out(numLeaves_, numLeaves_, 0.0);
    for (const Merge &m : merges_) {
        const std::vector<std::size_t> left = leavesUnder(m.left);
        const std::vector<std::size_t> right = leavesUnder(m.right);
        for (std::size_t a : left) {
            for (std::size_t b : right) {
                out(a, b) = m.height;
                out(b, a) = m.height;
            }
        }
    }
    return out;
}

} // namespace cluster
} // namespace hiermeans
