/**
 * @file
 * Dendrogram: the full merge history of an agglomerative clustering.
 *
 * "Clustering result can be represented as a dendrogram which visualize
 * which workloads form a cluster at which merging distance. ... By
 * varying the merging distance, we can determine how many workload
 * clusters exist in a benchmark suite." (Section III-B)
 *
 * Node id convention (as in SciPy): leaves are 0..n-1; the cluster
 * created by merge step m (0-based) has id n + m. A clustering of n
 * points has exactly n - 1 merges.
 */

#ifndef HIERMEANS_CLUSTER_DENDROGRAM_H
#define HIERMEANS_CLUSTER_DENDROGRAM_H

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/scoring/partition.h"

namespace hiermeans {
namespace cluster {

/** One merge step. */
struct Merge
{
    std::size_t left = 0;   ///< node id of one merged cluster.
    std::size_t right = 0;  ///< node id of the other.
    double height = 0.0;    ///< merging distance at which they join.
    std::size_t size = 0;   ///< number of leaves in the new cluster.
};

/** A complete agglomerative merge history over n leaves. */
class Dendrogram
{
  public:
    /**
     * Build from a merge list. Validates the node-id convention and
     * that each node is merged at most once. @p num_leaves >= 1;
     * merges.size() must equal num_leaves - 1.
     */
    Dendrogram(std::size_t num_leaves, std::vector<Merge> merges);

    std::size_t leafCount() const { return numLeaves_; }
    const std::vector<Merge> &merges() const { return merges_; }

    /** Merge heights in merge order (monotone for sane linkages). */
    std::vector<double> heights() const;

    /** True when heights never decrease from one merge to the next. */
    bool heightsMonotone() const;

    /**
     * Cut into exactly @p k clusters by undoing the last k - 1 merges.
     * k must be in [1, leafCount()].
     */
    scoring::Partition cutAtCount(std::size_t k) const;

    /**
     * Cut at a merging distance: apply every merge whose height is
     * <= @p distance; the remaining components are the clusters
     * ("workloads that locate closer to each other than the merging
     * distance form a cluster").
     */
    scoring::Partition cutAtDistance(double distance) const;

    /** Number of clusters a cut at @p distance produces. */
    std::size_t clusterCountAtDistance(double distance) const;

    /**
     * Partitions for every cluster count in [k_min, k_max] (clamped to
     * [1, leafCount()]), ascending by k. The input to
     * scoring::buildScoreReport for the Table IV/V/VI sweeps.
     */
    std::vector<scoring::Partition> partitionSweep(std::size_t k_min,
                                                   std::size_t k_max) const;

    /**
     * Cophenetic distance matrix: entry (i, j) is the merge height at
     * which leaves i and j first share a cluster. Feeds the cophenetic
     * correlation validity index.
     */
    linalg::Matrix copheneticDistances() const;

    /** Leaves under node @p node (node id convention above), ascending. */
    std::vector<std::size_t> leavesUnder(std::size_t node) const;

  private:
    std::size_t numLeaves_;
    std::vector<Merge> merges_;
};

} // namespace cluster
} // namespace hiermeans

#endif // HIERMEANS_CLUSTER_DENDROGRAM_H
