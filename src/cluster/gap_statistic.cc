#include "src/cluster/gap_statistic.h"

#include <algorithm>
#include <cmath>

#include "src/cluster/agglomerative.h"
#include "src/cluster/validity.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace hiermeans {
namespace cluster {

namespace {

/**
 * log of the pooled within-cluster dispersion W_k, computed from the
 * within-cluster sum of squares (guarded against zero for degenerate
 * all-identical clusters).
 */
double
logDispersion(const linalg::Matrix &points,
              const scoring::Partition &partition)
{
    const double wss = withinClusterSS(points, partition);
    return std::log(std::max(wss, 1e-12));
}

} // namespace

GapResult
gapStatistic(const linalg::Matrix &points, const GapConfig &config)
{
    const std::size_t n = points.rows();
    HM_REQUIRE(n >= 2, "gapStatistic: need >= 2 points");
    HM_REQUIRE(config.kMin >= 1 && config.kMin <= config.kMax,
               "gapStatistic: invalid k range");
    HM_REQUIRE(config.references >= 2,
               "gapStatistic: need >= 2 reference data sets");
    const std::size_t k_max = std::min(config.kMax, n);

    // Feature ranges for the uniform reference distribution.
    const std::size_t d = points.cols();
    std::vector<double> lo(d), hi(d);
    for (std::size_t c = 0; c < d; ++c) {
        lo[c] = hi[c] = points(0, c);
        for (std::size_t r = 1; r < n; ++r) {
            lo[c] = std::min(lo[c], points(r, c));
            hi[c] = std::max(hi[c], points(r, c));
        }
    }

    const Dendrogram real_tree = agglomerate(points, Linkage::Complete);

    // Reference dispersions per k.
    rng::Engine engine(config.seed);
    std::vector<std::vector<double>> ref_log(k_max + 1);
    for (std::size_t b = 0; b < config.references; ++b) {
        linalg::Matrix ref(n, d);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < d; ++c) {
                ref(r, c) = lo[c] == hi[c]
                                ? lo[c]
                                : engine.uniform(lo[c], hi[c]);
            }
        }
        const Dendrogram ref_tree = agglomerate(ref, Linkage::Complete);
        for (std::size_t k = config.kMin; k <= k_max; ++k) {
            ref_log[k].push_back(
                logDispersion(ref, ref_tree.cutAtCount(k)));
        }
    }

    GapResult result;
    for (std::size_t k = config.kMin; k <= k_max; ++k) {
        GapPoint point;
        point.k = k;
        point.logDispersion =
            logDispersion(points, real_tree.cutAtCount(k));

        double mean = 0.0;
        for (double v : ref_log[k])
            mean += v;
        mean /= static_cast<double>(ref_log[k].size());
        double var = 0.0;
        for (double v : ref_log[k])
            var += (v - mean) * (v - mean);
        var /= static_cast<double>(ref_log[k].size());

        point.referenceMean = mean;
        point.gap = mean - point.logDispersion;
        point.standardError =
            std::sqrt(var) *
            std::sqrt(1.0 + 1.0 / static_cast<double>(
                                      config.references));
        result.points.push_back(point);
    }

    // Tibshirani's rule: smallest k with gap(k) >= gap(k+1) - se(k+1).
    result.chosenK = result.points.front().k;
    bool chosen = false;
    for (std::size_t i = 0; i + 1 < result.points.size(); ++i) {
        if (result.points[i].gap >=
            result.points[i + 1].gap -
                result.points[i + 1].standardError) {
            result.chosenK = result.points[i].k;
            chosen = true;
            break;
        }
    }
    if (!chosen) {
        double best = result.points.front().gap;
        for (const GapPoint &p : result.points) {
            if (p.gap > best) {
                best = p.gap;
                result.chosenK = p.k;
            }
        }
    }
    return result;
}

} // namespace cluster
} // namespace hiermeans
