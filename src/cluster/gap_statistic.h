/**
 * @file
 * The gap statistic (Tibshirani, Walther & Hastie 2001) for choosing
 * the number of clusters.
 *
 * The paper picks k by eyeballing the dendrogram and the score-ratio
 * fluctuation; the gap statistic is the standard quantitative
 * alternative: compare log within-cluster dispersion of the real data
 * against reference data drawn uniformly over the feature ranges, and
 * pick the smallest k whose gap is within one standard error of the
 * next gap. Plugged into the recommendation module as a fourth signal.
 */

#ifndef HIERMEANS_CLUSTER_GAP_STATISTIC_H
#define HIERMEANS_CLUSTER_GAP_STATISTIC_H

#include <cstdint>
#include <vector>

#include "src/cluster/dendrogram.h"
#include "src/linalg/matrix.h"

namespace hiermeans {
namespace cluster {

/** Gap value and dispersion bookkeeping at one k. */
struct GapPoint
{
    std::size_t k = 0;
    double logDispersion = 0.0;    ///< log W_k of the real data.
    double referenceMean = 0.0;    ///< mean log W_k* of references.
    double gap = 0.0;              ///< referenceMean - logDispersion.
    double standardError = 0.0;    ///< s_k (already x sqrt(1 + 1/B)).
};

/** Result of a gap-statistic sweep. */
struct GapResult
{
    std::vector<GapPoint> points; ///< ascending k.
    /**
     * The chosen k: smallest k with
     * gap(k) >= gap(k+1) - se(k+1); falls back to the k with the
     * largest gap when the criterion never fires.
     */
    std::size_t chosenK = 0;
};

/** Configuration. */
struct GapConfig
{
    std::size_t kMin = 1;
    std::size_t kMax = 8;
    /** Reference data sets (B in the paper's notation). */
    std::size_t references = 20;
    std::uint64_t seed = 0x6A9;
};

/**
 * Gap statistic over @p points, clustering with complete linkage at
 * every k (the suite's pipeline clustering). kMax is clamped to the
 * point count.
 */
GapResult gapStatistic(const linalg::Matrix &points,
                       const GapConfig &config = {});

} // namespace cluster
} // namespace hiermeans

#endif // HIERMEANS_CLUSTER_GAP_STATISTIC_H
