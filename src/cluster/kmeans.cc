#include "src/cluster/kmeans.h"

#include <limits>

#include "src/linalg/distance.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace hiermeans {
namespace cluster {

namespace {

/** k-means++ seeding: spread initial centroids by D^2 sampling. */
linalg::Matrix
seedCentroids(const linalg::Matrix &points, std::size_t k,
              rng::Engine &engine)
{
    const std::size_t n = points.rows();
    linalg::Matrix centroids(k, points.cols());
    std::vector<double> dist_sq(n,
                                std::numeric_limits<double>::infinity());

    const std::size_t first =
        static_cast<std::size_t>(engine.below(n));
    centroids.setRow(0, points.row(first));

    for (std::size_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double d = linalg::squaredEuclidean(
                points.row(i), centroids.row(c - 1));
            dist_sq[i] = std::min(dist_sq[i], d);
            total += dist_sq[i];
        }
        std::size_t chosen = 0;
        if (total > 0.0) {
            double target = engine.uniform() * total;
            for (std::size_t i = 0; i < n; ++i) {
                target -= dist_sq[i];
                if (target <= 0.0) {
                    chosen = i;
                    break;
                }
            }
        } else {
            chosen = static_cast<std::size_t>(engine.below(n));
        }
        centroids.setRow(c, points.row(chosen));
    }
    return centroids;
}

KMeansResult
runOnce(const linalg::Matrix &points, const KMeansConfig &config,
        rng::Engine &engine)
{
    const std::size_t n = points.rows();
    const std::size_t k = config.k;
    linalg::Matrix centroids = seedCentroids(points, k, engine);
    std::vector<std::size_t> labels(n, 0);

    std::size_t iterations = 0;
    bool changed = true;
    while (changed && iterations < config.maxIterations) {
        changed = false;
        ++iterations;
        // Assignment step.
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t best = 0;
            double best_dist = std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < k; ++c) {
                const double d = linalg::squaredEuclidean(
                    points.row(i), centroids.row(c));
                if (d < best_dist) {
                    best_dist = d;
                    best = c;
                }
            }
            if (labels[i] != best) {
                labels[i] = best;
                changed = true;
            }
        }
        // Update step; empty clusters keep their previous centroid.
        linalg::Matrix sums(k, points.cols(), 0.0);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[labels[i]];
            for (std::size_t d = 0; d < points.cols(); ++d)
                sums(labels[i], d) += points(i, d);
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            for (std::size_t d = 0; d < points.cols(); ++d) {
                centroids(c, d) =
                    sums(c, d) / static_cast<double>(counts[c]);
            }
        }
    }

    KMeansResult result;
    result.partition = scoring::Partition::fromLabels(labels);
    result.centroids = centroids;
    result.iterations = iterations;
    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        result.inertia += linalg::squaredEuclidean(
            points.row(i), centroids.row(labels[i]));
    }
    return result;
}

} // namespace

KMeansResult
kmeans(const linalg::Matrix &points, const KMeansConfig &config)
{
    HM_REQUIRE(points.rows() >= 1, "kmeans: no points");
    HM_REQUIRE(config.k >= 1 && config.k <= points.rows(),
               "kmeans: k " << config.k << " outside [1, " << points.rows()
                            << "]");
    HM_REQUIRE(config.restarts >= 1, "kmeans: restarts must be >= 1");

    rng::Engine engine(config.seed);
    KMeansResult best;
    best.inertia = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < config.restarts; ++r) {
        KMeansResult candidate = runOnce(points, config, engine);
        if (candidate.inertia < best.inertia)
            best = std::move(candidate);
    }
    return best;
}

} // namespace cluster
} // namespace hiermeans
