/**
 * @file
 * K-means clustering (k-means++ seeding), the flat-clustering baseline.
 *
 * The paper uses hierarchical clustering exclusively; k-means is
 * provided so the ablation benches can ask whether the hierarchical
 * means are sensitive to the clustering algorithm that produced the
 * partition.
 */

#ifndef HIERMEANS_CLUSTER_KMEANS_H
#define HIERMEANS_CLUSTER_KMEANS_H

#include <cstdint>

#include "src/linalg/matrix.h"
#include "src/scoring/partition.h"

namespace hiermeans {
namespace cluster {

/** K-means configuration. */
struct KMeansConfig
{
    std::size_t k = 2;
    std::size_t maxIterations = 100;
    /** Number of independent restarts; the best inertia wins. */
    std::size_t restarts = 4;
    std::uint64_t seed = 0x5eed;
};

/** K-means result. */
struct KMeansResult
{
    scoring::Partition partition = scoring::Partition::single(1);
    linalg::Matrix centroids;
    double inertia = 0.0; ///< sum of squared distances to centroids.
    std::size_t iterations = 0;
};

/**
 * Cluster the rows of @p points into config.k clusters. Requires
 * 1 <= k <= points.rows(). Deterministic for a fixed seed.
 */
KMeansResult kmeans(const linalg::Matrix &points,
                    const KMeansConfig &config);

} // namespace cluster
} // namespace hiermeans

#endif // HIERMEANS_CLUSTER_KMEANS_H
