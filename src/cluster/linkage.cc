#include "src/cluster/linkage.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace cluster {

const char *
linkageName(Linkage linkage)
{
    switch (linkage) {
      case Linkage::Single:
        return "single";
      case Linkage::Complete:
        return "complete";
      case Linkage::Average:
        return "average";
      case Linkage::Weighted:
        return "weighted";
      case Linkage::Ward:
        return "ward";
    }
    return "unknown";
}

Linkage
parseLinkage(const std::string &name)
{
    const std::string lower = str::toLower(name);
    if (lower == "single" || lower == "min")
        return Linkage::Single;
    if (lower == "complete" || lower == "max" || lower == "furthest")
        return Linkage::Complete;
    if (lower == "average" || lower == "upgma")
        return Linkage::Average;
    if (lower == "weighted" || lower == "wpgma")
        return Linkage::Weighted;
    if (lower == "ward")
        return Linkage::Ward;
    throw InvalidArgument("unknown linkage `" + name + "`");
}

LanceWilliams
lanceWilliams(Linkage linkage, std::size_t size_i, std::size_t size_j,
              std::size_t size_k)
{
    HM_REQUIRE(size_i > 0 && size_j > 0, "lanceWilliams: empty cluster");
    const double ni = static_cast<double>(size_i);
    const double nj = static_cast<double>(size_j);
    const double nk = static_cast<double>(size_k);

    LanceWilliams lw;
    switch (linkage) {
      case Linkage::Single:
        lw.alphaI = 0.5;
        lw.alphaJ = 0.5;
        lw.gamma = -0.5;
        break;
      case Linkage::Complete:
        lw.alphaI = 0.5;
        lw.alphaJ = 0.5;
        lw.gamma = 0.5;
        break;
      case Linkage::Average:
        lw.alphaI = ni / (ni + nj);
        lw.alphaJ = nj / (ni + nj);
        break;
      case Linkage::Weighted:
        lw.alphaI = 0.5;
        lw.alphaJ = 0.5;
        break;
      case Linkage::Ward:
        HM_REQUIRE(size_k > 0, "lanceWilliams: ward needs size_k");
        lw.alphaI = (ni + nk) / (ni + nj + nk);
        lw.alphaJ = (nj + nk) / (ni + nj + nk);
        lw.beta = -nk / (ni + nj + nk);
        break;
    }
    return lw;
}

double
updateDistance(const LanceWilliams &lw, double d_ki, double d_kj,
               double d_ij)
{
    return lw.alphaI * d_ki + lw.alphaJ * d_kj + lw.beta * d_ij +
           lw.gamma * std::abs(d_ki - d_kj);
}

bool
isMonotone(Linkage)
{
    // All five implemented criteria satisfy the Lance-Williams
    // monotonicity condition (alphaI + alphaJ + beta >= 1 is not
    // required in general; these specific criteria are known monotone).
    return true;
}

} // namespace cluster
} // namespace hiermeans
