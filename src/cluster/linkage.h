/**
 * @file
 * Cluster-to-cluster distance definitions (linkage criteria).
 *
 * The paper chooses complete linkage: "we chose it to be the distance
 * of the furthest pair of points from each cluster,
 * d(w_i, w_j) = max_{x in w_i, y in w_j} d(x, y)". The other criteria
 * support the linkage ablation study. All are implemented through the
 * Lance-Williams recurrence, which updates cluster distances after a
 * merge without revisiting the raw points:
 *
 *   d(k, i+j) = a_i d(k,i) + a_j d(k,j) + b d(i,j) + g |d(k,i) - d(k,j)|
 */

#ifndef HIERMEANS_CLUSTER_LINKAGE_H
#define HIERMEANS_CLUSTER_LINKAGE_H

#include <cstddef>
#include <string>

namespace hiermeans {
namespace cluster {

/** Supported linkage criteria. */
enum class Linkage
{
    Single,   ///< nearest pair.
    Complete, ///< furthest pair — the paper's choice.
    Average,  ///< unweighted average (UPGMA).
    Weighted, ///< weighted average (WPGMA).
    Ward,     ///< minimum variance (requires Euclidean distances).
};

/** Name of a linkage ("complete", ...). */
const char *linkageName(Linkage linkage);

/** Parse a linkage name; throws InvalidArgument on unknown names. */
Linkage parseLinkage(const std::string &name);

/** Lance-Williams coefficients for one merge. */
struct LanceWilliams
{
    double alphaI = 0.0;
    double alphaJ = 0.0;
    double beta = 0.0;
    double gamma = 0.0;
};

/**
 * Coefficients for merging clusters of sizes @p size_i and @p size_j
 * when updating the distance to a cluster of size @p size_k.
 */
LanceWilliams lanceWilliams(Linkage linkage, std::size_t size_i,
                            std::size_t size_j, std::size_t size_k);

/**
 * Apply the recurrence: new distance from cluster k to the merged
 * cluster (i+j), given the three pre-merge distances.
 */
double updateDistance(const LanceWilliams &lw, double d_ki, double d_kj,
                      double d_ij);

/**
 * True when the linkage guarantees monotonically non-decreasing merge
 * heights (no dendrogram inversions). Holds for all five criteria we
 * implement; exposed so tests can assert it.
 */
bool isMonotone(Linkage linkage);

} // namespace cluster
} // namespace hiermeans

#endif // HIERMEANS_CLUSTER_LINKAGE_H
