#include "src/cluster/render.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace cluster {

namespace {

void
requireNames(const Dendrogram &dendrogram,
             const std::vector<std::string> &names)
{
    HM_REQUIRE(names.size() == dendrogram.leafCount(),
               "dendrogram render: " << names.size() << " names for "
                                     << dendrogram.leafCount()
                                     << " leaves");
}

/** Recursive tree printer with box-drawing-free ASCII connectors. */
void
printNode(const Dendrogram &dendrogram,
          const std::vector<std::string> &names, std::size_t node,
          const std::string &prefix, bool last, std::ostringstream &oss)
{
    const std::size_t n = dendrogram.leafCount();
    oss << prefix;
    oss << (last ? "`-- " : "|-- ");
    if (node < n) {
        oss << names[node] << "\n";
        return;
    }
    const Merge &m = dendrogram.merges()[node - n];
    oss << "[d = " << str::fixed(m.height, 2) << "]\n";
    const std::string child_prefix = prefix + (last ? "    " : "|   ");
    printNode(dendrogram, names, m.left, child_prefix, false, oss);
    printNode(dendrogram, names, m.right, child_prefix, true, oss);
}

std::string
clusterList(const Dendrogram &dendrogram,
            const std::vector<std::string> &names,
            const scoring::Partition &partition)
{
    (void)dendrogram;
    std::ostringstream oss;
    const auto groups = partition.groups();
    for (std::size_t c = 0; c < groups.size(); ++c) {
        oss << "    cluster " << c + 1 << ": {";
        for (std::size_t i = 0; i < groups[c].size(); ++i) {
            if (i > 0)
                oss << ", ";
            oss << names[groups[c][i]];
        }
        oss << "}\n";
    }
    return oss.str();
}

} // namespace

std::string
renderTree(const Dendrogram &dendrogram,
           const std::vector<std::string> &names, const std::string &title)
{
    requireNames(dendrogram, names);
    std::ostringstream oss;
    oss << title << "\n" << str::repeat('=', title.size()) << "\n";
    if (dendrogram.leafCount() == 1) {
        oss << "`-- " << names[0] << "\n";
        return oss.str();
    }
    // The root is the node created by the final merge.
    const std::size_t root =
        dendrogram.leafCount() + dendrogram.merges().size() - 1;
    const Merge &m = dendrogram.merges().back();
    oss << "[d = " << str::fixed(m.height, 2) << "]  (root, node " << root
        << ")\n";
    printNode(dendrogram, names, m.left, "", false, oss);
    printNode(dendrogram, names, m.right, "", true, oss);
    return oss.str();
}

std::string
renderCutAtDistance(const Dendrogram &dendrogram,
                    const std::vector<std::string> &names, double distance)
{
    requireNames(dendrogram, names);
    const scoring::Partition partition =
        dendrogram.cutAtDistance(distance);
    std::ostringstream oss;
    oss << "  merging distance " << str::fixed(distance, 2) << " -> "
        << partition.clusterCount() << " clusters\n";
    oss << clusterList(dendrogram, names, partition);
    return oss.str();
}

std::string
renderCutAtCount(const Dendrogram &dendrogram,
                 const std::vector<std::string> &names, std::size_t k)
{
    requireNames(dendrogram, names);
    const scoring::Partition partition = dendrogram.cutAtCount(k);
    std::ostringstream oss;
    oss << "  " << k << " clusters\n";
    oss << clusterList(dendrogram, names, partition);
    return oss.str();
}

std::string
renderMergeSchedule(const Dendrogram &dendrogram,
                    const std::vector<std::string> &names)
{
    requireNames(dendrogram, names);
    std::ostringstream oss;
    oss << "  merge schedule (ascending merging distance):\n";
    for (std::size_t m = 0; m < dendrogram.merges().size(); ++m) {
        const Merge &merge = dendrogram.merges()[m];
        oss << "    d = " << str::fixedWidth(merge.height, 3, 8) << "  {";
        const auto left = dendrogram.leavesUnder(merge.left);
        const auto right = dendrogram.leavesUnder(merge.right);
        for (std::size_t i = 0; i < left.size(); ++i) {
            if (i > 0)
                oss << ", ";
            oss << names[left[i]];
        }
        oss << "} + {";
        for (std::size_t i = 0; i < right.size(); ++i) {
            if (i > 0)
                oss << ", ";
            oss << names[right[i]];
        }
        oss << "}\n";
    }
    return oss.str();
}

std::string
renderVerticalDendrogram(const Dendrogram &dendrogram,
                         const std::vector<std::string> &names,
                         const std::string &title,
                         std::size_t height_rows)
{
    requireNames(dendrogram, names);
    HM_REQUIRE(height_rows >= 4, "renderVerticalDendrogram: need >= 4 "
                                 "rows");
    const std::size_t n = dendrogram.leafCount();

    // Leaf order: depth-first from the root so brackets never cross.
    std::vector<std::size_t> order;
    if (n == 1) {
        order.push_back(0);
    } else {
        const std::size_t root = n + dendrogram.merges().size() - 1;
        std::vector<std::size_t> stack = {root};
        while (!stack.empty()) {
            const std::size_t node = stack.back();
            stack.pop_back();
            if (node < n) {
                order.push_back(node);
                continue;
            }
            const Merge &m = dendrogram.merges()[node - n];
            // Push right first so left is visited first.
            stack.push_back(m.right);
            stack.push_back(m.left);
        }
    }
    std::vector<std::size_t> column_of_leaf(n, 0);
    constexpr std::size_t kSpacing = 4;
    for (std::size_t i = 0; i < order.size(); ++i)
        column_of_leaf[order[i]] = i * kSpacing + 1;
    const std::size_t width = (n - 1) * kSpacing + 3;

    double max_height = 0.0;
    for (const Merge &m : dendrogram.merges())
        max_height = std::max(max_height, m.height);

    std::vector<std::string> canvas(height_rows,
                                    std::string(width, ' '));
    auto put = [&](std::size_t row, std::size_t col, char c) {
        char &cell = canvas[row][col];
        if (c == '-' && (cell == '+'))
            return;
        if (c == '|' && (cell == '-' || cell == '+'))
            return;
        cell = c;
    };
    auto row_for = [&](double h) {
        if (max_height <= 0.0)
            return height_rows - 1;
        const double frac = h / max_height;
        return height_rows - 1 -
               static_cast<std::size_t>(
                   frac * static_cast<double>(height_rows - 1) + 0.5);
    };

    // Per-node stem position: column and the row its stem currently
    // reaches (leaves start just below the canvas).
    std::vector<std::size_t> stem_col(n + dendrogram.merges().size());
    std::vector<std::size_t> stem_row(n + dendrogram.merges().size());
    for (std::size_t leaf = 0; leaf < n; ++leaf) {
        stem_col[leaf] = column_of_leaf[leaf];
        stem_row[leaf] = height_rows; // baseline is below the canvas.
    }
    for (std::size_t m = 0; m < dendrogram.merges().size(); ++m) {
        const Merge &merge = dendrogram.merges()[m];
        const std::size_t row = row_for(merge.height);
        for (std::size_t child : {merge.left, merge.right}) {
            for (std::size_t r = row; r < stem_row[child]; ++r)
                put(r, stem_col[child], '|');
        }
        const std::size_t lo =
            std::min(stem_col[merge.left], stem_col[merge.right]);
        const std::size_t hi =
            std::max(stem_col[merge.left], stem_col[merge.right]);
        for (std::size_t c = lo + 1; c < hi; ++c)
            put(row, c, '-');
        put(row, lo, '+');
        put(row, hi, '+');
        stem_col[n + m] = (lo + hi) / 2;
        stem_row[n + m] = row;
    }

    // Assemble with a y-axis scale on the left.
    std::ostringstream oss;
    oss << title << "\n" << str::repeat('=', title.size()) << "\n";
    oss << "merging distance\n";
    for (std::size_t r = 0; r < height_rows; ++r) {
        const double value =
            max_height *
            static_cast<double>(height_rows - 1 - r) /
            static_cast<double>(height_rows - 1);
        const bool labeled = r % 4 == 0 || r == height_rows - 1;
        oss << (labeled ? str::fixedWidth(value, 2, 8)
                        : std::string(8, ' '))
            << " |" << canvas[r] << "\n";
    }
    oss << std::string(8, ' ') << " +" << str::repeat('-', width)
        << "\n";

    // Vertical leaf labels under their columns.
    std::size_t longest = 0;
    for (std::size_t leaf : order)
        longest = std::max(longest, names[leaf].size());
    for (std::size_t i = 0; i < longest; ++i) {
        std::string line(width, ' ');
        for (std::size_t leaf : order) {
            if (i < names[leaf].size())
                line[column_of_leaf[leaf]] = names[leaf][i];
        }
        oss << std::string(10, ' ') << line << "\n";
    }
    return oss.str();
}

} // namespace cluster
} // namespace hiermeans
