/**
 * @file
 * ASCII rendering of dendrograms (Figures 4, 6 and 8).
 *
 * Two complementary views are produced:
 *  - a tree view: the merge hierarchy with the merging distance printed
 *    at every internal node;
 *  - a cut table: for a list of merging distances (or cluster counts),
 *    the cluster composition at that cut — the information the paper's
 *    figures convey with boxed groups at a given y value.
 */

#ifndef HIERMEANS_CLUSTER_RENDER_H
#define HIERMEANS_CLUSTER_RENDER_H

#include <string>
#include <vector>

#include "src/cluster/dendrogram.h"

namespace hiermeans {
namespace cluster {

/**
 * Render the dendrogram as an indented tree, deepest merges last.
 * @param dendrogram the merge history.
 * @param names one label per leaf (size must equal leafCount()).
 * @param title heading, e.g. "Clustering Results on Machine A".
 */
std::string renderTree(const Dendrogram &dendrogram,
                       const std::vector<std::string> &names,
                       const std::string &title);

/**
 * Render the cluster composition at one merging distance, mirroring
 * the paper's "when the merging distance is set to 4, the entire
 * benchmark suite is divided into 4 clusters" narration.
 */
std::string renderCutAtDistance(const Dendrogram &dendrogram,
                                const std::vector<std::string> &names,
                                double distance);

/** Render the cluster composition at an exact cluster count. */
std::string renderCutAtCount(const Dendrogram &dendrogram,
                             const std::vector<std::string> &names,
                             std::size_t k);

/**
 * Render the merge schedule: one line per merge with its height and
 * the leaves joined — a textual equivalent of reading the y-axis.
 */
std::string renderMergeSchedule(const Dendrogram &dendrogram,
                                const std::vector<std::string> &names);

/**
 * Render a *vertical* dendrogram, the orientation of the paper's
 * Figures 4, 6 and 8: leaves along the bottom in dendrogram order,
 * merge brackets drawn upward at heights proportional to the merging
 * distance, a numeric scale on the left, and the rotated leaf labels
 * underneath.
 *
 * @param height_rows vertical resolution in character rows (>= 4).
 */
std::string renderVerticalDendrogram(
    const Dendrogram &dendrogram, const std::vector<std::string> &names,
    const std::string &title, std::size_t height_rows = 16);

} // namespace cluster
} // namespace hiermeans

#endif // HIERMEANS_CLUSTER_RENDER_H
