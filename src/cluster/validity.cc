#include "src/cluster/validity.h"

#include <cmath>
#include <limits>

#include "src/stats/correlation.h"
#include "src/util/error.h"

namespace hiermeans {
namespace cluster {

double
silhouette(const linalg::Matrix &points,
           const scoring::Partition &partition, linalg::Metric metric)
{
    const std::size_t n = points.rows();
    HM_REQUIRE(partition.size() == n, "silhouette: partition covers "
                                          << partition.size() << " of "
                                          << n << " points");
    HM_REQUIRE(partition.clusterCount() >= 2 &&
                   partition.clusterCount() <= n,
               "silhouette: need 2 <= k <= n");

    const linalg::Matrix dist = linalg::pairwiseDistances(points, metric);
    const auto sizes = partition.clusterSizes();

    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t ci = partition.label(i);
        if (sizes[ci] == 1)
            continue; // convention: singleton silhouette = 0.

        // a(i): mean intra-cluster distance.
        double a = 0.0;
        // b(i): min over other clusters of mean distance.
        std::vector<double> inter(partition.clusterCount(), 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            if (partition.label(j) == ci)
                a += dist(i, j);
            else
                inter[partition.label(j)] += dist(i, j);
        }
        a /= static_cast<double>(sizes[ci] - 1);
        double b = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < partition.clusterCount(); ++c) {
            if (c == ci)
                continue;
            b = std::min(b, inter[c] / static_cast<double>(sizes[c]));
        }
        const double denom = std::max(a, b);
        acc += denom > 0.0 ? (b - a) / denom : 0.0;
    }
    return acc / static_cast<double>(n);
}

double
daviesBouldin(const linalg::Matrix &points,
              const scoring::Partition &partition)
{
    const std::size_t n = points.rows();
    const std::size_t k = partition.clusterCount();
    HM_REQUIRE(partition.size() == n, "daviesBouldin: partition covers "
                                          << partition.size() << " of "
                                          << n << " points");
    HM_REQUIRE(k >= 2, "daviesBouldin: need k >= 2");

    // Centroids and scatters.
    linalg::Matrix centroids(k, points.cols(), 0.0);
    const auto sizes = partition.clusterSizes();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t d = 0; d < points.cols(); ++d)
            centroids(partition.label(i), d) += points(i, d);
    }
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < points.cols(); ++d)
            centroids(c, d) /= static_cast<double>(sizes[c]);

    std::vector<double> scatter(k, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        scatter[partition.label(i)] += linalg::euclidean(
            points.row(i), centroids.row(partition.label(i)));
    }
    for (std::size_t c = 0; c < k; ++c)
        scatter[c] /= static_cast<double>(sizes[c]);

    double acc = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
        double worst = 0.0;
        for (std::size_t d = 0; d < k; ++d) {
            if (c == d)
                continue;
            const double separation =
                linalg::euclidean(centroids.row(c), centroids.row(d));
            // Coincident centroids with nonzero scatter -> infinite
            // similarity; clamp to a large finite penalty.
            const double ratio =
                separation > 0.0
                    ? (scatter[c] + scatter[d]) / separation
                    : (scatter[c] + scatter[d] > 0.0 ? 1e9 : 0.0);
            worst = std::max(worst, ratio);
        }
        acc += worst;
    }
    return acc / static_cast<double>(k);
}

double
copheneticCorrelation(const linalg::Matrix &points,
                      const Dendrogram &dendrogram, linalg::Metric metric)
{
    const std::size_t n = points.rows();
    HM_REQUIRE(dendrogram.leafCount() == n,
               "copheneticCorrelation: dendrogram has "
                   << dendrogram.leafCount() << " leaves for " << n
                   << " points");
    HM_REQUIRE(n >= 3, "copheneticCorrelation: need >= 3 points");

    const linalg::Matrix original =
        linalg::pairwiseDistances(points, metric);
    const linalg::Matrix cophenetic = dendrogram.copheneticDistances();

    std::vector<double> x, y;
    x.reserve(n * (n - 1) / 2);
    y.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            x.push_back(original(i, j));
            y.push_back(cophenetic(i, j));
        }
    }
    return stats::pearson(x, y);
}

double
withinClusterSS(const linalg::Matrix &points,
                const scoring::Partition &partition)
{
    const std::size_t n = points.rows();
    const std::size_t k = partition.clusterCount();
    HM_REQUIRE(partition.size() == n, "withinClusterSS: partition covers "
                                          << partition.size() << " of "
                                          << n << " points");

    linalg::Matrix centroids(k, points.cols(), 0.0);
    const auto sizes = partition.clusterSizes();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 0; d < points.cols(); ++d)
            centroids(partition.label(i), d) += points(i, d);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < points.cols(); ++d)
            centroids(c, d) /= static_cast<double>(sizes[c]);

    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += linalg::squaredEuclidean(points.row(i),
                                        centroids.row(partition.label(i)));
    }
    return acc;
}

} // namespace cluster
} // namespace hiermeans
