/**
 * @file
 * Cluster validity indices.
 *
 * The paper picks the cluster count by eyeballing the dendrogram and
 * the score-ratio fluctuation; these indices provide the quantitative
 * complement the core pipeline uses to corroborate that choice, and
 * the ablation benches use to compare clusterings.
 */

#ifndef HIERMEANS_CLUSTER_VALIDITY_H
#define HIERMEANS_CLUSTER_VALIDITY_H

#include "src/cluster/dendrogram.h"
#include "src/linalg/distance.h"
#include "src/linalg/matrix.h"
#include "src/scoring/partition.h"

namespace hiermeans {
namespace cluster {

/**
 * Mean silhouette coefficient of @p partition over @p points, in
 * [-1, 1]; higher is better-separated. Singleton clusters contribute 0
 * (the standard convention). Requires 2 <= k <= n.
 */
double silhouette(const linalg::Matrix &points,
                  const scoring::Partition &partition,
                  linalg::Metric metric = linalg::Metric::Euclidean);

/**
 * Davies-Bouldin index (average worst-case cluster similarity); lower
 * is better. Requires k >= 2; singleton clusters have zero scatter.
 */
double daviesBouldin(const linalg::Matrix &points,
                     const scoring::Partition &partition);

/**
 * Cophenetic correlation coefficient: Pearson correlation between the
 * original pairwise distances and the dendrogram's cophenetic
 * distances. Close to 1 means the tree faithfully represents the data.
 */
double copheneticCorrelation(const linalg::Matrix &points,
                             const Dendrogram &dendrogram,
                             linalg::Metric metric =
                                 linalg::Metric::Euclidean);

/**
 * Within-cluster sum of squared Euclidean distances to centroids
 * (k-means' objective), usable across clustering algorithms.
 */
double withinClusterSS(const linalg::Matrix &points,
                       const scoring::Partition &partition);

} // namespace cluster
} // namespace hiermeans

#endif // HIERMEANS_CLUSTER_VALIDITY_H
