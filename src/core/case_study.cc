#include "src/core/case_study.h"

#include "src/stats/means.h"
#include "src/util/error.h"
#include "src/util/str.h"
#include "src/util/text_table.h"
#include "src/workload/paper_data.h"

namespace hiermeans {
namespace core {

namespace {

/** FNV-1a, to derive an independent SOM training per branch. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

CaseStudyBranch
makeBranch(std::string label, const CharacteristicVectors &vectors,
           const CaseStudyConfig &config,
           const std::vector<double> &scores_a,
           const std::vector<double> &scores_b)
{
    // Each branch is an independent SOM training, as in the paper
    // (one map per machine / characterization).
    PipelineConfig branch_config = config.pipeline;
    branch_config.som.seed ^= fnv1a(label);
    ClusterAnalysis analysis = analyzeClusters(vectors, branch_config);
    scoring::ScoreReport report = scoreAgainstClusters(
        analysis, config.meanKind, scores_a, scores_b);
    ClusterCountRecommendation recommendation =
        recommendClusterCount(analysis, report);
    RedundancyReport redundancy =
        analyzeRedundancy(analysis, paperOriginGroups());
    return CaseStudyBranch{std::move(label), std::move(analysis),
                           std::move(report), recommendation,
                           std::move(redundancy)};
}

} // namespace

std::string
CaseStudyResult::renderSpeedupTable() const
{
    util::TextTable t({"", "A", "B", "ratio(=A/B)"});
    const auto &names = table.workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        t.addRow({names[w], str::fixed(scoresA[w], 2),
                  str::fixed(scoresB[w], 2),
                  str::fixed(scoresA[w] / scoresB[w], 2)});
    }
    t.addSeparator();
    t.addRow({"Geometric Mean", str::fixed(plainA, 2),
              str::fixed(plainB, 2), str::fixed(plainA / plainB, 2)});
    return t.render();
}

CaseStudyResult
runCaseStudy(const CaseStudyConfig &config)
{
    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::paperSuite();

    // --- execution: Table III ---
    scoring::ScoreTable table = suite.run(config.run);
    const std::size_t machine_a = table.machineIndex("A");
    const std::size_t machine_b = table.machineIndex("B");
    const std::size_t reference = table.machineIndex("reference");

    std::vector<double> scores_a, scores_b;
    if (config.scoreSource == ScoreSource::Paper) {
        scores_a = workload::paper::table3SpeedupsA();
        scores_b = workload::paper::table3SpeedupsB();
    } else {
        scores_a = table.speedups(machine_a, reference);
        scores_b = table.speedups(machine_b, reference);
    }

    // --- characterization ---
    const workload::SarCounterSynthesizer sar(config.sar);
    const CharacteristicVectors sar_a = characterizeFromSar(
        sar.collect(suite.profiles(), workload::machineA()));
    const CharacteristicVectors sar_b = characterizeFromSar(
        sar.collect(suite.profiles(), workload::machineB()));

    const workload::MethodProfileSynthesizer methods(config.methods);
    const CharacteristicVectors method_vectors = characterizeFromMethods(
        methods.generate(suite.profiles()), suite.workloadNames());

    // --- the three analysis branches ---
    CaseStudyResult result{
        std::move(table),
        scores_a,
        scores_b,
        stats::mean(config.meanKind, scores_a),
        stats::mean(config.meanKind, scores_b),
        makeBranch("SAR counters, machine A", sar_a, config, scores_a,
                   scores_b),
        makeBranch("SAR counters, machine B", sar_b, config, scores_a,
                   scores_b),
        makeBranch("Java method utilization", method_vectors, config,
                   scores_a, scores_b)};
    return result;
}

} // namespace core
} // namespace hiermeans
