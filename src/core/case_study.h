/**
 * @file
 * The paper's full case study behind one entry point.
 *
 * Composes the hypothetical SPECjvm2007-like suite, "runs" it on
 * machines A, B and the reference machine (Section IV), characterizes
 * it with SAR counters on both machines and with Java method
 * utilization (Section IV-C), and produces every artifact of Section V:
 * Table III, the three SOM maps (Figs. 3/5/7), the three dendrograms
 * (Figs. 4/6/8) and the three HGM tables (Tables IV/V/VI), plus the
 * redundancy report and cluster-count recommendations.
 */

#ifndef HIERMEANS_CORE_CASE_STUDY_H
#define HIERMEANS_CORE_CASE_STUDY_H

#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/core/recommendation.h"
#include "src/core/redundancy.h"
#include "src/scoring/score_report.h"
#include "src/scoring/score_table.h"
#include "src/workload/method_profile.h"
#include "src/workload/sar_counters.h"
#include "src/workload/suite.h"

namespace hiermeans {
namespace core {

/** Which per-workload scores feed the score tables. */
enum class ScoreSource
{
    /**
     * The published Table III speedups — the default for
     * reproduction, since the paper's Tables IV-VI are deterministic
     * functions of them.
     */
    Paper,
    /** Speedups measured from the synthetic execution model. */
    Simulated,
};

/** Case-study configuration. */
struct CaseStudyConfig
{
    workload::RunConfig run;
    workload::SarConfig sar;
    workload::MethodProfileConfig methods;
    PipelineConfig pipeline;
    stats::MeanKind meanKind = stats::MeanKind::Geometric;
    ScoreSource scoreSource = ScoreSource::Paper;
};

/** One characterization branch (SAR on A, SAR on B, or methods). */
struct CaseStudyBranch
{
    std::string label;
    ClusterAnalysis analysis;
    scoring::ScoreReport report;
    ClusterCountRecommendation recommendation;
    RedundancyReport redundancy;
};

/** Everything Section V reports. */
struct CaseStudyResult
{
    scoring::ScoreTable table;      ///< simulated execution times.
    std::vector<double> scoresA;    ///< per-workload scores in use.
    std::vector<double> scoresB;
    double plainA = 0.0;            ///< plain-mean suite scores.
    double plainB = 0.0;

    CaseStudyBranch sarMachineA;    ///< Figs. 3/4, Table IV.
    CaseStudyBranch sarMachineB;    ///< Figs. 5/6, Table V.
    CaseStudyBranch methods;        ///< Figs. 7/8, Table VI.

    /** Render the Table III style speedup table. */
    std::string renderSpeedupTable() const;
};

/** Run the whole case study. */
CaseStudyResult runCaseStudy(const CaseStudyConfig &config = {});

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_CASE_STUDY_H
