#include "src/core/characterization.h"

#include "src/linalg/standardize.h"
#include "src/util/error.h"

namespace hiermeans {
namespace core {

namespace {

CharacteristicVectors
finalize(const linalg::Matrix &raw,
         const std::vector<std::string> &workload_names,
         const std::vector<std::string> &feature_names,
         const std::vector<std::size_t> &kept_columns)
{
    CharacteristicVectors out;
    out.workloadNames = workload_names;
    out.droppedFeatures = feature_names.size() - kept_columns.size();
    for (std::size_t c : kept_columns)
        out.featureNames.push_back(feature_names[c]);

    const linalg::Matrix filtered = raw.selectColumns(kept_columns);
    out.features = linalg::standardizeColumns(filtered).standardized;
    return out;
}

} // namespace

CharacteristicVectors
characterizeFromSar(const workload::SarPanel &panel)
{
    HM_REQUIRE(!panel.runs.empty(), "characterizeFromSar: empty panel");
    std::vector<std::string> workload_names;
    for (const auto &run : panel.runs)
        workload_names.push_back(run.workload);

    const linalg::Matrix averaged = panel.averaged();
    const linalg::ColumnFilterResult filter =
        linalg::dropConstantColumns(averaged);
    return finalize(averaged, workload_names, panel.counterNames,
                    filter.keptColumns);
}

CharacteristicVectors
characterizeFromMethods(const workload::MethodProfile &profile,
                        const std::vector<std::string> &workload_names)
{
    HM_REQUIRE(workload_names.size() == profile.bits.rows(),
               "characterizeFromMethods: " << workload_names.size()
                                           << " names for "
                                           << profile.bits.rows()
                                           << " workloads");
    const std::vector<std::size_t> kept =
        workload::selectDiscriminatingMethods(profile.bits);
    HM_REQUIRE(!kept.empty(),
               "characterizeFromMethods: no discriminating methods "
               "survive filtering");
    return finalize(profile.bits, workload_names, profile.methodNames,
                    kept);
}

CharacteristicVectors
characterizeFromMica(const workload::MicaFeatures &features,
                     const std::vector<std::string> &workload_names)
{
    HM_REQUIRE(workload_names.size() == features.values.rows(),
               "characterizeFromMica: " << workload_names.size()
                                        << " names for "
                                        << features.values.rows()
                                        << " workloads");
    return characterizeRaw(features.values, workload_names,
                           features.featureNames);
}

CharacteristicVectors
characterizeRaw(const linalg::Matrix &observations,
                const std::vector<std::string> &workload_names,
                const std::vector<std::string> &feature_names)
{
    HM_REQUIRE(workload_names.size() == observations.rows(),
               "characterizeRaw: " << workload_names.size()
                                   << " names for " << observations.rows()
                                   << " rows");
    HM_REQUIRE(feature_names.size() == observations.cols(),
               "characterizeRaw: " << feature_names.size()
                                   << " feature names for "
                                   << observations.cols() << " columns");
    const linalg::ColumnFilterResult filter =
        linalg::dropConstantColumns(observations);
    HM_REQUIRE(!filter.keptColumns.empty(),
               "characterizeRaw: every column is constant");
    return finalize(observations, workload_names, feature_names,
                    filter.keptColumns);
}

} // namespace core
} // namespace hiermeans
