/**
 * @file
 * Workload characterization: raw measurements -> characteristic vectors.
 *
 * Implements the data preparation of Section IV-C for both
 * characterization styles:
 *  - SAR counters: average the 15 samples per counter, discard counters
 *    that do not vary over workloads, z-score standardize each counter;
 *  - Java method utilization: discard methods used by exactly one or by
 *    all workloads, standardize the surviving bit fields.
 */

#ifndef HIERMEANS_CORE_CHARACTERIZATION_H
#define HIERMEANS_CORE_CHARACTERIZATION_H

#include <string>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/workload/method_profile.h"
#include "src/workload/mica_features.h"
#include "src/workload/sar_counters.h"

namespace hiermeans {
namespace core {

/** Standardized characteristic vectors ready for dimension reduction. */
struct CharacteristicVectors
{
    std::vector<std::string> workloadNames; ///< row labels.
    std::vector<std::string> featureNames;  ///< surviving columns.
    linalg::Matrix features;                ///< standardized, rows=workloads.

    /** Number of features that were discarded by filtering. */
    std::size_t droppedFeatures = 0;
};

/**
 * Characterize from a SAR panel: average samples, drop constant
 * counters, standardize.
 */
CharacteristicVectors characterizeFromSar(
    const workload::SarPanel &panel);

/**
 * Characterize from method-utilization bits: drop single-user and
 * universal methods, standardize the bit fields.
 */
CharacteristicVectors characterizeFromMethods(
    const workload::MethodProfile &profile,
    const std::vector<std::string> &workload_names);

/**
 * Characterize from MICA-style microarchitecture-independent features:
 * drop degenerate columns and standardize. Identical on every machine
 * by construction (the features are functions of the program alone).
 */
CharacteristicVectors characterizeFromMica(
    const workload::MicaFeatures &features,
    const std::vector<std::string> &workload_names);

/**
 * Characterize an arbitrary raw observation matrix (rows = workloads):
 * drop zero-variance columns and standardize. The generic entry point
 * for user-supplied measurements.
 */
CharacteristicVectors characterizeRaw(
    const linalg::Matrix &observations,
    const std::vector<std::string> &workload_names,
    const std::vector<std::string> &feature_names);

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_CHARACTERIZATION_H
