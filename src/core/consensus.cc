#include "src/core/consensus.h"

#include <algorithm>

#include "src/util/error.h"

namespace hiermeans {
namespace core {

linalg::Matrix
coAssociation(const std::vector<scoring::Partition> &partitions)
{
    HM_REQUIRE(!partitions.empty(), "coAssociation: no partitions");
    const std::size_t n = partitions.front().size();
    for (const auto &p : partitions) {
        HM_REQUIRE(p.size() == n, "coAssociation: partition sizes "
                                  "differ ("
                                      << p.size() << " vs " << n << ")");
    }

    linalg::Matrix co(n, n, 0.0);
    for (const auto &p : partitions) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i; j < n; ++j) {
                if (p.label(i) == p.label(j)) {
                    co(i, j) += 1.0;
                    co(j, i) = co(i, j);
                }
            }
        }
    }
    const double total = static_cast<double>(partitions.size());
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            co(i, j) /= total;
    }
    return co;
}

ConsensusResult
consensusCluster(const std::vector<scoring::Partition> &partitions,
                 std::size_t k_min, std::size_t k_max)
{
    const linalg::Matrix co = coAssociation(partitions);
    const std::size_t n = co.rows();
    HM_REQUIRE(k_min >= 1 && k_min <= k_max,
               "consensusCluster: invalid k range [" << k_min << ", "
                                                     << k_max << "]");

    // Distance = disagreement fraction.
    linalg::Matrix dist(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            dist(i, j) = i == j ? 0.0 : 1.0 - co(i, j);
        }
    }

    cluster::Dendrogram dendrogram = cluster::agglomerateFromDistances(
        dist, cluster::Linkage::Complete);

    std::size_t pairs = 0, unanimous = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            ++pairs;
            if (co(i, j) == 0.0 || co(i, j) == 1.0)
                ++unanimous;
        }
    }

    ConsensusResult result{
        co, std::move(dendrogram), {},
        pairs > 0 ? static_cast<double>(unanimous) /
                        static_cast<double>(pairs)
                  : 1.0};
    result.partitions = result.dendrogram.partitionSweep(
        k_min, std::min(k_max, n));
    return result;
}

} // namespace core
} // namespace hiermeans
