/**
 * @file
 * Consensus clustering across characterizations.
 *
 * Section V shows the same suite clustering differently depending on
 * the characterization (SAR on A, SAR on B, method utilization) and
 * the paper resolves it by decree — fix one reference distribution.
 * Consensus clustering is the principled alternative: combine the
 * partitions from every available characterization through their
 * co-association matrix (fraction of clusterings in which two
 * workloads share a cluster) and re-cluster that matrix. Pairs that
 * coagulate under *every* view (the SciMark2 kernels) stay together;
 * pairs that only sometimes co-occur get split first.
 */

#ifndef HIERMEANS_CORE_CONSENSUS_H
#define HIERMEANS_CORE_CONSENSUS_H

#include <vector>

#include "src/cluster/agglomerative.h"
#include "src/linalg/matrix.h"
#include "src/scoring/partition.h"

namespace hiermeans {
namespace core {

/**
 * Co-association matrix of @p partitions: entry (i, j) is the fraction
 * of partitions in which workloads i and j share a cluster (diagonal
 * is 1). All partitions must cover the same item count.
 */
linalg::Matrix coAssociation(
    const std::vector<scoring::Partition> &partitions);

/** Result of a consensus run. */
struct ConsensusResult
{
    linalg::Matrix coAssociation;    ///< n x n agreement fractions.
    cluster::Dendrogram dendrogram;  ///< over 1 - coAssociation.
    /** Consensus partitions for k = kMin..kMax. */
    std::vector<scoring::Partition> partitions;

    /**
     * Pairs with full agreement: fraction of workload pairs whose
     * co-association is exactly 0 or 1 (how unanimous the views are).
     */
    double unanimity = 0.0;
};

/**
 * Build the consensus over input partitions (e.g. each
 * characterization's cut at its recommended k, or entire sweeps from
 * several views). Distances are 1 - co-association; clustering uses
 * the paper's complete linkage.
 */
ConsensusResult consensusCluster(
    const std::vector<scoring::Partition> &partitions, std::size_t k_min,
    std::size_t k_max);

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_CONSENSUS_H
