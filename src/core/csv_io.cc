#include "src/core/csv_io.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "src/util/csv.h"
#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace core {

namespace {

/** Strictly parse a double field; throws on garbage. */
double
parseNumber(const std::string &field, const char *context)
{
    const std::string trimmed = str::trim(field);
    HM_REQUIRE(!trimmed.empty(), context << ": empty numeric field");
    char *end = nullptr;
    const double value = std::strtod(trimmed.c_str(), &end);
    HM_REQUIRE(end != nullptr && *end == '\0',
               context << ": `" << field << "` is not a number");
    return value;
}

/** Shared shape validation for both document kinds. */
void
validateShape(const util::CsvDocument &doc, const char *kind)
{
    HM_REQUIRE(doc.rows.size() >= 3,
               kind << ": need a header plus at least two workloads");
    const std::size_t width = doc.rows.front().size();
    HM_REQUIRE(width >= 2, kind << ": need at least one data column");
    for (std::size_t r = 0; r < doc.rows.size(); ++r) {
        HM_REQUIRE(doc.rows[r].size() == width,
                   kind << ": row " << r + 1 << " has "
                        << doc.rows[r].size() << " fields, expected "
                        << width);
    }
}

std::vector<std::string>
workloadColumn(const util::CsvDocument &doc, const char *kind)
{
    std::vector<std::string> names;
    std::set<std::string> seen;
    for (std::size_t r = 1; r < doc.rows.size(); ++r) {
        const std::string name = str::trim(doc.rows[r][0]);
        HM_REQUIRE(!name.empty(), kind << ": row " << r + 1
                                       << " has an empty workload name");
        HM_REQUIRE(seen.insert(name).second,
                   kind << ": duplicate workload `" << name << "`");
        names.push_back(name);
    }
    return names;
}

} // namespace

std::vector<double>
ScoresCsv::machineScores(const std::string &machine) const
{
    auto it = std::find(machines.begin(), machines.end(), machine);
    HM_REQUIRE(it != machines.end(), "unknown machine `" << machine
                                                         << "` in "
                                                            "scores.csv");
    const std::size_t col =
        static_cast<std::size_t>(it - machines.begin());
    std::vector<double> out;
    out.reserve(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w)
        out.push_back(scores(w, col));
    return out;
}

ScoresCsv
parseScoresCsv(const std::string &text)
{
    const util::CsvDocument doc = util::parseCsv(text);
    validateShape(doc, "scores.csv");

    ScoresCsv out;
    for (std::size_t c = 1; c < doc.rows.front().size(); ++c)
        out.machines.push_back(str::trim(doc.rows.front()[c]));
    HM_REQUIRE(out.machines.size() >= 2,
               "scores.csv: need at least two machine columns");
    out.workloads = workloadColumn(doc, "scores.csv");

    out.scores =
        linalg::Matrix(out.workloads.size(), out.machines.size());
    for (std::size_t r = 1; r < doc.rows.size(); ++r) {
        for (std::size_t c = 1; c < doc.rows[r].size(); ++c) {
            const double value =
                parseNumber(doc.rows[r][c], "scores.csv");
            HM_DOMAIN_CHECK(value > 0.0,
                            "scores.csv: score for `"
                                << out.workloads[r - 1]
                                << "` on machine `"
                                << out.machines[c - 1]
                                << "` must be positive, got " << value);
            out.scores(r - 1, c - 1) = value;
        }
    }
    return out;
}

FeaturesCsv
parseFeaturesCsv(const std::string &text)
{
    const util::CsvDocument doc = util::parseCsv(text);
    validateShape(doc, "features.csv");

    FeaturesCsv out;
    for (std::size_t c = 1; c < doc.rows.front().size(); ++c)
        out.features.push_back(str::trim(doc.rows.front()[c]));
    out.workloads = workloadColumn(doc, "features.csv");

    out.values =
        linalg::Matrix(out.workloads.size(), out.features.size());
    for (std::size_t r = 1; r < doc.rows.size(); ++r) {
        for (std::size_t c = 1; c < doc.rows[r].size(); ++c) {
            out.values(r - 1, c - 1) =
                parseNumber(doc.rows[r][c], "features.csv");
        }
    }
    return out;
}

void
requireAlignedWorkloads(const ScoresCsv &scores,
                        const FeaturesCsv &features)
{
    HM_REQUIRE(scores.workloads.size() == features.workloads.size(),
               "scores.csv lists " << scores.workloads.size()
                                   << " workloads, features.csv "
                                   << features.workloads.size());
    for (std::size_t i = 0; i < scores.workloads.size(); ++i) {
        HM_REQUIRE(scores.workloads[i] == features.workloads[i],
                   "workload mismatch at row " << i + 2 << ": `"
                                               << scores.workloads[i]
                                               << "` vs `"
                                               << features.workloads[i]
                                               << "`");
    }
}

std::string
scoreReportToCsv(const scoring::ScoreReport &report,
                 const std::string &label_a, const std::string &label_b)
{
    util::CsvDocument doc;
    doc.rows.push_back({"clusters", label_a, label_b, "ratio",
                        "partition"});
    for (const auto &row : report.rows) {
        doc.rows.push_back({std::to_string(row.clusterCount),
                            str::fixed(row.scoreA, 6),
                            str::fixed(row.scoreB, 6),
                            str::fixed(row.ratio, 6),
                            row.partition.toString()});
    }
    doc.rows.push_back({"plain", str::fixed(report.plainA, 6),
                        str::fixed(report.plainB, 6),
                        str::fixed(report.plainRatio, 6), ""});
    return util::writeCsv(doc);
}

std::string
partitionToCsv(const scoring::Partition &partition,
               const std::vector<std::string> &workloads)
{
    HM_REQUIRE(workloads.size() == partition.size(),
               "partitionToCsv: " << workloads.size() << " names for "
                                  << partition.size() << " items");
    util::CsvDocument doc;
    doc.rows.push_back({"workload", "cluster"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        doc.rows.push_back(
            {workloads[w], std::to_string(partition.label(w))});
    }
    return util::writeCsv(doc);
}

scoring::Partition
parsePartitionCsv(const std::string &text,
                  const std::vector<std::string> &expected_workloads)
{
    const util::CsvDocument doc = util::parseCsv(text);
    HM_REQUIRE(doc.rows.size() >= 2,
               "partition.csv: need a header plus at least one row");
    HM_REQUIRE(doc.rows.front().size() == 2,
               "partition.csv: expected two columns "
               "(workload,cluster)");

    std::map<std::string, std::size_t> cluster_of;
    for (std::size_t r = 1; r < doc.rows.size(); ++r) {
        HM_REQUIRE(doc.rows[r].size() == 2,
                   "partition.csv: row " << r + 1 << " has "
                                         << doc.rows[r].size()
                                         << " fields");
        const std::string name = str::trim(doc.rows[r][0]);
        const std::string cluster_field = str::trim(doc.rows[r][1]);
        char *end = nullptr;
        const long cluster =
            std::strtol(cluster_field.c_str(), &end, 10);
        HM_REQUIRE(end != nullptr && *end == '\0' &&
                       !cluster_field.empty() && cluster >= 0,
                   "partition.csv: cluster id `" << cluster_field
                                                 << "` for `" << name
                                                 << "` is not a "
                                                    "non-negative "
                                                    "integer");
        HM_REQUIRE(cluster_of
                       .emplace(name, static_cast<std::size_t>(cluster))
                       .second,
                   "partition.csv: duplicate workload `" << name
                                                         << "`");
    }

    std::vector<std::size_t> labels;
    labels.reserve(expected_workloads.size());
    for (const std::string &name : expected_workloads) {
        auto it = cluster_of.find(name);
        HM_REQUIRE(it != cluster_of.end(),
                   "partition.csv: workload `" << name
                                               << "` is missing");
        labels.push_back(it->second);
    }
    HM_REQUIRE(cluster_of.size() == expected_workloads.size(),
               "partition.csv: lists " << cluster_of.size()
                                       << " workloads, suite has "
                                       << expected_workloads.size());
    return scoring::Partition::fromLabels(labels);
}

} // namespace core
} // namespace hiermeans
