/**
 * @file
 * CSV interchange for user-supplied benchmark data.
 *
 * Two document shapes, both with a header row and the workload name in
 * the first column:
 *
 *  scores.csv:    workload,<machine-1>,<machine-2>,...
 *                 one positive score per machine per workload;
 *
 *  features.csv:  workload,<feature-1>,<feature-2>,...
 *                 one raw characteristic value per feature.
 *
 * The `hmscore` tool in tools/ wires these into the full pipeline, and
 * the exporters round-trip analysis results back to CSV.
 */

#ifndef HIERMEANS_CORE_CSV_IO_H
#define HIERMEANS_CORE_CSV_IO_H

#include <string>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/scoring/score_report.h"

namespace hiermeans {
namespace core {

/** A parsed scores.csv. */
struct ScoresCsv
{
    std::vector<std::string> workloads;
    std::vector<std::string> machines;
    linalg::Matrix scores; ///< workloads x machines, all positive.

    /** Scores column for a machine by name; throws when unknown. */
    std::vector<double> machineScores(const std::string &machine) const;
};

/** A parsed features.csv. */
struct FeaturesCsv
{
    std::vector<std::string> workloads;
    std::vector<std::string> features;
    linalg::Matrix values; ///< workloads x features.
};

/**
 * Parse a scores document. Throws InvalidArgument on ragged rows,
 * duplicate workloads, non-numeric or non-positive scores, or fewer
 * than two machines/workloads.
 */
ScoresCsv parseScoresCsv(const std::string &text);

/** Parse a features document (same validation, values unrestricted). */
FeaturesCsv parseFeaturesCsv(const std::string &text);

/**
 * Check that the two documents describe the same workloads in the
 * same order; throws InvalidArgument otherwise.
 */
void requireAlignedWorkloads(const ScoresCsv &scores,
                             const FeaturesCsv &features);

/** Serialize a score report to CSV (one row per cluster count). */
std::string scoreReportToCsv(const scoring::ScoreReport &report,
                             const std::string &label_a,
                             const std::string &label_b);

/**
 * Serialize a partition as `workload,cluster` rows — the paper's
 * "reference cluster distribution" (Section V-B.2: "in order to accept
 * the hierarchical means as a standard, a reference cluster
 * distribution on a reference machine should be determined first").
 * A committee publishes this file once; every vendor then scores with
 * `hmscore --partition=FILE` against the same clusters.
 */
std::string partitionToCsv(const scoring::Partition &partition,
                           const std::vector<std::string> &workloads);

/**
 * Parse a reference partition and align it to @p expected_workloads
 * (every expected workload must appear exactly once; order in the
 * file is free). Cluster ids may be arbitrary non-negative integers.
 */
scoring::Partition parsePartitionCsv(
    const std::string &text,
    const std::vector<std::string> &expected_workloads);

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_CSV_IO_H
