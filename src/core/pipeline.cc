#include "src/core/pipeline.h"

#include <algorithm>
#include <cmath>

#include "src/cluster/render.h"
#include "src/obs/trace.h"
#include "src/util/error.h"

namespace hiermeans {
namespace core {

std::string
ClusterAnalysis::renderMap(const std::string &title) const
{
    std::vector<som::Placement> placements;
    placements.reserve(bmus.size());
    for (std::size_t i = 0; i < bmus.size(); ++i)
        placements.push_back(
            som::Placement{vectors.workloadNames[i], bmus[i]});
    return som::renderDistributionMap(map, placements, title);
}

std::string
ClusterAnalysis::renderDendrogram(const std::string &title) const
{
    return cluster::renderTree(dendrogram, vectors.workloadNames, title);
}

void
PipelineConfig::autoSizeSom(std::size_t num_workloads)
{
    HM_REQUIRE(num_workloads >= 1, "autoSizeSom: no workloads");
    const double units =
        5.0 * std::sqrt(static_cast<double>(num_workloads));
    const auto side = static_cast<std::size_t>(
        std::max(3.0, std::ceil(std::sqrt(units))));
    som.rows = side;
    som.cols = side + 1; // slightly rectangular maps orient better.
}

ClusterAnalysis
analyzeClusters(const CharacteristicVectors &vectors,
                const PipelineConfig &config)
{
    const std::size_t n = vectors.features.rows();
    HM_REQUIRE(n >= 2, "analyzeClusters: need at least two workloads");
    HM_REQUIRE(config.kMin >= 1 && config.kMin <= config.kMax,
               "analyzeClusters: invalid k range [" << config.kMin << ", "
                                                    << config.kMax << "]");

    som::SelfOrganizingMap map = [&] {
        obs::ScopedSpan span("pipeline.som_train");
        return som::SelfOrganizingMap::train(vectors.features,
                                             config.som);
    }();
    std::vector<std::size_t> bmus = map.bmuAll(vectors.features);
    linalg::Matrix positions = map.mapAll(vectors.features);

    obs::ScopedSpan clusterSpan("pipeline.cluster");
    cluster::Dendrogram dendrogram =
        cluster::agglomerate(positions, config.linkage, config.metric);

    const std::size_t k_max = std::min(config.kMax, n);
    std::vector<scoring::Partition> partitions =
        dendrogram.partitionSweep(config.kMin, k_max);

    return ClusterAnalysis{vectors,
                           std::move(map),
                           std::move(bmus),
                           std::move(positions),
                           std::move(dendrogram),
                           std::move(partitions)};
}

scoring::ScoreReport
scoreAgainstClusters(const ClusterAnalysis &analysis, stats::MeanKind kind,
                     const std::vector<double> &scores_a,
                     const std::vector<double> &scores_b)
{
    return scoring::buildScoreReport(kind, scores_a, scores_b,
                                     analysis.partitions);
}

} // namespace core
} // namespace hiermeans
