/**
 * @file
 * The end-to-end hierarchical-means pipeline.
 *
 * Characteristic vectors -> SOM (dimension reduction) -> hierarchical
 * clustering on the SOM grid positions -> partitions at k = kMin..kMax
 * -> hierarchical-mean score report. This is the paper's Figure 3-8 +
 * Table IV-VI flow packaged behind one call.
 */

#ifndef HIERMEANS_CORE_PIPELINE_H
#define HIERMEANS_CORE_PIPELINE_H

#include <string>
#include <vector>

#include "src/cluster/agglomerative.h"
#include "src/cluster/dendrogram.h"
#include "src/core/characterization.h"
#include "src/scoring/score_report.h"
#include "src/som/render.h"
#include "src/som/som.h"

namespace hiermeans {
namespace core {

/** Pipeline configuration. */
struct PipelineConfig
{
    som::SomConfig som;
    cluster::Linkage linkage = cluster::Linkage::Complete;
    linalg::Metric metric = linalg::Metric::Euclidean;
    std::size_t kMin = 2;
    std::size_t kMax = 8;

    PipelineConfig()
    {
        // The paper's maps place 13 workloads comfortably on a 10x8
        // grid; modest sizes keep training instant.
        som.rows = 8;
        som.cols = 10;
        som.steps = 4000;
    }

    /**
     * Auto-size the SOM to the workload count (Kohonen's ~5*sqrt(n)
     * unit heuristic). Oversized maps grow flat plateaus around tight
     * workload groups whose members then scatter across the plateau;
     * right-sizing keeps near-identical workloads on shared or
     * adjacent cells. Sets som.rows/som.cols in place.
     */
    void autoSizeSom(std::size_t num_workloads);
};

/** The cluster-analysis half of the pipeline (no scores needed). */
struct ClusterAnalysis
{
    CharacteristicVectors vectors;
    som::SelfOrganizingMap map;
    std::vector<std::size_t> bmus;     ///< BMU per workload.
    linalg::Matrix gridPositions;      ///< n x 2 reduced coordinates.
    cluster::Dendrogram dendrogram;
    std::vector<scoring::Partition> partitions; ///< k = kMin..kMax.

    /** ASCII workload-distribution map (Figures 3/5/7). */
    std::string renderMap(const std::string &title) const;

    /** ASCII dendrogram tree (Figures 4/6/8). */
    std::string renderDendrogram(const std::string &title) const;
};

/**
 * Run SOM + hierarchical clustering over characteristic vectors and
 * derive the partition sweep. kMax is clamped to the workload count.
 */
ClusterAnalysis analyzeClusters(const CharacteristicVectors &vectors,
                                const PipelineConfig &config);

/**
 * Score two machines' per-workload score vectors against the analysis:
 * one report row per partition plus the plain-mean footer (the shape
 * of Tables IV, V and VI).
 */
scoring::ScoreReport scoreAgainstClusters(
    const ClusterAnalysis &analysis, stats::MeanKind kind,
    const std::vector<double> &scores_a,
    const std::vector<double> &scores_b);

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_PIPELINE_H
