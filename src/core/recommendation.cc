#include "src/core/recommendation.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "src/cluster/gap_statistic.h"
#include "src/cluster/validity.h"
#include "src/util/error.h"

namespace hiermeans {
namespace core {

std::string
ClusterCountRecommendation::explain() const
{
    std::ostringstream oss;
    oss << "ratio dampening suggests k = " << fromRatioDampening
        << "; dendrogram gap suggests k = " << fromDendrogramGap
        << "; silhouette suggests k = " << fromSilhouette
        << "; gap statistic suggests k = " << fromGapStatistic
        << "; recommended k = " << recommended;
    return oss.str();
}

ClusterCountRecommendation
recommendClusterCount(const ClusterAnalysis &analysis,
                      const scoring::ScoreReport &report,
                      double ratio_tolerance)
{
    HM_REQUIRE(!report.rows.empty(), "recommendClusterCount: empty report");
    HM_REQUIRE(report.rows.size() == analysis.partitions.size(),
               "recommendClusterCount: report has " << report.rows.size()
                                                    << " rows, analysis "
                                                    << analysis.partitions
                                                           .size()
                                                    << " partitions");

    ClusterCountRecommendation rec;

    // Signal 1: ratio dampening (the paper's primary criterion).
    rec.fromRatioDampening =
        report.rows[report.recommendedRow(ratio_tolerance)].clusterCount;

    // Signal 2: largest relative merge-height gap. Cutting just below
    // the biggest jump leaves the clusters the jump would have glued.
    const auto heights = analysis.dendrogram.heights();
    const std::size_t n = analysis.dendrogram.leafCount();
    double best_gap = -1.0;
    std::size_t best_k = report.rows.front().clusterCount;
    const std::size_t k_lo = report.rows.front().clusterCount;
    const std::size_t k_hi = report.rows.back().clusterCount;
    for (std::size_t k = k_lo; k <= k_hi && k <= n; ++k) {
        // A cut into k clusters undoes the last k-1 merges; the gap
        // between merge (n-k) and merge (n-k-1) measures how natural
        // that cut is.
        if (k >= n)
            break;
        const double upper = heights[n - k];       // first undone merge.
        const double lower = heights[n - k - 1];   // last applied merge.
        const double gap = upper - lower;
        if (gap > best_gap) {
            best_gap = gap;
            best_k = k;
        }
    }
    rec.fromDendrogramGap = best_k;

    // Signal 3: best silhouette over the swept partitions (on the SOM
    // grid positions, where the clustering itself was done). Partitions
    // with k == n (all singletons) are skipped: silhouette is undefined
    // there in any useful sense.
    double best_sil = -2.0;
    std::size_t sil_k = report.rows.front().clusterCount;
    for (const auto &row : report.rows) {
        if (row.partition.clusterCount() >= n ||
            row.partition.clusterCount() < 2) {
            continue;
        }
        const double s = cluster::silhouette(analysis.gridPositions,
                                             row.partition);
        if (s > best_sil) {
            best_sil = s;
            sil_k = row.clusterCount;
        }
    }
    rec.fromSilhouette = sil_k;

    // Signal 4: the gap statistic on the same reduced coordinates.
    cluster::GapConfig gap_config;
    gap_config.kMin = report.rows.front().clusterCount;
    gap_config.kMax = report.rows.back().clusterCount;
    gap_config.seed = 0x6A9;
    rec.fromGapStatistic =
        cluster::gapStatistic(analysis.gridPositions, gap_config)
            .chosenK;

    // Combine: lower median of the four signals — robust to one signal
    // disagreeing and conservative (fewer clusters means stronger
    // redundancy cancellation), mirroring how the paper cross-checks
    // the SOM map against the ratio table.
    std::array<std::size_t, 4> ks = {rec.fromRatioDampening,
                                     rec.fromDendrogramGap,
                                     rec.fromSilhouette,
                                     rec.fromGapStatistic};
    std::sort(ks.begin(), ks.end());
    rec.recommended = ks[1];
    return rec;
}

} // namespace core
} // namespace hiermeans
