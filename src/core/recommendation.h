/**
 * @file
 * Recommended cluster-count selection.
 *
 * Section V-B.1: "we recommend the 6 clusters case as the norm since
 * 1) it aligns well with the SOM analysis results, and 2) since the
 * fluctuation of ratio values tends to dampen around 5, 6 cluster
 * cases." This module operationalizes that judgment with four
 * quantitative signals and a combined recommendation:
 *  - ratio dampening: where consecutive score ratios stop moving;
 *  - dendrogram gap: the cut just below the largest merge-height jump
 *    (a big jump means the merge glued genuinely dissimilar clusters);
 *  - silhouette: the k with the best-separated partition;
 *  - gap statistic: dispersion vs uniform reference data (Tibshirani).
 */

#ifndef HIERMEANS_CORE_RECOMMENDATION_H
#define HIERMEANS_CORE_RECOMMENDATION_H

#include "src/core/pipeline.h"
#include "src/scoring/score_report.h"

namespace hiermeans {
namespace core {

/** The individual signals plus the combined recommendation. */
struct ClusterCountRecommendation
{
    std::size_t fromRatioDampening = 0;
    std::size_t fromDendrogramGap = 0;
    std::size_t fromSilhouette = 0;
    std::size_t fromGapStatistic = 0;
    std::size_t recommended = 0;

    std::string explain() const;
};

/**
 * Recommend a cluster count for @p analysis scored by @p report. The
 * report's rows must come from the analysis' partition sweep.
 *
 * @param ratio_tolerance dampening threshold on consecutive ratios.
 */
ClusterCountRecommendation recommendClusterCount(
    const ClusterAnalysis &analysis, const scoring::ScoreReport &report,
    double ratio_tolerance = 0.02);

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_RECOMMENDATION_H
