#include "src/core/redundancy.h"

#include <algorithm>
#include <map>

#include "src/linalg/distance.h"
#include "src/util/error.h"
#include "src/util/str.h"
#include "src/util/text_table.h"
#include "src/workload/workload_profile.h"

namespace hiermeans {
namespace core {

namespace {

/** True when @p partition contains @p members as one exact cluster. */
bool
hasExactCluster(const scoring::Partition &partition,
                const std::vector<std::size_t> &members)
{
    std::vector<std::size_t> sorted = members;
    std::sort(sorted.begin(), sorted.end());
    for (const auto &group : partition.groups()) {
        if (group == sorted)
            return true;
    }
    return false;
}

} // namespace

std::string
RedundancyReport::render() const
{
    util::TextTable table({"group", "n", "intra", "inter", "coagulation",
                           "connected@", "exclusive", "max shared cell"});
    for (const GroupRedundancy &g : groups) {
        table.addRow({g.name, std::to_string(g.size),
                      str::fixed(g.meanIntraDistance, 2),
                      str::fixed(g.meanInterDistance, 2),
                      str::fixed(g.coagulation, 3),
                      str::fixed(g.connectedAtDistance, 2),
                      g.appearsAsExclusiveCluster ? "yes" : "no",
                      std::to_string(g.maxSharedCell)});
    }
    return table.render();
}

RedundancyReport
analyzeRedundancy(const ClusterAnalysis &analysis,
                  const std::vector<WorkloadGroup> &groups)
{
    const std::size_t n = analysis.gridPositions.rows();
    const linalg::Matrix dist =
        linalg::pairwiseDistances(analysis.gridPositions);

    // Every cut of the dendrogram, for exclusivity checks.
    std::vector<scoring::Partition> all_cuts;
    for (std::size_t k = 1; k <= n; ++k)
        all_cuts.push_back(analysis.dendrogram.cutAtCount(k));

    const auto heights = analysis.dendrogram.heights();
    const double max_height =
        heights.empty() ? 0.0 : *std::max_element(heights.begin(),
                                                  heights.end());

    RedundancyReport report;
    for (const WorkloadGroup &group : groups) {
        HM_REQUIRE(group.members.size() >= 2,
                   "analyzeRedundancy: group `" << group.name
                                                << "` needs >= 2 members");
        for (std::size_t m : group.members) {
            HM_REQUIRE(m < n, "analyzeRedundancy: member " << m
                                                           << " out of "
                                                              "range");
        }

        GroupRedundancy g;
        g.name = group.name;
        g.size = group.members.size();

        std::vector<bool> in_group(n, false);
        for (std::size_t m : group.members)
            in_group[m] = true;

        double intra = 0.0, inter = 0.0;
        std::size_t intra_pairs = 0, inter_pairs = 0;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                if (in_group[i] && in_group[j]) {
                    intra += dist(i, j);
                    ++intra_pairs;
                } else if (in_group[i] != in_group[j]) {
                    inter += dist(i, j);
                    ++inter_pairs;
                }
            }
        }
        g.meanIntraDistance =
            intra_pairs > 0 ? intra / static_cast<double>(intra_pairs)
                            : 0.0;
        g.meanInterDistance =
            inter_pairs > 0 ? inter / static_cast<double>(inter_pairs)
                            : 0.0;
        g.coagulation = g.meanInterDistance > 0.0
                            ? g.meanIntraDistance / g.meanInterDistance
                            : (g.meanIntraDistance > 0.0 ? 1e9 : 0.0);

        // Smallest cut distance at which the whole group shares one
        // cluster (scan cuts from k = n down to 1; the first cut where
        // the group is within a single cluster corresponds to a merge
        // height).
        g.connectedAtDistance = max_height;
        for (std::size_t k = n; k >= 1; --k) {
            const scoring::Partition &cut = all_cuts[k - 1];
            const std::size_t first_label =
                cut.label(group.members.front());
            bool together = true;
            for (std::size_t m : group.members) {
                if (cut.label(m) != first_label) {
                    together = false;
                    break;
                }
            }
            if (together) {
                // The cut into k clusters applies merges 0..n-k-1;
                // the group got connected at the height of the last
                // merge needed, which is bounded by heights[n-k-1]
                // (0 when the group shares a cell and merges at 0).
                g.connectedAtDistance =
                    k == n ? 0.0 : heights[n - k - 1];
                break;
            }
            if (k == 1)
                break;
        }
        g.connectedAtFraction =
            max_height > 0.0 ? g.connectedAtDistance / max_height : 0.0;

        g.appearsAsExclusiveCluster = false;
        for (const auto &cut : all_cuts) {
            if (hasExactCluster(cut, group.members)) {
                g.appearsAsExclusiveCluster = true;
                break;
            }
        }

        std::map<std::size_t, std::size_t> cell_counts;
        for (std::size_t m : group.members)
            ++cell_counts[analysis.bmus[m]];
        g.maxSharedCell = 0;
        for (const auto &[cell, count] : cell_counts)
            g.maxSharedCell = std::max(g.maxSharedCell, count);

        report.groups.push_back(std::move(g));
    }
    return report;
}

std::vector<WorkloadGroup>
paperOriginGroups()
{
    using workload::SuiteOrigin;
    return {
        WorkloadGroup{"SPECjvm98",
                      workload::indicesOfOrigin(SuiteOrigin::SpecJvm98)},
        WorkloadGroup{"SciMark2",
                      workload::indicesOfOrigin(SuiteOrigin::SciMark2)},
        WorkloadGroup{"DaCapo",
                      workload::indicesOfOrigin(SuiteOrigin::DaCapo)},
    };
}

} // namespace core
} // namespace hiermeans
