/**
 * @file
 * Quantitative redundancy analysis of a benchmark suite.
 *
 * The paper's central diagnosis is qualitative: "SciMark2 workloads
 * form a dense cluster ... rendering each other in the adoption set
 * redundant". This module quantifies it, per named workload group
 * (typically the origin suites of a merged benchmark):
 *  - coagulation: ratio of mean intra-group to mean inter-group
 *    distance on the reduced (SOM) coordinates — small means the group
 *    collapsed into one blob;
 *  - exclusivity: whether the group appears as an exact cluster in
 *    some dendrogram cut, and the merging distance at which the group
 *    becomes internally connected;
 *  - cell sharing: how many group members share one SOM cell.
 */

#ifndef HIERMEANS_CORE_REDUNDANCY_H
#define HIERMEANS_CORE_REDUNDANCY_H

#include <string>
#include <vector>

#include "src/core/pipeline.h"

namespace hiermeans {
namespace core {

/** A named group of workload indices (e.g. one origin suite). */
struct WorkloadGroup
{
    std::string name;
    std::vector<std::size_t> members;
};

/** Redundancy diagnosis of one group. */
struct GroupRedundancy
{
    std::string name;
    std::size_t size = 0;

    double meanIntraDistance = 0.0; ///< on the SOM grid coordinates.
    double meanInterDistance = 0.0;
    /** intra / inter; < coagulationThreshold flags a dense blob. */
    double coagulation = 0.0;

    /** Merge height at which the group is internally connected. */
    double connectedAtDistance = 0.0;
    /** Fraction of the dendrogram's total height range that is. */
    double connectedAtFraction = 0.0;

    /** True when some dendrogram cut yields the group as one cluster. */
    bool appearsAsExclusiveCluster = false;

    /** Largest number of group members sharing one SOM cell. */
    std::size_t maxSharedCell = 0;

    bool coagulated(double threshold = 0.5) const
    {
        return coagulation < threshold;
    }
};

/** Whole-suite redundancy report. */
struct RedundancyReport
{
    std::vector<GroupRedundancy> groups;

    /** Render as a text table. */
    std::string render() const;
};

/**
 * Analyze groups over a finished cluster analysis. Each group needs
 * >= 2 members; indices must be valid for the analysis.
 */
RedundancyReport analyzeRedundancy(const ClusterAnalysis &analysis,
                                   const std::vector<WorkloadGroup> &groups);

/** Groups of the paper suite by origin (SPECjvm98, SciMark2, DaCapo). */
std::vector<WorkloadGroup> paperOriginGroups();

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_REDUNDANCY_H
