#include "src/core/report.h"

#include <sstream>

#include "src/util/str.h"

namespace hiermeans {
namespace core {

namespace {

void
renderBranch(std::ostringstream &oss, const CaseStudyBranch &branch,
             const ReportOptions &options)
{
    oss << "## " << branch.label << "\n\n";

    if (options.includeMaps) {
        oss << "### Workload distribution (SOM)\n\n```\n"
            << branch.analysis.renderMap(branch.label) << "```\n\n";
    }
    if (options.includeDendrograms) {
        oss << "### Cluster hierarchy\n\n```\n"
            << branch.analysis.renderDendrogram(branch.label)
            << "```\n\n";
    }

    oss << "### Hierarchical-mean scores\n\n```\n"
        << branch.report.render("A", "B") << "```\n\n";
    oss << "**Recommendation.** " << branch.recommendation.explain()
        << ".\n\n";

    if (options.includeRedundancy) {
        oss << "### Redundancy by origin suite\n\n```\n"
            << branch.redundancy.render() << "```\n\n";
        for (const auto &group : branch.redundancy.groups) {
            if (group.coagulated()) {
                oss << "- **" << group.name << "** coagulates "
                    << "(intra/inter distance ratio "
                    << str::fixed(group.coagulation, 3)
                    << (group.appearsAsExclusiveCluster
                            ? ", appears as an exclusive cluster"
                            : "")
                    << "): its members are mutually redundant.\n";
            }
        }
        oss << "\n";
    }
}

} // namespace

std::string
renderMarkdownReport(const CaseStudyResult &result,
                     const ReportOptions &options)
{
    std::ostringstream oss;
    oss << "# " << options.title << "\n\n";
    oss << "Scoring method: hierarchical means over SOM + "
           "complete-linkage cluster analysis\n\n";

    oss << "## Per-workload speedups (Table III form)\n\n```\n"
        << result.renderSpeedupTable() << "```\n\n";

    renderBranch(oss, result.sarMachineA, options);
    renderBranch(oss, result.sarMachineB, options);
    renderBranch(oss, result.methods, options);

    oss << "## Conclusion\n\n";
    bool scimark_always_coagulates = true;
    for (const CaseStudyBranch *branch :
         {&result.sarMachineA, &result.sarMachineB, &result.methods}) {
        bool found = false;
        for (const auto &group : branch->redundancy.groups) {
            if (group.name == "SciMark2" && group.coagulated())
                found = true;
        }
        scimark_always_coagulates &= found;
    }
    if (scimark_always_coagulates) {
        oss << "SciMark2 coagulates into a dense cluster under every "
               "characterization, confirming the paper's finding: its "
               "five kernels are mutually redundant and a plain mean "
               "lets them vote five times. The hierarchical means "
               "above neutralize that redundancy.\n";
    } else {
        oss << "The characterizations disagree on SciMark2's "
               "redundancy; inspect the per-branch redundancy tables "
               "before fixing a reference cluster distribution.\n";
    }
    return oss.str();
}

} // namespace core
} // namespace hiermeans
