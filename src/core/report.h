/**
 * @file
 * Markdown report generation for a full case-study run.
 *
 * Produces a single self-contained document with the speedup table,
 * all three characterization branches (map, dendrogram, score table,
 * recommendation, redundancy diagnosis) and a conclusion section —
 * the artifact a benchmark committee would circulate.
 */

#ifndef HIERMEANS_CORE_REPORT_H
#define HIERMEANS_CORE_REPORT_H

#include <string>

#include "src/core/case_study.h"

namespace hiermeans {
namespace core {

/** Options for the markdown report. */
struct ReportOptions
{
    std::string title = "Hierarchical Means Case Study";
    bool includeMaps = true;
    bool includeDendrograms = true;
    bool includeRedundancy = true;
};

/** Render the whole case study as a markdown document. */
std::string renderMarkdownReport(const CaseStudyResult &result,
                                 const ReportOptions &options = {});

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_REPORT_H
