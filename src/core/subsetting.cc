#include "src/core/subsetting.h"

#include <cmath>
#include <limits>

#include "src/linalg/distance.h"
#include "src/scoring/hierarchical_mean.h"
#include "src/util/error.h"

namespace hiermeans {
namespace core {

std::vector<std::string>
SuiteSubset::names(const std::vector<std::string> &all_names) const
{
    std::vector<std::string> out;
    out.reserve(representatives.size());
    for (std::size_t r : representatives) {
        HM_REQUIRE(r < all_names.size(),
                   "SuiteSubset::names: representative " << r
                                                         << " out of "
                                                            "range");
        out.push_back(all_names[r]);
    }
    return out;
}

SuiteSubset
subsetSuite(const scoring::Partition &partition,
            const linalg::Matrix &positions,
            const std::vector<double> &scores, RepresentativeRule rule)
{
    HM_REQUIRE(positions.rows() == partition.size(),
               "subsetSuite: " << positions.rows() << " positions for "
                               << partition.size() << " workloads");
    HM_REQUIRE(scores.size() == partition.size(),
               "subsetSuite: " << scores.size() << " scores for "
                               << partition.size() << " workloads");

    SuiteSubset out;
    out.partition = partition;
    for (const auto &members : partition.groups()) {
        std::size_t best = members.front();
        if (members.size() > 1 && rule == RepresentativeRule::Medoid) {
            double best_cost = std::numeric_limits<double>::infinity();
            for (std::size_t candidate : members) {
                double cost = 0.0;
                for (std::size_t other : members) {
                    cost += linalg::euclidean(positions.row(candidate),
                                              positions.row(other));
                }
                if (cost < best_cost) {
                    best_cost = cost;
                    best = candidate;
                }
            }
        } else if (members.size() > 1 &&
                   rule == RepresentativeRule::ScoreCentral) {
            std::vector<double> cluster_scores;
            for (std::size_t m : members)
                cluster_scores.push_back(scores[m]);
            const double center = hiermeans::stats::geometricMean(
                cluster_scores);
            double best_gap = std::numeric_limits<double>::infinity();
            for (std::size_t candidate : members) {
                const double gap = std::abs(scores[candidate] - center);
                if (gap < best_gap) {
                    best_gap = gap;
                    best = candidate;
                }
            }
        }
        out.representatives.push_back(best);
    }
    return out;
}

SubsetFidelity
evaluateSubset(const SuiteSubset &subset, stats::MeanKind kind,
               const std::vector<double> &scores)
{
    HM_REQUIRE(scores.size() == subset.partition.size(),
               "evaluateSubset: " << scores.size() << " scores for "
                                  << subset.partition.size()
                                  << " workloads");
    SubsetFidelity f;
    f.fullPlainMean = stats::mean(kind, scores);
    f.fullHierarchicalMean =
        scoring::hierarchicalMean(kind, scores, subset.partition);

    std::vector<double> subset_scores;
    subset_scores.reserve(subset.representatives.size());
    for (std::size_t r : subset.representatives)
        subset_scores.push_back(scores[r]);
    f.subsetMean = stats::mean(kind, subset_scores);

    f.errorVsHierarchical =
        std::abs(f.subsetMean / f.fullHierarchicalMean - 1.0);
    f.errorVsPlain = std::abs(f.subsetMean / f.fullPlainMean - 1.0);
    return f;
}

} // namespace core
} // namespace hiermeans
