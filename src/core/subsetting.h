/**
 * @file
 * Benchmark suite subsetting from cluster structure.
 *
 * Related work the paper builds on (Vandierendonck & De Bosschere;
 * Yi et al.) uses cluster information to *subset* a suite: keep one
 * representative per cluster and drop the rest. hiermeans supports the
 * complementary workflow — instead of reweighting via hierarchical
 * means, shrink the suite — and quantifies the fidelity of the subset:
 * how closely the subset's plain mean tracks the full suite's
 * hierarchical mean (they coincide exactly when every representative
 * equals its cluster's inner mean).
 */

#ifndef HIERMEANS_CORE_SUBSETTING_H
#define HIERMEANS_CORE_SUBSETTING_H

#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/scoring/partition.h"
#include "src/stats/means.h"

namespace hiermeans {
namespace core {

/** How the representative of a cluster is chosen. */
enum class RepresentativeRule
{
    /** Medoid: member with minimum total distance to cluster-mates. */
    Medoid,
    /** Member whose score is closest to the cluster's inner mean. */
    ScoreCentral,
};

/** A subsetting decision. */
struct SuiteSubset
{
    /** Chosen representative workload index per cluster. */
    std::vector<std::size_t> representatives;
    /** The partition the subset was derived from. */
    scoring::Partition partition = scoring::Partition::single(1);

    /** Names of the representatives, given the full name list. */
    std::vector<std::string>
    names(const std::vector<std::string> &all_names) const;
};

/**
 * Pick one representative per cluster of @p partition.
 *
 * @param positions n x d reduced coordinates (used by Medoid).
 * @param scores per-workload scores (used by ScoreCentral; pass the
 *        machine whose fidelity matters most, or any machine for
 *        Medoid).
 */
SuiteSubset subsetSuite(const scoring::Partition &partition,
                        const linalg::Matrix &positions,
                        const std::vector<double> &scores,
                        RepresentativeRule rule =
                            RepresentativeRule::Medoid);

/** Fidelity of a subset on one machine's scores. */
struct SubsetFidelity
{
    double fullPlainMean = 0.0;        ///< plain mean of all workloads.
    double fullHierarchicalMean = 0.0; ///< hierarchical mean, full suite.
    double subsetMean = 0.0;           ///< plain mean of representatives.
    /** |subset / hierarchical - 1|: the subsetting error vs the
     * redundancy-corrected score. */
    double errorVsHierarchical = 0.0;
    /** |subset / plain - 1|: error vs the naive full-suite score. */
    double errorVsPlain = 0.0;
};

/** Evaluate @p subset against @p scores under @p kind. */
SubsetFidelity evaluateSubset(const SuiteSubset &subset,
                              stats::MeanKind kind,
                              const std::vector<double> &scores);

} // namespace core
} // namespace hiermeans

#endif // HIERMEANS_CORE_SUBSETTING_H
