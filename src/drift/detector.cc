#include "src/drift/detector.h"

#include "src/drift/online_som.h"
#include "src/scoring/partition.h"
#include "src/util/error.h"

namespace hiermeans {
namespace drift {

namespace {

/** QE ratio cap: a dead (near-zero) baseline with a live window
 *  error is "infinitely" inflated; this keeps the metric finite. */
constexpr double kQeRatioCap = 1e6;
constexpr double kTinyQe = 1e-12;

} // namespace

const char *
driftStateName(DriftState state)
{
    switch (state) {
    case DriftState::Fresh:
        return "fresh";
    case DriftState::Drifting:
        return "drifting";
    case DriftState::Stale:
        return "stale";
    }
    return "unknown";
}

DriftState
parseDriftState(const std::string &name)
{
    if (name == "fresh")
        return DriftState::Fresh;
    if (name == "drifting")
        return DriftState::Drifting;
    if (name == "stale")
        return DriftState::Stale;
    throw InvalidArgument("unknown drift state `" + name +
                          "` (fresh|drifting|stale)");
}

const char *
driftSeverityName(DriftSeverity severity)
{
    switch (severity) {
    case DriftSeverity::Calm:
        return "calm";
    case DriftSeverity::Mild:
        return "mild";
    case DriftSeverity::Severe:
        return "severe";
    }
    return "unknown";
}

DriftSeverity
classifySeverity(const DriftMetrics &metrics,
                 const DriftThresholds &thresholds)
{
    if (metrics.churn >= thresholds.churnStale ||
        metrics.stability <= thresholds.stabilityStale ||
        metrics.qeRatio >= thresholds.qeStale)
        return DriftSeverity::Severe;
    if (metrics.churn >= thresholds.churnDrifting ||
        metrics.stability <= thresholds.stabilityDrifting ||
        metrics.qeRatio >= thresholds.qeDrifting)
        return DriftSeverity::Mild;
    return DriftSeverity::Calm;
}

DriftMetrics
computeDriftMetrics(const linalg::Matrix &published,
                    const linalg::Matrix &online,
                    const std::vector<linalg::Vector> &window,
                    double publishedQe)
{
    DriftMetrics metrics;
    metrics.window = window.size();
    if (window.empty())
        return metrics;

    const std::vector<std::size_t> labels_published =
        assignAll(published, window);
    const std::vector<std::size_t> labels_online =
        assignAll(online, window);

    std::size_t moved = 0;
    for (std::size_t i = 0; i < window.size(); ++i) {
        if (labels_published[i] != labels_online[i])
            ++moved;
    }
    metrics.churn =
        static_cast<double>(moved) / static_cast<double>(window.size());

    if (moved == 0) {
        metrics.stability = 1.0;
    } else {
        metrics.stability = scoring::adjustedRandIndex(
            scoring::Partition::fromLabels(labels_published),
            scoring::Partition::fromLabels(labels_online));
    }

    const double window_qe = quantizationError(published, window);
    if (publishedQe <= kTinyQe)
        metrics.qeRatio = window_qe <= kTinyQe ? 1.0 : kQeRatioCap;
    else
        metrics.qeRatio =
            std::min(window_qe / publishedQe, kQeRatioCap);
    return metrics;
}

DriftDetector::DriftDetector(DriftThresholds thresholds)
    : thresholds_(thresholds)
{
    HM_REQUIRE(thresholds.churnStale >= thresholds.churnDrifting,
               "DriftThresholds: churnStale below churnDrifting");
    HM_REQUIRE(thresholds.stabilityStale <=
                   thresholds.stabilityDrifting,
               "DriftThresholds: stabilityStale above "
               "stabilityDrifting");
    HM_REQUIRE(thresholds.qeStale >= thresholds.qeDrifting,
               "DriftThresholds: qeStale below qeDrifting");
    HM_REQUIRE(thresholds.calmTicks >= 1,
               "DriftThresholds: calmTicks must be >= 1");
}

DriftState
DriftDetector::tick(const DriftMetrics &metrics)
{
    ++ticks_;
    switch (classifySeverity(metrics, thresholds_)) {
    case DriftSeverity::Severe:
        // A severe window is decisive evidence; no hysteresis on the
        // way up — the published mean is misleading *now*.
        state_ = DriftState::Stale;
        calmStreak_ = 0;
        break;
    case DriftSeverity::Mild:
        calmStreak_ = 0;
        if (state_ == DriftState::Fresh)
            state_ = DriftState::Drifting;
        break;
    case DriftSeverity::Calm:
        if (state_ == DriftState::Fresh)
            break;
        if (++calmStreak_ >= thresholds_.calmTicks) {
            state_ = state_ == DriftState::Stale ? DriftState::Drifting
                                                 : DriftState::Fresh;
            calmStreak_ = 0;
        }
        break;
    }
    return state_;
}

void
DriftDetector::restore(DriftState state, std::uint32_t calmStreak,
                       std::uint64_t ticks)
{
    state_ = state;
    calmStreak_ = calmStreak;
    ticks_ = ticks;
}

} // namespace drift
} // namespace hiermeans
