/**
 * @file
 * Drift metrics and the hysteresis state machine.
 *
 * A suite's drift is scored by re-clustering the current observation
 * window twice — once under the frozen *published* codebook (the one
 * whose hierarchical mean clients are consuming) and once under the
 * live online codebook — and comparing the two partitions:
 *
 *   churn      fraction of window observations whose cluster
 *              assignment differs between the two codebooks;
 *   stability  MICA-style adjusted Rand index between the two
 *              partitions (1 = identical grouping, the machinery of
 *              bench/ablation_mica_stability);
 *   qeRatio    quantization error of the window under the published
 *              codebook, relative to the error measured when that
 *              codebook was published — a mean shift inflates this
 *              within a single window, before churn can accumulate.
 *
 * The detector classifies each tick's metrics as calm / mild / severe
 * against two threshold rungs and advances a hysteresis machine over
 * fresh -> drifting -> stale: severe jumps straight to stale, mild
 * degrades fresh to drifting, and a configurable streak of calm
 * ticks steps the state back down one level at a time — so a single
 * noisy window can neither publish a panic nor clear a real drift.
 */

#ifndef HIERMEANS_DRIFT_DETECTOR_H
#define HIERMEANS_DRIFT_DETECTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"

namespace hiermeans {
namespace drift {

/** Staleness of a suite's published hierarchical mean. Values are
 *  persisted (DriftUpdated records) — stable and append-only. */
enum class DriftState : std::uint8_t
{
    Fresh = 0,    ///< published mean tracks the stream.
    Drifting = 1, ///< sustained mild divergence; watch it.
    Stale = 2     ///< published mean no longer describes the stream.
};

/** Wire/display name of a state ("fresh" | "drifting" | "stale"). */
const char *driftStateName(DriftState state);

/** Parse a state name; throws InvalidArgument on unknown names. */
DriftState parseDriftState(const std::string &name);

/** One tick's drift measurements. */
struct DriftMetrics
{
    double churn = 0.0;     ///< assignment-churn fraction, [0, 1].
    double stability = 1.0; ///< adjusted Rand index, <= 1.
    double qeRatio = 1.0;   ///< window QE / published baseline QE.
    std::size_t window = 0; ///< observations scored this tick.
};

/** Per-tick severity (the input of the hysteresis machine). */
enum class DriftSeverity
{
    Calm,  ///< all metrics inside the drifting thresholds.
    Mild,  ///< at least one metric past its drifting threshold.
    Severe ///< at least one metric past its stale threshold.
};

const char *driftSeverityName(DriftSeverity severity);

/** Two-rung thresholds; the stale rung must be at least as extreme
 *  as the drifting rung. */
struct DriftThresholds
{
    double churnDrifting = 0.25;
    double churnStale = 0.55;
    double stabilityDrifting = 0.7; ///< ARI below this is mild.
    double stabilityStale = 0.3;    ///< ARI below this is severe.
    double qeDrifting = 1.6;        ///< QE ratio above this is mild.
    double qeStale = 2.5;           ///< QE ratio above this is severe.

    /** Consecutive calm ticks required per step-down (stale ->
     *  drifting -> fresh). */
    std::uint32_t calmTicks = 2;
};

/** Severity of @p metrics against @p thresholds. */
DriftSeverity classifySeverity(const DriftMetrics &metrics,
                               const DriftThresholds &thresholds);

/**
 * Score the current @p window under the frozen @p published codebook
 * and the live @p online codebook. @p publishedQe is the baseline
 * quantization error measured at publish time; a near-zero baseline
 * treats any nonzero window error as maximally inflated.
 */
DriftMetrics computeDriftMetrics(const linalg::Matrix &published,
                                 const linalg::Matrix &online,
                                 const std::vector<linalg::Vector> &window,
                                 double publishedQe);

/** The hysteresis state machine. */
class DriftDetector
{
  public:
    explicit DriftDetector(DriftThresholds thresholds = {});

    /** Fold one tick's metrics in; returns the new state. */
    DriftState tick(const DriftMetrics &metrics);

    DriftState state() const { return state_; }
    std::uint32_t calmStreak() const { return calmStreak_; }
    std::uint64_t ticks() const { return ticks_; }
    const DriftThresholds &thresholds() const { return thresholds_; }

    /** Reinstall persisted machine state (crash recovery). */
    void restore(DriftState state, std::uint32_t calmStreak,
                 std::uint64_t ticks);

  private:
    DriftThresholds thresholds_;
    DriftState state_ = DriftState::Fresh;
    std::uint32_t calmStreak_ = 0;
    std::uint64_t ticks_ = 0;
};

} // namespace drift
} // namespace hiermeans

#endif // HIERMEANS_DRIFT_DETECTOR_H
