#include "src/drift/monitor.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"
#include "src/scoring/hierarchical_mean.h"
#include "src/scoring/partition.h"
#include "src/util/error.h"

namespace hiermeans {
namespace drift {

namespace {

/** Geometric/harmonic means reject non-positive scores; a stored
 *  ratio of zero (possible for degraded runs) is clamped up to this
 *  floor rather than poisoning the whole published mean. */
constexpr double kRatioFloor = 1e-12;

linalg::Vector
observationOf(const store::HistoryEntry &entry)
{
    return linalg::Vector{entry.ratio, entry.plainRatio};
}

} // namespace

DriftMonitor::DriftMonitor(Config config, store::StateStore *store)
    : config_(config), store_(store)
{
    HM_REQUIRE(store_ != nullptr, "DriftMonitor requires a store");
    HM_REQUIRE(config_.window >= 2,
               "drift window must hold at least 2 observations");
    HM_REQUIRE(config_.minWindow >= 2 &&
                   config_.minWindow <= config_.window,
               "drift minWindow must be in [2, window]");
}

DriftMonitor::SuiteDrift &
DriftMonitor::machineLocked(const std::string &name)
{
    auto it = suites_.find(name);
    if (it == suites_.end()) {
        SuiteDrift machine;
        machine.online = std::make_unique<OnlineSom>(kObservationDim,
                                                     config_.som);
        machine.detector = DriftDetector(config_.thresholds);
        it = suites_.emplace(name, std::move(machine)).first;
    }
    return it->second;
}

void
DriftMonitor::absorbLocked(SuiteDrift &suite,
                           const std::vector<store::HistoryEntry> &history)
{
    for (const store::HistoryEntry &entry : history) {
        if (entry.sequence <= suite.lastSeen)
            continue;
        suite.online->observe(observationOf(entry));
        suite.lastSeen = entry.sequence;
    }
}

void
DriftMonitor::absorb(const std::string &suite)
{
    obs::ScopedSpan span("drift.absorb");
    const std::vector<store::HistoryEntry> history =
        store_->history(suite);
    std::lock_guard<std::mutex> lock(mutex_);
    absorbLocked(machineLocked(suite), history);
}

void
DriftMonitor::publishLocked(SuiteDrift &suite,
                            const std::vector<linalg::Vector> &window,
                            const std::vector<double> &ratios)
{
    suite.published = suite.online->codebook();
    suite.publishedQe = quantizationError(suite.published, window);

    // The published single number: the hierarchical geometric mean of
    // the window's ratios under the clustering the codebook induces.
    std::vector<double> clamped = ratios;
    for (double &value : clamped)
        value = std::max(value, kRatioFloor);
    const scoring::Partition partition =
        scoring::Partition::fromLabels(assignAll(suite.published, window));
    suite.publishedMean =
        scoring::hierarchicalGeometricMean(clamped, partition);
}

void
DriftMonitor::persistLocked(const std::string &name,
                            const SuiteDrift &suite)
{
    store::DriftStateRecord record;
    record.suite = name;
    record.state = static_cast<std::uint8_t>(suite.detector.state());
    record.ticks = suite.ticks;
    record.observations = suite.online->observed();
    record.calmStreak = suite.detector.calmStreak();
    record.lastSeenSequence = suite.lastSeen;
    record.churn = suite.lastMetrics.churn;
    record.stability = suite.lastMetrics.stability;
    record.qeRatio = suite.lastMetrics.qeRatio;
    record.metricWindow =
        static_cast<std::uint32_t>(suite.lastMetrics.window);
    record.publishedQe = suite.publishedQe;
    record.publishedMean = suite.publishedMean;
    record.somRows = static_cast<std::uint32_t>(config_.som.rows);
    record.somCols = static_cast<std::uint32_t>(config_.som.cols);
    record.dim = static_cast<std::uint32_t>(kObservationDim);
    record.onlineWeights = suite.online->exportWeights();
    if (suite.published.rows() > 0) {
        record.publishedWeights.reserve(suite.published.rows() *
                                        suite.published.cols());
        for (std::size_t r = 0; r < suite.published.rows(); ++r)
            for (std::size_t c = 0; c < suite.published.cols(); ++c)
                record.publishedWeights.push_back(suite.published(r, c));
    }
    store_->recordDriftState(std::move(record));
}

DriftMonitor::Report
DriftMonitor::reportLocked(const std::string &name,
                           const SuiteDrift &suite) const
{
    Report report;
    report.suite = name;
    report.state = suite.detector.state();
    report.metrics = suite.lastMetrics;
    report.published = suite.published.rows() > 0;
    report.publishedMean = suite.publishedMean;
    report.publishedQe = suite.publishedQe;
    report.ticks = suite.ticks;
    report.observations = suite.online->observed();
    report.calmStreak = suite.detector.calmStreak();
    report.lastSequence = suite.lastSeen;
    return report;
}

DriftMonitor::Report
DriftMonitor::tick(const std::string &name)
{
    obs::ScopedSpan span("drift.tick");
    const std::vector<store::HistoryEntry> history =
        store_->history(name);

    std::lock_guard<std::mutex> lock(mutex_);
    SuiteDrift &suite = machineLocked(name);
    absorbLocked(suite, history);
    ++suite.ticks;

    // The re-cluster window: the newest `window` history entries.
    const std::size_t take = std::min(config_.window, history.size());
    std::vector<linalg::Vector> window;
    std::vector<double> ratios;
    window.reserve(take);
    ratios.reserve(take);
    for (std::size_t i = history.size() - take; i < history.size(); ++i) {
        window.push_back(observationOf(history[i]));
        ratios.push_back(history[i].ratio);
    }

    if (suite.published.rows() == 0) {
        // Nothing published yet: publish the first clustering once
        // the map is seeded and the window is statistically worth
        // quoting. Until then the suite simply reports Fresh.
        if (suite.online->ready() && window.size() >= config_.minWindow)
            publishLocked(suite, window, ratios);
    } else if (!window.empty()) {
        suite.lastMetrics = computeDriftMetrics(
            suite.published, suite.online->codebook(), window,
            suite.publishedQe);
        const DriftState state = suite.detector.tick(suite.lastMetrics);
        // While the stream still matches the published clustering,
        // let the published number follow it. Once drifting, freeze
        // the baseline so divergence stays measurable.
        if (state == DriftState::Fresh)
            publishLocked(suite, window, ratios);
    }

    persistLocked(name, suite);
    return reportLocked(name, suite);
}

std::vector<DriftMonitor::Report>
DriftMonitor::tickAll()
{
    std::vector<std::string> names;
    for (const store::Suite &suite : store_->suites())
        names.push_back(suite.name);
    {
        // Suites with history but no registry entry (ad-hoc rings are
        // keyed "", which we skip) plus machines that already exist.
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, machine] : suites_)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());

    std::vector<Report> reports;
    reports.reserve(names.size());
    for (const std::string &name : names)
        reports.push_back(tick(name));
    return reports;
}

std::optional<DriftMonitor::Report>
DriftMonitor::report(const std::string &suite) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = suites_.find(suite);
    if (it == suites_.end())
        return std::nullopt;
    return reportLocked(suite, it->second);
}

std::vector<DriftMonitor::Report>
DriftMonitor::reports() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Report> all;
    all.reserve(suites_.size());
    for (const auto &[name, machine] : suites_)
        all.push_back(reportLocked(name, machine));
    return all;
}

std::size_t
DriftMonitor::warmStart()
{
    const std::vector<store::DriftStateRecord> records =
        store_->driftStates();
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t restored = 0;
    for (const store::DriftStateRecord &record : records) {
        if (record.dim != kObservationDim ||
            record.somRows != config_.som.rows ||
            record.somCols != config_.som.cols)
            continue; // shape changed across restarts: start fresh.
        SuiteDrift machine;
        machine.online = std::make_unique<OnlineSom>(kObservationDim,
                                                     config_.som);
        machine.online->restore(record.onlineWeights,
                                record.observations);
        if (!record.publishedWeights.empty()) {
            machine.published =
                linalg::Matrix(record.somRows * record.somCols,
                               record.dim, 0.0);
            std::size_t k = 0;
            for (std::size_t r = 0; r < machine.published.rows(); ++r)
                for (std::size_t c = 0; c < machine.published.cols();
                     ++c)
                    machine.published(r, c) =
                        record.publishedWeights[k++];
        }
        machine.publishedQe = record.publishedQe;
        machine.publishedMean = record.publishedMean;
        machine.detector = DriftDetector(config_.thresholds);
        machine.detector.restore(static_cast<DriftState>(record.state),
                                 record.calmStreak, record.ticks);
        machine.lastMetrics.churn = record.churn;
        machine.lastMetrics.stability = record.stability;
        machine.lastMetrics.qeRatio = record.qeRatio;
        machine.lastMetrics.window = record.metricWindow;
        machine.lastSeen = record.lastSeenSequence;
        machine.ticks = record.ticks;
        suites_[record.suite] = std::move(machine);
        ++restored;
    }
    return restored;
}

} // namespace drift
} // namespace hiermeans
