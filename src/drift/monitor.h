/**
 * @file
 * DriftMonitor: per-suite streaming re-clustering over the store's
 * score-history rings.
 *
 * One monitor per daemon. For every registered suite it keeps
 *
 *   - an OnlineSom over the suite's observation stream (each history
 *     entry contributes the vector (ratio, plainRatio));
 *   - the *published* clustering: a frozen copy of the codebook, its
 *     baseline quantization error, and the hierarchical geometric
 *     mean of the window it was published from — the single number
 *     clients should be quoting;
 *   - a DriftDetector classifying the suite fresh|drifting|stale.
 *
 * tick() is one re-cluster period: fold any new history entries into
 * the online map, re-cluster the current window, score drift against
 * the published clustering, advance the hysteresis machine, and —
 * while the suite is Fresh — republish (codebook, baseline and mean
 * follow the stream). A Drifting/Stale suite keeps its published
 * clustering frozen so the divergence stays measurable and the
 * staleness flag stays honest.
 *
 * Every tick persists the whole per-suite machine as one DriftUpdated
 * WAL record (best-effort, like score recording): recovery restores
 * the exact codebooks, counters and hysteresis position, so a
 * SIGKILLed daemon resumes drift-watching bit-identically — and mesh
 * replication ships drift state to followers with no extra code.
 */

#ifndef HIERMEANS_DRIFT_MONITOR_H
#define HIERMEANS_DRIFT_MONITOR_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/drift/detector.h"
#include "src/drift/online_som.h"
#include "src/store/store.h"

namespace hiermeans {
namespace drift {

/** Observation dimensionality: (ratio, plainRatio) per score. */
inline constexpr std::size_t kObservationDim = 2;

/** Watches every suite's history ring for drift. Thread-safe. */
class DriftMonitor
{
  public:
    struct Config
    {
        /** Newest history entries re-clustered per tick. */
        std::size_t window = 64;

        /** Observations required before the first publish. */
        std::size_t minWindow = 8;

        DriftThresholds thresholds;

        /** Streaming-map shape. Observations are 2-D, so a small
         *  grid is plenty; 2x2 keeps assignment churn meaningful on
         *  the default 8-observation minimum window. */
        OnlineSomConfig som{.rows = 2, .cols = 2, .decaySteps = 200};
    };

    /** One suite's drift report (the /v1 drift payload). */
    struct Report
    {
        std::string suite;
        DriftState state = DriftState::Fresh;
        DriftMetrics metrics;
        bool published = false;    ///< a baseline clustering exists.
        double publishedMean = 0.0; ///< HGM at last publish; 0 until.
        double publishedQe = 0.0;
        std::uint64_t ticks = 0;
        std::uint64_t observations = 0;
        std::uint32_t calmStreak = 0;
        std::uint64_t lastSequence = 0; ///< history watermark.
    };

    /** @p store must outlive the monitor and be open. */
    DriftMonitor(Config config, store::StateStore *store);

    const Config &config() const { return config_; }

    /**
     * Fold any history entries newer than the suite's watermark into
     * its online codebook — the per-observation update, without a
     * detector tick. Called after each /observe append.
     */
    void absorb(const std::string &suite);

    /** One re-cluster period for @p suite (fold, score, advance the
     *  machine, persist). Creates the suite's machine on first use. */
    Report tick(const std::string &suite);

    /** tick() every registered suite; reports in suite-name order. */
    std::vector<Report> tickAll();

    /** Current report without advancing anything; nullopt when the
     *  suite has no drift machine yet. */
    std::optional<Report> report(const std::string &suite) const;

    /** Reports for every tracked suite, suite-name order. */
    std::vector<Report> reports() const;

    /** Rebuild per-suite machines from persisted DriftUpdated
     *  records (boot warm start). Returns machines restored. */
    std::size_t warmStart();

  private:
    struct SuiteDrift
    {
        std::unique_ptr<OnlineSom> online;
        linalg::Matrix published; ///< empty until first publish.
        double publishedQe = 0.0;
        double publishedMean = 0.0;
        DriftDetector detector;
        DriftMetrics lastMetrics;
        std::uint64_t lastSeen = 0; ///< history-sequence watermark.
        std::uint64_t ticks = 0;
    };

    /** Fold history entries past the watermark. Requires mutex_. */
    void absorbLocked(SuiteDrift &suite,
                      const std::vector<store::HistoryEntry> &history);

    /** Freeze the online codebook as the published clustering and
     *  recompute baseline QE + hierarchical mean over @p window. */
    void publishLocked(SuiteDrift &suite,
                       const std::vector<linalg::Vector> &window,
                       const std::vector<double> &ratios);

    /** Persist the machine as a DriftUpdated record (best-effort). */
    void persistLocked(const std::string &name,
                       const SuiteDrift &suite);

    Report reportLocked(const std::string &name,
                        const SuiteDrift &suite) const;

    SuiteDrift &machineLocked(const std::string &name);

    Config config_;
    store::StateStore *store_;
    mutable std::mutex mutex_;
    std::map<std::string, SuiteDrift> suites_;
};

} // namespace drift
} // namespace hiermeans

#endif // HIERMEANS_DRIFT_MONITOR_H
