#include "src/drift/online_som.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/error.h"

namespace hiermeans {
namespace drift {

namespace {

double
sigmaStartFor(const OnlineSomConfig &config)
{
    if (config.sigmaStart > 0.0)
        return config.sigmaStart;
    return std::max(config.rows, config.cols) / 2.0;
}

double
distanceToRow(const linalg::Matrix &codebook, std::size_t row,
              const linalg::Vector &x)
{
    const double *w = codebook.rowData(row);
    double acc = 0.0;
    for (std::size_t c = 0; c < x.size(); ++c) {
        const double diff = x[c] - w[c];
        acc += diff * diff;
    }
    return acc;
}

std::size_t
nearestAmong(const linalg::Matrix &codebook, std::size_t count,
             const linalg::Vector &x)
{
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < count; ++u) {
        const double dist = distanceToRow(codebook, u, x);
        if (dist < best_dist) {
            best_dist = dist;
            best = u;
        }
    }
    return best;
}

} // namespace

OnlineSom::OnlineSom(std::size_t dim, const OnlineSomConfig &config)
    : config_(config),
      topology_(config.rows, config.cols, config.grid), dim_(dim),
      codebook_(topology_.unitCount(), dim, 0.0),
      alpha_(config.decay, config.alphaStart, config.alphaEnd,
             std::max<std::size_t>(config.decaySteps, 1)),
      sigma_(config.decay, sigmaStartFor(config), config.sigmaEnd,
             std::max<std::size_t>(config.decaySteps, 1))
{
    HM_REQUIRE(dim >= 1, "OnlineSom: dim must be >= 1");
    HM_REQUIRE(config.rows >= 1 && config.cols >= 1,
               "OnlineSom: grid must be at least 1x1");
}

void
OnlineSom::observe(const linalg::Vector &x)
{
    HM_REQUIRE(x.size() == dim_, "OnlineSom::observe: vector has "
                                     << x.size() << " features, map expects "
                                     << dim_);
    if (seeded_ < topology_.unitCount()) {
        // Data-driven init: the first unitCount observations become
        // the units, verbatim. Deterministic, and already at data
        // scale — the decaying neighborhood updates that follow sort
        // the topology out.
        double *w = codebook_.rowData(seeded_);
        for (std::size_t c = 0; c < dim_; ++c)
            w[c] = x[c];
        ++seeded_;
        ++observed_;
        return;
    }

    const std::size_t bmu = bestMatchingUnit(x);
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(observed_, config_.decaySteps));
    const double alpha = alpha_.value(n);
    const double sigma = sigma_.value(n);
    const double support = som::kernelSupportRadius(config_.kernel, sigma);
    const double support_sq = support * support;
    for (std::size_t u = 0; u < topology_.unitCount(); ++u) {
        const double dist_sq = topology_.gridDistanceSquared(bmu, u);
        if (dist_sq > support_sq)
            continue;
        const double h =
            som::kernelValue(config_.kernel, dist_sq, alpha, sigma);
        if (h <= 0.0)
            continue;
        double *w = codebook_.rowData(u);
        for (std::size_t c = 0; c < dim_; ++c)
            w[c] += h * (x[c] - w[c]);
    }
    ++observed_;
}

std::size_t
OnlineSom::bestMatchingUnit(const linalg::Vector &x) const
{
    HM_REQUIRE(x.size() == dim_, "OnlineSom::bestMatchingUnit: vector has "
                                     << x.size()
                                     << " features, map expects " << dim_);
    return nearestAmong(codebook_, std::max<std::size_t>(seeded_, 1), x);
}

double
OnlineSom::quantizationError(
    const std::vector<linalg::Vector> &window) const
{
    if (window.empty())
        return 0.0;
    double total = 0.0;
    for (const linalg::Vector &x : window)
        total += std::sqrt(
            distanceToRow(codebook_, bestMatchingUnit(x), x));
    return total / static_cast<double>(window.size());
}

std::vector<double>
OnlineSom::exportWeights() const
{
    std::vector<double> flat;
    flat.reserve(topology_.unitCount() * dim_);
    for (std::size_t u = 0; u < topology_.unitCount(); ++u) {
        const double *w = codebook_.rowData(u);
        flat.insert(flat.end(), w, w + dim_);
    }
    return flat;
}

void
OnlineSom::restore(const std::vector<double> &weights,
                   std::uint64_t observed)
{
    HM_REQUIRE(weights.size() == topology_.unitCount() * dim_,
               "OnlineSom::restore: " << weights.size()
                                      << " weights for a "
                                      << topology_.unitCount() << "x"
                                      << dim_ << " codebook");
    for (std::size_t u = 0; u < topology_.unitCount(); ++u) {
        double *w = codebook_.rowData(u);
        for (std::size_t c = 0; c < dim_; ++c)
            w[c] = weights[u * dim_ + c];
    }
    observed_ = observed;
    seeded_ = static_cast<std::size_t>(std::min<std::uint64_t>(
        observed, topology_.unitCount()));
}

std::size_t
nearestUnit(const linalg::Matrix &codebook, const linalg::Vector &x)
{
    HM_REQUIRE(!codebook.empty(), "nearestUnit: empty codebook");
    HM_REQUIRE(x.size() == codebook.cols(),
               "nearestUnit: vector has " << x.size()
                                          << " features, codebook has "
                                          << codebook.cols());
    return nearestAmong(codebook, codebook.rows(), x);
}

std::vector<std::size_t>
assignAll(const linalg::Matrix &codebook,
          const std::vector<linalg::Vector> &window)
{
    std::vector<std::size_t> labels;
    labels.reserve(window.size());
    for (const linalg::Vector &x : window)
        labels.push_back(nearestUnit(codebook, x));
    return labels;
}

double
quantizationError(const linalg::Matrix &codebook,
                  const std::vector<linalg::Vector> &window)
{
    if (window.empty())
        return 0.0;
    double total = 0.0;
    for (const linalg::Vector &x : window) {
        const std::size_t unit = nearestUnit(codebook, x);
        const double *w = codebook.rowData(unit);
        double acc = 0.0;
        for (std::size_t c = 0; c < x.size(); ++c) {
            const double diff = x[c] - w[c];
            acc += diff * diff;
        }
        total += std::sqrt(acc);
    }
    return total / static_cast<double>(window.size());
}

} // namespace drift
} // namespace hiermeans
