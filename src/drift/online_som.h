/**
 * @file
 * Online (streaming) self-organizing map.
 *
 * The batch pipeline (src/som) retrains a map from scratch over a
 * static observation matrix. Streaming suites instead fold each new
 * observation into an existing codebook with one application of the
 * paper's sequential rule
 *
 *   w_i <- w_i + h_ci(n) * (x - w_i)
 *
 * where n is the number of observations absorbed so far and the
 * alpha/sigma schedules decay to a *floor* instead of to zero — an
 * online map must keep adapting forever, just slowly, or it could
 * never follow a drifting workload population.
 *
 * Initialization is data-driven and deterministic: the first
 * unitCount observations seed the units directly (no RNG), after
 * which the neighborhood updates take over. The codebook is plain
 * state — exportWeights()/restore() round-trip it exactly, which is
 * how drift state survives crashes bit-identically (store WAL).
 */

#ifndef HIERMEANS_DRIFT_ONLINE_SOM_H
#define HIERMEANS_DRIFT_ONLINE_SOM_H

#include <cstdint>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"
#include "src/som/kernel.h"
#include "src/som/schedule.h"
#include "src/som/topology.h"

namespace hiermeans {
namespace drift {

/** Streaming-map configuration. */
struct OnlineSomConfig
{
    std::size_t rows = 4;
    std::size_t cols = 4;
    som::GridKind grid = som::GridKind::Rectangular;
    som::KernelKind kernel = som::KernelKind::Gaussian;
    som::DecayKind decay = som::DecayKind::Exponential;

    /** Learning rate: decays from start to end over decaySteps
     *  observations, then stays at end (the adaptation floor). */
    double alphaStart = 0.3;
    double alphaEnd = 0.02;

    /** Neighborhood radius; sigmaStart <= 0 selects the conventional
     *  max(rows, cols) / 2. Decays like alpha, floors at sigmaEnd. */
    double sigmaStart = 0.0;
    double sigmaEnd = 0.5;

    /** Observations over which the schedules decay to their floors. */
    std::size_t decaySteps = 1000;
};

/** A codebook updated one observation at a time. */
class OnlineSom
{
  public:
    /** An empty map for @p dim-dimensional observations (dim >= 1). */
    OnlineSom(std::size_t dim, const OnlineSomConfig &config);

    /** Fold one observation into the codebook (the online update). */
    void observe(const linalg::Vector &x);

    /** Units seeded so far; the map is ready once every unit is. */
    bool ready() const { return seeded_ == topology_.unitCount(); }

    /** Observations absorbed so far. */
    std::uint64_t observed() const { return observed_; }

    std::size_t dim() const { return dim_; }
    const OnlineSomConfig &config() const { return config_; }
    const som::GridTopology &topology() const { return topology_; }

    /** The live codebook (unitCount x dim; unseeded rows are zero). */
    const linalg::Matrix &codebook() const { return codebook_; }

    /** BMU of @p x among the seeded units (lowest index on ties). */
    std::size_t bestMatchingUnit(const linalg::Vector &x) const;

    /** Mean distance between each window vector and its BMU weight. */
    double quantizationError(const std::vector<linalg::Vector> &window) const;

    /** The codebook flattened row-major (for persistence). */
    std::vector<double> exportWeights() const;

    /**
     * Restore a persisted codebook: @p weights must hold exactly
     * unitCount * dim values; @p observed rebuilds the schedule
     * position (seeded units are derived from it).
     */
    void restore(const std::vector<double> &weights,
                 std::uint64_t observed);

  private:
    OnlineSomConfig config_;
    som::GridTopology topology_;
    std::size_t dim_;
    linalg::Matrix codebook_;
    som::DecaySchedule alpha_;
    som::DecaySchedule sigma_;
    std::uint64_t observed_ = 0;
    std::size_t seeded_ = 0;
};

// --- codebook helpers (shared with the frozen published codebook) ----

/** Index of the row of @p codebook closest to @p x (Euclidean,
 *  lowest index on ties). Requires a non-empty codebook. */
std::size_t nearestUnit(const linalg::Matrix &codebook,
                        const linalg::Vector &x);

/** nearestUnit for every vector of @p window. */
std::vector<std::size_t>
assignAll(const linalg::Matrix &codebook,
          const std::vector<linalg::Vector> &window);

/** Mean distance between each window vector and its nearest row. */
double quantizationError(const linalg::Matrix &codebook,
                         const std::vector<linalg::Vector> &window);

} // namespace drift
} // namespace hiermeans

#endif // HIERMEANS_DRIFT_ONLINE_SOM_H
