/**
 * @file
 * Cooperative cancellation for in-flight scoring work.
 *
 * A CancelSource is owned by whoever can give up on a request — the
 * HTTP handler (client deadline, watchdog trip) or the drain state
 * machine (process shutdown). The CancelToken it hands out is a
 * cheap shared view that the engine threads poll at stage
 * boundaries: at dequeue (purge without burning a worker), between
 * pipeline stages, and before the result is cached.
 *
 * Two ways for a token to fire:
 *   - an explicit cancel() on its source (or on any *parent* source
 *     it is chained to — the drain source is the parent of every
 *     per-request source, so one cancel() sweeps all in-flight work);
 *   - its deadline expiring: setDeadline(budget_millis) starts a
 *     monotonic clock, and expired() flips once the budget is spent.
 *
 * A default-constructed token is null: never cancelled, infinite
 * budget. That keeps call sites unconditional — batch paths and
 * tests that don't care about deadlines pass the null token.
 */

#ifndef HIERMEANS_ENGINE_CANCEL_H
#define HIERMEANS_ENGINE_CANCEL_H

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <utility>

namespace hiermeans {
namespace engine {

namespace detail {

struct CancelState
{
    std::atomic<bool> cancelled{false};
    /** 0 = no deadline armed. */
    double budgetMillis = 0.0;
    std::chrono::steady_clock::time_point armed;
    std::shared_ptr<const CancelState> parent;

    bool fired() const
    {
        if (cancelled.load(std::memory_order_acquire))
            return true;
        if (budgetMillis > 0.0) {
            const auto elapsed =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - armed)
                    .count();
            if (elapsed > budgetMillis)
                return true;
        }
        return parent && parent->fired();
    }

    double remaining() const
    {
        double left = std::numeric_limits<double>::infinity();
        if (budgetMillis > 0.0) {
            const auto elapsed =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - armed)
                    .count();
            left = budgetMillis - elapsed;
        }
        if (parent) {
            const double up = parent->remaining();
            if (up < left)
                left = up;
        }
        return left;
    }
};

} // namespace detail

/** Shared view polled by engine threads. Copyable, thread-safe. */
class CancelToken
{
  public:
    /** Null token: never cancelled, infinite budget. */
    CancelToken() = default;

    /** True when the source cancelled, the deadline expired, or any
     *  chained parent fired. A null token is never cancelled. */
    bool cancelled() const { return state_ && state_->fired(); }

    /** Millis left in the tightest armed budget along the chain;
     *  +inf when no deadline is armed (or the token is null). */
    double remainingMillis() const
    {
        return state_ ? state_->remaining()
                      : std::numeric_limits<double>::infinity();
    }

    /** True when this token is wired to a source. */
    bool valid() const { return state_ != nullptr; }

  private:
    friend class CancelSource;
    explicit CancelToken(std::shared_ptr<const detail::CancelState> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<const detail::CancelState> state_;
};

/** The owning side: cancel() and deadline arming. */
class CancelSource
{
  public:
    CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

    /** A source whose token also fires when @p parent's does — the
     *  drain source is the parent of every per-request source. */
    explicit CancelSource(const CancelToken &parent)
        : state_(std::make_shared<detail::CancelState>())
    {
        state_->parent = parent.state_;
    }

    /** Fire the token (idempotent, thread-safe). */
    void cancel() { state_->cancelled.store(true, std::memory_order_release); }

    /** Arm a deadline @p budget_millis from now; <= 0 disarms. Call
     *  before sharing the token — arming is not synchronized. */
    void setDeadline(double budget_millis)
    {
        state_->budgetMillis = budget_millis > 0.0 ? budget_millis : 0.0;
        state_->armed = std::chrono::steady_clock::now();
    }

    bool cancelled() const { return state_->fired(); }

    CancelToken token() const { return CancelToken(state_); }

  private:
    std::shared_ptr<detail::CancelState> state_;
};

} // namespace engine
} // namespace hiermeans

#endif // HIERMEANS_ENGINE_CANCEL_H
