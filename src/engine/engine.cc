#include "src/engine/engine.h"

#include <chrono>
#include <exception>

#include <thread>

#include "src/core/characterization.h"
#include "src/engine/fingerprint.h"
#include "src/scoring/hierarchical_mean.h"
#include "src/stats/means.h"
#include "src/util/error.h"
#include "src/util/fault.h"

namespace hiermeans {
namespace engine {

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

} // namespace

std::uint64_t
fingerprintRequest(const ScoreRequest &request)
{
    // The seed is applied onto the config before hashing so that
    // "same effective configuration" implies "same fingerprint"
    // however the caller spelled it.
    core::PipelineConfig effective = request.config;
    effective.som.seed = request.seed;

    Fingerprint fp;
    fp.mix(request.features);
    fp.mix(static_cast<std::uint64_t>(request.workloads.size()));
    for (const std::string &name : request.workloads)
        fp.mix(name);
    fp.mix(static_cast<std::uint64_t>(request.featureNames.size()));
    for (const std::string &name : request.featureNames)
        fp.mix(name);
    fp.mix(request.scoresA);
    fp.mix(request.scoresB);
    fp.mix(request.kind);
    fp.mix(effective);
    return fp.digest();
}

ScoringEngine::ScoringEngine(Config config)
    : config_(config), cache_(config.cache), pool_(config.threads)
{}

std::future<ScoreResult>
ScoringEngine::submit(ScoreRequest request)
{
    metrics_.onRequest();
    const auto received = std::chrono::steady_clock::now();
    const std::uint64_t fingerprint = fingerprintRequest(request);

    obs::Trace *trace = request.trace.get();
    const std::size_t traceParent = request.traceParent;

    std::promise<ScoreResult> promise;
    std::future<ScoreResult> future = promise.get_future();

    std::unique_lock<std::mutex> lock(flightsMutex_);

    // Fast path: an identical request already completed and is cached.
    std::size_t lookupSpan = obs::kNoParent;
    if (trace != nullptr)
        lookupSpan = trace->begin("cache.lookup", traceParent);
    auto cached = cache_.get(fingerprint);
    if (trace != nullptr)
        trace->end(lookupSpan);
    if (cached) {
        lock.unlock();
        metrics_.onCacheHit();
        ScoreResult result;
        result.id = std::move(request.id);
        result.ok = true;
        result.cacheHit = true;
        result.fingerprint = fingerprint;
        result.report = std::move(cached->report);
        result.analysis = std::move(cached->analysis);
        result.recommendedK = cached->recommendedK;
        metrics_.recordRequest(millisSince(received));
        promise.set_value(std::move(result));
        return future;
    }

    // Single-flight: an identical request is already executing — join
    // its waiter list instead of running the pipeline twice.
    if (const auto it = flights_.find(fingerprint); it != flights_.end()) {
        it->second->waiters.emplace_back(std::move(request.id),
                                         std::move(promise));
        lock.unlock();
        metrics_.onDedupedInFlight();
        if (trace != nullptr) {
            // An instant marker: this request piggybacks on a running
            // twin, so its own trace ends at the join point.
            trace->end(trace->begin("engine.dedupe", traceParent));
        }
        return future;
    }

    // New work: open a flight and hand the request to the pool.
    auto flight = std::make_shared<Flight>();
    flight->waiters.emplace_back(std::move(request.id),
                                 std::move(promise));
    flights_[fingerprint] = flight;
    lock.unlock();

    // The queue-wait span stays open until a worker picks the request
    // up; execute() closes it.
    std::size_t queueSpan = obs::kNoParent;
    if (trace != nullptr)
        queueSpan = trace->begin("engine.queue", traceParent);

    auto shared_request =
        std::make_shared<const ScoreRequest>(std::move(request));
    pool_.submit([this, fingerprint, shared_request, received,
                  queueSpan]() {
        execute(fingerprint, shared_request, received, queueSpan);
    });
    return future;
}

void
ScoringEngine::execute(std::uint64_t fingerprint,
                       std::shared_ptr<const ScoreRequest> request,
                       std::chrono::steady_clock::time_point enqueued,
                       std::size_t queueSpan)
{
    ScoreResult result;
    result.fingerprint = fingerprint;

    obs::Trace *trace = request->trace.get();
    std::size_t executeSpan = obs::kNoParent;
    if (trace != nullptr) {
        trace->end(queueSpan);
        executeSpan = trace->begin("engine.execute",
                                   request->traceParent);
    }
    // Pipeline code below records its stage spans through the
    // thread-local context, parented under engine.execute.
    obs::ScopedTraceContext traceContext(trace, executeSpan);

    const double queue_wait = millisSince(enqueued);
    const bool has_deadline = request->timeoutMillis > 0.0;
    const auto started = std::chrono::steady_clock::now();

    // Thrown at a stage boundary when the request's CancelToken fired
    // mid-pipeline; classified below as timed-out or cancelled.
    struct CancelledMidPipeline
    {};
    const auto classifyCancel = [&](const char *where) {
        if (request->cancel.remainingMillis() <= 0.0) {
            metrics_.onTimeout();
            result.timedOut = true;
            result.error = std::string("deadline expired ") + where;
        } else {
            metrics_.onCancelled();
            result.cancelled = true;
            result.error = std::string("cancelled ") + where;
        }
    };

    if (has_deadline && queue_wait > request->timeoutMillis) {
        // Expired while queued: don't burn a worker on a dead request.
        metrics_.onTimeout();
        result.timedOut = true;
        result.error = "timed out after " + std::to_string(queue_wait) +
                       " ms waiting in queue (timeout " +
                       std::to_string(request->timeoutMillis) + " ms)";
        if (trace != nullptr)
            trace->end(trace->begin("engine.purge", executeSpan));
    } else if (request->cancel.cancelled()) {
        // Purged from the queue: the caller gave up while we waited.
        classifyCancel("while queued");
        if (trace != nullptr)
            trace->end(trace->begin("engine.purge", executeSpan));
    } else {
        metrics_.onExecution();
        try {
            // Chaos hooks: a stuck worker (`engine.stall`, parameter =
            // milliseconds) and a task that dies mid-pipeline
            // (`engine.task`). The stall is what the server-side
            // watchdog exists to catch.
            double stall_millis = 0.0;
            if (HM_FAULT_PARAM("engine.stall", stall_millis) &&
                stall_millis > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        stall_millis));
            }
            if (HM_FAULT("engine.task"))
                throw Error("injected: engine.task execution failure");

            core::PipelineConfig config = request->config;
            config.som.seed = request->seed;

            std::shared_ptr<const core::ClusterAnalysis> analysis;
            {
                core::CharacteristicVectors vectors;
                {
                    obs::ScopedSpan span("pipeline.characterize");
                    vectors = core::characterizeRaw(
                        request->features, request->workloads,
                        request->featureNames);
                }
                if (request->cancel.cancelled())
                    throw CancelledMidPipeline{};
                // analyzeClusters records its own som_train/cluster
                // stage spans through the thread-local context.
                analysis =
                    std::make_shared<const core::ClusterAnalysis>(
                        core::analyzeClusters(vectors, config));
            }
            if (request->cancel.cancelled())
                throw CancelledMidPipeline{};
            scoring::ScoreReport report;
            {
                obs::ScopedSpan span("pipeline.score");
                report = scoring::buildScoreReport(
                    request->kind, request->scoresA, request->scoresB,
                    analysis->partitions);
            }

            result.report = std::move(report);
            result.analysis = std::move(analysis);
            result.recommendedK =
                result.report.rows[result.report.recommendedRow()]
                    .clusterCount;
            result.ok = true;
        } catch (const CancelledMidPipeline &) {
            classifyCancel("between pipeline stages");
        } catch (const std::exception &e) {
            metrics_.onFailure();
            result.error = e.what();
        }
        result.wallMillis = millisSince(started);
        metrics_.recordPipeline(result.wallMillis);

        const double total = millisSince(enqueued);
        if (result.ok && has_deadline && total > request->timeoutMillis) {
            // Cooperative deadline: the pipeline cannot be interrupted
            // mid-SOM, so overruns are detected after the fact.
            metrics_.onTimeout();
            result.ok = false;
            result.timedOut = true;
            result.report = scoring::ScoreReport{};
            result.analysis.reset();
            result.recommendedK = 0;
            result.error = "timed out after " + std::to_string(total) +
                           " ms (timeout " +
                           std::to_string(request->timeoutMillis) +
                           " ms)";
        }
    }

    if (result.ok) {
        // A failed cache insert must never fail the request (the
        // result is already computed) — and, crucially, must never
        // skip the flight cleanup below, or every waiter deadlocks.
        obs::ScopedSpan span("cache.put");
        try {
            if (HM_FAULT("engine.cache.put"))
                throw Error("injected: engine.cache.put failure");
            cache_.put(fingerprint,
                       CachedResult{result.report, result.analysis,
                                    result.recommendedK});
        } catch (const std::exception &) {
            metrics_.onCacheInsertFailure();
        }
    }
    if (trace != nullptr)
        trace->end(executeSpan);

    // Close the flight *after* the cache insert so a request arriving
    // in between sees either the flight or the cached entry.
    std::vector<std::pair<std::string, std::promise<ScoreResult>>> waiters;
    {
        std::lock_guard<std::mutex> lock(flightsMutex_);
        const auto it = flights_.find(fingerprint);
        HM_ASSERT(it != flights_.end(),
                  "ScoringEngine: flight vanished for fingerprint "
                      << fingerprint);
        waiters = std::move(it->second->waiters);
        flights_.erase(it);
    }

    const double total = millisSince(enqueued);
    for (std::size_t i = 0; i < waiters.size(); ++i) {
        ScoreResult copy = result;
        copy.id = std::move(waiters[i].first);
        copy.deduped = i > 0; // waiter 0 is the request that ran.
        metrics_.recordRequest(total);
        waiters[i].second.set_value(std::move(copy));
    }
}

std::vector<ScoreResult>
ScoringEngine::runBatch(std::vector<ScoreRequest> requests)
{
    std::vector<std::future<ScoreResult>> futures;
    futures.reserve(requests.size());
    for (ScoreRequest &request : requests)
        futures.push_back(submit(std::move(request)));
    std::vector<ScoreResult> results;
    results.reserve(futures.size());
    for (auto &future : futures)
        results.push_back(future.get());
    return results;
}

scoring::ScoreReport
buildScoreReportParallel(ThreadPool &pool, stats::MeanKind kind,
                         const std::vector<double> &scores_a,
                         const std::vector<double> &scores_b,
                         const std::vector<scoring::Partition> &partitions)
{
    HM_REQUIRE(scores_a.size() == scores_b.size(),
               "buildScoreReportParallel: score vectors differ in size");
    HM_REQUIRE(!scores_a.empty(), "buildScoreReportParallel: no scores");

    std::vector<std::future<scoring::ScoreReportRow>> rows;
    rows.reserve(partitions.size());
    for (const scoring::Partition &partition : partitions) {
        HM_REQUIRE(partition.size() == scores_a.size(),
                   "buildScoreReportParallel: partition covers "
                       << partition.size() << " items, scores cover "
                       << scores_a.size());
        rows.push_back(pool.submit([kind, &scores_a, &scores_b,
                                    &partition]() {
            scoring::ScoreReportRow row;
            row.clusterCount = partition.clusterCount();
            row.partition = partition;
            row.scoreA = scoring::hierarchicalMean(kind, scores_a,
                                                   partition);
            row.scoreB = scoring::hierarchicalMean(kind, scores_b,
                                                   partition);
            row.ratio = row.scoreA / row.scoreB;
            return row;
        }));
    }

    scoring::ScoreReport report;
    report.kind = kind;
    for (auto &future : rows)
        report.rows.push_back(future.get());
    report.plainA = stats::mean(kind, scores_a);
    report.plainB = stats::mean(kind, scores_b);
    report.plainRatio = report.plainA / report.plainB;
    return report;
}

scoring::MultiMachineReport
buildMultiMachineReportParallel(
    ThreadPool &pool, stats::MeanKind kind,
    const std::vector<std::vector<double>> &machine_scores,
    const std::vector<std::string> &machine_labels,
    const std::vector<scoring::Partition> &partitions)
{
    HM_REQUIRE(machine_scores.size() >= 2,
               "buildMultiMachineReportParallel: need >= 2 machines");
    HM_REQUIRE(machine_scores.size() == machine_labels.size(),
               "buildMultiMachineReportParallel: "
                   << machine_scores.size() << " score vectors vs "
                   << machine_labels.size() << " labels");
    const std::size_t n = machine_scores.front().size();
    HM_REQUIRE(n >= 1, "buildMultiMachineReportParallel: no workloads");
    for (const auto &scores : machine_scores) {
        HM_REQUIRE(scores.size() == n,
                   "buildMultiMachineReportParallel: ragged score "
                   "vectors");
    }

    // One task per (partition, machine) cell, gathered in order.
    std::vector<std::future<double>> cells;
    cells.reserve(partitions.size() * machine_scores.size());
    for (const scoring::Partition &partition : partitions) {
        HM_REQUIRE(partition.size() == n,
                   "buildMultiMachineReportParallel: partition covers "
                       << partition.size() << " items, scores cover "
                       << n);
        for (const auto &scores : machine_scores) {
            cells.push_back(pool.submit([kind, &scores, &partition]() {
                return scoring::hierarchicalMean(kind, scores,
                                                 partition);
            }));
        }
    }

    scoring::MultiMachineReport report;
    report.kind = kind;
    report.machineLabels = machine_labels;
    std::size_t cell = 0;
    for (const scoring::Partition &partition : partitions) {
        scoring::MultiMachineRow row;
        row.clusterCount = partition.clusterCount();
        row.partition = partition;
        for (std::size_t m = 0; m < machine_scores.size(); ++m)
            row.scores.push_back(cells[cell++].get());
        report.rows.push_back(std::move(row));
    }
    for (const auto &scores : machine_scores)
        report.plainScores.push_back(stats::mean(kind, scores));
    return report;
}

} // namespace engine
} // namespace hiermeans
