/**
 * @file
 * The concurrent scoring engine: a reusable service core around the
 * one-shot hierarchical-means pipeline.
 *
 *   ScoreRequest --fingerprint--> [result cache] --miss--> [in-flight
 *   table (single-flight)] --new--> [thread pool] --> pipeline -->
 *   ScoreResult (+ cache insert, + metrics)
 *
 * `submit` is non-blocking and returns a `std::future<ScoreResult>`:
 *  - a cache hit resolves immediately with the cached (bit-identical)
 *    report;
 *  - a request identical to one already executing piggybacks on that
 *    execution (the pipeline runs once, every waiter gets the result);
 *  - otherwise the request is queued on the fixed-size worker pool.
 *
 * Failures are isolated per request: a malformed input or a pipeline
 * exception resolves that request's future with ok=false and the error
 * text — it never throws across the pool or poisons the batch. The
 * per-request timeout is cooperative: it is enforced when the request
 * leaves the queue (expired requests are not executed) and re-checked
 * after execution.
 *
 * Determinism: the RNG seed travels inside the request (ScoreRequest::
 * seed overrides config.som.seed), every stochastic pipeline stage
 * draws from engines constructed from that seed, and nothing in the
 * engine shares mutable state between requests — so two identical
 * requests produce identical fingerprints and bit-identical reports
 * regardless of thread interleaving.
 */

#ifndef HIERMEANS_ENGINE_ENGINE_H
#define HIERMEANS_ENGINE_ENGINE_H

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/pipeline.h"
#include "src/engine/cancel.h"
#include "src/engine/metrics.h"
#include "src/obs/trace.h"
#include "src/engine/result_cache.h"
#include "src/engine/thread_pool.h"
#include "src/scoring/score_report.h"
#include "src/stats/means.h"

namespace hiermeans {
namespace engine {

/** One scoring request: data + config + seed, self-contained. */
struct ScoreRequest
{
    /** Caller-chosen label echoed into the result (not fingerprinted). */
    std::string id;

    /** Raw observations, rows = workloads (pre-characterization). */
    linalg::Matrix features;
    std::vector<std::string> workloads;
    std::vector<std::string> featureNames;

    /** Per-workload scores of the two machines being compared. */
    std::vector<double> scoresA;
    std::vector<double> scoresB;
    std::string labelA = "A";
    std::string labelB = "B";

    stats::MeanKind kind = stats::MeanKind::Geometric;
    core::PipelineConfig config;

    /**
     * Per-request RNG seed; overrides config.som.seed so determinism
     * is explicit at the request level.
     */
    std::uint64_t seed = 0x5eed;

    /** Cooperative deadline in milliseconds; 0 disables. */
    double timeoutMillis = 0.0;

    /**
     * Cooperative cancellation: polled at dequeue (an entry whose
     * token fired is purged from the queue instead of executed) and
     * between pipeline stages. A null token never cancels. Like
     * trace/id this is never fingerprinted.
     */
    CancelToken cancel;

    /**
     * Live request trace to record cache/queue/execute/pipeline spans
     * into; nullptr when tracing is disarmed. Like id/labels this is
     * presentation-only and never fingerprinted — traced and untraced
     * twins still dedupe onto one execution.
     */
    std::shared_ptr<obs::Trace> trace;

    /** Parent span for the engine's spans inside `trace`. */
    std::size_t traceParent = obs::kNoParent;
};

/** The outcome of one request. */
struct ScoreResult
{
    std::string id;
    bool ok = false;
    std::string error;      ///< set when !ok.
    bool timedOut = false;  ///< !ok because the deadline lapsed.
    bool cancelled = false; ///< !ok because the caller gave up.
    bool cacheHit = false;  ///< served from the result cache.
    bool deduped = false;   ///< piggybacked on an in-flight twin.
    std::uint64_t fingerprint = 0;
    double wallMillis = 0.0; ///< pipeline wall time (0 for cache hits).

    scoring::ScoreReport report;
    std::size_t recommendedK = 0; ///< cluster count of recommended row.
    std::shared_ptr<const core::ClusterAnalysis> analysis;
};

/**
 * Content fingerprint of a request: features, scores, mean kind,
 * config and effective seed. Ignores id/labels (presentation only).
 */
std::uint64_t fingerprintRequest(const ScoreRequest &request);

/** Concurrent, cached, single-flight scoring service. */
class ScoringEngine
{
  public:
    struct Config
    {
        /** Worker threads (>= 1). */
        std::size_t threads = 4;
        ResultCache::Config cache;
    };

    /** Engine with the default pool size and cache bounds. */
    ScoringEngine() : ScoringEngine(Config{}) {}

    explicit ScoringEngine(Config config);

    /** Drains in-flight work (ThreadPool shutdown semantics). */
    ~ScoringEngine() = default;

    ScoringEngine(const ScoringEngine &) = delete;
    ScoringEngine &operator=(const ScoringEngine &) = delete;

    /**
     * Submit one request; never blocks on pipeline work and never
     * throws for per-request data problems (those resolve the future
     * with ok=false).
     */
    std::future<ScoreResult> submit(ScoreRequest request);

    /** Submit every request, then wait; results in request order. */
    std::vector<ScoreResult> runBatch(std::vector<ScoreRequest> requests);

    /**
     * Requests accepted by the pool but not yet executing — the
     * backlog a serving layer reports as its queue depth.
     */
    std::size_t queueDepth() const { return pool_.pendingTasks(); }

    const EngineMetrics &metrics() const { return metrics_; }
    ResultCache &cache() { return cache_; }
    ThreadPool &pool() { return pool_; }

  private:
    /** Waiters for one in-flight fingerprint (single-flight group). */
    struct Flight
    {
        std::vector<std::pair<std::string, std::promise<ScoreResult>>>
            waiters;
    };

    void execute(std::uint64_t fingerprint,
                 std::shared_ptr<const ScoreRequest> request,
                 std::chrono::steady_clock::time_point enqueued,
                 std::size_t queueSpan);

    Config config_;
    ResultCache cache_;
    EngineMetrics metrics_;
    std::mutex flightsMutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> flights_;
    ThreadPool pool_; ///< last member: joins before the rest dies.
};

/**
 * Parallel twin of scoring::buildScoreReport: farms the per-partition
 * hierarchical means of the k-sweep out to @p pool. Output is
 * identical to the serial builder (same order, same doubles).
 */
scoring::ScoreReport buildScoreReportParallel(
    ThreadPool &pool, stats::MeanKind kind,
    const std::vector<double> &scores_a,
    const std::vector<double> &scores_b,
    const std::vector<scoring::Partition> &partitions);

/** Parallel twin of scoring::buildMultiMachineReport (per machine x
 *  partition cell). Output is identical to the serial builder. */
scoring::MultiMachineReport buildMultiMachineReportParallel(
    ThreadPool &pool, stats::MeanKind kind,
    const std::vector<std::vector<double>> &machine_scores,
    const std::vector<std::string> &machine_labels,
    const std::vector<scoring::Partition> &partitions);

} // namespace engine
} // namespace hiermeans

#endif // HIERMEANS_ENGINE_ENGINE_H
