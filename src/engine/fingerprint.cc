#include "src/engine/fingerprint.h"

#include <cmath>
#include <cstring>

namespace hiermeans {
namespace engine {

Fingerprint &
Fingerprint::mixBytes(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        state_ ^= static_cast<std::uint64_t>(bytes[i]);
        state_ *= kPrime;
    }
    return *this;
}

Fingerprint &
Fingerprint::mix(std::uint64_t value)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
    return mixBytes(bytes, sizeof(bytes));
}

Fingerprint &
Fingerprint::mix(double value)
{
    // Numerically equal inputs must hash equally: fold -0.0 into +0.0
    // and every NaN payload into one canonical quiet NaN.
    if (value == 0.0)
        value = 0.0;
    if (std::isnan(value))
        value = std::numeric_limits<double>::quiet_NaN();
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return mix(bits);
}

Fingerprint &
Fingerprint::mix(const std::string &value)
{
    mix(static_cast<std::uint64_t>(value.size()));
    return mixBytes(value.data(), value.size());
}

Fingerprint &
Fingerprint::mix(const std::vector<double> &values)
{
    mix(static_cast<std::uint64_t>(values.size()));
    for (double value : values)
        mix(value);
    return *this;
}

Fingerprint &
Fingerprint::mix(const linalg::Matrix &matrix)
{
    mix(static_cast<std::uint64_t>(matrix.rows()));
    mix(static_cast<std::uint64_t>(matrix.cols()));
    for (std::size_t r = 0; r < matrix.rows(); ++r) {
        for (std::size_t c = 0; c < matrix.cols(); ++c)
            mix(matrix(r, c));
    }
    return *this;
}

Fingerprint &
Fingerprint::mix(const core::PipelineConfig &config)
{
    mix(static_cast<std::uint64_t>(config.som.rows));
    mix(static_cast<std::uint64_t>(config.som.cols));
    mix(static_cast<std::uint64_t>(config.som.grid));
    mix(static_cast<std::uint64_t>(config.som.kernel));
    mix(static_cast<std::uint64_t>(config.som.init));
    mix(static_cast<std::uint64_t>(config.som.decay));
    mix(static_cast<std::uint64_t>(config.som.steps));
    mix(config.som.alphaStart);
    mix(config.som.alphaEnd);
    mix(config.som.sigmaStart);
    mix(config.som.sigmaEnd);
    mix(config.som.seed);
    mix(static_cast<std::uint64_t>(config.linkage));
    mix(static_cast<std::uint64_t>(config.metric));
    mix(static_cast<std::uint64_t>(config.kMin));
    mix(static_cast<std::uint64_t>(config.kMax));
    return *this;
}

Fingerprint &
Fingerprint::mix(stats::MeanKind kind)
{
    return mix(static_cast<std::uint64_t>(kind));
}

} // namespace engine
} // namespace hiermeans
