/**
 * @file
 * Stable 64-bit content fingerprints for scoring requests.
 *
 * The engine's result cache and single-flight dedupe are keyed by a
 * FNV-1a hash over everything that determines a pipeline result: the
 * raw feature matrix, the score vectors, every `PipelineConfig` field
 * (including the SOM geometry/schedule) and the RNG seed. Two requests
 * with equal fingerprints therefore produce bit-identical reports —
 * the whole pipeline is deterministic given (data, config, seed).
 *
 * The hash mixes lengths before contents so that concatenation-shaped
 * collisions ({"ab","c"} vs {"a","bc"}) cannot occur, and normalizes
 * -0.0 and NaN payloads so numerically-equal inputs hash equally.
 */

#ifndef HIERMEANS_ENGINE_FINGERPRINT_H
#define HIERMEANS_ENGINE_FINGERPRINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/linalg/matrix.h"
#include "src/stats/means.h"

namespace hiermeans {
namespace engine {

/** Incremental FNV-1a 64-bit hasher with typed mix-ins. */
class Fingerprint
{
  public:
    /** FNV-1a 64-bit offset basis. */
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
    /** FNV-1a 64-bit prime. */
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    /** Mix raw bytes. */
    Fingerprint &mixBytes(const void *data, std::size_t size);

    /** Mix one 64-bit word (little-endian byte order, portable). */
    Fingerprint &mix(std::uint64_t value);

    /** Mix a double by bit pattern (-0.0 and NaN normalized). */
    Fingerprint &mix(double value);

    /** Mix a length-prefixed string. */
    Fingerprint &mix(const std::string &value);

    /** Mix a length-prefixed vector of doubles. */
    Fingerprint &mix(const std::vector<double> &values);

    /** Mix a matrix: dimensions then row-major elements. */
    Fingerprint &mix(const linalg::Matrix &matrix);

    /** Mix every field of a pipeline configuration. */
    Fingerprint &mix(const core::PipelineConfig &config);

    /** Mix a mean-family tag. */
    Fingerprint &mix(stats::MeanKind kind);

    /** Current digest. */
    std::uint64_t digest() const { return state_; }

  private:
    std::uint64_t state_ = kOffsetBasis;
};

} // namespace engine
} // namespace hiermeans

#endif // HIERMEANS_ENGINE_FINGERPRINT_H
