#include "src/engine/manifest.h"

#include "src/cluster/linkage.h"
#include "src/util/error.h"
#include "src/util/file.h"
#include "src/util/str.h"

namespace hiermeans {
namespace engine {

std::vector<ManifestLine>
parseManifest(const std::string &text)
{
    std::vector<ManifestLine> lines;
    std::size_t line_number = 0;
    for (const std::string &raw : str::split(text, '\n')) {
        ++line_number;
        const std::string line = str::trim(raw);
        if (line.empty() || line.front() == '#')
            continue;
        std::vector<std::string> argv = {"manifest"};
        for (const std::string &token : str::splitWhitespace(line)) {
            HM_REQUIRE(token.find('=') != std::string::npos,
                       "manifest line " << line_number << ": token `"
                                        << token
                                        << "` is not key=value");
            argv.push_back("--" + token);
        }
        lines.push_back(
            ManifestLine{line_number, util::CommandLine::parse(argv)});
    }
    return lines;
}

const core::ScoresCsv &
CsvCache::scoresFor(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = scores_.find(path);
    if (it == scores_.end()) {
        it = scores_
                 .emplace(path,
                          core::parseScoresCsv(util::readFile(path)))
                 .first;
    }
    return it->second;
}

const core::FeaturesCsv &
CsvCache::featuresFor(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = features_.find(path);
    if (it == features_.end()) {
        it = features_
                 .emplace(path,
                          core::parseFeaturesCsv(util::readFile(path)))
                 .first;
    }
    return it->second;
}

ScoreRequest
buildManifestRequest(const ManifestLine &line,
                     const util::CommandLine &defaults, CsvCache &csvs)
{
    const util::CommandLine &flags = line.flags;
    const std::string scores_path = flags.getString("scores", "");
    const std::string features_path = flags.getString("features", "");
    const std::string machine_a = flags.getString("machine-a", "");
    const std::string machine_b = flags.getString("machine-b", "");
    HM_REQUIRE(!scores_path.empty() && !features_path.empty() &&
                   !machine_a.empty() && !machine_b.empty(),
               "manifest line "
                   << line.lineNumber
                   << ": scores=, features=, machine-a= and machine-b= "
                      "are required");

    const core::ScoresCsv &scores = csvs.scoresFor(scores_path);
    const core::FeaturesCsv &features = csvs.featuresFor(features_path);
    core::requireAlignedWorkloads(scores, features);

    // Per-line keys override the tool-level defaults.
    const auto flag_int = [&](const char *name, std::int64_t fallback) {
        return flags.has(name) ? flags.getInt(name, fallback)
                               : defaults.getInt(name, fallback);
    };
    const auto flag_str = [&](const char *name,
                              const std::string &fallback) {
        return flags.has(name) ? flags.getString(name, fallback)
                               : defaults.getString(name, fallback);
    };

    ScoreRequest request;
    request.id = flags.getString(
        "id", "line" + std::to_string(line.lineNumber));
    request.features = features.values;
    request.workloads = features.workloads;
    request.featureNames = features.features;
    request.scoresA = scores.machineScores(machine_a);
    request.scoresB = scores.machineScores(machine_b);
    request.labelA = machine_a;
    request.labelB = machine_b;
    request.kind = stats::parseMeanKind(flag_str("mean", "gm"));

    const std::int64_t kmin = flag_int("kmin", 2);
    const std::int64_t kmax = flag_int("kmax", 8);
    HM_REQUIRE(kmin >= 1, "manifest line " << line.lineNumber
                                           << ": kmin must be >= 1, got "
                                           << kmin);
    HM_REQUIRE(kmax >= kmin, "manifest line "
                                 << line.lineNumber
                                 << ": kmax must be >= kmin, got kmin="
                                 << kmin << " kmax=" << kmax);
    request.config.kMin = static_cast<std::size_t>(kmin);
    request.config.kMax = static_cast<std::size_t>(kmax);
    request.config.linkage =
        cluster::parseLinkage(flag_str("linkage", "complete"));
    request.config.autoSizeSom(features.workloads.size());
    if (flags.has("som-rows")) {
        request.config.som.rows =
            static_cast<std::size_t>(flags.getInt("som-rows", 8));
    }
    if (flags.has("som-cols")) {
        request.config.som.cols =
            static_cast<std::size_t>(flags.getInt("som-cols", 10));
    }
    request.config.som.steps =
        static_cast<std::size_t>(flag_int("som-steps", 4000));
    request.seed =
        static_cast<std::uint64_t>(flag_int("seed", 0x5eed));
    request.timeoutMillis = static_cast<double>(
        flags.has("timeout-ms")
            ? flags.getDouble("timeout-ms", 0.0)
            : defaults.getDouble("timeout-ms", 0.0));
    return request;
}

} // namespace engine
} // namespace hiermeans
