/**
 * @file
 * The scoring-request manifest format, shared by hmbatch and the
 * server's /v1/score and /v1/batch endpoints.
 *
 * One request per line of whitespace-separated `key=value` tokens
 * (`#` starts a comment, blank lines are skipped):
 *
 *   scores=data/scores.csv features=data/features.csv \
 *       machine-a=machineX machine-b=machineY
 *
 * Required keys: scores, features, machine-a, machine-b. Optional keys
 * (falling back to @p defaults, then to built-in values): id, mean,
 * kmin, kmax, linkage, seed, som-rows, som-cols, som-steps, timeout-ms.
 *
 * Parsing is strictly separated from request building so a syntax
 * error (a token without `=`) fails the whole document, while a
 * semantically bad line (missing file, unknown machine, bad k range)
 * fails only that line — callers catch per line around
 * buildManifestRequest.
 */

#ifndef HIERMEANS_ENGINE_MANIFEST_H
#define HIERMEANS_ENGINE_MANIFEST_H

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/csv_io.h"
#include "src/engine/engine.h"
#include "src/util/cli.h"

namespace hiermeans {
namespace engine {

/** One manifest line, tokenized but not yet turned into a request. */
struct ManifestLine
{
    std::size_t lineNumber = 0;
    util::CommandLine flags = util::CommandLine::parse({"line"});
};

/**
 * Tokenize a manifest document. Throws InvalidArgument on the first
 * token that is not `key=value` (naming the line number).
 */
std::vector<ManifestLine> parseManifest(const std::string &text);

/**
 * Thread-safe parsed-CSV cache so N lines sharing the same files parse
 * them once. References returned stay valid for the cache's lifetime
 * (entries are never evicted).
 */
class CsvCache
{
  public:
    /** Parsed scores document for @p path (reads the file on miss). */
    const core::ScoresCsv &scoresFor(const std::string &path);

    /** Parsed features document for @p path. */
    const core::FeaturesCsv &featuresFor(const std::string &path);

  private:
    std::mutex mutex_;
    std::map<std::string, core::ScoresCsv> scores_;
    std::map<std::string, core::FeaturesCsv> features_;
};

/**
 * Build the engine request for one manifest line. Per-line keys
 * override @p defaults (a tool-level command line; pass an empty one
 * for built-in fallbacks). Throws InvalidArgument on missing required
 * keys, unreadable/misaligned CSVs, bad k ranges (kmin < 1 or
 * kmax < kmin), unknown linkage or unknown mean family.
 */
ScoreRequest buildManifestRequest(const ManifestLine &line,
                                  const util::CommandLine &defaults,
                                  CsvCache &csvs);

} // namespace engine
} // namespace hiermeans

#endif // HIERMEANS_ENGINE_MANIFEST_H
