#include "src/engine/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/error.h"
#include "src/util/str.h"
#include "src/util/text_table.h"

namespace hiermeans {
namespace engine {

void
LatencyHistogram::record(double millis)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(millis);
    sorted_ = false;
}

std::size_t
LatencyHistogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
}

double
LatencyHistogram::percentile(double p) const
{
    HM_REQUIRE(p >= 0.0 && p <= 100.0,
               "LatencyHistogram::percentile: p = " << p);
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    // Nearest-rank: the smallest sample covering p percent of the mass.
    const double rank = p / 100.0 * static_cast<double>(samples_.size());
    std::size_t index = static_cast<std::size_t>(std::ceil(rank));
    index = index == 0 ? 0 : index - 1;
    index = std::min(index, samples_.size() - 1);
    return samples_[index];
}

double
LatencyHistogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
LatencyHistogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty())
        return 0.0;
    const double sum =
        std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

double
LatencyHistogram::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

std::vector<std::uint64_t>
LatencyHistogram::cumulativeCounts(
    const std::vector<double> &bounds) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> counts(bounds.size(), 0);
    for (const double sample : samples_) {
        for (std::size_t i = 0; i < bounds.size(); ++i) {
            if (sample <= bounds[i])
                ++counts[i];
        }
    }
    return counts;
}

namespace {

MetricsSnapshot::Latency
summarize(const LatencyHistogram &histogram)
{
    MetricsSnapshot::Latency latency;
    latency.count = histogram.count();
    latency.p50 = histogram.percentile(50.0);
    latency.p95 = histogram.percentile(95.0);
    latency.max = histogram.max();
    latency.mean = histogram.mean();
    return latency;
}

} // namespace

MetricsSnapshot
EngineMetrics::snapshot() const
{
    MetricsSnapshot snap;
    snap.requests = requests_.load();
    snap.cacheHits = cacheHits_.load();
    snap.dedupedInFlight = dedupedInFlight_.load();
    snap.executions = executions_.load();
    snap.failures = failures_.load();
    snap.timeouts = timeouts_.load();
    snap.cancellations = cancellations_.load();
    snap.cacheInsertFailures = cacheInsertFailures_.load();
    if (snap.requests > 0) {
        snap.cacheHitRatio = static_cast<double>(snap.cacheHits) /
                             static_cast<double>(snap.requests);
    }
    snap.request = summarize(requestLatency_);
    snap.pipeline = summarize(pipelineLatency_);
    return snap;
}

std::string
EngineMetrics::render() const
{
    const MetricsSnapshot snap = snapshot();

    util::TextTable counters({"counter", "value"});
    counters.addRow({"requests", std::to_string(snap.requests)});
    counters.addRow({"cache hits", std::to_string(snap.cacheHits)});
    counters.addRow(
        {"in-flight dedupes", std::to_string(snap.dedupedInFlight)});
    counters.addRow({"pipeline executions",
                     std::to_string(snap.executions)});
    counters.addRow({"failures", std::to_string(snap.failures)});
    counters.addRow({"timeouts", std::to_string(snap.timeouts)});
    counters.addRow(
        {"cancellations", std::to_string(snap.cancellations)});
    counters.addRow({"cache insert failures",
                     std::to_string(snap.cacheInsertFailures)});
    counters.addRow(
        {"cache hit ratio", str::fixed(snap.cacheHitRatio, 3)});

    util::TextTable latency(
        {"latency (ms)", "count", "p50", "p95", "max", "mean"});
    const auto add = [&latency](const char *name,
                                const MetricsSnapshot::Latency &l) {
        latency.addRow({name, std::to_string(l.count),
                        str::fixed(l.p50, 2), str::fixed(l.p95, 2),
                        str::fixed(l.max, 2), str::fixed(l.mean, 2)});
    };
    add("request", snap.request);
    add("pipeline", snap.pipeline);

    return counters.render() + "\n" + latency.render();
}

} // namespace engine
} // namespace hiermeans
