/**
 * @file
 * Engine observability: request counters and latency histograms.
 *
 * Counters (requests, cache hits/misses, in-flight dedupes, failures,
 * timeouts) are lock-free atomics; latencies are recorded into two
 * sample histograms — one per executed pipeline, one per served
 * request (cache hits included) — from which p50/p95/max are read.
 * `render()` formats everything with the same `util::TextTable` the
 * report code uses, so an engine summary prints like a paper table.
 */

#ifndef HIERMEANS_ENGINE_METRICS_H
#define HIERMEANS_ENGINE_METRICS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hiermeans {
namespace engine {

/** A latency histogram storing raw samples (milliseconds). */
class LatencyHistogram
{
  public:
    /** Record one sample. Thread-safe. */
    void record(double millis);

    /** Number of samples recorded. */
    std::size_t count() const;

    /**
     * Percentile @p p in [0, 100] by nearest-rank over the recorded
     * samples; 0.0 when empty.
     */
    double percentile(double p) const;

    /** Largest sample, 0.0 when empty. */
    double max() const;

    /** Arithmetic mean of the samples, 0.0 when empty. */
    double mean() const;

    /** Sum of all samples (milliseconds), 0.0 when empty. */
    double sum() const;

    /**
     * Cumulative counts per upper bound in @p bounds (ascending) —
     * the Prometheus `_bucket` series; result[i] counts samples
     * <= bounds[i]. The implicit +Inf bucket equals count().
     */
    std::vector<std::uint64_t>
    cumulativeCounts(const std::vector<double> &bounds) const;

  private:
    mutable std::mutex mutex_;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Point-in-time copy of every engine metric. */
struct MetricsSnapshot
{
    std::uint64_t requests = 0;       ///< total submits.
    std::uint64_t cacheHits = 0;      ///< served straight from cache.
    std::uint64_t dedupedInFlight = 0;///< piggybacked on a running twin.
    std::uint64_t executions = 0;     ///< pipelines actually run.
    std::uint64_t failures = 0;       ///< executions that threw.
    std::uint64_t timeouts = 0;       ///< requests past their deadline.
    std::uint64_t cancellations = 0;  ///< requests whose caller gave up.
    std::uint64_t cacheInsertFailures = 0; ///< results served uncached.

    /** Cache hits / lookups, 0.0 before the first request. */
    double cacheHitRatio = 0.0;

    struct Latency
    {
        std::size_t count = 0;
        double p50 = 0.0;
        double p95 = 0.0;
        double max = 0.0;
        double mean = 0.0;
    };
    Latency request;  ///< wall time per served request (hits ~0).
    Latency pipeline; ///< wall time per executed pipeline.
};

/** Counters + histograms shared by every engine worker. */
class EngineMetrics
{
  public:
    void onRequest() { ++requests_; }
    void onCacheHit() { ++cacheHits_; }
    void onDedupedInFlight() { ++dedupedInFlight_; }
    void onExecution() { ++executions_; }
    void onFailure() { ++failures_; }
    void onTimeout() { ++timeouts_; }
    void onCancelled() { ++cancellations_; }
    void onCacheInsertFailure() { ++cacheInsertFailures_; }

    /** Record the wall time of one served request. */
    void recordRequest(double millis) { requestLatency_.record(millis); }

    /** Record the wall time of one executed pipeline. */
    void recordPipeline(double millis) { pipelineLatency_.record(millis); }

    /** Consistent-enough snapshot of all counters and percentiles. */
    MetricsSnapshot snapshot() const;

    /** Raw histograms — bucket data for Prometheus exposition. */
    const LatencyHistogram &requestHistogram() const
    {
        return requestLatency_;
    }
    const LatencyHistogram &pipelineHistogram() const
    {
        return pipelineLatency_;
    }

    /** Render the snapshot as two aligned text tables. */
    std::string render() const;

  private:
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> dedupedInFlight_{0};
    std::atomic<std::uint64_t> executions_{0};
    std::atomic<std::uint64_t> failures_{0};
    std::atomic<std::uint64_t> timeouts_{0};
    std::atomic<std::uint64_t> cancellations_{0};
    std::atomic<std::uint64_t> cacheInsertFailures_{0};
    LatencyHistogram requestLatency_;
    LatencyHistogram pipelineLatency_;
};

} // namespace engine
} // namespace hiermeans

#endif // HIERMEANS_ENGINE_METRICS_H
