#include "src/engine/result_cache.h"

#include <algorithm>

#include "src/util/error.h"

namespace hiermeans {
namespace engine {

std::size_t
estimateBytes(const CachedResult &result)
{
    std::size_t bytes = sizeof(CachedResult);
    for (const auto &row : result.report.rows) {
        bytes += sizeof(row);
        bytes += row.partition.size() * sizeof(std::size_t);
    }
    if (result.analysis) {
        const auto &a = *result.analysis;
        bytes += sizeof(core::ClusterAnalysis);
        bytes += a.vectors.features.rows() * a.vectors.features.cols() *
                 sizeof(double);
        for (const auto &name : a.vectors.workloadNames)
            bytes += name.size() + sizeof(std::string);
        for (const auto &name : a.vectors.featureNames)
            bytes += name.size() + sizeof(std::string);
        bytes += a.map.weights().rows() * a.map.weights().cols() *
                 sizeof(double);
        bytes += a.gridPositions.rows() * a.gridPositions.cols() *
                 sizeof(double);
        bytes += a.bmus.size() * sizeof(std::size_t);
        for (const auto &partition : a.partitions)
            bytes += partition.size() * sizeof(std::size_t);
        // Dendrogram merge history: ~3 words per merge, n-1 merges.
        bytes += a.bmus.size() * 3 * sizeof(double);
    }
    return bytes;
}

ResultCache::ResultCache(Config config) : config_(config)
{
    HM_REQUIRE(config_.maxEntries >= 1,
               "ResultCache: maxEntries must be >= 1");
}

std::optional<CachedResult>
ResultCache::get(std::uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(fingerprint);
    if (it == index_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second); // promote to MRU.
    return it->second->result;
}

void
ResultCache::put(std::uint64_t fingerprint, CachedResult result)
{
    const std::size_t bytes = estimateBytes(result);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.insertions;

    const auto it = index_.find(fingerprint);
    if (it != index_.end()) {
        totalBytes_ -= it->second->bytes;
        lru_.erase(it->second);
        index_.erase(it);
    }
    if (bytes > config_.maxBytes)
        return; // would never fit; treat as an immediate eviction.

    lru_.push_front(Entry{fingerprint, std::move(result), bytes});
    index_[fingerprint] = lru_.begin();
    totalBytes_ += bytes;
    evictUntilBounded();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    totalBytes_ = 0;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

std::size_t
ResultCache::byteEstimate() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return totalBytes_;
}

std::vector<std::pair<std::uint64_t, CachedResult>>
ResultCache::exportEntries(std::size_t limit) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::uint64_t, CachedResult>> entries;
    entries.reserve(limit == 0 ? lru_.size()
                               : std::min(limit, lru_.size()));
    for (const Entry &entry : lru_) {
        if (limit != 0 && entries.size() >= limit)
            break;
        entries.emplace_back(entry.fingerprint, entry.result);
    }
    return entries;
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ResultCache::evictUntilBounded()
{
    while (lru_.size() > config_.maxEntries ||
           totalBytes_ > config_.maxBytes) {
        const Entry &victim = lru_.back();
        totalBytes_ -= victim.bytes;
        index_.erase(victim.fingerprint);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

} // namespace engine
} // namespace hiermeans
