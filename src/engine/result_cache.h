/**
 * @file
 * Thread-safe LRU cache from request fingerprints to pipeline results.
 *
 * The expensive half of a scoring request — SOM training plus the
 * dendrogram — depends only on (features, config, seed), and suite
 * studies re-score the same data under hundreds of config/machine
 * combinations. The cache keeps recently-computed `ScoreReport`s and
 * their `ClusterAnalysis` behind the 64-bit content fingerprint, bounded
 * both by entry count and by an estimate of resident bytes; the least
 * recently used entry is evicted when either bound is exceeded.
 */

#ifndef HIERMEANS_ENGINE_RESULT_CACHE_H
#define HIERMEANS_ENGINE_RESULT_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/pipeline.h"
#include "src/scoring/score_report.h"

namespace hiermeans {
namespace engine {

/** A cached pipeline result: the report plus the shared analysis. */
struct CachedResult
{
    scoring::ScoreReport report;
    /** Shared (immutable) cluster analysis; may be null for
     *  report-only entries. */
    std::shared_ptr<const core::ClusterAnalysis> analysis;
    /** Cluster count of the report's recommended row. */
    std::size_t recommendedK = 0;
};

/**
 * Rough resident-size estimate of a cached result in bytes (partition
 * labels, report rows, analysis matrices). Used for the byte bound;
 * intentionally an estimate, not an exact accounting.
 */
std::size_t estimateBytes(const CachedResult &result);

/** A bounded, thread-safe LRU map fingerprint -> CachedResult. */
class ResultCache
{
  public:
    struct Config
    {
        /** Maximum number of entries (>= 1). */
        std::size_t maxEntries = 256;
        /** Maximum total estimated bytes across entries. */
        std::size_t maxBytes = 64ull * 1024 * 1024;
    };

    /** Cumulative counters (monotonic since construction). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
    };

    /** Cache with the default bounds. */
    ResultCache() : ResultCache(Config{}) {}

    explicit ResultCache(Config config);

    /**
     * Look up @p fingerprint; a hit promotes the entry to
     * most-recently-used and returns a copy of the cached result.
     */
    std::optional<CachedResult> get(std::uint64_t fingerprint);

    /**
     * Insert (or overwrite) the entry for @p fingerprint, then evict
     * LRU entries until both bounds hold. A result estimated larger
     * than maxBytes is dropped immediately (never resident).
     */
    void put(std::uint64_t fingerprint, CachedResult result);

    /** Remove every entry (counters are preserved). */
    void clear();

    /**
     * Copies of up to @p limit resident entries, most recently used
     * first (0 = all). The export half of persistence warm-start:
     * a serving layer snapshots these (report + recommendedK; the
     * analysis is not persisted) and re-put()s them after a restart
     * so the first requests answer hot.
     */
    std::vector<std::pair<std::uint64_t, CachedResult>>
    exportEntries(std::size_t limit = 0) const;

    /** Current entry count. */
    std::size_t size() const;

    /** Current total estimated bytes. */
    std::size_t byteEstimate() const;

    /** Snapshot of the cumulative counters. */
    Stats stats() const;

  private:
    struct Entry
    {
        std::uint64_t fingerprint = 0;
        CachedResult result;
        std::size_t bytes = 0;
    };

    void evictUntilBounded(); // requires mutex_ held.

    Config config_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< front = most recently used.
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    std::size_t totalBytes_ = 0;
    Stats stats_;
};

} // namespace engine
} // namespace hiermeans

#endif // HIERMEANS_ENGINE_RESULT_CACHE_H
