#include "src/engine/thread_pool.h"

namespace hiermeans {
namespace engine {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    HM_REQUIRE(num_threads >= 1,
               "ThreadPool: need at least one worker thread");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

std::size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shuttingDown_ && workers_.empty())
            return;
        shuttingDown_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this]() {
                return shuttingDown_ || !queue_.empty();
            });
            // Drain the queue even during shutdown so no accepted
            // task (and no future) is abandoned.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // packaged_task captures any exception in its future.
    }
}

} // namespace engine
} // namespace hiermeans
