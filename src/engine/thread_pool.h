/**
 * @file
 * A fixed-size worker thread pool with a FIFO task queue and futures.
 *
 * The execution substrate of the scoring engine: `submit` hands a
 * callable to one of N long-lived workers and returns a `std::future`
 * for its result. Exceptions thrown by a task propagate through the
 * future (via `std::packaged_task`), so a crashing task never takes a
 * worker down. Shutdown is clean and drains the queue: every task that
 * was accepted runs to completion before the workers join, so no
 * future obtained from `submit` is ever abandoned.
 */

#ifndef HIERMEANS_ENGINE_THREAD_POOL_H
#define HIERMEANS_ENGINE_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/util/error.h"

namespace hiermeans {
namespace engine {

/** A fixed-size pool of worker threads executing queued tasks in FIFO
 *  submission order (start order; completion order is unspecified). */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers. Requires num_threads >= 1. */
    explicit ThreadPool(std::size_t num_threads);

    /** Drains the queue and joins the workers (see shutdown()). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task and return a future for its result. The task's
     * return value (or exception) is delivered through the future.
     * Throws InvalidArgument after shutdown() has begun.
     */
    template <typename F>
    auto
    submit(F task) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<Result()>>(
            std::move(task));
        std::future<Result> future = packaged->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            HM_REQUIRE(!shuttingDown_,
                       "ThreadPool::submit: pool is shut down");
            queue_.emplace_back([packaged]() { (*packaged)(); });
        }
        wake_.notify_one();
        return future;
    }

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

    /** Tasks accepted but not yet started. */
    std::size_t pendingTasks() const;

    /**
     * Stop accepting new tasks, run every already-queued task to
     * completion, and join the workers. Idempotent; called by the
     * destructor when not invoked explicitly.
     */
    void shutdown();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool shuttingDown_ = false;
};

} // namespace engine
} // namespace hiermeans

#endif // HIERMEANS_ENGINE_THREAD_POOL_H
