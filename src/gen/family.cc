#include "src/gen/family.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/workload/execution_model.h"

namespace hiermeans {
namespace gen {

namespace {

const char *const kFamilyNames[kFamilyCount] = {
    "bigdata",
    "spec-int-historical",
    "correlated-cluster",
    "heavy-tail",
};

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const char c : text) {
        hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        hash *= 1099511628211ULL;
    }
    return hash;
}

double
clamp01(double v)
{
    return std::min(0.99, std::max(0.01, v));
}

/**
 * A cluster archetype expressed through the profile fields the MICA
 * synthesizer actually consumes (memory-traffic / alloc-GC /
 * scheduling / code-churn latents, fpFraction, log2 working set) plus
 * the execution traits that shape scores. Cluster separation planted
 * anywhere else would be invisible to the characterization.
 */
struct Archetype
{
    const char *tag;
    double mem;    ///< latent[LatentMemoryTraffic] center.
    double alloc;  ///< latent[LatentAllocGc] center.
    double sched;  ///< latent[LatentScheduling] center.
    double churn;  ///< latent[LatentCodeChurn] center.
    double fp;     ///< fpFraction center.
    double wsLog2; ///< log2(workingSetMb) center.
    double io;     ///< ioShare center (execution model only).
    double work;   ///< workUnits center.
};

// Datacenter/big-data styles after Jia et al.: large working sets,
// heavy memory traffic and I/O, near-zero FP outside analytics.
const Archetype kBigData[] = {
    {"batch-analytics", 0.75, 0.45, 0.35, 0.30, 0.10, 10.0, 0.30, 3.0},
    {"kv-serving", 0.35, 0.25, 0.80, 0.55, 0.05, 7.0, 0.15, 1.2},
    {"stream-ingest", 0.55, 0.80, 0.55, 0.40, 0.08, 8.5, 0.45, 1.8},
    {"ml-train", 0.60, 0.30, 0.25, 0.20, 0.75, 9.5, 0.10, 4.0},
    {"graph-traverse", 0.85, 0.35, 0.45, 0.35, 0.05, 11.0, 0.20, 2.5},
    {"log-compact", 0.45, 0.60, 0.30, 0.25, 0.03, 9.0, 0.60, 1.5},
    {"web-render", 0.30, 0.55, 0.65, 0.75, 0.10, 6.5, 0.12, 1.0},
    {"olap-scan", 0.80, 0.20, 0.20, 0.15, 0.30, 11.5, 0.35, 3.5},
};

// SPEC-integer generations after Wang et al.: integer/branch heavy,
// footprint and work volume growing generation over generation.
const Archetype kSpecInt[] = {
    {"gen92-compress", 0.20, 0.08, 0.20, 0.15, 0.05, 3.5, 0.02, 0.8},
    {"gen95-gcc", 0.40, 0.35, 0.55, 0.75, 0.04, 5.5, 0.05, 1.2},
    {"gen2000-parser", 0.62, 0.55, 0.35, 0.40, 0.03, 7.5, 0.04, 1.8},
    {"gen2006-mcf", 0.90, 0.30, 0.60, 0.20, 0.02, 9.5, 0.03, 2.6},
    {"gen92-eqntott", 0.25, 0.08, 0.55, 0.15, 0.03, 3.5, 0.02, 0.7},
    {"gen95-perl", 0.40, 0.50, 0.50, 0.60, 0.05, 5.0, 0.06, 1.1},
    {"gen2000-vortex", 0.55, 0.55, 0.40, 0.55, 0.03, 6.8, 0.08, 1.6},
    {"gen2006-xalanc", 0.70, 0.60, 0.60, 0.65, 0.04, 8.2, 0.05, 2.2},
};

// Stress case: centers separated only along two correlated axis
// pairs (memory traffic moves with footprint, scheduling with code
// churn) — the shape naive single-feature subsetting collapses.
const Archetype kCorrelated[] = {
    {"lo-lo", 0.20, 0.30, 0.20, 0.20, 0.25, 5.0, 0.05, 1.2},
    {"hi-lo", 0.55, 0.30, 0.20, 0.20, 0.25, 8.0, 0.05, 1.8},
    {"lo-hi", 0.20, 0.30, 0.55, 0.55, 0.25, 5.0, 0.05, 1.4},
    {"hi-hi", 0.55, 0.30, 0.55, 0.55, 0.25, 8.0, 0.05, 2.0},
    {"xhi-lo", 0.90, 0.30, 0.20, 0.20, 0.25, 10.5, 0.05, 2.6},
    {"lo-xhi", 0.20, 0.30, 0.90, 0.90, 0.25, 5.0, 0.05, 1.0},
    {"xhi-xhi", 0.90, 0.30, 0.90, 0.90, 0.25, 10.5, 0.05, 2.8},
    {"hi-xhi", 0.55, 0.30, 0.90, 0.90, 0.25, 8.0, 0.05, 1.6},
};

// One dominant body plus small clusters at feature extremes; work
// volumes get an extra log-normal tail.
const Archetype kHeavyTail[] = {
    {"body", 0.45, 0.40, 0.45, 0.40, 0.20, 7.0, 0.10, 1.5},
    {"tail-mem", 0.97, 0.25, 0.15, 0.10, 0.03, 12.5, 0.05, 5.0},
    {"tail-fp", 0.15, 0.10, 0.10, 0.05, 0.95, 4.5, 0.02, 4.0},
    {"tail-churn", 0.25, 0.90, 0.90, 0.95, 0.03, 5.5, 0.30, 0.6},
    {"tail-io", 0.15, 0.25, 0.75, 0.30, 0.03, 10.0, 0.85, 0.9},
    {"tail-tiny", 0.10, 0.05, 0.10, 0.05, 0.10, 3.0, 0.01, 0.3},
    {"tail-wide", 0.75, 0.70, 0.60, 0.70, 0.40, 11.0, 0.25, 3.0},
    {"tail-branch", 0.20, 0.20, 0.95, 0.85, 0.02, 4.5, 0.05, 0.8},
};

std::size_t
anchorCount(FamilyKind kind)
{
    switch (kind) {
    case FamilyKind::BigData:
        return sizeof(kBigData) / sizeof(kBigData[0]);
    case FamilyKind::SpecIntHistorical:
        return sizeof(kSpecInt) / sizeof(kSpecInt[0]);
    case FamilyKind::CorrelatedCluster:
        return sizeof(kCorrelated) / sizeof(kCorrelated[0]);
    case FamilyKind::HeavyTail:
        return sizeof(kHeavyTail) / sizeof(kHeavyTail[0]);
    }
    return 0;
}

const Archetype *
anchors(FamilyKind kind)
{
    switch (kind) {
    case FamilyKind::BigData:
        return kBigData;
    case FamilyKind::SpecIntHistorical:
        return kSpecInt;
    case FamilyKind::CorrelatedCluster:
        return kCorrelated;
    case FamilyKind::HeavyTail:
        return kHeavyTail;
    }
    return nullptr;
}

workload::SuiteOrigin
familyOrigin(FamilyKind kind)
{
    switch (kind) {
    case FamilyKind::SpecIntHistorical:
        return workload::SuiteOrigin::SpecJvm98;
    case FamilyKind::CorrelatedCluster:
        return workload::SuiteOrigin::SciMark2;
    case FamilyKind::BigData:
    case FamilyKind::HeavyTail:
        break;
    }
    return workload::SuiteOrigin::DaCapo;
}

/**
 * Cluster centers for @p clusters. The first anchorCount() come from
 * the hand-tuned tables (the default configs never go past them);
 * extras are drawn from @p engine with the same separation scale so
 * over-sized configs stay deterministic and clusterable.
 */
std::vector<Archetype>
clusterCenters(FamilyKind kind, std::size_t clusters, rng::Engine &engine)
{
    const Archetype *table = anchors(kind);
    const std::size_t available = anchorCount(kind);
    std::vector<Archetype> centers;
    centers.reserve(clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
        if (c < available) {
            centers.push_back(table[c]);
            continue;
        }
        Archetype extra = table[c % available];
        extra.tag = "extra";
        extra.mem = clamp01(engine.uniform(0.05, 0.95));
        extra.alloc = clamp01(engine.uniform(0.05, 0.95));
        extra.sched = clamp01(engine.uniform(0.05, 0.95));
        extra.churn = clamp01(engine.uniform(0.05, 0.95));
        extra.fp = clamp01(engine.uniform(0.02, 0.9));
        extra.wsLog2 = engine.uniform(3.0, 12.0);
        centers.push_back(extra);
    }
    return centers;
}

/**
 * Planted labels in workload order. Balanced contiguous blocks for
 * most families; heavy-tail gives cluster 0 the body and each tail
 * cluster a small fixed share.
 */
std::vector<std::size_t>
plantedLabels(FamilyKind kind, std::size_t workloads, std::size_t clusters)
{
    std::vector<std::size_t> labels(workloads, 0);
    if (kind == FamilyKind::HeavyTail && clusters >= 2) {
        // Skewed but not overwhelming: a too-dominant body hogs SOM
        // units (magnification follows data density) and splits on
        // the map before the tails separate.
        std::size_t tail = std::max<std::size_t>(2, workloads / 6);
        // Keep the body dominant even for small workload counts.
        while (clusters >= 2 && tail * (clusters - 1) > workloads / 2 &&
               tail > 1)
            --tail;
        const std::size_t body = workloads - tail * (clusters - 1);
        std::size_t next = body;
        for (std::size_t c = 1; c < clusters; ++c)
            for (std::size_t i = 0; i < tail; ++i)
                labels[next++] = c;
        return labels;
    }
    for (std::size_t i = 0; i < workloads; ++i)
        labels[i] = i * clusters / workloads;
    return labels;
}

} // namespace

const char *
familyName(FamilyKind kind)
{
    const std::size_t index = static_cast<std::size_t>(kind);
    HM_REQUIRE(index < kFamilyCount, "unknown family kind " << index);
    return kFamilyNames[index];
}

const std::vector<std::string> &
familyNames()
{
    static const std::vector<std::string> names(kFamilyNames,
                                                kFamilyNames + kFamilyCount);
    return names;
}

FamilyKind
familyFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kFamilyCount; ++i)
        if (name == kFamilyNames[i])
            return static_cast<FamilyKind>(i);
    throw InvalidArgument("unknown workload family '" + name + "'");
}

bool
isFamilyName(const std::string &name)
{
    for (std::size_t i = 0; i < kFamilyCount; ++i)
        if (name == kFamilyNames[i])
            return true;
    return false;
}

std::size_t
familyMetricSlot(const std::string &name)
{
    for (std::size_t i = 0; i < kFamilyCount; ++i)
        if (name == kFamilyNames[i])
            return i;
    return kFamilyCount;
}

std::vector<std::string>
GeneratedSuite::workloadNames() const
{
    std::vector<std::string> names;
    names.reserve(profiles.size());
    for (const auto &profile : profiles)
        names.push_back(profile.name);
    return names;
}

GeneratedSuite
generateSuite(const FamilyConfig &config)
{
    HM_REQUIRE(config.workloads >= 4,
               "need at least 4 workloads, got " << config.workloads);
    HM_REQUIRE(config.clusters >= 2,
               "need at least 2 planted clusters, got " << config.clusters);
    HM_REQUIRE(config.clusters <= config.workloads,
               "clusters (" << config.clusters << ") exceed workloads ("
                            << config.workloads << ")");
    HM_REQUIRE(config.machines >= 2,
               "need at least 2 machines, got " << config.machines);
    HM_REQUIRE(config.withinJitter >= 0.0, "withinJitter must be >= 0");
    HM_REQUIRE(config.scoreNoise >= 0.0, "scoreNoise must be >= 0");

    const char *family = familyName(config.kind);

    GeneratedSuite suite;
    suite.config = config;
    suite.name = config.name.empty() ? std::string("gen.") + family
                                     : config.name;

    // One master stream per (family, seed); subsystem streams are
    // split in a fixed order so adding a consumer later cannot
    // perturb the existing ones.
    rng::Engine master(config.seed ^ fnv1a(family));
    rng::Engine centersEngine = master.split();
    rng::Engine jitterEngine = master.split();
    rng::Engine machineEngine = master.split();
    rng::Engine scoreEngine = master.split();

    const std::vector<Archetype> centers =
        clusterCenters(config.kind, config.clusters, centersEngine);
    const std::vector<std::size_t> labels =
        plantedLabels(config.kind, config.workloads, config.clusters);
    suite.planted = scoring::Partition::fromLabels(labels);

    // The correlated-cluster stress case narrows within-cluster
    // spread to keep its deliberately small center separation
    // recoverable; heavy-tail keeps its dominant body tight so the
    // linkage cut isolates the tails instead of splitting the body
    // (its heavy tail lives in the work volumes, not the features).
    double jitter = config.withinJitter;
    if (config.kind == FamilyKind::CorrelatedCluster)
        jitter *= 0.7;
    else if (config.kind == FamilyKind::HeavyTail)
        jitter *= 0.5;

    suite.profiles.reserve(config.workloads);
    for (std::size_t i = 0; i < config.workloads; ++i) {
        const std::size_t cluster = labels[i];
        const Archetype &base = centers[cluster];

        const double mem = clamp01(base.mem + jitterEngine.normal(0.0, jitter));
        const double alloc =
            clamp01(base.alloc + jitterEngine.normal(0.0, jitter));
        const double sched =
            clamp01(base.sched + jitterEngine.normal(0.0, jitter));
        const double churn =
            clamp01(base.churn + jitterEngine.normal(0.0, jitter));
        const double fp = clamp01(base.fp + jitterEngine.normal(0.0, jitter));
        const double wsLog2 =
            base.wsLog2 + jitterEngine.normal(0.0, 4.0 * jitter);
        const double io =
            std::min(0.9, std::max(0.0, base.io +
                                            jitterEngine.normal(0.0, jitter)));
        double work = base.work * std::exp(jitterEngine.normal(0.0, 0.1));
        if (config.kind == FamilyKind::HeavyTail)
            work *= jitterEngine.logNormal(0.0, 0.6);

        workload::WorkloadProfile profile;
        char name[96];
        std::snprintf(name, sizeof(name), "%s.%s.w%02zu", family, base.tag, i);
        profile.name = name;
        profile.origin = familyOrigin(config.kind);
        profile.description = std::string(family) + " cluster " +
                              std::to_string(cluster) + " (" + base.tag + ")";
        profile.workUnits = work;
        profile.fpFraction = fp;
        profile.workingSetMb = std::pow(2.0, wsLog2);
        profile.allocationMbPerSec = 0.5 + 40.0 * alloc;
        profile.ioShare = io;
        profile.threads = 1 + static_cast<int>(base.sched * 7.0);
        profile.latent[workload::LatentCpuUser] =
            clamp01(1.0 - 0.5 * mem - 0.5 * io);
        profile.latent[workload::LatentFpIntensity] = fp;
        profile.latent[workload::LatentMemoryTraffic] = mem;
        profile.latent[workload::LatentAllocGc] = alloc;
        profile.latent[workload::LatentPaging] =
            clamp01(0.5 * mem + (wsLog2 - 4.0) / 16.0);
        profile.latent[workload::LatentIo] = io;
        profile.latent[workload::LatentScheduling] = sched;
        profile.latent[workload::LatentCodeChurn] = churn;
        profile.methodSeedGroup = suite.name;
        suite.profiles.push_back(std::move(profile));
    }

    // MICA panel: function of the profiles and a seed derived from the
    // suite seed only — no machine, no wall clock.
    workload::MicaConfig mica;
    mica.seed = config.seed ^ 0xA5C39E0D17ULL;
    suite.features = workload::MicaFeatureSynthesizer(mica).generate(
        suite.profiles);

    // Machines: [0] is the unit-rate reference; the rest draw their
    // component rates from the machine stream in a fixed order.
    suite.machines.reserve(config.machines);
    workload::MachineSpec reference;
    reference.name = "ref";
    reference.cpu = "synthetic reference";
    suite.machines.push_back(reference);
    for (std::size_t m = 1; m < config.machines; ++m) {
        workload::MachineSpec spec;
        spec.name = "m" + std::to_string(m);
        spec.cpu = "synthetic machine " + std::to_string(m);
        spec.cpuRate = machineEngine.uniform(0.5, 3.0);
        spec.memRate = machineEngine.uniform(0.5, 2.5);
        spec.mlatRate = machineEngine.uniform(0.4, 2.5);
        spec.sysRate = machineEngine.uniform(0.5, 2.0);
        spec.ioRate = machineEngine.uniform(0.4, 2.0);
        spec.clockGhz = spec.cpuRate * 1.2;
        spec.l2CacheMb = spec.mlatRate * 2.0;
        spec.memoryGb = spec.memRate * 2.0;
        spec.memoryPressureFactor = machineEngine.uniform(0.8, 1.5);
        suite.machines.push_back(std::move(spec));
    }

    // Scores: ideal-speedup vs the reference plus multiplicative
    // log-normal measurement noise, accumulated in fixed (w, m) order.
    const workload::ExecutionModel model(0.0);
    suite.scores = linalg::Matrix(config.workloads, config.machines, 0.0);
    for (std::size_t w = 0; w < config.workloads; ++w) {
        const workload::ComponentWork work =
            workload::ExecutionModel::workFromProfile(suite.profiles[w]);
        const double refTime = model.idealTime(work, suite.machines[0]);
        for (std::size_t m = 0; m < config.machines; ++m) {
            const double time = model.idealTime(work, suite.machines[m]);
            const double noise =
                std::exp(scoreEngine.normal(0.0, config.scoreNoise));
            suite.scores(w, m) = (refTime / time) * noise;
        }
    }

    return suite;
}

} // namespace gen
} // namespace hiermeans
