/**
 * @file
 * Deterministic synthetic workload-family generators.
 *
 * The paper (Sections V-C, VI) argues the hierarchical-means method
 * generalizes past its 13 Java workloads once characterization uses
 * microarchitecture-independent features. This module supplies the
 * suites to prove it on: seeded family models that synthesize
 * workload::WorkloadProfile populations with *planted* cluster
 * structure — the ground-truth partition is known by construction, so
 * a generated suite can assert that the SOM + linkage pipeline
 * recovers it (ARI against the planted labels).
 *
 * Determinism contract: a GeneratedSuite is a pure function of its
 * FamilyConfig. All random draws come from rng::Engine streams split
 * in a fixed order, every loop accumulates in a fixed order, and the
 * MICA synthesizer is seeded from the suite seed — so the same seed
 * yields bit-identical suites (and bit-identical rendered artifacts),
 * making generated suites valid WAL/snapshot citizens.
 *
 * The four families:
 *  - bigdata: datacenter/big-data style (Jia et al.) — I/O and
 *    memory-traffic heavy clusters with large working sets;
 *  - spec-int-historical: SPEC-integer generations (Wang et al.) —
 *    integer/branch-heavy clusters whose work volume and footprint
 *    grow generation over generation;
 *  - correlated-cluster: a stress case — cluster centers separated
 *    only along correlated axis pairs, the shape that defeats naive
 *    single-feature subsetting;
 *  - heavy-tail: one dominant body cluster plus small outlier
 *    clusters at feature extremes, with heavy-tailed work volumes.
 */

#ifndef HIERMEANS_GEN_FAMILY_H
#define HIERMEANS_GEN_FAMILY_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/linalg/matrix.h"
#include "src/scoring/partition.h"
#include "src/workload/machine.h"
#include "src/workload/mica_features.h"
#include "src/workload/workload_profile.h"

namespace hiermeans {
namespace gen {

/** The synthetic workload families. */
enum class FamilyKind : std::size_t
{
    BigData = 0,
    SpecIntHistorical,
    CorrelatedCluster,
    HeavyTail,
};

/** Number of families (metric label sets add an "other" slot). */
inline constexpr std::size_t kFamilyCount = 4;

/** Wire/CLI name of @p kind ("bigdata", "spec-int-historical", ...). */
const char *familyName(FamilyKind kind);

/** All family names, in FamilyKind order. */
const std::vector<std::string> &familyNames();

/** Parse a family name; throws InvalidArgument on unknown names. */
FamilyKind familyFromName(const std::string &name);

/** True when @p name is one of familyNames(). */
bool isFamilyName(const std::string &name);

/**
 * Metric label slot for @p name: the FamilyKind index for a known
 * family, kFamilyCount (the "other" slot) for anything else. Keeps
 * the hiermeans_gen_* label set bounded no matter what clients send.
 */
std::size_t familyMetricSlot(const std::string &name);

/** Configuration of one generated suite. */
struct FamilyConfig
{
    FamilyKind kind = FamilyKind::BigData;
    std::uint64_t seed = 0x6E11;
    /** Suite name; "" derives "gen.<family>". */
    std::string name;
    std::size_t workloads = 24;
    /** Planted cluster count (>= 2, <= workloads). */
    std::size_t clusters = 4;
    /** Machines including the reference (machines[0]); >= 2. */
    std::size_t machines = 4;
    /** Within-cluster latent jitter (std dev per axis). */
    double withinJitter = 0.03;
    /** Multiplicative measurement noise on scores (log-normal). */
    double scoreNoise = 0.005;
};

/** A fully synthesized suite with its planted ground truth. */
struct GeneratedSuite
{
    std::string name;
    FamilyConfig config;
    std::vector<workload::WorkloadProfile> profiles;
    /** Ground truth: the planted partition, in profile order. */
    scoring::Partition planted = scoring::Partition::single(1);
    /** MICA-style features, rows in profile order. */
    workload::MicaFeatures features;
    /** machines[0] is the reference (unit rates). */
    std::vector<workload::MachineSpec> machines;
    /** workloads x machines speedups vs the reference; all positive. */
    linalg::Matrix scores;

    /** Profile names, in order (CSV row labels). */
    std::vector<std::string> workloadNames() const;
};

/**
 * Synthesize a suite from @p config. Pure function of the config:
 * identical configs yield bit-identical suites. Throws
 * InvalidArgument on degenerate configs (fewer than 2 clusters or
 * machines, clusters > workloads, workloads < 4).
 */
GeneratedSuite generateSuite(const FamilyConfig &config);

} // namespace gen
} // namespace hiermeans

#endif // HIERMEANS_GEN_FAMILY_H
