#include "src/gen/manifest.h"

#include <cstdio>
#include <sstream>

#include "src/core/csv_io.h"
#include "src/util/error.h"
#include "src/wire/wire.h"

namespace hiermeans {
namespace gen {

namespace {

std::string
joinPath(const std::string &dir, const char *file)
{
    std::string base = dir.empty() ? "." : dir;
    if (base.back() != '/')
        base.push_back('/');
    return base + file;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

SuiteArtifacts
renderArtifacts(const GeneratedSuite &suite, const std::string &data_dir)
{
    HM_REQUIRE(!suite.profiles.empty(), "suite has no workloads");
    HM_REQUIRE(suite.machines.size() >= 2, "suite has fewer than 2 machines");

    SuiteArtifacts out;
    const std::vector<std::string> names = suite.workloadNames();

    // scores.csv
    {
        std::ostringstream csv;
        csv << "workload";
        for (const auto &machine : suite.machines)
            csv << ',' << machine.name;
        csv << '\n';
        for (std::size_t w = 0; w < names.size(); ++w) {
            csv << names[w];
            for (std::size_t m = 0; m < suite.machines.size(); ++m)
                csv << ',' << formatDouble(suite.scores(w, m));
            csv << '\n';
        }
        out.scoresCsv = csv.str();
    }

    // features.csv
    {
        std::ostringstream csv;
        csv << "workload";
        for (const auto &feature : suite.features.featureNames)
            csv << ',' << feature;
        csv << '\n';
        for (std::size_t w = 0; w < names.size(); ++w) {
            csv << names[w];
            for (std::size_t f = 0; f < suite.features.values.cols(); ++f)
                csv << ',' << formatDouble(suite.features.values(w, f));
            csv << '\n';
        }
        out.featuresCsv = csv.str();
    }

    out.truthCsv = core::partitionToCsv(suite.planted, names);

    const std::string scoresPath = joinPath(data_dir, "scores.csv");
    const std::string featuresPath = joinPath(data_dir, "features.csv");
    for (std::size_t m = 1; m < suite.machines.size(); ++m) {
        std::ostringstream line;
        line << "id=" << suite.name << '.' << suite.machines[m].name
             << " scores=" << scoresPath << " features=" << featuresPath
             << " machine-a=" << suite.machines[m].name << " machine-b="
             << suite.machines[0].name << " som-steps=150 seed="
             << suite.config.seed;
        out.manifestLines.push_back(line.str());
    }

    for (const auto &line : out.manifestLines) {
        out.manifestText += line;
        out.manifestText.push_back('\n');
    }
    out.manifestBinary = wire::encodeBatchManifest(out.manifestLines);

    {
        std::ostringstream json;
        json << "{\"suite\":\"" << jsonEscape(suite.name) << "\",\"family\":\""
             << familyName(suite.config.kind) << "\",\"seed\":"
             << suite.config.seed << ",\"workloads\":" << names.size()
             << ",\"clusters\":" << suite.planted.clusterCount()
             << ",\"machines\":[";
        for (std::size_t m = 0; m < suite.machines.size(); ++m) {
            if (m)
                json << ',';
            json << '"' << jsonEscape(suite.machines[m].name) << '"';
        }
        json << "],\"lines\":[";
        for (std::size_t i = 0; i < out.manifestLines.size(); ++i) {
            if (i)
                json << ',';
            json << '"' << jsonEscape(out.manifestLines[i]) << '"';
        }
        json << "]}\n";
        out.manifestJson = json.str();
    }

    return out;
}

} // namespace gen
} // namespace hiermeans
