/**
 * @file
 * Rendering of a GeneratedSuite into on-disk / on-wire artifacts.
 *
 * One GeneratedSuite becomes the document set the rest of the stack
 * consumes: scores/features CSVs (core::parseScoresCsv /
 * parseFeaturesCsv compatible), the planted ground-truth partition
 * CSV (core::parsePartitionCsv compatible), and a registration
 * manifest in all three wire shapes — engine manifest text, a JSON
 * description, and an HMW1 BatchManifest frame. Text and binary agree
 * bit-for-bit: BatchView(manifestBinary).manifestText() ==
 * manifestText, so an hmconvert round trip is cmp-identical.
 *
 * All floating-point values are printed with %.17g so parsing them
 * back reproduces the exact double — rendering is as deterministic as
 * generation.
 */

#ifndef HIERMEANS_GEN_MANIFEST_H
#define HIERMEANS_GEN_MANIFEST_H

#include <string>
#include <vector>

#include "src/gen/family.h"

namespace hiermeans {
namespace gen {

/** The rendered artifact set of one generated suite. */
struct SuiteArtifacts
{
    /** scores.csv: workload,<machines...> rows (all positive). */
    std::string scoresCsv;
    /** features.csv: workload,<mica features...> rows. */
    std::string featuresCsv;
    /** truth.csv: the planted partition as workload,cluster rows. */
    std::string truthCsv;
    /** One engine manifest line per non-reference machine. */
    std::vector<std::string> manifestLines;
    /** The lines joined, every line newline-terminated. */
    std::string manifestText;
    /** JSON description (suite, family, seed, machines, lines). */
    std::string manifestJson;
    /** One HMW1 BatchManifest frame over manifestLines. */
    std::string manifestBinary;
};

/**
 * Render @p suite. @p data_dir is the directory prefix baked into the
 * manifest's scores=/features= keys (where the caller will write
 * scores.csv and features.csv); "" means ".".
 */
SuiteArtifacts renderArtifacts(const GeneratedSuite &suite,
                               const std::string &data_dir);

/** %.17g rendering shared by the artifact writers and tests. */
std::string formatDouble(double value);

} // namespace gen
} // namespace hiermeans

#endif // HIERMEANS_GEN_MANIFEST_H
