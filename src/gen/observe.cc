#include "src/gen/observe.h"

#include <string>

#include "src/util/error.h"

namespace hiermeans {
namespace gen {

ObservationSchedule
generateSchedule(const ObserveConfig &config)
{
    HM_REQUIRE(config.shiftTarget > 0.0, "shiftTarget must be positive");

    static const double kBases[4] = {1.0, 2.0, 3.0, 4.0};

    ObservationSchedule schedule;
    schedule.shiftIndex = config.stationary;
    schedule.observations.reserve(config.stationary + config.shifted);
    for (std::size_t i = 0; i < config.stationary + config.shifted; ++i) {
        const double wobble = 0.002 * static_cast<double>(i % 7);
        const double ratio = i < config.stationary
                                 ? kBases[i % 4] + wobble
                                 : config.shiftTarget + wobble;
        wire::Observation obs;
        obs.ratio = ratio;
        obs.hasPlain = true;
        obs.plainRatio = ratio - 0.001 * static_cast<double>(i % 5);
        obs.id = "gen-obs-" + std::to_string(i);
        schedule.observations.push_back(std::move(obs));
    }
    return schedule;
}

} // namespace gen
} // namespace hiermeans
