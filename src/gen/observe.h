/**
 * @file
 * Generated observation streams with a known mean-shift schedule.
 *
 * The drift monitor (src/drift) promises fresh→drifting→stale
 * hysteresis under a mean shift; this module manufactures the input
 * that proves it: a deterministic observation stream whose first
 * @ref ObserveConfig::stationary ticks cycle a fixed set of base
 * ratios (stationary regime) and whose remaining ticks jump to
 * @ref ObserveConfig::shiftTarget (shifted regime). The shift index
 * is part of the schedule, so a test or bench can assert *where*
 * detection should fire. No RNG: the stream is a pure function of
 * the config, same as every other gen artifact.
 */

#ifndef HIERMEANS_GEN_OBSERVE_H
#define HIERMEANS_GEN_OBSERVE_H

#include <cstddef>
#include <vector>

#include "src/wire/wire.h"

namespace hiermeans {
namespace gen {

/** Shape of a generated observation stream. */
struct ObserveConfig
{
    /** Ticks before the mean shift (cycling base ratios 1..4). */
    std::size_t stationary = 60;
    /** Ticks after the shift. */
    std::size_t shifted = 24;
    /** The shifted-regime mean ratio (far outside the bases). */
    double shiftTarget = 9.0;
};

/** The generated stream plus its ground-truth shift position. */
struct ObservationSchedule
{
    std::vector<wire::Observation> observations;
    /** Index of the first shifted observation (== config.stationary). */
    std::size_t shiftIndex = 0;
};

/** Generate the stream for @p config (deterministic, RNG-free). */
ObservationSchedule generateSchedule(const ObserveConfig &config);

} // namespace gen
} // namespace hiermeans

#endif // HIERMEANS_GEN_OBSERVE_H
