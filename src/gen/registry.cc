#include "src/gen/registry.h"

namespace hiermeans {
namespace gen {

const std::vector<std::string> &
genMetricLabels()
{
    static const std::vector<std::string> labels = [] {
        std::vector<std::string> out = familyNames();
        out.push_back("other");
        return out;
    }();
    return labels;
}

FamilyConfig
defaultConfig(FamilyKind kind, std::uint64_t seed)
{
    FamilyConfig config;
    config.kind = kind;
    config.seed = seed;
    switch (kind) {
    case FamilyKind::BigData:
    case FamilyKind::SpecIntHistorical:
        break;
    case FamilyKind::CorrelatedCluster:
        // The stress case keeps only a 0.35 center separation; more
        // samples per cluster keep recovery above the ARI floor.
        config.workloads = 28;
        break;
    case FamilyKind::HeavyTail:
        // One 12-workload body plus three 4-workload tails.
        break;
    }
    return config;
}

GeneratedSuite
generateNamed(const std::string &family, std::uint64_t seed)
{
    return generateSuite(defaultConfig(familyFromName(family), seed));
}

} // namespace gen
} // namespace hiermeans
