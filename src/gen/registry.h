/**
 * @file
 * Named presets over the family generators.
 *
 * The registry is the stable vocabulary shared by hmgen, the server's
 * per-family registration metrics and the benches: each family has a
 * default configuration (the one the `ctest -L gen` acceptance checks
 * run against) and a bounded metric label set — the four family names
 * plus an "other" slot for anything clients invent.
 */

#ifndef HIERMEANS_GEN_REGISTRY_H
#define HIERMEANS_GEN_REGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/gen/family.h"

namespace hiermeans {
namespace gen {

/** Metric label slots: one per family plus the trailing "other". */
inline constexpr std::size_t kGenMetricSlots = kFamilyCount + 1;

/** Label strings per metric slot, "other" last. */
const std::vector<std::string> &genMetricLabels();

/**
 * The default configuration of @p kind at @p seed — the config the
 * determinism and ground-truth-recovery acceptance tests pin down.
 */
FamilyConfig defaultConfig(FamilyKind kind, std::uint64_t seed);

/** Generate @p family (by name) at its default config and @p seed. */
GeneratedSuite generateNamed(const std::string &family, std::uint64_t seed);

} // namespace gen
} // namespace hiermeans

#endif // HIERMEANS_GEN_REGISTRY_H
