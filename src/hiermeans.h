/**
 * @file
 * Umbrella header for the hiermeans library.
 *
 * hiermeans reproduces "Hierarchical Means: Single Number Benchmarking
 * with Workload Cluster Analysis" (Yoo, Lee, Lee, Chow — IISWC 2007):
 * benchmark-suite scores that cancel workload redundancy by averaging
 * hierarchically over clusters discovered with a self-organizing map
 * and agglomerative clustering.
 *
 * Typical use:
 * @code
 *   using namespace hiermeans;
 *   auto vectors = core::characterizeRaw(measurements, names, features);
 *   auto analysis = core::analyzeClusters(vectors, core::PipelineConfig{});
 *   auto report = core::scoreAgainstClusters(
 *       analysis, stats::MeanKind::Geometric, scoresA, scoresB);
 *   std::cout << report.render("A", "B");
 * @endcode
 */

#ifndef HIERMEANS_HIERMEANS_H
#define HIERMEANS_HIERMEANS_H

// util
#include "src/util/cli.h"
#include "src/util/csv.h"
#include "src/util/error.h"
#include "src/util/fault.h"
#include "src/util/file.h"
#include "src/util/log.h"
#include "src/util/net.h"
#include "src/util/rng.h"
#include "src/util/signal.h"
#include "src/util/str.h"
#include "src/util/text_table.h"
#include "src/util/version.h"

// obs — tracing + Prometheus metrics exposition
#include "src/obs/prometheus.h"
#include "src/obs/trace.h"

// linalg
#include "src/linalg/distance.h"
#include "src/linalg/eigen.h"
#include "src/linalg/matrix.h"
#include "src/linalg/pca.h"
#include "src/linalg/standardize.h"
#include "src/linalg/vector.h"

// stats
#include "src/stats/bootstrap.h"
#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"
#include "src/stats/means.h"

// scoring — the paper's contribution
#include "src/scoring/hierarchical_mean.h"
#include "src/scoring/partition.h"
#include "src/scoring/score_report.h"
#include "src/scoring/score_table.h"
#include "src/scoring/sensitivity.h"

// som
#include "src/som/kernel.h"
#include "src/som/render.h"
#include "src/som/schedule.h"
#include "src/som/som.h"
#include "src/som/topology.h"
#include "src/som/umatrix.h"

// cluster
#include "src/cluster/agglomerative.h"
#include "src/cluster/dendrogram.h"
#include "src/cluster/gap_statistic.h"
#include "src/cluster/kmeans.h"
#include "src/cluster/linkage.h"
#include "src/cluster/render.h"
#include "src/cluster/validity.h"

// workload substrate
#include "src/workload/execution_model.h"
#include "src/workload/machine.h"
#include "src/workload/method_profile.h"
#include "src/workload/mica_features.h"
#include "src/workload/paper_data.h"
#include "src/workload/sar_counters.h"
#include "src/workload/suite.h"
#include "src/workload/workload_profile.h"

// core pipeline
#include "src/core/case_study.h"
#include "src/core/characterization.h"
#include "src/core/consensus.h"
#include "src/core/csv_io.h"
#include "src/core/pipeline.h"
#include "src/core/recommendation.h"
#include "src/core/redundancy.h"
#include "src/core/report.h"
#include "src/core/subsetting.h"

// engine — concurrent scoring service core
#include "src/engine/engine.h"
#include "src/engine/fingerprint.h"
#include "src/engine/manifest.h"
#include "src/engine/metrics.h"
#include "src/engine/result_cache.h"
#include "src/engine/thread_pool.h"

// store — durable state: WAL + snapshots, suites, score history
#include "src/store/record.h"
#include "src/store/snapshot.h"
#include "src/store/state.h"
#include "src/store/store.h"
#include "src/store/wal.h"

// wire — negotiated binary framing for the /v1 API surface
#include "src/wire/wire.h"

// drift — streaming suites: online re-clustering + drift detection
#include "src/drift/detector.h"
#include "src/drift/monitor.h"
#include "src/drift/online_som.h"

// gen — deterministic synthetic workload-family generators
#include "src/gen/family.h"
#include "src/gen/manifest.h"
#include "src/gen/observe.h"
#include "src/gen/registry.h"

// server — HTTP serving layer over the engine
#include "src/server/admission.h"
#include "src/server/api.h"
#include "src/server/client.h"
#include "src/server/cluster.h"
#include "src/server/http.h"
#include "src/server/json.h"
#include "src/server/resilience.h"
#include "src/server/router.h"
#include "src/server/server.h"
#include "src/server/server_metrics.h"
#include "src/server/suite_service.h"
#include "src/server/transport.h"
#include "src/server/watchdog.h"
#include "src/server/wire_json.h"

// mesh — multi-node cluster: ring sharding + WAL replication
#include "src/mesh/config.h"
#include "src/mesh/replica.h"
#include "src/mesh/ring.h"
#include "src/mesh/runtime.h"

// client — resilient front door (retries, failure taxonomy)
#include "src/client/cluster_client.h"
#include "src/client/retry.h"
#include "src/client/scoring_client.h"

#endif // HIERMEANS_HIERMEANS_H
