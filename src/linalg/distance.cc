#include "src/linalg/distance.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace linalg {

namespace {

void
requireSameSize(const Vector &a, const Vector &b)
{
    HM_REQUIRE(a.size() == b.size(), "distance: size mismatch "
                                         << a.size() << " vs " << b.size());
}

} // namespace

const char *
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Euclidean:
        return "euclidean";
      case Metric::SquaredEuclidean:
        return "sqeuclidean";
      case Metric::Manhattan:
        return "manhattan";
      case Metric::Chebyshev:
        return "chebyshev";
      case Metric::Cosine:
        return "cosine";
    }
    return "unknown";
}

Metric
parseMetric(const std::string &name)
{
    const std::string lower = str::toLower(name);
    if (lower == "euclidean" || lower == "l2")
        return Metric::Euclidean;
    if (lower == "sqeuclidean" || lower == "squared")
        return Metric::SquaredEuclidean;
    if (lower == "manhattan" || lower == "l1")
        return Metric::Manhattan;
    if (lower == "chebyshev" || lower == "linf")
        return Metric::Chebyshev;
    if (lower == "cosine")
        return Metric::Cosine;
    throw InvalidArgument("unknown metric `" + name + "`");
}

double
euclidean(const Vector &a, const Vector &b)
{
    return std::sqrt(squaredEuclidean(a, b));
}

double
squaredEuclidean(const Vector &a, const Vector &b)
{
    requireSameSize(a, b);
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double
manhattan(const Vector &a, const Vector &b)
{
    requireSameSize(a, b);
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += std::abs(a[i] - b[i]);
    return acc;
}

double
chebyshev(const Vector &a, const Vector &b)
{
    requireSameSize(a, b);
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc = std::max(acc, std::abs(a[i] - b[i]));
    return acc;
}

double
cosine(const Vector &a, const Vector &b)
{
    requireSameSize(a, b);
    const double na = norm(a);
    const double nb = norm(b);
    if (na == 0.0 && nb == 0.0)
        return 0.0;
    if (na == 0.0 || nb == 0.0)
        return 1.0;
    const double c = dot(a, b) / (na * nb);
    return 1.0 - std::clamp(c, -1.0, 1.0);
}

double
distance(Metric metric, const Vector &a, const Vector &b)
{
    switch (metric) {
      case Metric::Euclidean:
        return euclidean(a, b);
      case Metric::SquaredEuclidean:
        return squaredEuclidean(a, b);
      case Metric::Manhattan:
        return manhattan(a, b);
      case Metric::Chebyshev:
        return chebyshev(a, b);
      case Metric::Cosine:
        return cosine(a, b);
    }
    throw InternalError("unhandled metric");
}

Matrix
pairwiseDistances(const Matrix &points, Metric metric)
{
    const std::size_t n = points.rows();
    Matrix dist(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const Vector a = points.row(i);
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d = distance(metric, a, points.row(j));
            dist(i, j) = d;
            dist(j, i) = d;
        }
    }
    return dist;
}

} // namespace linalg
} // namespace hiermeans
