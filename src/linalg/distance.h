/**
 * @file
 * Point-to-point distance metrics and pairwise distance matrices.
 *
 * The paper uses Euclidean distance both inside the SOM (BMU search) and
 * as the point-to-point distance underneath the hierarchical clustering;
 * the additional metrics support ablation studies.
 */

#ifndef HIERMEANS_LINALG_DISTANCE_H
#define HIERMEANS_LINALG_DISTANCE_H

#include <functional>
#include <string>

#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"

namespace hiermeans {
namespace linalg {

/** Supported point-to-point metrics. */
enum class Metric { Euclidean, SquaredEuclidean, Manhattan, Chebyshev,
                    Cosine };

/** Name of a metric ("euclidean", ...). */
const char *metricName(Metric metric);

/** Parse a metric name; throws InvalidArgument on unknown names. */
Metric parseMetric(const std::string &name);

/** Euclidean distance ||a - b||_2. */
double euclidean(const Vector &a, const Vector &b);

/** Squared Euclidean distance ||a - b||_2^2. */
double squaredEuclidean(const Vector &a, const Vector &b);

/** Manhattan (L1) distance. */
double manhattan(const Vector &a, const Vector &b);

/** Chebyshev (L-infinity) distance. */
double chebyshev(const Vector &a, const Vector &b);

/**
 * Cosine distance 1 - cos(a, b). Defined as 0 when both vectors are
 * zero and 1 when exactly one is zero.
 */
double cosine(const Vector &a, const Vector &b);

/** Evaluate @p metric on a pair of points. */
double distance(Metric metric, const Vector &a, const Vector &b);

/**
 * Symmetric pairwise distance matrix over the rows of @p points
 * (diagonal is zero).
 */
Matrix pairwiseDistances(const Matrix &points,
                         Metric metric = Metric::Euclidean);

} // namespace linalg
} // namespace hiermeans

#endif // HIERMEANS_LINALG_DISTANCE_H
