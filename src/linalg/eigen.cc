#include "src/linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/error.h"

namespace hiermeans {
namespace linalg {

EigenDecomposition
eigenSymmetric(const Matrix &a, double symmetryTol, int sweepLimit)
{
    const std::size_t n = a.rows();
    HM_REQUIRE(a.rows() == a.cols(), "eigenSymmetric: matrix is "
                                         << a.rows() << "x" << a.cols());
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            HM_REQUIRE(std::abs(a(i, j) - a(j, i)) <= symmetryTol,
                       "eigenSymmetric: asymmetric at (" << i << ", " << j
                                                         << ")");
        }
    }

    Matrix work = a;
    Matrix vectors = Matrix::identity(n);

    auto off_diagonal_norm = [&]() {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j)
                acc += work(i, j) * work(i, j);
        return std::sqrt(2.0 * acc);
    };

    const double eps = 1e-12 * std::max(1.0, off_diagonal_norm());
    for (int sweep = 0; sweep < sweepLimit; ++sweep) {
        if (off_diagonal_norm() <= eps)
            break;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = work(p, q);
                if (std::abs(apq) <= eps / (static_cast<double>(n) *
                                            static_cast<double>(n))) {
                    continue;
                }
                const double app = work(p, p);
                const double aqq = work(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                // Apply the rotation J(p, q, theta)^T * A * J(p, q, theta).
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = work(k, p);
                    const double akq = work(k, q);
                    work(k, p) = c * akp - s * akq;
                    work(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = work(p, k);
                    const double aqk = work(q, k);
                    work(p, k) = c * apk - s * aqk;
                    work(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = vectors(k, p);
                    const double vkq = vectors(k, q);
                    vectors(k, p) = c * vkp - s * vkq;
                    vectors(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    Vector raw(n);
    for (std::size_t i = 0; i < n; ++i)
        raw[i] = work(i, i);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return raw[x] > raw[y];
    });

    EigenDecomposition out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        out.values[i] = raw[order[i]];
        for (std::size_t k = 0; k < n; ++k)
            out.vectors(k, i) = vectors(k, order[i]);
    }
    return out;
}

} // namespace linalg
} // namespace hiermeans
