/**
 * @file
 * Symmetric eigendecomposition via the cyclic Jacobi method.
 *
 * Used by PCA (principal components of the covariance matrix). The
 * matrices involved are small (dimension = number of features after
 * filtering, or number of workloads), so the O(d^3) Jacobi sweep is
 * entirely adequate and numerically robust.
 */

#ifndef HIERMEANS_LINALG_EIGEN_H
#define HIERMEANS_LINALG_EIGEN_H

#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"

namespace hiermeans {
namespace linalg {

/** Eigendecomposition of a symmetric matrix. */
struct EigenDecomposition
{
    /** Eigenvalues in descending order. */
    Vector values;
    /** Eigenvectors as matrix columns; column i pairs with values[i]. */
    Matrix vectors;
};

/**
 * Decompose the symmetric matrix @p a. Throws InvalidArgument when the
 * matrix is not square or not symmetric within @p symmetryTol.
 *
 * @param a symmetric input matrix.
 * @param symmetryTol allowed |a_ij - a_ji| asymmetry.
 * @param sweepLimit maximum number of full Jacobi sweeps.
 */
EigenDecomposition eigenSymmetric(const Matrix &a,
                                  double symmetryTol = 1e-9,
                                  int sweepLimit = 100);

} // namespace linalg
} // namespace hiermeans

#endif // HIERMEANS_LINALG_EIGEN_H
