#include "src/linalg/matrix.h"

#include <cmath>
#include <sstream>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double init)
    : rows_(rows), cols_(cols), data_(rows * cols, init)
{
}

Matrix
Matrix::fromRows(const std::vector<Vector> &rows)
{
    if (rows.empty())
        return Matrix();
    const std::size_t cols = rows.front().size();
    Matrix m(rows.size(), cols);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        HM_REQUIRE(rows[r].size() == cols,
                   "fromRows: row " << r << " has " << rows[r].size()
                                    << " columns, expected " << cols);
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    HM_REQUIRE(r < rows_ && c < cols_, "at(" << r << ", " << c
                                             << ") out of bounds for "
                                             << rows_ << "x" << cols_);
    return (*this)(r, c);
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    HM_REQUIRE(r < rows_ && c < cols_, "at(" << r << ", " << c
                                             << ") out of bounds for "
                                             << rows_ << "x" << cols_);
    return (*this)(r, c);
}

Vector
Matrix::row(std::size_t r) const
{
    HM_REQUIRE(r < rows_, "row " << r << " out of bounds (" << rows_ << ")");
    return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                  data_.begin() +
                      static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector
Matrix::column(std::size_t c) const
{
    HM_REQUIRE(c < cols_, "column " << c << " out of bounds (" << cols_
                                    << ")");
    Vector out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = (*this)(r, c);
    return out;
}

void
Matrix::setRow(std::size_t r, const Vector &values)
{
    HM_REQUIRE(r < rows_, "setRow: row " << r << " out of bounds");
    HM_REQUIRE(values.size() == cols_, "setRow: size " << values.size()
                                                       << " != cols "
                                                       << cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        (*this)(r, c) = values[c];
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    HM_REQUIRE(cols_ == other.rows_, "multiply: " << rows_ << "x" << cols_
                                                  << " times "
                                                  << other.rows_ << "x"
                                                  << other.cols_);
    Matrix out(rows_, other.cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0)
                continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                out(r, c) += a * other(k, c);
        }
    }
    return out;
}

Vector
Matrix::multiply(const Vector &v) const
{
    HM_REQUIRE(v.size() == cols_, "multiply: vector size " << v.size()
                                                           << " != cols "
                                                           << cols_);
    Vector out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += (*this)(r, c) * v[c];
        out[r] = acc;
    }
    return out;
}

Matrix
Matrix::selectColumns(const std::vector<std::size_t> &columns) const
{
    Matrix out(rows_, columns.size());
    for (std::size_t i = 0; i < columns.size(); ++i) {
        HM_REQUIRE(columns[i] < cols_, "selectColumns: column "
                                           << columns[i]
                                           << " out of bounds");
        for (std::size_t r = 0; r < rows_; ++r)
            out(r, i) = (*this)(r, columns[i]);
    }
    return out;
}

Matrix
Matrix::selectRows(const std::vector<std::size_t> &row_ids) const
{
    Matrix out(row_ids.size(), cols_);
    for (std::size_t i = 0; i < row_ids.size(); ++i) {
        HM_REQUIRE(row_ids[i] < rows_, "selectRows: row " << row_ids[i]
                                                          << " out of "
                                                             "bounds");
        for (std::size_t c = 0; c < cols_; ++c)
            out(i, c) = (*this)(row_ids[i], c);
    }
    return out;
}

bool
Matrix::approxEqual(const Matrix &other, double tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - other.data_[i]) > tol)
            return false;
    }
    return true;
}

std::string
Matrix::toString(int decimals) const
{
    std::ostringstream oss;
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            if (c > 0)
                oss << " ";
            oss << str::fixed((*this)(r, c), decimals);
        }
        oss << "\n";
    }
    return oss.str();
}

Matrix
covariance(const Matrix &observations)
{
    const std::size_t n = observations.rows();
    const std::size_t d = observations.cols();
    HM_REQUIRE(n >= 2, "covariance needs >= 2 observations, got " << n);

    Vector means(d, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            means[c] += observations(r, c);
    for (double &m : means)
        m /= static_cast<double>(n);

    Matrix cov(d, d, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < d; ++i) {
            const double di = observations(r, i) - means[i];
            if (di == 0.0)
                continue;
            for (std::size_t j = i; j < d; ++j)
                cov(i, j) += di * (observations(r, j) - means[j]);
        }
    }
    const double denom = static_cast<double>(n - 1);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = i; j < d; ++j) {
            cov(i, j) /= denom;
            cov(j, i) = cov(i, j);
        }
    }
    return cov;
}

} // namespace linalg
} // namespace hiermeans
