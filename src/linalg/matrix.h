/**
 * @file
 * Dense row-major matrix.
 *
 * Rows typically hold one observation (one workload's characteristic
 * vector); columns hold one feature (one counter / one method bit).
 */

#ifndef HIERMEANS_LINALG_MATRIX_H
#define HIERMEANS_LINALG_MATRIX_H

#include <cstddef>
#include <string>
#include <vector>

#include "src/linalg/vector.h"

namespace hiermeans {
namespace linalg {

/** A dense real matrix with row-major storage. */
class Matrix
{
  public:
    /** An empty 0x0 matrix. */
    Matrix() = default;

    /** A rows x cols matrix filled with @p init. */
    Matrix(std::size_t rows, std::size_t cols, double init = 0.0);

    /** Build from a list of equally-sized rows. */
    static Matrix fromRows(const std::vector<Vector> &rows);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    /** Element access with bounds checks in debug builds. */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Unchecked element access. */
    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Copy of row @p r. */
    Vector row(std::size_t r) const;

    /** Copy of column @p c. */
    Vector column(std::size_t c) const;

    /** Overwrite row @p r; the size must equal cols(). */
    void setRow(std::size_t r, const Vector &values);

    /** Pointer to the first element of row @p r (contiguous). */
    const double *rowData(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }
    double *rowData(std::size_t r) { return data_.data() + r * cols_; }

    /** Transposed copy. */
    Matrix transposed() const;

    /** Matrix product this * other; inner dimensions must agree. */
    Matrix multiply(const Matrix &other) const;

    /** Matrix-vector product (v.size() == cols()). */
    Vector multiply(const Vector &v) const;

    /** Select a subset of columns, in the given order. */
    Matrix selectColumns(const std::vector<std::size_t> &columns) const;

    /** Select a subset of rows, in the given order. */
    Matrix selectRows(const std::vector<std::size_t> &rows) const;

    /** True when shapes match and elements agree within @p tol. */
    bool approxEqual(const Matrix &other, double tol) const;

    /** Human-readable dump (for debugging and golden tests). */
    std::string toString(int decimals = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Sample covariance matrix of @p observations (rows = samples,
 * columns = features). Uses the n-1 denominator; requires >= 2 rows.
 */
Matrix covariance(const Matrix &observations);

} // namespace linalg
} // namespace hiermeans

#endif // HIERMEANS_LINALG_MATRIX_H
