#include "src/linalg/pca.h"

#include <algorithm>
#include <cmath>

#include "src/linalg/eigen.h"
#include "src/util/error.h"

namespace hiermeans {
namespace linalg {

Pca
Pca::fit(const Matrix &observations)
{
    HM_REQUIRE(observations.rows() >= 2,
               "Pca::fit needs >= 2 observations, got "
                   << observations.rows());
    Pca model;

    const std::size_t d = observations.cols();
    model.mean_.assign(d, 0.0);
    for (std::size_t r = 0; r < observations.rows(); ++r)
        for (std::size_t c = 0; c < d; ++c)
            model.mean_[c] += observations(r, c);
    for (double &m : model.mean_)
        m /= static_cast<double>(observations.rows());

    const Matrix cov = covariance(observations);
    EigenDecomposition eig = eigenSymmetric(cov);

    // Clamp tiny negative eigenvalues produced by round-off.
    for (double &v : eig.values)
        v = std::max(v, 0.0);

    model.eigenvalues_ = std::move(eig.values);
    model.components_ = std::move(eig.vectors);
    return model;
}

double
Pca::explainedVarianceRatio(std::size_t i) const
{
    HM_REQUIRE(i < eigenvalues_.size(), "component " << i
                                                     << " out of range");
    double total = 0.0;
    for (double v : eigenvalues_)
        total += v;
    return total > 0.0 ? eigenvalues_[i] / total : 0.0;
}

double
Pca::cumulativeExplainedVariance(std::size_t k) const
{
    HM_REQUIRE(k <= eigenvalues_.size(), "k " << k << " out of range");
    double total = 0.0;
    double head = 0.0;
    for (std::size_t i = 0; i < eigenvalues_.size(); ++i) {
        total += eigenvalues_[i];
        if (i < k)
            head += eigenvalues_[i];
    }
    return total > 0.0 ? head / total : 0.0;
}

Vector
Pca::project(const Vector &observation, std::size_t k) const
{
    HM_REQUIRE(observation.size() == dimension(),
               "project: observation has " << observation.size()
                                           << " features, model expects "
                                           << dimension());
    HM_REQUIRE(k >= 1 && k <= dimension(), "project: invalid k " << k);
    Vector centered = sub(observation, mean_);
    Vector out(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
        double acc = 0.0;
        for (std::size_t i = 0; i < dimension(); ++i)
            acc += components_(i, c) * centered[i];
        out[c] = acc;
    }
    return out;
}

Matrix
Pca::projectAll(const Matrix &observations, std::size_t k) const
{
    Matrix out(observations.rows(), k);
    for (std::size_t r = 0; r < observations.rows(); ++r) {
        const Vector p = project(observations.row(r), k);
        out.setRow(r, p);
    }
    return out;
}

Vector
Pca::reconstruct(const Vector &projected) const
{
    HM_REQUIRE(projected.size() <= dimension(),
               "reconstruct: projection wider than model dimension");
    Vector out = mean_;
    for (std::size_t c = 0; c < projected.size(); ++c)
        for (std::size_t i = 0; i < dimension(); ++i)
            out[i] += components_(i, c) * projected[c];
    return out;
}

} // namespace linalg
} // namespace hiermeans
