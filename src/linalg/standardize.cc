#include "src/linalg/standardize.h"

#include <cmath>

#include "src/util/error.h"

namespace hiermeans {
namespace linalg {

namespace {

/** Column mean and n-1 standard deviation. */
void
columnStats(const Matrix &m, Vector &means, Vector &stddevs)
{
    const std::size_t n = m.rows();
    const std::size_t d = m.cols();
    HM_REQUIRE(n >= 1, "standardize: empty matrix");
    means.assign(d, 0.0);
    stddevs.assign(d, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            means[c] += m(r, c);
    for (double &v : means)
        v /= static_cast<double>(n);
    if (n < 2)
        return; // stddevs stay zero
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            const double diff = m(r, c) - means[c];
            stddevs[c] += diff * diff;
        }
    }
    for (double &v : stddevs)
        v = std::sqrt(v / static_cast<double>(n - 1));
}

} // namespace

ColumnFilterResult
dropConstantColumns(const Matrix &observations, double tolerance)
{
    HM_REQUIRE(tolerance >= 0.0, "tolerance must be >= 0");
    Vector means, stddevs;
    columnStats(observations, means, stddevs);

    ColumnFilterResult result;
    for (std::size_t c = 0; c < observations.cols(); ++c) {
        if (stddevs[c] > tolerance)
            result.keptColumns.push_back(c);
        else
            result.droppedColumns.push_back(c);
    }
    result.filtered = observations.selectColumns(result.keptColumns);
    return result;
}

StandardizeResult
standardizeColumns(const Matrix &observations)
{
    StandardizeResult result;
    columnStats(observations, result.params.means, result.params.stddevs);
    result.standardized =
        applyStandardization(observations, result.params);
    return result;
}

Matrix
applyStandardization(const Matrix &observations,
                     const StandardizeParams &params)
{
    HM_REQUIRE(observations.cols() == params.means.size(),
               "applyStandardization: column count "
                   << observations.cols() << " != fitted "
                   << params.means.size());
    Matrix out(observations.rows(), observations.cols());
    for (std::size_t c = 0; c < observations.cols(); ++c) {
        const double mean = params.means[c];
        const double sd = params.stddevs[c];
        for (std::size_t r = 0; r < observations.rows(); ++r) {
            out(r, c) = sd > 0.0 ? (observations(r, c) - mean) / sd : 0.0;
        }
    }
    return out;
}

Matrix
minMaxScaleColumns(const Matrix &observations)
{
    const std::size_t n = observations.rows();
    const std::size_t d = observations.cols();
    HM_REQUIRE(n >= 1, "minMaxScaleColumns: empty matrix");
    Matrix out(n, d);
    for (std::size_t c = 0; c < d; ++c) {
        double lo = observations(0, c);
        double hi = observations(0, c);
        for (std::size_t r = 1; r < n; ++r) {
            lo = std::min(lo, observations(r, c));
            hi = std::max(hi, observations(r, c));
        }
        const double range = hi - lo;
        for (std::size_t r = 0; r < n; ++r) {
            out(r, c) =
                range > 0.0 ? (observations(r, c) - lo) / range : 0.5;
        }
    }
    return out;
}

} // namespace linalg
} // namespace hiermeans
