/**
 * @file
 * Feature standardization and constant-column filtering.
 *
 * Section IV-C of the paper: "Those counters that did not vary over
 * workloads were discarded because they provide no useful information
 * in distinguishing workloads. Moreover, each counter was standardized
 * prior to the cluster analysis, i.e., subtract the mean and divide by
 * standard deviation."
 */

#ifndef HIERMEANS_LINALG_STANDARDIZE_H
#define HIERMEANS_LINALG_STANDARDIZE_H

#include <vector>

#include "src/linalg/matrix.h"

namespace hiermeans {
namespace linalg {

/** Result of a column-filtering pass. */
struct ColumnFilterResult
{
    /** The matrix restricted to the surviving columns. */
    Matrix filtered;
    /** Original indices of the columns that survived, ascending. */
    std::vector<std::size_t> keptColumns;
    /** Original indices of the columns that were dropped, ascending. */
    std::vector<std::size_t> droppedColumns;
};

/**
 * Drop columns whose sample standard deviation is <= @p tolerance
 * (constant or near-constant features carry no discriminating power).
 */
ColumnFilterResult dropConstantColumns(const Matrix &observations,
                                       double tolerance = 1e-12);

/** Per-column standardization parameters. */
struct StandardizeParams
{
    Vector means;
    Vector stddevs; ///< population of columns; zero-variance handled below.
};

/** Result of standardization: transformed data plus the parameters. */
struct StandardizeResult
{
    Matrix standardized;
    StandardizeParams params;
};

/**
 * Z-score standardize each column: (x - mean) / stddev, using the n-1
 * sample standard deviation. Columns with zero variance become all-zero
 * (rather than NaN); callers normally remove them first with
 * dropConstantColumns().
 */
StandardizeResult standardizeColumns(const Matrix &observations);

/** Apply previously-fitted parameters to new observations. */
Matrix applyStandardization(const Matrix &observations,
                            const StandardizeParams &params);

/**
 * Min-max scale each column into [0, 1]. Zero-range columns map to 0.5.
 * Provided for ablations; the paper uses z-scores.
 */
Matrix minMaxScaleColumns(const Matrix &observations);

} // namespace linalg
} // namespace hiermeans

#endif // HIERMEANS_LINALG_STANDARDIZE_H
