#include "src/linalg/vector.h"

#include <cmath>

#include "src/util/error.h"

namespace hiermeans {
namespace linalg {

namespace {

void
requireSameSize(const Vector &a, const Vector &b, const char *op)
{
    HM_REQUIRE(a.size() == b.size(), op << ": size mismatch " << a.size()
                                        << " vs " << b.size());
}

} // namespace

Vector
add(const Vector &a, const Vector &b)
{
    requireSameSize(a, b, "add");
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

Vector
sub(const Vector &a, const Vector &b)
{
    requireSameSize(a, b, "sub");
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

Vector
scale(const Vector &a, double s)
{
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * s;
    return out;
}

void
axpy(double alpha, const Vector &x, Vector &y)
{
    requireSameSize(x, y, "axpy");
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += alpha * x[i];
}

double
dot(const Vector &a, const Vector &b)
{
    requireSameSize(a, b, "dot");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

double
norm(const Vector &a)
{
    return std::sqrt(dot(a, a));
}

double
sum(const Vector &a)
{
    double acc = 0.0;
    for (double v : a)
        acc += v;
    return acc;
}

double
mean(const Vector &a)
{
    HM_REQUIRE(!a.empty(), "mean of an empty vector");
    return sum(a) / static_cast<double>(a.size());
}

void
fill(Vector &a, double value)
{
    for (double &v : a)
        v = value;
}

bool
approxEqual(const Vector &a, const Vector &b, double tol)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::abs(a[i] - b[i]) > tol)
            return false;
    }
    return true;
}

} // namespace linalg
} // namespace hiermeans
