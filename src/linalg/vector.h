/**
 * @file
 * Dense vector operations.
 *
 * hiermeans characteristic vectors are plain `std::vector<double>`; this
 * header supplies the handful of BLAS-1 style operations the library
 * needs. Keeping the type an alias (rather than a wrapper class) makes
 * interop with user code and the synthesizers frictionless.
 */

#ifndef HIERMEANS_LINALG_VECTOR_H
#define HIERMEANS_LINALG_VECTOR_H

#include <cstddef>
#include <vector>

namespace hiermeans {
namespace linalg {

/** A dense real vector. */
using Vector = std::vector<double>;

/** Element-wise sum a + b. Sizes must match. */
Vector add(const Vector &a, const Vector &b);

/** Element-wise difference a - b. Sizes must match. */
Vector sub(const Vector &a, const Vector &b);

/** Scalar multiple s * a. */
Vector scale(const Vector &a, double s);

/** In-place y += alpha * x. Sizes must match. */
void axpy(double alpha, const Vector &x, Vector &y);

/** Dot product. Sizes must match. */
double dot(const Vector &a, const Vector &b);

/** Euclidean (L2) norm. */
double norm(const Vector &a);

/** Sum of elements. */
double sum(const Vector &a);

/** Arithmetic mean of elements; requires a non-empty vector. */
double mean(const Vector &a);

/** Fill with a constant. */
void fill(Vector &a, double value);

/** True when sizes match and |a_i - b_i| <= tol for all i. */
bool approxEqual(const Vector &a, const Vector &b, double tol);

} // namespace linalg
} // namespace hiermeans

#endif // HIERMEANS_LINALG_VECTOR_H
