#include "src/mesh/config.h"

#include <sstream>
#include <unordered_set>

#include "src/util/error.h"
#include "src/util/file.h"

namespace hiermeans {
namespace mesh {

namespace {

std::string
trim(const std::string &text)
{
    const char *ws = " \t\r";
    const std::size_t first = text.find_first_not_of(ws);
    if (first == std::string::npos)
        return "";
    const std::size_t last = text.find_last_not_of(ws);
    return text.substr(first, last - first + 1);
}

std::size_t
parseCount(const std::string &value, const char *what, std::size_t line)
{
    HM_REQUIRE(!value.empty() &&
                   value.find_first_not_of("0123456789") ==
                       std::string::npos,
               "mesh config line " << line << ": " << what
                                   << " must be a non-negative integer, "
                                      "got '"
                                   << value << "'");
    return static_cast<std::size_t>(std::stoull(value));
}

} // namespace

std::vector<std::string>
MeshConfig::nodeIds() const
{
    std::vector<std::string> ids;
    ids.reserve(nodes.size());
    for (const MeshNode &n : nodes)
        ids.push_back(n.id);
    return ids;
}

const MeshNode &
MeshConfig::self() const
{
    return node(selfId);
}

const MeshNode &
MeshConfig::node(const std::string &id) const
{
    for (const MeshNode &n : nodes)
        if (n.id == id)
            return n;
    throw InvalidArgument("mesh config has no node '" + id + "'");
}

MeshConfig
parseMeshConfig(const std::string &text)
{
    MeshConfig config;
    bool sawSelf = false;

    std::istringstream stream(text);
    std::string raw;
    std::size_t lineNo = 0;
    while (std::getline(stream, raw)) {
        ++lineNo;
        std::string line = raw;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;

        if (line.rfind("node", 0) == 0 &&
            (line.size() == 4 || line[4] == ' ' || line[4] == '\t')) {
            std::istringstream fields(line);
            std::string keyword, id, endpoint, extra;
            fields >> keyword >> id >> endpoint;
            HM_REQUIRE(!id.empty() && !endpoint.empty() &&
                           !(fields >> extra),
                       "mesh config line "
                           << lineNo
                           << ": expected 'node <id> <host>:<port>'");
            const std::size_t colon = endpoint.rfind(':');
            HM_REQUIRE(colon != std::string::npos && colon > 0,
                       "mesh config line " << lineNo
                                           << ": endpoint '" << endpoint
                                           << "' has no ':port'");
            MeshNode node;
            node.id = id;
            node.host = endpoint.substr(0, colon);
            const std::size_t port = parseCount(
                endpoint.substr(colon + 1), "port", lineNo);
            HM_REQUIRE(port > 0 && port <= 65535,
                       "mesh config line " << lineNo << ": port "
                                           << port
                                           << " out of range 1..65535");
            node.port = static_cast<std::uint16_t>(port);
            config.nodes.push_back(node);
            continue;
        }

        const std::size_t eq = line.find('=');
        HM_REQUIRE(eq != std::string::npos,
                   "mesh config line " << lineNo
                                       << ": unrecognized directive '"
                                       << line << "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key == "self") {
            HM_REQUIRE(!value.empty(), "mesh config line "
                                           << lineNo
                                           << ": self must name a node");
            config.selfId = value;
            sawSelf = true;
        } else if (key == "replicas") {
            config.replicas = parseCount(value, "replicas", lineNo);
            HM_REQUIRE(config.replicas >= 1,
                       "mesh config line " << lineNo
                                           << ": replicas must be >= 1");
        } else if (key == "vnodes") {
            config.vnodes = parseCount(value, "vnodes", lineNo);
            HM_REQUIRE(config.vnodes >= 1,
                       "mesh config line " << lineNo
                                           << ": vnodes must be >= 1");
        } else {
            throw InvalidArgument("mesh config line " +
                                  std::to_string(lineNo) +
                                  ": unknown key '" + key + "'");
        }
    }

    HM_REQUIRE(!config.nodes.empty(),
               "mesh config declares no nodes");
    HM_REQUIRE(sawSelf, "mesh config is missing 'self = <id>'");
    std::unordered_set<std::string> ids;
    for (const MeshNode &n : config.nodes)
        HM_REQUIRE(ids.insert(n.id).second,
                   "mesh config declares node '" << n.id << "' twice");
    HM_REQUIRE(ids.count(config.selfId) == 1,
               "mesh config self '" << config.selfId
                                    << "' is not a declared node");
    HM_REQUIRE(config.replicas <= config.nodes.size(),
               "mesh config asks for " << config.replicas
                                       << " replicas but declares only "
                                       << config.nodes.size()
                                       << " nodes");
    return config;
}

MeshConfig
loadMeshConfig(const std::string &path)
{
    return parseMeshConfig(util::readFile(path));
}

} // namespace mesh
} // namespace hiermeans
