/**
 * @file
 * Static mesh membership configuration.
 *
 * A mesh config is a small line-oriented text file every node in the
 * cluster shares verbatim (plus its own `self`):
 *
 *     # 3-node loopback cluster
 *     self = a
 *     replicas = 2
 *     vnodes = 64
 *     node a 127.0.0.1:8377
 *     node b 127.0.0.1:8378
 *     node c 127.0.0.1:8379
 *
 * `replicas` counts total copies of a shard (leader included), so
 * `replicas = 2` means each node's WAL is mirrored to one follower.
 * `vnodes` is the virtual-node count per member on the hash ring;
 * all nodes must agree on it or their rings diverge. Membership is
 * static: changing it means editing the file and restarting — the
 * ring rebalance on such a change is deterministic and minimal
 * (see ring.h).
 */

#ifndef HIERMEANS_MESH_CONFIG_H
#define HIERMEANS_MESH_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace hiermeans {
namespace mesh {

/** One cluster member. */
struct MeshNode
{
    std::string id;   ///< unique short name, used for ring hashing
    std::string host; ///< reachable address for the other members
    std::uint16_t port = 0;
};

/** Parsed membership file. */
struct MeshConfig
{
    std::string selfId;        ///< which member this process is
    std::size_t replicas = 2;  ///< total copies per shard (>= 1)
    std::size_t vnodes = 64;   ///< ring points per node (>= 1)
    std::vector<MeshNode> nodes;

    /** Node ids in file order (ring construction input). */
    std::vector<std::string> nodeIds() const;

    /** The entry named by selfId. */
    const MeshNode &self() const;

    /** The entry named @p id; throws InvalidArgument when absent. */
    const MeshNode &node(const std::string &id) const;
};

/**
 * Parse a membership file body. Throws InvalidArgument (with the
 * offending line number) on unknown directives, malformed
 * `host:port`, duplicate ids, a missing/unknown `self`, fewer nodes
 * than `replicas`, or out-of-range numbers.
 */
MeshConfig parseMeshConfig(const std::string &text);

/** readFile + parseMeshConfig. */
MeshConfig loadMeshConfig(const std::string &path);

} // namespace mesh
} // namespace hiermeans

#endif // HIERMEANS_MESH_CONFIG_H
