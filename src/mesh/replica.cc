#include "src/mesh/replica.h"

#include <exception>

#include "src/util/error.h"
#include "src/util/file.h"

namespace hiermeans {
namespace mesh {

namespace {

/** The sequence stamped into a mutating payload (its first field). */
std::uint64_t
payloadSequence(const std::string &payload)
{
    store::BinaryReader reader(payload);
    return reader.u64();
}

} // namespace

ReplicaStore::ReplicaStore(Config config) : config_(std::move(config))
{
    HM_REQUIRE(!config_.dataDir.empty(),
               "ReplicaStore: dataDir must not be empty");
}

ReplicaStore::~ReplicaStore()
{
    try {
        close();
    } catch (const std::exception &) {
        // Best-effort: the WAL already holds everything.
    }
}

void
ReplicaStore::replayRecord(const store::Record &record)
{
    if (record.type == store::RecordType::SnapshotHeader) {
        // An install point: everything before it was superseded.
        const store::SnapshotHeader header =
            store::decodeSnapshotHeader(record.payload);
        state_ = store::StoreState(header.limits);
        replayHeaderSequence_ = header.lastSequence;
        return;
    }
    if (payloadSequence(record.payload) <= state_.lastSequence())
        return; // duplicate delivery that made it to disk.
    state_.apply(record);
}

void
ReplicaStore::open()
{
    std::lock_guard<std::mutex> lock(mutex_);
    HM_REQUIRE(wal_ == nullptr, "ReplicaStore::open called twice");
    util::ensureDir(config_.dataDir);

    const std::string wal_path = config_.dataDir + "/wal.log";
    replayHeaderSequence_ = 0;
    const store::ReplayResult replay = store::replayWal(
        wal_path,
        [this](const store::Record &record) { replayRecord(record); });
    if (replay.torn)
        store::truncateWalTail(wal_path, replay.validBytes);
    // The install point's sequence stands even when its body was
    // empty (a leader snapshot of an empty delta).
    if (replayHeaderSequence_ > state_.lastSequence())
        state_.setBaseline(replayHeaderSequence_);

    wal_ = std::make_unique<store::WalWriter>(
        wal_path, store::WalWriter::Config{config_.fsyncEvery});
}

void
ReplicaStore::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (wal_ == nullptr)
        return;
    wal_->sync();
    wal_.reset();
}

std::uint64_t
ReplicaStore::applyFrames(std::string_view frames)
{
    std::lock_guard<std::mutex> lock(mutex_);
    HM_REQUIRE(wal_ != nullptr, "ReplicaStore used before open()");
    store::FrameReader reader(frames);
    store::Record record;
    while (reader.next(record)) {
        HM_REQUIRE(record.type != store::RecordType::SnapshotHeader,
                   "ReplicaStore::applyFrames: snapshot images go "
                   "through installSnapshot");
        const std::uint64_t sequence = payloadSequence(record.payload);
        if (sequence <= state_.lastSequence())
            continue; // duplicate delivery (leader retry).
        // A gap means the leader shipped from a stale ack (e.g. this
        // replica lost its disk): refuse, so the leader resyncs from
        // the acked offset in the error answer instead of leaving a
        // hole in the mirror.
        HM_REQUIRE(sequence == state_.lastSequence() + 1,
                   "ReplicaStore::applyFrames: sequence gap: have "
                       << state_.lastSequence() << ", got " << sequence);
        wal_->append(record.type, record.payload);
        state_.apply(record);
    }
    HM_REQUIRE(!reader.sawCorruption(),
               "ReplicaStore::applyFrames: corrupt frame: "
                   << reader.corruption());
    // The ack offset must name durable state.
    wal_->sync();
    return state_.lastSequence();
}

std::uint64_t
ReplicaStore::installSnapshot(std::string_view image)
{
    std::lock_guard<std::mutex> lock(mutex_);
    HM_REQUIRE(wal_ != nullptr, "ReplicaStore used before open()");
    store::FrameReader reader(image);
    store::Record record;
    HM_REQUIRE(reader.next(record) &&
                   record.type == store::RecordType::SnapshotHeader,
               "ReplicaStore::installSnapshot: image must start with "
               "a SnapshotHeader frame");
    const store::SnapshotHeader header =
        store::decodeSnapshotHeader(record.payload);

    // Rebuild the WAL from the image so recovery replays to exactly
    // this state: header frame first (the install point), body after.
    wal_->reset();
    wal_->append(store::RecordType::SnapshotHeader, record.payload);
    store::StoreState fresh(header.limits);
    while (reader.next(record)) {
        wal_->append(record.type, record.payload);
        fresh.apply(record);
    }
    HM_REQUIRE(!reader.sawCorruption(),
               "ReplicaStore::installSnapshot: corrupt frame: "
                   << reader.corruption());
    fresh.setBaseline(header.lastSequence);
    state_ = std::move(fresh);
    wal_->sync();
    return state_.lastSequence();
}

std::uint64_t
ReplicaStore::lastSequence() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_.lastSequence();
}

std::optional<store::SuiteVersion>
ReplicaStore::resolveSuite(const std::string &name,
                           std::uint32_t version) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const store::SuiteVersion *found = state_.findSuite(name, version);
    if (found == nullptr)
        return std::nullopt;
    return *found;
}

std::vector<store::HistoryEntry>
ReplicaStore::history(const std::string &suite) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_.history(suite);
}

std::vector<store::Suite>
ReplicaStore::suites() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<store::Suite> copies;
    copies.reserve(state_.suites().size());
    for (const auto &[name, suite] : state_.suites())
        copies.push_back(suite);
    return copies;
}

std::vector<store::ScoreRecord>
ReplicaStore::scoreRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<store::ScoreRecord> copies;
    copies.reserve(state_.resultCount());
    for (const store::ScoreRecord *record : state_.results())
        copies.push_back(*record);
    return copies;
}

std::string
ReplicaStore::encodeStateBody() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_.encodeSnapshotBody();
}

} // namespace mesh
} // namespace hiermeans
