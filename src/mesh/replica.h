/**
 * @file
 * ReplicaStore: a follower's durable image of one leader's store.
 *
 * Each mesh node mirrors the stores of the leaders it follows, one
 * ReplicaStore per leader, in its own directory
 * (`<dataDir>/replica_<leaderId>/`). The leader ships its committed
 * WAL records verbatim (the CRC32-framed wire form of record.h);
 * the replica appends them to its own WAL, applies them to a
 * StoreState, fsyncs, and only then acknowledges — the ack offset
 * (`lastSequence`) therefore always names durable state, which is
 * what lets the leader treat an acked record as safe against its own
 * loss.
 *
 * Sequence spaces are per-leader (every leader stamps its own 1, 2,
 * 3, ...), which is why replica images are kept apart rather than
 * merged into the node's own StateStore. Duplicate shipping (a
 * leader retrying an unacked batch) is idempotent: frames at or
 * below the replica's lastSequence are skipped before they touch
 * the WAL.
 *
 * Catch-up past the leader's in-memory tail arrives as a full
 * snapshot image (SnapshotHeader frame + canonical body);
 * installSnapshot resets the replica WAL and rebuilds state from the
 * image. Recovery replays the replica WAL through the same paths —
 * a header frame mid-log marks the last install point.
 */

#ifndef HIERMEANS_MESH_REPLICA_H
#define HIERMEANS_MESH_REPLICA_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/store/state.h"
#include "src/store/wal.h"

namespace hiermeans {
namespace mesh {

/** A follower-side durable mirror of one leader's store. */
class ReplicaStore
{
  public:
    struct Config
    {
        std::string dataDir; ///< this replica's own directory.
        /** fsync cadence for the replica WAL (see WalWriter). An
         *  ack is preceded by an explicit sync regardless. */
        std::size_t fsyncEvery = 1;
    };

    explicit ReplicaStore(Config config);
    ~ReplicaStore();

    ReplicaStore(const ReplicaStore &) = delete;
    ReplicaStore &operator=(const ReplicaStore &) = delete;

    /**
     * Create the directory when absent and recover state from the
     * replica WAL (truncating a torn tail). Call once before any
     * other method.
     */
    void open();

    void close();

    /**
     * Append + apply a run of framed records shipped by the leader
     * (tail mode). Frames at or below lastSequence() are skipped
     * (duplicate delivery); the rest are WAL-appended, applied and
     * fsync'd. Returns the new durable lastSequence — the ack
     * offset. Throws InvalidArgument on a corrupt frame or a
     * SnapshotHeader (snapshots go through installSnapshot).
     */
    std::uint64_t applyFrames(std::string_view frames);

    /**
     * Replace the whole replica with a snapshot image (SnapshotHeader
     * frame + body, as produced by StateStore::snapshotImage). The
     * replica WAL is reset and rebuilt from the image so recovery
     * replays to the same state. Returns the new lastSequence.
     */
    std::uint64_t installSnapshot(std::string_view image);

    /** Highest sequence durably applied (the ack offset). */
    std::uint64_t lastSequence() const;

    // --- reads (copies, like StateStore's) ---------------------------

    std::optional<store::SuiteVersion>
    resolveSuite(const std::string &name, std::uint32_t version = 0) const;

    std::vector<store::HistoryEntry>
    history(const std::string &suite) const;

    std::vector<store::Suite> suites() const;

    std::vector<store::ScoreRecord> scoreRecords() const;

    /** Canonical state bytes (bit-comparable to the leader's
     *  encodeStateBody at the same sequence). */
    std::string encodeStateBody() const;

    const Config &config() const { return config_; }

  private:
    /** Shared WAL-replay logic for open(): headers reset the state,
     *  everything else applies under the duplicate guard. */
    void replayRecord(const store::Record &record);

    Config config_;
    mutable std::mutex mutex_;
    store::StoreState state_;
    std::unique_ptr<store::WalWriter> wal_;
    /** lastSequence named by the newest header seen during replay
     *  (0 when none): baseline once replay finishes. */
    std::uint64_t replayHeaderSequence_ = 0;
};

} // namespace mesh
} // namespace hiermeans

#endif // HIERMEANS_MESH_REPLICA_H
