#include "src/mesh/ring.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/error.h"

namespace hiermeans {
namespace mesh {

namespace {

constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kPrime = 0x100000001b3ULL;

} // namespace

std::uint64_t
hash64(const std::string &text)
{
    std::uint64_t state = kOffsetBasis;
    for (unsigned char byte : text) {
        state ^= byte;
        state *= kPrime;
    }
    return state;
}

HashRing::HashRing(const std::vector<std::string> &nodeIds,
                   std::size_t vnodes)
    : nodes_(nodeIds)
{
    HM_REQUIRE(!nodes_.empty(), "ring needs at least one node");
    HM_REQUIRE(vnodes > 0, "ring needs at least one virtual node");
    std::unordered_set<std::string> seen;
    for (const std::string &id : nodes_) {
        HM_REQUIRE(!id.empty(), "ring node id must be non-empty");
        HM_REQUIRE(seen.insert(id).second,
                   "duplicate ring node id: " << id);
    }

    points_.reserve(nodes_.size() * vnodes);
    for (std::size_t n = 0; n < nodes_.size(); ++n)
        for (std::size_t k = 0; k < vnodes; ++k)
            points_.push_back(
                {hash64(nodes_[n] + "#" + std::to_string(k)), n});
    // Ties broken by node index so equal-hash points (vanishingly
    // rare) still order identically on every process.
    std::sort(points_.begin(), points_.end(),
              [](const Point &a, const Point &b) {
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.node < b.node;
              });
}

std::size_t
HashRing::firstAt(std::uint64_t hash) const
{
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), hash,
        [](const Point &p, std::uint64_t h) { return p.hash < h; });
    if (it == points_.end())
        return 0; // wrap around
    return static_cast<std::size_t>(it - points_.begin());
}

const std::string &
HashRing::ownerOf(const std::string &key) const
{
    return nodes_[points_[firstAt(hash64(key))].node];
}

std::vector<std::string>
HashRing::replicasFor(const std::string &key, std::size_t count) const
{
    std::vector<std::string> out;
    if (count == 0)
        return out;
    std::unordered_set<std::size_t> picked;
    std::size_t at = firstAt(hash64(key));
    for (std::size_t step = 0;
         step < points_.size() && out.size() < count; ++step) {
        const std::size_t node = points_[(at + step) % points_.size()].node;
        if (picked.insert(node).second)
            out.push_back(nodes_[node]);
    }
    return out;
}

std::vector<std::string>
HashRing::successorsOf(const std::string &nodeId,
                       std::size_t count) const
{
    const auto self = std::find(nodes_.begin(), nodes_.end(), nodeId);
    HM_REQUIRE(self != nodes_.end(),
               "node not in ring: " << nodeId);
    std::vector<std::string> out;
    if (count == 0)
        return out;
    const std::size_t selfIndex =
        static_cast<std::size_t>(self - nodes_.begin());
    std::unordered_set<std::size_t> picked{selfIndex};
    std::size_t at = firstAt(hash64(nodeId + "#0"));
    for (std::size_t step = 0;
         step < points_.size() && out.size() < count; ++step) {
        const std::size_t node = points_[(at + step) % points_.size()].node;
        if (picked.insert(node).second)
            out.push_back(nodes_[node]);
    }
    return out;
}

} // namespace mesh
} // namespace hiermeans
