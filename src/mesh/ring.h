/**
 * @file
 * Consistent-hash ring sharding suites across mesh nodes.
 *
 * Each node contributes `vnodes` virtual points to a 64-bit hash
 * ring (FNV-1a, the same constants as engine::Fingerprint); a suite
 * name is owned by the first point at or clockwise after its hash.
 * Virtual nodes smooth the per-node share toward 1/N, and because
 * every point is derived only from the node id, assignment is fully
 * deterministic: two processes given the same membership list build
 * bit-identical rings. When a node joins or leaves, only the keys
 * whose owning arc moved change hands — the rebalance is minimal and
 * deterministic, never a full reshuffle.
 *
 * The ring also defines the replication order: `successorsOf` walks
 * distinct nodes clockwise from a node's first point, which the mesh
 * runtime uses to pick the followers that mirror a leader's WAL.
 */

#ifndef HIERMEANS_MESH_RING_H
#define HIERMEANS_MESH_RING_H

#include <cstdint>
#include <string>
#include <vector>

namespace hiermeans {
namespace mesh {

/** FNV-1a 64-bit hash of @p text (shared ring/string hashing). */
std::uint64_t hash64(const std::string &text);

/** Consistent-hash ring over a static node set with virtual nodes. */
class HashRing
{
  public:
    /**
     * Build a ring from unique node ids. @p vnodes points are placed
     * per node (each hashed from `id#k`). Throws InvalidArgument on
     * an empty node list, duplicate ids or vnodes == 0.
     */
    HashRing(const std::vector<std::string> &nodeIds, std::size_t vnodes);

    /** Node id owning @p key (first point clockwise of hash64(key)). */
    const std::string &ownerOf(const std::string &key) const;

    /**
     * Up to @p count distinct node ids for @p key in preference
     * order: the owner first, then successive distinct nodes
     * clockwise. Never repeats a node; shorter when the ring has
     * fewer than @p count nodes.
     */
    std::vector<std::string> replicasFor(const std::string &key,
                                         std::size_t count) const;

    /**
     * Up to @p count distinct node ids clockwise after @p nodeId's
     * first ring point, excluding @p nodeId itself. Throws
     * InvalidArgument when @p nodeId is not a member.
     */
    std::vector<std::string> successorsOf(const std::string &nodeId,
                                          std::size_t count) const;

    /** Member node ids, in construction order. */
    const std::vector<std::string> &nodes() const { return nodes_; }

    /** Number of ring points (nodes * vnodes). */
    std::size_t points() const { return points_.size(); }

  private:
    struct Point
    {
        std::uint64_t hash;
        std::size_t node; ///< index into nodes_
    };

    /** Index into points_ of the first point at/after @p hash. */
    std::size_t firstAt(std::uint64_t hash) const;

    std::vector<std::string> nodes_;
    std::vector<Point> points_; ///< sorted by (hash, node)
};

} // namespace mesh
} // namespace hiermeans

#endif // HIERMEANS_MESH_RING_H
