#include "src/mesh/runtime.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>

#include "src/obs/trace.h"
#include "src/server/api.h"
#include "src/server/json.h"
#include "src/util/error.h"
#include "src/util/log.h"
#include "src/wire/wire.h"

namespace hiermeans {
namespace mesh {

namespace {

const char *
healthName(int health)
{
    switch (health) {
    case 1:
        return "ok";
    case 2:
        return "down";
    default:
        return "unknown";
    }
}

/** The `"acked":N` field of a /v1/mesh/replicate answer (either the
 *  ok data object or the resync hint in an error object); 0 when
 *  absent or malformed. */
std::uint64_t
parseAcked(const std::string &body)
{
    const std::string key = "\"acked\":";
    const std::size_t at = body.find(key);
    if (at == std::string::npos)
        return 0;
    std::uint64_t value = 0;
    for (std::size_t i = at + key.size(); i < body.size(); ++i) {
        const char c = body[i];
        if (c < '0' || c > '9')
            break;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

} // namespace

MeshRuntime::MeshRuntime(Config config)
    : config_(std::move(config)),
      ring_(config_.mesh.nodeIds(), config_.mesh.vnodes)
{
    followers_ =
        ring_.successorsOf(config_.mesh.selfId, config_.mesh.replicas - 1);
    for (const MeshNode &node : config_.mesh.nodes) {
        if (node.id == config_.mesh.selfId)
            continue;
        auto peer = std::make_unique<Peer>();
        peer->node = node;
        peer->follower = std::find(followers_.begin(), followers_.end(),
                                   node.id) != followers_.end();
        peers_.emplace(node.id, std::move(peer));
    }
}

MeshRuntime::~MeshRuntime() { stop(); }

std::vector<std::string>
MeshRuntime::followedLeaders() const
{
    std::vector<std::string> leaders;
    for (const std::string &id : ring_.nodes()) {
        if (id == config_.mesh.selfId)
            continue;
        const std::vector<std::string> successors =
            ring_.successorsOf(id, config_.mesh.replicas - 1);
        if (std::find(successors.begin(), successors.end(),
                      config_.mesh.selfId) != successors.end())
            leaders.push_back(id);
    }
    return leaders;
}

void
MeshRuntime::start(store::StateStore *store)
{
    HM_REQUIRE(!started_, "MeshRuntime::start: already started");
    started_ = true;
    store_ = store;
    // Open the durable mirrors up front so a freshly-restarted node
    // can answer promoted reads before any replication arrives.
    if (!config_.dataDir.empty()) {
        std::lock_guard<std::mutex> lock(replicaMutex_);
        for (const std::string &leader : followedLeaders()) {
            auto replica = std::make_unique<ReplicaStore>(
                ReplicaStore::Config{
                    config_.dataDir + "/replica_" + leader, 1});
            replica->open();
            HM_LOG(Info) << "mesh: replica of `" << leader
                         << "` recovered, seq="
                         << replica->lastSequence();
            replicas_.emplace(leader, std::move(replica));
        }
    }
    background_ = std::thread([this]() { backgroundLoop(); });
}

void
MeshRuntime::stop()
{
    if (!started_ || stopping_.load())
        return;
    stopping_.store(true);
    if (background_.joinable())
        background_.join();
    std::lock_guard<std::mutex> lock(replicaMutex_);
    for (auto &[leader, replica] : replicas_) {
        (void)leader;
        replica->close();
    }
}

MeshRuntime::Peer *
MeshRuntime::peer(const std::string &nodeId)
{
    const auto found = peers_.find(nodeId);
    return found == peers_.end() ? nullptr : found->second.get();
}

bool
MeshRuntime::peerAlive(const std::string &nodeId)
{
    const Peer *found = peer(nodeId);
    // Unprobed peers route optimistically; the first failed relay or
    // probe marks them down.
    return found != nullptr && found->health.load() != 2;
}

server::ClusterRoute
MeshRuntime::routeSuite(const std::string &suite, bool isWrite)
{
    // Preference order: the ring owner, then the nodes that actually
    // mirror its store. Replication is node-level (a leader ships its
    // whole WAL to its ring successors), so the per-key clockwise
    // walk of replicasFor may name nodes holding no copy — failover
    // must follow successorsOf(owner) instead. Everyone else comes
    // last: they hold no mirror, but can still accept writes when
    // the whole replica set is gone.
    const std::string &owner = ring_.ownerOf(suite);
    std::vector<std::string> order{owner};
    if (config_.mesh.replicas > 1) {
        for (std::string &id :
             ring_.successorsOf(owner, config_.mesh.replicas - 1))
            order.push_back(std::move(id));
    }
    for (const std::string &id : ring_.nodes()) {
        if (std::find(order.begin(), order.end(), id) == order.end())
            order.push_back(id);
    }
    for (const std::string &id : order) {
        if (id == config_.mesh.selfId)
            return server::ClusterRoute{}; // Local (owner or promoted).
        if (!peerAlive(id))
            continue; // dead: fail over clockwise.
        if (id != order.front())
            failovers_.fetch_add(1, std::memory_order_relaxed);
        server::ClusterRoute route;
        route.action = isWrite ? server::ClusterRoute::Action::Forward
                               : server::ClusterRoute::Action::Redirect;
        route.nodeId = id;
        route.host = config_.mesh.node(id).host;
        route.port = config_.mesh.node(id).port;
        return route;
    }
    // Every preferred peer is down: serve locally, best effort.
    return server::ClusterRoute{};
}

server::HttpResponse
MeshRuntime::relay(const server::RequestContext &ctx,
                   const server::ClusterRoute &route)
{
    if (route.action == server::ClusterRoute::Action::Redirect) {
        redirects_.fetch_add(1, std::memory_order_relaxed);
        server::HttpResponse response;
        response.status = 307;
        response.set("Location", "http://" + route.host + ":" +
                                     std::to_string(route.port) +
                                     ctx.http.target);
        response.set("X-Hiermeans-Routed-To", route.nodeId);
        return response;
    }

    forwards_.fetch_add(1, std::memory_order_relaxed);
    obs::ScopedSpan span("mesh.forward");
    static const std::string kDefaultType = "application/json";
    static const std::string kEmpty;
    server::HttpClient::Headers headers{
        {server::kForwardedHeader, config_.mesh.selfId}};
    if (!ctx.traceId.empty())
        headers.push_back({"X-Hiermeans-Trace", ctx.traceId});
    // Forward the negotiated response format too: a client that asked
    // the router for binary gets binary from the shard owner.
    const std::string &accept = ctx.http.header("accept", kEmpty);
    if (!accept.empty())
        headers.push_back({"Accept", accept});
    // Hand the remaining budget downstream and cap our own wait to
    // it — the forwarded hop must not out-wait the client.
    double wait = config_.rpcTimeoutMillis;
    if (ctx.hasDeadline()) {
        const double remaining = ctx.remainingMillis();
        if (remaining <= 0.0) {
            forwardFailures_.fetch_add(1, std::memory_order_relaxed);
            return server::errorResponse(
                server::ApiError::DeadlineExpired,
                "mesh: client deadline spent before forward",
                ctx.traceId, "\"timed_out\":true");
        }
        headers.push_back({server::kDeadlineHeader,
                           server::json::number(remaining)});
        if (remaining < wait)
            wait = remaining;
    }
    try {
        // One connection per relay: forwards never contend with the
        // replication client for a peer.
        server::HttpClient client(route.host, route.port);
        client.setReadTimeoutMillis(wait);
        const server::HttpResponseParser::Response relayed =
            client.roundTrip(
                ctx.http.method, ctx.http.target, ctx.http.body,
                ctx.http.header("content-type", kDefaultType), headers);
        server::HttpResponse response;
        response.status = relayed.status;
        response.set("Content-Type",
                     relayed.header("content-type", kDefaultType));
        response.set("X-Hiermeans-Routed-To", route.nodeId);
        response.body = relayed.body;
        return response;
    } catch (const std::exception &e) {
        forwardFailures_.fetch_add(1, std::memory_order_relaxed);
        if (Peer *target = peer(route.nodeId))
            target->health.store(2);
        return server::errorResponse(
            server::ApiError::MeshUnreachable,
            "mesh: forward to `" + route.nodeId + "` failed: " +
                e.what(),
            ctx.traceId);
    }
}

bool
MeshRuntime::shipTo(Peer &target, double budget_millis)
{
    if (store_ == nullptr)
        return true;
    std::lock_guard<std::mutex> lock(target.rpcMutex);

    std::string body;
    const char *mode = "tail";
    std::size_t records = 0;
    {
        const std::optional<store::ReplicationBatch> batch =
            store_->framesSince(target.acked.load());
        if (batch.has_value()) {
            if (batch->records == 0)
                return true; // caught up: nothing to ship.
            body = batch->frames;
            records = batch->records;
        } else {
            // The tail no longer reaches back to the follower's ack:
            // reinstall it from a full snapshot image.
            body = store_->snapshotImage();
            mode = "snapshot";
            snapshotInstalls_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    if (target.client == nullptr) {
        target.client = std::make_unique<server::HttpClient>(
            target.node.host, target.node.port);
    }
    // The ack wait honors the requester's remaining deadline: a
    // caller with 200 ms left must not block 5 s on a slow follower.
    double wait = config_.rpcTimeoutMillis;
    if (budget_millis > 0.0 && budget_millis < wait)
        wait = budget_millis;
    target.client->setReadTimeoutMillis(wait);
    const std::string path = "/v1/mesh/replicate?leader=" +
                             config_.mesh.selfId + "&mode=" + mode;
    try {
        const server::HttpResponseParser::Response answer =
            target.client->roundTrip("POST", path, body,
                                     "application/octet-stream");
        if (answer.status != 200) {
            // The follower refused (e.g. a sequence gap after it lost
            // its disk). Its answer carries the true durable offset;
            // adopt it so the next ship resyncs from there.
            replicationFailures_.fetch_add(1,
                                           std::memory_order_relaxed);
            target.acked.store(parseAcked(answer.body));
            return false;
        }
        target.acked.store(parseAcked(answer.body));
        target.health.store(1);
        replicationBatches_.fetch_add(1, std::memory_order_relaxed);
        replicationRecords_.fetch_add(records,
                                      std::memory_order_relaxed);
        replicationBytes_.fetch_add(body.size(),
                                    std::memory_order_relaxed);
        return true;
    } catch (const std::exception &) {
        replicationFailures_.fetch_add(1, std::memory_order_relaxed);
        target.health.store(2);
        target.client->disconnect();
        return false;
    }
}

void
MeshRuntime::afterWrite(double budget_millis)
{
    if (store_ == nullptr)
        return;
    obs::ScopedSpan span("mesh.replicate");
    // Synchronous best-effort: an alive follower holds the record
    // durably before the client sees the ack; a dead one is marked
    // down and caught up by the background thread when it returns.
    for (const std::string &id : followers_) {
        Peer *target = peer(id);
        if (target != nullptr && target->health.load() != 2)
            shipTo(*target, budget_millis);
    }
}

std::optional<store::SuiteVersion>
MeshRuntime::replicaSuite(const std::string &name, std::uint32_t version)
{
    std::lock_guard<std::mutex> lock(replicaMutex_);
    for (const auto &[leader, replica] : replicas_) {
        (void)leader;
        std::optional<store::SuiteVersion> found =
            replica->resolveSuite(name, version);
        if (found.has_value())
            return found;
    }
    return std::nullopt;
}

std::vector<store::HistoryEntry>
MeshRuntime::replicaHistory(const std::string &suite)
{
    std::lock_guard<std::mutex> lock(replicaMutex_);
    for (const auto &[leader, replica] : replicas_) {
        (void)leader;
        if (replica->resolveSuite(suite, 0).has_value())
            return replica->history(suite);
    }
    return {};
}

server::HttpResponse
MeshRuntime::handleCluster(const server::RequestContext &ctx)
{
    std::ostringstream data;
    data << "{\"self\":" << server::json::quote(config_.mesh.selfId)
         << ",\"replicas\":" << config_.mesh.replicas
         << ",\"vnodes\":" << config_.mesh.vnodes
         << ",\"points\":" << ring_.points() << ",\"store_sequence\":"
         << (store_ != nullptr ? store_->lastSequence() : 0)
         << ",\"nodes\":[";
    bool first = true;
    for (const MeshNode &node : config_.mesh.nodes) {
        if (!first)
            data << ",";
        first = false;
        data << "{\"id\":" << server::json::quote(node.id)
             << ",\"host\":" << server::json::quote(node.host)
             << ",\"port\":" << node.port;
        if (node.id == config_.mesh.selfId) {
            data << ",\"self\":true,\"health\":"
                 << server::json::quote(selfHealth_ ? selfHealth_()
                                                    : "ok")
                 << ",\"follower\":false,\"acked\":0}";
            continue;
        }
        const Peer *entry = peers_.at(node.id).get();
        data << ",\"self\":false,\"health\":\""
             << healthName(entry->health.load()) << "\""
             << ",\"follower\":"
             << (entry->follower ? "true" : "false")
             << ",\"acked\":" << entry->acked.load() << "}";
    }
    data << "],\"follows\":[";
    {
        std::lock_guard<std::mutex> lock(replicaMutex_);
        bool first_replica = true;
        for (const auto &[leader, replica] : replicas_) {
            if (!first_replica)
                data << ",";
            first_replica = false;
            data << "{\"leader\":" << server::json::quote(leader)
                 << ",\"sequence\":" << replica->lastSequence() << "}";
        }
    }
    data << "]";
    // Advertise the binary wire formats this build speaks, so
    // `hmctl --check` can lint version agreement across a mesh.
    data << ",\"wire\":{\"version\":"
         << static_cast<unsigned>(wire::kWireVersion)
         << ",\"formats\":[\"json\",\"binary\"]}";
    if (driftSummary_)
        data << ",\"drift\":" << driftSummary_();
    data << "}";
    return server::okResponse(data.str(), ctx.traceId);
}

server::HttpResponse
MeshRuntime::handleReplicate(const server::RequestContext &ctx)
{
    const std::string leader = ctx.http.queryParam("leader", "");
    const std::string mode = ctx.http.queryParam("mode", "tail");
    if (leader.empty() || leader == config_.mesh.selfId)
        return server::errorResponse(
            server::ApiError::BadRequest,
            "replicate: `leader` must name another mesh member",
            ctx.traceId);
    bool member = false;
    for (const MeshNode &node : config_.mesh.nodes)
        member = member || node.id == leader;
    if (!member)
        return server::errorResponse(
            server::ApiError::BadRequest,
            "replicate: unknown leader `" + leader + "`", ctx.traceId);
    if (mode != "tail" && mode != "snapshot")
        return server::errorResponse(
            server::ApiError::BadRequest,
            "replicate: mode is `tail` or `snapshot`, got `" + mode +
                "`",
            ctx.traceId);
    if (config_.dataDir.empty())
        return server::errorResponse(
            server::ApiError::StoreDisabled,
            "replicate: this node has no data directory", ctx.traceId);

    ReplicaStore *replica = nullptr;
    {
        std::lock_guard<std::mutex> lock(replicaMutex_);
        auto found = replicas_.find(leader);
        if (found == replicas_.end()) {
            // A leader we did not expect (ring drift is impossible
            // with a shared config, but a lazily-created mirror is
            // harmless and keeps the protocol robust).
            auto fresh = std::make_unique<ReplicaStore>(
                ReplicaStore::Config{
                    config_.dataDir + "/replica_" + leader, 1});
            fresh->open();
            found = replicas_.emplace(leader, std::move(fresh)).first;
        }
        replica = found->second.get();
    }

    obs::ScopedSpan span("mesh.replicate.apply");
    const std::uint64_t before = replica->lastSequence();
    try {
        const std::uint64_t acked =
            mode == "snapshot"
                ? replica->installSnapshot(ctx.http.body)
                : replica->applyFrames(ctx.http.body);
        applyBatches_.fetch_add(1, std::memory_order_relaxed);
        if (acked > before)
            applyRecords_.fetch_add(acked - before,
                                    std::memory_order_relaxed);
        std::ostringstream data;
        data << "{\"leader\":" << server::json::quote(leader)
             << ",\"mode\":\"" << mode << "\",\"acked\":" << acked
             << "}";
        return server::okResponse(data.str(), ctx.traceId);
    } catch (const Error &e) {
        // Carry the durable offset so the leader resyncs from truth.
        return server::errorResponse(
            server::ApiError::BadRequest, e.what(), ctx.traceId,
            "\"acked\":" + std::to_string(replica->lastSequence()));
    }
}

void
MeshRuntime::backgroundLoop()
{
    const auto tick = std::chrono::milliseconds(
        config_.tickMillis > 0 ? config_.tickMillis : 500);
    while (!stopping_.load()) {
        for (auto &[id, entry] : peers_) {
            (void)id;
            if (stopping_.load())
                return;
            // Liveness probe (also how a down peer is noticed coming
            // back: routing and replication both consult `health`).
            {
                std::lock_guard<std::mutex> lock(entry->rpcMutex);
                if (entry->client == nullptr) {
                    entry->client =
                        std::make_unique<server::HttpClient>(
                            entry->node.host, entry->node.port);
                    entry->client->setReadTimeoutMillis(
                        config_.rpcTimeoutMillis);
                }
                try {
                    entry->client->roundTrip("GET", "/healthz");
                    entry->health.store(1);
                } catch (const std::exception &) {
                    entry->health.store(2);
                    entry->client->disconnect();
                }
            }
            // Catch-up: a follower that is alive but behind gets the
            // outstanding tail (or a snapshot) outside the write path.
            if (entry->follower && entry->health.load() == 1 &&
                store_ != nullptr &&
                entry->acked.load() < store_->lastSequence())
                shipTo(*entry);
        }
        // Sleep in short slices so stop() never waits a full tick.
        auto remaining = tick;
        while (remaining.count() > 0 && !stopping_.load()) {
            const auto slice =
                std::min(remaining, std::chrono::milliseconds(50));
            std::this_thread::sleep_for(slice);
            remaining -= slice;
        }
    }
}

MeshMetrics
MeshRuntime::metricsSnapshot() const
{
    MeshMetrics m;
    m.forwards = forwards_.load();
    m.forwardFailures = forwardFailures_.load();
    m.redirects = redirects_.load();
    m.failovers = failovers_.load();
    m.replicationBatches = replicationBatches_.load();
    m.replicationRecords = replicationRecords_.load();
    m.replicationBytes = replicationBytes_.load();
    m.replicationFailures = replicationFailures_.load();
    m.snapshotInstalls = snapshotInstalls_.load();
    m.applyBatches = applyBatches_.load();
    m.applyRecords = applyRecords_.load();
    return m;
}

void
MeshRuntime::renderMetrics(obs::PrometheusWriter &w)
{
    const MeshMetrics m = metricsSnapshot();

    w.header("hiermeans_mesh_nodes", "Configured mesh members.",
             "gauge");
    w.gauge("hiermeans_mesh_nodes", {},
            static_cast<double>(config_.mesh.nodes.size()));
    std::size_t alive = 1; // self.
    for (const auto &[id, entry] : peers_) {
        (void)id;
        if (entry->health.load() != 2)
            ++alive;
    }
    w.header("hiermeans_mesh_peers_alive",
             "Members not currently marked down (self included).",
             "gauge");
    w.gauge("hiermeans_mesh_peers_alive", {},
            static_cast<double>(alive));

    w.header("hiermeans_mesh_forwards_total",
             "Requests proxied to their shard owner.", "counter");
    w.counter("hiermeans_mesh_forwards_total", {}, m.forwards);
    w.header("hiermeans_mesh_forward_failures_total",
             "Proxied requests that failed to reach their target.",
             "counter");
    w.counter("hiermeans_mesh_forward_failures_total", {},
              m.forwardFailures);
    w.header("hiermeans_mesh_redirects_total",
             "Requests answered 307 toward their shard owner.",
             "counter");
    w.counter("hiermeans_mesh_redirects_total", {}, m.redirects);
    w.header("hiermeans_mesh_failovers_total",
             "Routes that skipped a dead owner clockwise.", "counter");
    w.counter("hiermeans_mesh_failovers_total", {}, m.failovers);

    w.header("hiermeans_mesh_replication_batches_total",
             "WAL batches shipped to followers.", "counter");
    w.counter("hiermeans_mesh_replication_batches_total", {},
              m.replicationBatches);
    w.header("hiermeans_mesh_replication_records_total",
             "WAL records shipped to followers.", "counter");
    w.counter("hiermeans_mesh_replication_records_total", {},
              m.replicationRecords);
    w.header("hiermeans_mesh_replication_bytes_total",
             "Replication payload bytes shipped.", "counter");
    w.counter("hiermeans_mesh_replication_bytes_total", {},
              m.replicationBytes);
    w.header("hiermeans_mesh_replication_failures_total",
             "Replication ships that failed or were refused.",
             "counter");
    w.counter("hiermeans_mesh_replication_failures_total", {},
              m.replicationFailures);
    w.header("hiermeans_mesh_snapshot_installs_total",
             "Followers reinstalled from a full snapshot image.",
             "counter");
    w.counter("hiermeans_mesh_snapshot_installs_total", {},
              m.snapshotInstalls);
    w.header("hiermeans_mesh_apply_batches_total",
             "Replication batches applied from leaders.", "counter");
    w.counter("hiermeans_mesh_apply_batches_total", {},
              m.applyBatches);
    w.header("hiermeans_mesh_apply_records_total",
             "Replication records applied from leaders.", "counter");
    w.counter("hiermeans_mesh_apply_records_total", {},
              m.applyRecords);

    w.header("hiermeans_mesh_follower_acked_sequence",
             "Durable ack offset per follower of this node.", "gauge");
    for (const auto &[id, entry] : peers_) {
        if (!entry->follower)
            continue;
        w.gauge("hiermeans_mesh_follower_acked_sequence",
                {{"node", id}},
                static_cast<double>(entry->acked.load()));
    }
    w.header("hiermeans_mesh_replica_sequence",
             "Durable sequence per mirrored leader.", "gauge");
    {
        std::lock_guard<std::mutex> lock(replicaMutex_);
        for (const auto &[leader, replica] : replicas_)
            w.gauge("hiermeans_mesh_replica_sequence",
                    {{"leader", leader}},
                    static_cast<double>(replica->lastSequence()));
    }
}

} // namespace mesh
} // namespace hiermeans
