/**
 * @file
 * MeshRuntime: the node-side brain of a hiermeans cluster.
 *
 * One MeshRuntime per `hmserved --mesh-config` process. It implements
 * server::ClusterHooks, which is how the suite-service layer consults
 * it without the server library depending on the mesh:
 *
 *   - *Sharding.* A consistent-hash ring (ring.h) over the static
 *     membership (config.h) assigns every suite name an owner.
 *     routeSuite()/relay() serve owned suites locally, proxy writes
 *     to the owner (stamping the X-Hiermeans-Forwarded loop guard)
 *     and 307-redirect reads.
 *   - *Replication.* This node is the leader of its own StateStore;
 *     its `replicas - 1` ring successors follow it. afterWrite()
 *     ships the committed WAL frames (StateStore::framesSince) to
 *     each follower via POST /v1/mesh/replicate and records the
 *     durable ack offset; a follower too far behind the in-memory
 *     tail is reinstalled from a full snapshot image. The background
 *     thread retries lagging followers and probes peer health.
 *   - *Failover.* When the ring owner of a suite is down, requests
 *     fail over clockwise to the first live replica; a surviving
 *     follower answers reads from its durable ReplicaStore image
 *     (replica.h) and accepts writes into its own store.
 *
 * Everything here is deterministic given the same membership file:
 * every node computes the same ring, the same owners, and the same
 * follower sets.
 */

#ifndef HIERMEANS_MESH_RUNTIME_H
#define HIERMEANS_MESH_RUNTIME_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/mesh/config.h"
#include "src/mesh/replica.h"
#include "src/mesh/ring.h"
#include "src/server/client.h"
#include "src/server/cluster.h"
#include "src/store/store.h"

namespace hiermeans {
namespace mesh {

/** Cluster-side counters (all monotonic except gauges). */
struct MeshMetrics
{
    std::uint64_t forwards = 0;
    std::uint64_t forwardFailures = 0;
    std::uint64_t redirects = 0;
    std::uint64_t failovers = 0;
    std::uint64_t replicationBatches = 0;
    std::uint64_t replicationRecords = 0;
    std::uint64_t replicationBytes = 0;
    std::uint64_t replicationFailures = 0;
    std::uint64_t snapshotInstalls = 0;
    std::uint64_t applyBatches = 0;
    std::uint64_t applyRecords = 0;
};

/** ClusterHooks implementation wiring ring + replication + relays. */
class MeshRuntime : public server::ClusterHooks
{
  public:
    struct Config
    {
        MeshConfig mesh;

        /** Directory holding replica_<leader>/ mirrors (normally the
         *  node's own store dataDir). */
        std::string dataDir;

        /** Peer RPC read timeout (replication, forwards, probes). */
        int rpcTimeoutMillis = 5000;

        /** Background health-probe + follower-catch-up cadence. */
        int tickMillis = 500;
    };

    explicit MeshRuntime(Config config);
    ~MeshRuntime() override;

    MeshRuntime(const MeshRuntime &) = delete;
    MeshRuntime &operator=(const MeshRuntime &) = delete;

    /**
     * Attach the node's own (already-open) store, open the durable
     * replica mirrors for every leader this node follows, and start
     * the background probe/catch-up thread. @p store may be null
     * (routing still works; replication is off).
     */
    void start(store::StateStore *store);

    /** Join the background thread and close the replica mirrors. */
    void stop();

    const HashRing &ring() const { return ring_; }
    const MeshConfig &meshConfig() const { return config_.mesh; }

    /** Node ids whose stores this node mirrors (ring predecessors). */
    std::vector<std::string> followedLeaders() const;

    /** Node ids mirroring this node's store (ring successors). */
    const std::vector<std::string> &followers() const
    {
        return followers_;
    }

    MeshMetrics metricsSnapshot() const;

    /**
     * Attach a provider of a drift-summary JSON value; its output is
     * spliced into /v1/cluster as the `drift` field. Set by hmserved
     * (Server::driftSummaryJson) — a std::function keeps the mesh
     * layer free of a drift dependency. Call before start().
     */
    void setDriftSummary(std::function<std::string()> provider)
    {
        driftSummary_ = std::move(provider);
    }

    /**
     * Attach a provider of this node's own health word ("ok" /
     * "draining") for /v1/cluster's self entry. Set by hmserved from
     * Server::draining() so peers planning a failover see the drain
     * before the socket closes. Call before start(); defaults to
     * "ok".
     */
    void setSelfHealth(std::function<std::string()> provider)
    {
        selfHealth_ = std::move(provider);
    }

    // --- server::ClusterHooks ----------------------------------------
    server::ClusterRoute routeSuite(const std::string &suite,
                                    bool isWrite) override;
    server::HttpResponse relay(const server::RequestContext &ctx,
                               const server::ClusterRoute &route) override;
    void afterWrite(double budget_millis) override;
    using server::ClusterHooks::afterWrite;
    std::optional<store::SuiteVersion>
    replicaSuite(const std::string &name, std::uint32_t version) override;
    std::vector<store::HistoryEntry>
    replicaHistory(const std::string &suite) override;
    server::HttpResponse
    handleCluster(const server::RequestContext &ctx) override;
    server::HttpResponse
    handleReplicate(const server::RequestContext &ctx) override;
    void renderMetrics(obs::PrometheusWriter &writer) override;

  private:
    /** Peer-node state: health, replication offset, one RPC client. */
    struct Peer
    {
        MeshNode node;
        bool follower = false; ///< mirrors this node's store.
        /** 0 = unprobed, 1 = alive, 2 = down. Unprobed routes
         *  optimistically (as alive). */
        std::atomic<int> health{0};
        /** Follower's durable ack of this node's sequence space. */
        std::atomic<std::uint64_t> acked{0};
        std::mutex rpcMutex; ///< serializes `client`.
        std::unique_ptr<server::HttpClient> client;
    };

    Peer *peer(const std::string &nodeId);
    bool peerAlive(const std::string &nodeId);

    /** Ship outstanding frames (or a snapshot image) to @p peer and
     *  record the returned durable ack. Returns false — and marks the
     *  peer down — when the RPC fails. @p budget_millis caps the ack
     *  wait below the RPC timeout (0 = full timeout). */
    bool shipTo(Peer &peer, double budget_millis = 0.0);

    void backgroundLoop();

    Config config_;
    HashRing ring_;
    std::vector<std::string> followers_;
    store::StateStore *store_ = nullptr;
    std::function<std::string()> driftSummary_;
    std::function<std::string()> selfHealth_;

    std::map<std::string, std::unique_ptr<Peer>> peers_;

    mutable std::mutex replicaMutex_;
    std::map<std::string, std::unique_ptr<ReplicaStore>> replicas_;

    std::atomic<bool> stopping_{false};
    std::thread background_;
    bool started_ = false;

    std::atomic<std::uint64_t> forwards_{0};
    std::atomic<std::uint64_t> forwardFailures_{0};
    std::atomic<std::uint64_t> redirects_{0};
    std::atomic<std::uint64_t> failovers_{0};
    std::atomic<std::uint64_t> replicationBatches_{0};
    std::atomic<std::uint64_t> replicationRecords_{0};
    std::atomic<std::uint64_t> replicationBytes_{0};
    std::atomic<std::uint64_t> replicationFailures_{0};
    std::atomic<std::uint64_t> snapshotInstalls_{0};
    std::atomic<std::uint64_t> applyBatches_{0};
    std::atomic<std::uint64_t> applyRecords_{0};
};

} // namespace mesh
} // namespace hiermeans

#endif // HIERMEANS_MESH_RUNTIME_H
