#include "src/obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace hiermeans {
namespace obs {
namespace {

std::string
formatDouble(double value)
{
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    if (std::isnan(value))
        return "NaN";
    char buffer[64];
    /* %.17g survives a parse round-trip; trim to %g when exact. */
    std::snprintf(buffer, sizeof(buffer), "%g", value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed != value)
        std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &label : labels) {
        if (!first)
            out += ',';
        first = false;
        out += label.first;
        out += "=\"";
        out += escapeLabelValue(label.second);
        out += '"';
    }
    out += '}';
    return out;
}

} // namespace

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto headOk = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    auto tailOk = [&](char c) {
        return headOk(c) ||
               std::isdigit(static_cast<unsigned char>(c));
    };
    if (!headOk(name[0]))
        return false;
    for (std::size_t i = 1; i < name.size(); ++i)
        if (!tailOk(name[i]))
            return false;
    return true;
}

void
PrometheusWriter::header(const std::string &name,
                         const std::string &help,
                         const std::string &type)
{
    text_ += "# HELP " + name + ' ' + help + '\n';
    text_ += "# TYPE " + name + ' ' + type + '\n';
}

void
PrometheusWriter::sample(const std::string &name, const Labels &labels,
                         const std::string &value)
{
    text_ += name + renderLabels(labels) + ' ' + value + '\n';
}

void
PrometheusWriter::counter(const std::string &name, const Labels &labels,
                          std::uint64_t value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
    sample(name, labels, buffer);
}

void
PrometheusWriter::gauge(const std::string &name, const Labels &labels,
                        double value)
{
    sample(name, labels, formatDouble(value));
}

void
PrometheusWriter::histogram(const std::string &name,
                            const Labels &labels,
                            const std::vector<double> &bounds,
                            const std::vector<std::uint64_t> &cumulative,
                            double sum, std::uint64_t count)
{
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        Labels bucketLabels = labels;
        bucketLabels.emplace_back("le", formatDouble(bounds[i]));
        counter(name + "_bucket", bucketLabels,
                i < cumulative.size() ? cumulative[i] : count);
    }
    Labels infLabels = labels;
    infLabels.emplace_back("le", "+Inf");
    counter(name + "_bucket", infLabels, count);
    sample(name + "_sum", labels, formatDouble(sum));
    counter(name + "_count", labels, count);
}

namespace {

/* --- lint helpers ------------------------------------------------- */

struct LineScanner
{
    const std::string &line;
    std::size_t pos = 0;

    explicit LineScanner(const std::string &l) : line(l) {}

    bool done() const { return pos >= line.size(); }
    char peek() const { return done() ? '\0' : line[pos]; }

    bool scanName(std::string &out)
    {
        const std::size_t start = pos;
        while (!done()) {
            const char c = line[pos];
            const bool ok =
                std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == ':';
            if (!ok)
                break;
            ++pos;
        }
        out = line.substr(start, pos - start);
        return !out.empty() &&
               !std::isdigit(static_cast<unsigned char>(out[0]));
    }

    bool scanLabels()
    {
        if (peek() != '{')
            return true;
        ++pos;
        if (peek() == '}') { /* empty label set is legal */
            ++pos;
            return true;
        }
        while (true) {
            std::string labelName;
            if (!scanName(labelName))
                return false;
            if (peek() != '=')
                return false;
            ++pos;
            if (peek() != '"')
                return false;
            ++pos;
            while (!done() && peek() != '"') {
                if (peek() == '\\') {
                    ++pos;
                    const char esc = peek();
                    if (esc != '\\' && esc != '"' && esc != 'n')
                        return false;
                }
                ++pos;
            }
            if (peek() != '"')
                return false;
            ++pos;
            if (peek() == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (peek() != '}')
            return false;
        ++pos;
        return true;
    }

    bool scanValue()
    {
        while (!done() && peek() == ' ')
            ++pos;
        const std::size_t start = pos;
        while (!done() && peek() != ' ')
            ++pos;
        const std::string token = line.substr(start, pos - start);
        if (token.empty())
            return false;
        if (token == "+Inf" || token == "-Inf" || token == "NaN" ||
            token == "Inf")
            return true;
        char *end = nullptr;
        std::strtod(token.c_str(), &end);
        return end != nullptr && *end == '\0';
    }
};

} // namespace

std::vector<std::string>
lintExposition(const std::string &text)
{
    std::vector<std::string> problems;
    if (text.empty()) {
        problems.push_back("document is empty");
        return problems;
    }
    if (text.back() != '\n')
        problems.push_back("document must end with a newline");

    static const std::set<std::string> kTypes = {
        "counter", "gauge", "histogram", "summary", "untyped"};

    std::map<std::string, std::string> typedFamilies;
    /* histogram family -> {sawInf, sawSum, sawCount} */
    struct HistogramState
    {
        bool inf = false;
        bool sum = false;
        bool count = false;
    };
    std::map<std::string, HistogramState> histograms;

    std::istringstream stream(text);
    std::string line;
    std::size_t lineNo = 0;
    auto complain = [&](const std::string &what) {
        problems.push_back("line " + std::to_string(lineNo) + ": " +
                           what + ": " + line);
    };

    while (std::getline(stream, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream comment(line);
            std::string hash, keyword, name;
            comment >> hash >> keyword >> name;
            if (keyword == "TYPE") {
                std::string type;
                comment >> type;
                if (!validMetricName(name))
                    complain("bad metric name in TYPE");
                else if (kTypes.find(type) == kTypes.end())
                    complain("unknown metric type '" + type + "'");
                else
                    typedFamilies[name] = type;
            } else if (keyword == "HELP") {
                if (!validMetricName(name))
                    complain("bad metric name in HELP");
            }
            /* Other comments are free-form and legal. */
            continue;
        }

        LineScanner scanner(line);
        std::string name;
        if (!scanner.scanName(name)) {
            complain("sample does not start with a metric name");
            continue;
        }
        if (!scanner.scanLabels()) {
            complain("malformed label set");
            continue;
        }
        if (scanner.peek() != ' ') {
            complain("expected space before value");
            continue;
        }
        if (!scanner.scanValue()) {
            complain("malformed sample value");
            continue;
        }
        /* Optional timestamp: integer milliseconds. */
        while (!scanner.done() && scanner.peek() == ' ')
            ++scanner.pos;
        if (!scanner.done()) {
            const std::string rest = line.substr(scanner.pos);
            char *end = nullptr;
            std::strtoll(rest.c_str(), &end, 10);
            if (end == nullptr || *end != '\0') {
                complain("trailing garbage after value");
                continue;
            }
        }

        /* A sample belongs to its own family, or — for histogram
         * series — the family minus the _bucket/_sum/_count suffix. */
        std::string family = name;
        bool isBucket = false, isSum = false, isCount = false;
        auto stripSuffix = [&](const char *suffix, bool &flag) {
            const std::size_t n = std::string(suffix).size();
            if (family.size() > n &&
                family.compare(family.size() - n, n, suffix) == 0 &&
                typedFamilies.count(family.substr(
                    0, family.size() - n))) {
                family = family.substr(0, family.size() - n);
                flag = true;
            }
        };
        stripSuffix("_bucket", isBucket);
        if (!isBucket)
            stripSuffix("_sum", isSum);
        if (!isBucket && !isSum)
            stripSuffix("_count", isCount);

        auto typeIt = typedFamilies.find(family);
        if (typeIt == typedFamilies.end()) {
            complain("sample for family '" + family +
                     "' has no preceding # TYPE");
            continue;
        }
        if (typeIt->second == "histogram") {
            HistogramState &state = histograms[family];
            if (isBucket) {
                if (line.find("le=\"+Inf\"") != std::string::npos)
                    state.inf = true;
                else if (line.find("le=\"") == std::string::npos)
                    complain("histogram bucket without le label");
            } else if (isSum) {
                state.sum = true;
            } else if (isCount) {
                state.count = true;
            } else {
                complain("bare sample in histogram family");
            }
        } else if (isBucket) {
            complain("_bucket sample in non-histogram family");
        }
    }

    for (const auto &entry : histograms) {
        if (!entry.second.inf)
            problems.push_back("histogram '" + entry.first +
                               "' missing le=\"+Inf\" bucket");
        if (!entry.second.sum)
            problems.push_back("histogram '" + entry.first +
                               "' missing _sum");
        if (!entry.second.count)
            problems.push_back("histogram '" + entry.first +
                               "' missing _count");
    }
    return problems;
}

} // namespace obs
} // namespace hiermeans
