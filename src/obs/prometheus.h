/**
 * @file
 * Prometheus text exposition format, version 0.0.4: a writer that
 * emits `# HELP`/`# TYPE` annotated counters, gauges and histograms,
 * and a lexical validator used by tests, smoke_server.sh (via
 * `hmctl --check`) and CI to prove every line `GET /metrics` serves
 * is well-formed exposition.
 *
 * Conventions enforced by the writer:
 *  - metric names are `hiermeans_<subsystem>_<name>` with unit
 *    suffixes (`_total`, `_ms`, `_bytes`) — the caller supplies the
 *    full name, the writer validates it;
 *  - histograms emit cumulative `_bucket{le="..."}` series ending in
 *    `le="+Inf"`, then `_sum` and `_count`;
 *  - label values are escaped per the spec (backslash, quote, \n).
 */

#ifndef HIERMEANS_OBS_PROMETHEUS_H
#define HIERMEANS_OBS_PROMETHEUS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hiermeans {
namespace obs {

/** `name="value"` pairs attached to one sample. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Accumulates one exposition document. */
class PrometheusWriter
{
  public:
    /** Emit `# HELP`/`# TYPE` for @p name (once per metric family). */
    void header(const std::string &name, const std::string &help,
                const std::string &type);

    /** One counter sample. Family must have been header()'d. */
    void counter(const std::string &name, const Labels &labels,
                 std::uint64_t value);

    /** One gauge sample. */
    void gauge(const std::string &name, const Labels &labels,
               double value);

    /**
     * One histogram: cumulative `_bucket` counts per upper bound in
     * @p bounds (must be sorted ascending; the `+Inf` bucket is
     * implicit and equals @p count), then `_sum` and `_count`.
     */
    void histogram(const std::string &name, const Labels &labels,
                   const std::vector<double> &bounds,
                   const std::vector<std::uint64_t> &cumulative,
                   double sum, std::uint64_t count);

    const std::string &text() const { return text_; }

  private:
    void sample(const std::string &name, const Labels &labels,
                const std::string &value);

    std::string text_;
};

/** Label-value escaping per the exposition spec. */
std::string escapeLabelValue(const std::string &value);

/** True when @p name matches `[a-zA-Z_:][a-zA-Z0-9_:]*`. */
bool validMetricName(const std::string &name);

/**
 * Lexically validate an exposition document: every line is a comment
 * (`# HELP`/`# TYPE ... counter|gauge|histogram|summary|untyped`), a
 * sample (`name{labels} value [timestamp]`), or blank; every sample
 * belongs to a `# TYPE`d family; histogram families end with a
 * `+Inf` bucket and have `_sum`/`_count`. Returns human-readable
 * problems, one per offending line; empty means valid.
 */
std::vector<std::string> lintExposition(const std::string &text);

} // namespace obs
} // namespace hiermeans

#endif // HIERMEANS_OBS_PROMETHEUS_H
