#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/util/cli.h"

namespace hiermeans {
namespace obs {
namespace {

std::uint64_t
monotonicNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/* Thread-local trace context: which trace (if any) the current thread
 * is recording into, and the innermost open span to parent under. */
thread_local Trace *tlTrace = nullptr;
thread_local std::size_t tlSpan = kNoParent;

/* splitmix64 — cheap, well-mixed; good enough for trace IDs. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

namespace detail {

std::atomic<bool> armed{false};

} // namespace detail

Trace::Trace(std::string id)
    : id_(std::move(id)), epochNanos_(monotonicNanos())
{
    spans_.reserve(16);
}

std::size_t
Trace::begin(const std::string &name, std::size_t parent)
{
    const std::uint64_t now = monotonicNanos() - epochNanos_;
    std::lock_guard<std::mutex> lock(mutex_);
    Span span;
    span.name = name;
    span.parent = parent;
    span.startNanos = now;
    spans_.push_back(std::move(span));
    return spans_.size() - 1;
}

void
Trace::end(std::size_t index)
{
    const std::uint64_t now = monotonicNanos() - epochNanos_;
    std::lock_guard<std::mutex> lock(mutex_);
    if (index < spans_.size())
        spans_[index].endNanos = now;
}

std::vector<Span>
Trace::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

double
Trace::rootMillis() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (spans_.empty() || spans_[0].endNanos == 0)
        return 0.0;
    return spans_[0].durationMillis();
}

std::string
generateTraceId()
{
    /* Seed from the clock and a per-call counter so two IDs generated
     * in the same nanosecond still differ. Uniqueness matters only
     * within one process's bounded trace rings. */
    static std::atomic<std::uint64_t> counter{0};
    std::uint64_t state =
        monotonicNanos() ^
        (counter.fetch_add(1, std::memory_order_relaxed) << 32) ^
        0x243f6a8885a308d3ULL;
    const std::uint64_t value = splitmix64(state);
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buffer);
}

bool
validTraceId(const std::string &id)
{
    if (id.empty() || id.size() > 64)
        return false;
    for (char c : id) {
        const bool ok = (c >= '0' && c <= '9') ||
                        (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::configure(const Config &config)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        config_ = config;
        if (config_.keepRecent == 0)
            config_.keepRecent = 1;
        if (config_.keepSlow == 0)
            config_.keepSlow = 1;
        recent_.clear();
        slow_.clear();
    }
    finished_.store(0, std::memory_order_relaxed);
    slowSampled_.store(0, std::memory_order_relaxed);
    detail::armed.store(config.enabled, std::memory_order_release);
}

void
Tracer::reset()
{
    configure(Config{});
}

Tracer::Config
Tracer::config() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return config_;
}

std::shared_ptr<Trace>
Tracer::start(const std::string &id)
{
    return std::make_shared<Trace>(id);
}

void
Tracer::finish(std::shared_ptr<Trace> trace)
{
    if (!trace)
        return;
    const double millis = trace->rootMillis();
    finished_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    recent_.push_front(trace);
    while (recent_.size() > config_.keepRecent)
        recent_.pop_back();
    if (millis > config_.slowMillis) {
        slowSampled_.fetch_add(1, std::memory_order_relaxed);
        slow_.push_front(std::move(trace));
        while (slow_.size() > config_.keepSlow)
            slow_.pop_back();
    }
}

std::shared_ptr<const Trace>
Tracer::find(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &trace : recent_)
        if (trace->id() == id)
            return trace;
    for (const auto &trace : slow_)
        if (trace->id() == id)
            return trace;
    return nullptr;
}

std::vector<std::string>
Tracer::recentIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> ids;
    ids.reserve(recent_.size());
    for (const auto &trace : recent_)
        ids.push_back(trace->id());
    return ids;
}

std::vector<std::string>
Tracer::slowIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> ids;
    ids.reserve(slow_.size());
    for (const auto &trace : slow_)
        ids.push_back(trace->id());
    return ids;
}

std::uint64_t
Tracer::finishedTotal() const
{
    return finished_.load(std::memory_order_relaxed);
}

std::uint64_t
Tracer::slowTotal() const
{
    return slowSampled_.load(std::memory_order_relaxed);
}

Tracer::Config
traceConfigFromCommandLine(const util::CommandLine &cl,
                           Tracer::Config base)
{
    if (cl.has("trace"))
        base.enabled = cl.getBool("trace", true);
    base.slowMillis = cl.getDouble("trace-slow-ms", base.slowMillis);
    base.keepRecent = static_cast<std::size_t>(cl.getInt(
        "trace-keep", static_cast<std::int64_t>(base.keepRecent)));
    base.keepSlow = static_cast<std::size_t>(cl.getInt(
        "trace-keep-slow", static_cast<std::int64_t>(base.keepSlow)));
    return base;
}

Trace *
currentTrace()
{
    return tlTrace;
}

std::size_t
currentSpan()
{
    return tlSpan;
}

ScopedTraceContext::ScopedTraceContext(Trace *trace, std::size_t parent)
    : previousTrace_(tlTrace), previousSpan_(tlSpan)
{
    tlTrace = trace;
    tlSpan = parent;
}

ScopedTraceContext::~ScopedTraceContext()
{
    tlTrace = previousTrace_;
    tlSpan = previousSpan_;
}

ScopedSpan::ScopedSpan(const char *name)
{
    if (!tracingEnabled())
        return;
    Trace *trace = tlTrace;
    if (trace == nullptr)
        return;
    trace_ = trace;
    previousSpan_ = tlSpan;
    index_ = trace->begin(name, previousSpan_);
    tlSpan = index_;
}

ScopedSpan::~ScopedSpan() { close(); }

void
ScopedSpan::close()
{
    if (trace_ == nullptr)
        return;
    trace_->end(index_);
    tlSpan = previousSpan_;
    trace_ = nullptr;
}

std::string
renderSpanTree(const std::string &id, const std::vector<Span> &spans)
{
    std::string out = "trace " + id;
    if (!spans.empty() && spans[0].endNanos != 0) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "  total %.2f ms",
                      spans[0].durationMillis());
        out += buffer;
    }
    out += '\n';

    /* Children of each span, in recording order. */
    std::vector<std::vector<std::size_t>> children(spans.size());
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (spans[i].parent == kNoParent ||
            spans[i].parent >= spans.size())
            roots.push_back(i);
        else
            children[spans[i].parent].push_back(i);
    }

    std::size_t nameWidth = 0;
    for (const Span &span : spans)
        nameWidth = std::max(nameWidth, span.name.size());

    struct Frame
    {
        std::size_t index;
        std::size_t depth;
    };
    std::vector<Frame> stack;
    for (auto it = roots.rbegin(); it != roots.rend(); ++it)
        stack.push_back({*it, 0});
    while (!stack.empty()) {
        const Frame frame = stack.back();
        stack.pop_back();
        const Span &span = spans[frame.index];
        const std::string indent(frame.depth * 2, ' ');
        out += indent + span.name;
        const std::size_t pad =
            nameWidth + 4 - std::min(nameWidth + 2, indent.size() +
                                                        span.name.size());
        out += std::string(pad, ' ');
        char buffer[64];
        if (span.endNanos == 0)
            std::snprintf(buffer, sizeof(buffer), "(open)");
        else
            std::snprintf(buffer, sizeof(buffer), "%9.3f ms",
                          span.durationMillis());
        out += buffer;
        out += '\n';
        const auto &kids = children[frame.index];
        for (auto it = kids.rbegin(); it != kids.rend(); ++it)
            stack.push_back({*it, frame.depth + 1});
    }
    return out;
}

} // namespace obs
} // namespace hiermeans
