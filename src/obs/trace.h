/**
 * @file
 * End-to-end request tracing: trace IDs, spans and the process-wide
 * trace store behind `GET /v1/trace/<id>` and `hmctl --trace`.
 *
 * A *trace* is one request's tree of *spans* — named, monotonic-clock
 * timed intervals with parent links (server accept, admission, queue
 * wait, engine execute, the pipeline stages). Traces are created by
 * the serving layer (the ID is generated, or accepted from an
 * `X-Hiermeans-Trace` request header and echoed back), threaded
 * through the engine inside ScoreRequest, and — inside a worker
 * thread — picked up by pipeline code through a thread-local context,
 * so `core::analyzeClusters` can record its SOM/cluster stages without
 * knowing who is tracing it.
 *
 * Cost discipline (same as util::fault): a *disarmed* process pays one
 * relaxed atomic load per span site (`ScopedSpan` checks the global
 * armed flag and returns). Arming allocates per-request Trace objects;
 * finished traces land in two bounded rings — the most recent N, and
 * the slowest-sampler ring of traces whose root span exceeded the
 * configured threshold — from which `/v1/trace/<id>` answers.
 */

#ifndef HIERMEANS_OBS_TRACE_H
#define HIERMEANS_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hiermeans {
namespace util {
class CommandLine;
} // namespace util

namespace obs {

/** Parent index of a root span. */
inline constexpr std::size_t kNoParent =
    static_cast<std::size_t>(-1);

/** One timed interval inside a trace. */
struct Span
{
    std::string name;      ///< stage name, e.g. "pipeline.som_train".
    std::size_t parent = kNoParent; ///< index into the span list.
    std::uint64_t startNanos = 0;   ///< monotonic, trace-relative.
    std::uint64_t endNanos = 0;     ///< 0 while still open.

    double durationMillis() const
    {
        return static_cast<double>(endNanos - startNanos) / 1e6;
    }
};

/**
 * One request's spans. Thread-safe: the serving thread and an engine
 * worker may record into the same trace concurrently.
 */
class Trace
{
  public:
    explicit Trace(std::string id);

    const std::string &id() const { return id_; }

    /** Open a span; returns its index (stable for end()). */
    std::size_t begin(const std::string &name,
                      std::size_t parent = kNoParent);

    /** Close the span opened as @p index. */
    void end(std::size_t index);

    /** Snapshot of all spans recorded so far. */
    std::vector<Span> spans() const;

    /** Wall time of the root span (index 0); 0 when absent/open. */
    double rootMillis() const;

  private:
    mutable std::mutex mutex_;
    const std::string id_;
    const std::uint64_t epochNanos_; ///< all spans relative to this.
    std::vector<Span> spans_;
};

/** A fresh 16-hex-digit trace ID (collision-resistant, not secret). */
std::string generateTraceId();

/**
 * True when @p id is acceptable as a caller-supplied trace ID:
 * 1..64 characters from [A-Za-z0-9._-].
 */
bool validTraceId(const std::string &id);

/** The process-wide trace store. */
class Tracer
{
  public:
    struct Config
    {
        /** Arm tracing (span sites become live). */
        bool enabled = false;

        /** Root spans slower than this land in the slow ring. */
        double slowMillis = 250.0;

        /** Bound of the most-recent-traces ring. */
        std::size_t keepRecent = 64;

        /** Bound of the slow-request sampler ring. */
        std::size_t keepSlow = 16;
    };

    static Tracer &instance();

    /** Arm/re-arm with @p config; clears both rings. */
    void configure(const Config &config);

    /** Disarm and clear both rings. */
    void reset();

    Config config() const;

    /** A new live trace under @p id (call only while enabled). */
    std::shared_ptr<Trace> start(const std::string &id);

    /** File a finished trace into the recent ring (and the slow ring
     *  when its root span exceeded the threshold). */
    void finish(std::shared_ptr<Trace> trace);

    /** A finished (or still-live) trace by ID; nullptr when unknown. */
    std::shared_ptr<const Trace> find(const std::string &id) const;

    /** IDs in the recent ring, newest first. */
    std::vector<std::string> recentIds() const;

    /** IDs in the slow-sampler ring, newest first. */
    std::vector<std::string> slowIds() const;

    /** Traces finished / sampled as slow since configure(). */
    std::uint64_t finishedTotal() const;
    std::uint64_t slowTotal() const;

  private:
    Tracer() = default;

    mutable std::mutex mutex_;
    Config config_;
    std::deque<std::shared_ptr<Trace>> recent_; ///< newest at front.
    std::deque<std::shared_ptr<Trace>> slow_;   ///< newest at front.
    std::atomic<std::uint64_t> finished_{0};
    std::atomic<std::uint64_t> slowSampled_{0};
};

/**
 * Fold the shared `--trace`, `--trace-slow-ms=N`, `--trace-keep=N`
 * and `--trace-keep-slow=N` flags into @p base (see util::FlagSet's
 * standard flag block for the canonical spellings).
 */
Tracer::Config traceConfigFromCommandLine(const util::CommandLine &cl,
                                          Tracer::Config base = {});

namespace detail {

/** True when tracing is armed; every span site's fast-path gate. */
extern std::atomic<bool> armed;

} // namespace detail

/** One relaxed atomic load: is tracing armed? */
inline bool
tracingEnabled()
{
    return detail::armed.load(std::memory_order_relaxed);
}

/** The trace installed on this thread (nullptr outside a request). */
Trace *currentTrace();

/** The innermost open span on this thread (kNoParent when none). */
std::size_t currentSpan();

/**
 * Install @p trace (+ @p parent as the current span) on this thread
 * for the scope's lifetime — how a worker thread inherits the request
 * trace across the pool boundary. Restores the previous context on
 * destruction.
 */
class ScopedTraceContext
{
  public:
    ScopedTraceContext(Trace *trace, std::size_t parent);
    ~ScopedTraceContext();

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    Trace *previousTrace_;
    std::size_t previousSpan_;
};

/**
 * RAII span against the thread's current trace. Near-zero cost while
 * tracing is disarmed or no trace is installed.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** End the span before scope exit (idempotent). */
    void close();

    /** Index of the opened span (kNoParent when not recording). */
    std::size_t index() const { return index_; }

  private:
    Trace *trace_ = nullptr;
    std::size_t index_ = kNoParent;
    std::size_t previousSpan_ = kNoParent;
};

/**
 * ASCII span tree with per-stage durations — what `hmctl trace`
 * prints:
 *
 *   trace 4f2a...  total 12.41 ms
 *   server.request                12.41 ms
 *     admission                    0.02 ms
 *     engine.execute               11.80 ms
 *       pipeline.som_train          9.11 ms
 */
std::string renderSpanTree(const std::string &id,
                           const std::vector<Span> &spans);

} // namespace obs
} // namespace hiermeans

#endif // HIERMEANS_OBS_TRACE_H
