#include "src/scoring/hierarchical_mean.h"

#include "src/util/error.h"

namespace hiermeans {
namespace scoring {

std::vector<double>
clusterRepresentatives(stats::MeanKind kind,
                       const std::vector<double> &values,
                       const Partition &partition)
{
    HM_REQUIRE(values.size() == partition.size(),
               "hierarchical mean: " << values.size() << " scores for "
                                     << partition.size() << " workloads");
    std::vector<double> reps;
    reps.reserve(partition.clusterCount());
    for (const auto &group : partition.groups()) {
        std::vector<double> cluster_values;
        cluster_values.reserve(group.size());
        for (std::size_t item : group)
            cluster_values.push_back(values[item]);
        reps.push_back(stats::mean(kind, cluster_values));
    }
    return reps;
}

double
hierarchicalMean(stats::MeanKind kind, const std::vector<double> &values,
                 const Partition &partition)
{
    return stats::mean(kind,
                       clusterRepresentatives(kind, values, partition));
}

double
hierarchicalGeometricMean(const std::vector<double> &values,
                          const Partition &partition)
{
    return hierarchicalMean(stats::MeanKind::Geometric, values, partition);
}

double
hierarchicalArithmeticMean(const std::vector<double> &values,
                           const Partition &partition)
{
    return hierarchicalMean(stats::MeanKind::Arithmetic, values, partition);
}

double
hierarchicalHarmonicMean(const std::vector<double> &values,
                         const Partition &partition)
{
    return hierarchicalMean(stats::MeanKind::Harmonic, values, partition);
}

std::vector<double>
impliedWeights(const Partition &partition)
{
    const std::vector<std::size_t> sizes = partition.clusterSizes();
    const double k = static_cast<double>(partition.clusterCount());
    std::vector<double> weights(partition.size(), 0.0);
    for (std::size_t i = 0; i < partition.size(); ++i) {
        weights[i] =
            1.0 / (k * static_cast<double>(sizes[partition.label(i)]));
    }
    return weights;
}

} // namespace scoring
} // namespace hiermeans
