/**
 * @file
 * The hierarchical means — the paper's primary contribution (Section II).
 *
 * For a suite of n workloads partitioned into k clusters, a hierarchical
 * mean first reduces each cluster to a single representative value with
 * an inner plain mean, then averages the k representatives with an outer
 * plain mean of the same family:
 *
 *   HGM = ( prod_i  GM(cluster_i) )^(1/k)
 *   HAM = ( sum_i   AM(cluster_i) ) / k
 *   HHM =   k / ( sum_i 1 / HM(cluster_i) )
 *
 * The inner mean cancels workload redundancy inside a cluster; the outer
 * mean weights every cluster equally. When every cluster is a singleton
 * the hierarchical mean degenerates gracefully to the plain mean, and
 * when all workloads share one cluster it equals the plain mean as well
 * (the outer mean of a single value).
 */

#ifndef HIERMEANS_SCORING_HIERARCHICAL_MEAN_H
#define HIERMEANS_SCORING_HIERARCHICAL_MEAN_H

#include <vector>

#include "src/scoring/partition.h"
#include "src/stats/means.h"

namespace hiermeans {
namespace scoring {

/**
 * Hierarchical mean of @p values under @p partition for the given mean
 * family. @p values holds one score per workload; its size must equal
 * partition.size(). Geometric and harmonic variants require strictly
 * positive scores (DomainError otherwise).
 */
double hierarchicalMean(stats::MeanKind kind,
                        const std::vector<double> &values,
                        const Partition &partition);

/** Hierarchical Geometric Mean (HGM). */
double hierarchicalGeometricMean(const std::vector<double> &values,
                                 const Partition &partition);

/** Hierarchical Arithmetic Mean (HAM). */
double hierarchicalArithmeticMean(const std::vector<double> &values,
                                  const Partition &partition);

/** Hierarchical Harmonic Mean (HHM). */
double hierarchicalHarmonicMean(const std::vector<double> &values,
                                const Partition &partition);

/**
 * The per-cluster inner means (cluster representatives), indexed by
 * cluster id. The hierarchical mean is the plain mean of this vector.
 */
std::vector<double> clusterRepresentatives(stats::MeanKind kind,
                                           const std::vector<double> &values,
                                           const Partition &partition);

/**
 * The implicit per-workload weights induced by a hierarchical mean:
 * workload j in a cluster of size n_i carries weight 1 / (k * n_i)
 * (these sum to 1). Exposing them makes the relationship to the
 * weighted-mean workaround explicit: a hierarchical mean IS a weighted
 * mean whose weights are derived objectively from cluster structure.
 */
std::vector<double> impliedWeights(const Partition &partition);

} // namespace scoring
} // namespace hiermeans

#endif // HIERMEANS_SCORING_HIERARCHICAL_MEAN_H
