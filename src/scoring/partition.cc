#include "src/scoring/partition.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/util/error.h"

namespace hiermeans {
namespace scoring {

Partition
Partition::single(std::size_t num_items)
{
    HM_REQUIRE(num_items > 0, "Partition::single of zero items");
    Partition p;
    p.labels_.assign(num_items, 0);
    p.numClusters_ = 1;
    return p;
}

Partition
Partition::discrete(std::size_t num_items)
{
    HM_REQUIRE(num_items > 0, "Partition::discrete of zero items");
    Partition p;
    p.labels_.resize(num_items);
    for (std::size_t i = 0; i < num_items; ++i)
        p.labels_[i] = i;
    p.numClusters_ = num_items;
    return p;
}

Partition
Partition::fromLabels(const std::vector<std::size_t> &labels)
{
    HM_REQUIRE(!labels.empty(), "Partition::fromLabels: empty labels");
    Partition p;
    p.labels_ = labels;
    p.canonicalize();
    return p;
}

Partition
Partition::fromGroups(const std::vector<std::vector<std::size_t>> &groups)
{
    std::size_t total = 0;
    for (const auto &g : groups) {
        HM_REQUIRE(!g.empty(), "Partition::fromGroups: empty cluster");
        total += g.size();
    }
    HM_REQUIRE(total > 0, "Partition::fromGroups: no items");

    std::vector<std::size_t> labels(total, total); // sentinel = total
    for (std::size_t c = 0; c < groups.size(); ++c) {
        for (std::size_t item : groups[c]) {
            HM_REQUIRE(item < total, "Partition::fromGroups: item "
                                         << item << " out of range for "
                                         << total << " items");
            HM_REQUIRE(labels[item] == total,
                       "Partition::fromGroups: item " << item
                                                      << " appears twice");
            labels[item] = c;
        }
    }
    return fromLabels(labels);
}

void
Partition::canonicalize()
{
    std::map<std::size_t, std::size_t> remap;
    std::size_t next = 0;
    for (std::size_t &label : labels_) {
        auto [it, inserted] = remap.try_emplace(label, next);
        if (inserted)
            ++next;
        label = it->second;
    }
    numClusters_ = next;
}

std::size_t
Partition::label(std::size_t item) const
{
    HM_REQUIRE(item < labels_.size(), "Partition::label: item " << item
                                                                << " out of"
                                                                   " range");
    return labels_[item];
}

std::vector<std::size_t>
Partition::members(std::size_t cluster) const
{
    HM_REQUIRE(cluster < numClusters_, "Partition::members: cluster "
                                           << cluster << " out of range");
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < labels_.size(); ++i) {
        if (labels_[i] == cluster)
            out.push_back(i);
    }
    return out;
}

std::vector<std::vector<std::size_t>>
Partition::groups() const
{
    std::vector<std::vector<std::size_t>> out(numClusters_);
    for (std::size_t i = 0; i < labels_.size(); ++i)
        out[labels_[i]].push_back(i);
    return out;
}

std::vector<std::size_t>
Partition::clusterSizes() const
{
    std::vector<std::size_t> sizes(numClusters_, 0);
    for (std::size_t label : labels_)
        ++sizes[label];
    return sizes;
}

bool
Partition::operator==(const Partition &other) const
{
    return labels_ == other.labels_;
}

std::string
Partition::toString(const std::vector<std::string> &names) const
{
    HM_REQUIRE(names.empty() || names.size() == labels_.size(),
               "Partition::toString: " << names.size() << " names for "
                                       << labels_.size() << " items");
    std::ostringstream oss;
    const auto gs = groups();
    for (std::size_t c = 0; c < gs.size(); ++c) {
        if (c > 0)
            oss << " ";
        oss << "{";
        for (std::size_t i = 0; i < gs[c].size(); ++i) {
            if (i > 0)
                oss << ", ";
            if (names.empty())
                oss << gs[c][i];
            else
                oss << names[gs[c][i]];
        }
        oss << "}";
    }
    return oss.str();
}

namespace {

/** n choose 2 as a double. */
double
pairs(double n)
{
    return n * (n - 1.0) / 2.0;
}

/** Contingency table between two partitions. */
std::vector<std::vector<std::size_t>>
contingency(const Partition &a, const Partition &b)
{
    std::vector<std::vector<std::size_t>> table(
        a.clusterCount(), std::vector<std::size_t>(b.clusterCount(), 0));
    for (std::size_t i = 0; i < a.size(); ++i)
        ++table[a.label(i)][b.label(i)];
    return table;
}

} // namespace

double
randIndex(const Partition &a, const Partition &b)
{
    HM_REQUIRE(a.size() == b.size(), "randIndex: partitions cover "
                                         << a.size() << " vs " << b.size()
                                         << " items");
    const std::size_t n = a.size();
    if (n < 2)
        return 1.0;

    std::size_t agreements = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const bool same_a = a.label(i) == a.label(j);
            const bool same_b = b.label(i) == b.label(j);
            if (same_a == same_b)
                ++agreements;
        }
    }
    return static_cast<double>(agreements) / pairs(static_cast<double>(n));
}

double
adjustedRandIndex(const Partition &a, const Partition &b)
{
    HM_REQUIRE(a.size() == b.size(), "adjustedRandIndex: partitions cover "
                                         << a.size() << " vs " << b.size()
                                         << " items");
    const double n = static_cast<double>(a.size());
    if (a.size() < 2)
        return 1.0;

    const auto table = contingency(a, b);
    double sum_cells = 0.0;
    for (const auto &row : table)
        for (std::size_t cell : row)
            sum_cells += pairs(static_cast<double>(cell));

    double sum_a = 0.0;
    for (std::size_t size : a.clusterSizes())
        sum_a += pairs(static_cast<double>(size));
    double sum_b = 0.0;
    for (std::size_t size : b.clusterSizes())
        sum_b += pairs(static_cast<double>(size));

    const double expected = sum_a * sum_b / pairs(n);
    const double max_index = 0.5 * (sum_a + sum_b);
    if (max_index == expected) {
        // Degenerate (e.g. both partitions are single or both discrete):
        // identical groupings count as perfect agreement.
        return a == b ? 1.0 : 0.0;
    }
    return (sum_cells - expected) / (max_index - expected);
}

} // namespace scoring
} // namespace hiermeans
