/**
 * @file
 * Partition of a workload set into clusters.
 *
 * A Partition is the interface between the cluster-analysis side of the
 * library (SOM + hierarchical clustering) and the scoring side (the
 * hierarchical means): clustering produces partitions, hierarchical
 * means consume them.
 */

#ifndef HIERMEANS_SCORING_PARTITION_H
#define HIERMEANS_SCORING_PARTITION_H

#include <cstddef>
#include <string>
#include <vector>

namespace hiermeans {
namespace scoring {

/**
 * A partition of n items into k non-empty clusters.
 *
 * Internally stored as a label vector: label(i) in [0, k) is the
 * cluster of item i. Labels are kept in canonical form — cluster ids
 * are assigned in order of first appearance — so two partitions with
 * the same grouping compare equal regardless of how they were built.
 */
class Partition
{
  public:
    /** The trivial partition: every item in one single cluster. */
    static Partition single(std::size_t num_items);

    /** The discrete partition: every item its own cluster. */
    static Partition discrete(std::size_t num_items);

    /**
     * Build from a label vector; labels may be arbitrary non-negative
     * integers and are canonicalized. Throws InvalidArgument when empty.
     */
    static Partition fromLabels(const std::vector<std::size_t> &labels);

    /**
     * Build from explicit member groups, e.g. {{0,1,2}, {3}, {4,5}}.
     * The groups must cover 0..n-1 exactly once each; throws otherwise.
     */
    static Partition
    fromGroups(const std::vector<std::vector<std::size_t>> &groups);

    /** Number of items. */
    std::size_t size() const { return labels_.size(); }

    /** Number of clusters k. */
    std::size_t clusterCount() const { return numClusters_; }

    /** Cluster id of item @p item (bounds-checked). */
    std::size_t label(std::size_t item) const;

    /** The canonical label vector. */
    const std::vector<std::size_t> &labels() const { return labels_; }

    /** Members of cluster @p cluster, ascending (bounds-checked). */
    std::vector<std::size_t> members(std::size_t cluster) const;

    /** All clusters as member lists, indexed by cluster id. */
    std::vector<std::vector<std::size_t>> groups() const;

    /** Cluster sizes indexed by cluster id. */
    std::vector<std::size_t> clusterSizes() const;

    /** True when every cluster has exactly one member. */
    bool isDiscrete() const { return numClusters_ == size(); }

    /** True when there is exactly one cluster. */
    bool isSingle() const { return numClusters_ == 1; }

    /** True when both partitions group the items identically. */
    bool operator==(const Partition &other) const;

    /**
     * Render as "{a, b} {c} {d, e}" using @p names (or indices when
     * names are empty). Used by reports and dendrogram output.
     */
    std::string toString(const std::vector<std::string> &names = {}) const;

  private:
    std::vector<std::size_t> labels_;
    std::size_t numClusters_ = 0;

    void canonicalize();
};

/**
 * Rand index between two partitions of the same item set, in [0, 1];
 * 1 means identical groupings. Used to compare clusterings obtained
 * from different characterizations / machines (Section V).
 */
double randIndex(const Partition &a, const Partition &b);

/** Adjusted Rand index (chance-corrected; 1 = identical). */
double adjustedRandIndex(const Partition &a, const Partition &b);

} // namespace scoring
} // namespace hiermeans

#endif // HIERMEANS_SCORING_PARTITION_H
