#include "src/scoring/score_report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/scoring/hierarchical_mean.h"
#include "src/util/error.h"
#include "src/util/str.h"
#include "src/util/text_table.h"

namespace hiermeans {
namespace scoring {

std::size_t
ScoreReport::recommendedRow(double tolerance) const
{
    HM_REQUIRE(!rows.empty(), "recommendedRow: empty report");
    if (rows.size() == 1)
        return 0;
    // The paper (Section V-B.1) recommends the cluster count where the
    // ratio stops fluctuating: pick the first row whose ratio differs
    // from its successor by at most `tolerance`.
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        if (std::abs(rows[i].ratio - rows[i + 1].ratio) <= tolerance)
            return i;
    }
    return rows.size() - 1;
}

std::string
ScoreReport::render(const std::string &label_a,
                    const std::string &label_b) const
{
    util::TextTable table({"", label_a, label_b, "ratio(=A/B)"});
    for (const auto &row : rows) {
        table.addRow({std::to_string(row.clusterCount) + " Clusters",
                      str::fixed(row.scoreA, 2), str::fixed(row.scoreB, 2),
                      str::fixed(row.ratio, 2)});
    }
    table.addSeparator();
    const char *plain_name =
        kind == stats::MeanKind::Geometric
            ? "Geometric Mean"
            : (kind == stats::MeanKind::Arithmetic ? "Arithmetic Mean"
                                                   : "Harmonic Mean");
    table.addRow({plain_name, str::fixed(plainA, 2), str::fixed(plainB, 2),
                  str::fixed(plainRatio, 2)});
    return table.render();
}

ScoreReport
buildScoreReport(stats::MeanKind kind, const std::vector<double> &scores_a,
                 const std::vector<double> &scores_b,
                 const std::vector<Partition> &partitions)
{
    HM_REQUIRE(scores_a.size() == scores_b.size(),
               "buildScoreReport: score vectors differ in size");
    HM_REQUIRE(!scores_a.empty(), "buildScoreReport: no scores");

    ScoreReport report;
    report.kind = kind;
    for (const Partition &partition : partitions) {
        HM_REQUIRE(partition.size() == scores_a.size(),
                   "buildScoreReport: partition covers "
                       << partition.size() << " items, scores cover "
                       << scores_a.size());
        ScoreReportRow row;
        row.clusterCount = partition.clusterCount();
        row.partition = partition;
        row.scoreA = hierarchicalMean(kind, scores_a, partition);
        row.scoreB = hierarchicalMean(kind, scores_b, partition);
        row.ratio = row.scoreA / row.scoreB;
        report.rows.push_back(std::move(row));
    }
    report.plainA = stats::mean(kind, scores_a);
    report.plainB = stats::mean(kind, scores_b);
    report.plainRatio = report.plainA / report.plainB;
    return report;
}

std::vector<std::size_t>
MultiMachineReport::ranking(std::size_t row) const
{
    HM_REQUIRE(row < rows.size(), "MultiMachineReport::ranking: row "
                                      << row << " out of range");
    std::vector<std::size_t> order(machineLabels.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const std::vector<double> &scores = rows[row].scores;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return scores[a] > scores[b];
                     });
    return order;
}

bool
MultiMachineReport::rankingStable() const
{
    if (rows.empty())
        return true;
    const auto first = ranking(0);
    for (std::size_t r = 1; r < rows.size(); ++r) {
        if (ranking(r) != first)
            return false;
    }
    return true;
}

std::string
MultiMachineReport::render() const
{
    std::vector<std::string> header = {""};
    for (const std::string &label : machineLabels)
        header.push_back(label);
    header.push_back("best");
    util::TextTable table(std::move(header));

    for (std::size_t r = 0; r < rows.size(); ++r) {
        std::vector<std::string> cells = {
            std::to_string(rows[r].clusterCount) + " Clusters"};
        for (double score : rows[r].scores)
            cells.push_back(str::fixed(score, 2));
        cells.push_back(machineLabels[ranking(r).front()]);
        table.addRow(std::move(cells));
    }
    table.addSeparator();
    std::vector<std::string> footer = {"plain"};
    std::size_t best = 0;
    for (std::size_t m = 0; m < plainScores.size(); ++m) {
        footer.push_back(str::fixed(plainScores[m], 2));
        if (plainScores[m] > plainScores[best])
            best = m;
    }
    footer.push_back(machineLabels[best]);
    table.addRow(std::move(footer));
    return table.render();
}

MultiMachineReport
buildMultiMachineReport(
    stats::MeanKind kind,
    const std::vector<std::vector<double>> &machine_scores,
    const std::vector<std::string> &machine_labels,
    const std::vector<Partition> &partitions)
{
    HM_REQUIRE(machine_scores.size() >= 2,
               "buildMultiMachineReport: need >= 2 machines");
    HM_REQUIRE(machine_scores.size() == machine_labels.size(),
               "buildMultiMachineReport: " << machine_scores.size()
                                           << " score vectors vs "
                                           << machine_labels.size()
                                           << " labels");
    const std::size_t n = machine_scores.front().size();
    HM_REQUIRE(n >= 1, "buildMultiMachineReport: no workloads");
    for (const auto &scores : machine_scores) {
        HM_REQUIRE(scores.size() == n,
                   "buildMultiMachineReport: ragged score vectors");
    }

    MultiMachineReport report;
    report.kind = kind;
    report.machineLabels = machine_labels;
    for (const Partition &partition : partitions) {
        HM_REQUIRE(partition.size() == n,
                   "buildMultiMachineReport: partition covers "
                       << partition.size() << " items, scores cover "
                       << n);
        MultiMachineRow row;
        row.clusterCount = partition.clusterCount();
        row.partition = partition;
        for (const auto &scores : machine_scores) {
            row.scores.push_back(
                hierarchicalMean(kind, scores, partition));
        }
        report.rows.push_back(std::move(row));
    }
    for (const auto &scores : machine_scores)
        report.plainScores.push_back(stats::mean(kind, scores));
    return report;
}

} // namespace scoring
} // namespace hiermeans
