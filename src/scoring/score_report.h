/**
 * @file
 * Multi-cluster-count score reports (the shape of Tables IV, V and VI).
 *
 * Given the per-workload scores of two machines and a family of
 * partitions (one per cluster count, normally read off a dendrogram),
 * the report lists the hierarchical mean of each machine at each
 * cluster count plus the A/B ratio, ending with the plain-mean row the
 * paper prints at the bottom of each table.
 */

#ifndef HIERMEANS_SCORING_SCORE_REPORT_H
#define HIERMEANS_SCORING_SCORE_REPORT_H

#include <string>
#include <vector>

#include "src/scoring/partition.h"
#include "src/stats/means.h"

namespace hiermeans {
namespace scoring {

/** One row of a hierarchical-mean comparison table. */
struct ScoreReportRow
{
    std::size_t clusterCount = 0;
    Partition partition = Partition::single(1);
    double scoreA = 0.0;
    double scoreB = 0.0;
    double ratio = 0.0; ///< scoreA / scoreB.
};

/** A full Table IV/V/VI style report. */
struct ScoreReport
{
    stats::MeanKind kind = stats::MeanKind::Geometric;
    std::vector<ScoreReportRow> rows;
    double plainA = 0.0;
    double plainB = 0.0;
    double plainRatio = 0.0;

    /**
     * The recommended row index per the paper's Section V-B.1 heuristic:
     * prefer the cluster count where the ratio fluctuation "dampens",
     * i.e. the smallest k whose ratio change to the next row(s) stays
     * within @p tolerance. Returns rows.size() - 1 when nothing dampens.
     */
    std::size_t recommendedRow(double tolerance = 0.02) const;

    /** Render the report as an aligned text table. */
    std::string render(const std::string &label_a,
                       const std::string &label_b) const;
};

/**
 * Build a report for @p kind over machine scores @p scores_a and
 * @p scores_b using one partition per row. All partitions must cover
 * the same number of workloads as the score vectors.
 */
ScoreReport buildScoreReport(stats::MeanKind kind,
                             const std::vector<double> &scores_a,
                             const std::vector<double> &scores_b,
                             const std::vector<Partition> &partitions);

/** One row of an N-machine comparison. */
struct MultiMachineRow
{
    std::size_t clusterCount = 0;
    Partition partition = Partition::single(1);
    /** Hierarchical mean per machine, in machine order. */
    std::vector<double> scores;
};

/**
 * N-machine generalization of ScoreReport: vendors rarely compare just
 * two systems. Rows are hierarchical means per machine per partition;
 * the footer holds the plain means. Rankings can be read per row.
 */
struct MultiMachineReport
{
    stats::MeanKind kind = stats::MeanKind::Geometric;
    std::vector<std::string> machineLabels;
    std::vector<MultiMachineRow> rows;
    std::vector<double> plainScores;

    /**
     * Machine ranking (indices into machineLabels, best first) at row
     * @p row; ties broken by machine order.
     */
    std::vector<std::size_t> ranking(std::size_t row) const;

    /** True when every row ranks the machines identically. */
    bool rankingStable() const;

    /** Render as an aligned text table. */
    std::string render() const;
};

/**
 * Build an N-machine report: one score vector per machine (all the
 * same size), one partition per row.
 */
MultiMachineReport buildMultiMachineReport(
    stats::MeanKind kind,
    const std::vector<std::vector<double>> &machine_scores,
    const std::vector<std::string> &machine_labels,
    const std::vector<Partition> &partitions);

} // namespace scoring
} // namespace hiermeans

#endif // HIERMEANS_SCORING_SCORE_REPORT_H
