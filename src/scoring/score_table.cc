#include "src/scoring/score_table.h"

#include <algorithm>

#include "src/util/error.h"

namespace hiermeans {
namespace scoring {

ScoreTable::ScoreTable(std::vector<std::string> workload_names,
                       std::vector<std::string> machine_names)
    : workloadNames_(std::move(workload_names)),
      machineNames_(std::move(machine_names))
{
    HM_REQUIRE(!workloadNames_.empty(), "ScoreTable: no workloads");
    HM_REQUIRE(!machineNames_.empty(), "ScoreTable: no machines");
    times_.assign(workloadNames_.size() * machineNames_.size(), -1.0);
    populated_.assign(times_.size(), false);
}

std::size_t
ScoreTable::workloadIndex(const std::string &name) const
{
    auto it = std::find(workloadNames_.begin(), workloadNames_.end(), name);
    HM_REQUIRE(it != workloadNames_.end(), "unknown workload `" << name
                                                                << "`");
    return static_cast<std::size_t>(it - workloadNames_.begin());
}

std::size_t
ScoreTable::machineIndex(const std::string &name) const
{
    auto it = std::find(machineNames_.begin(), machineNames_.end(), name);
    HM_REQUIRE(it != machineNames_.end(), "unknown machine `" << name
                                                              << "`");
    return static_cast<std::size_t>(it - machineNames_.begin());
}

std::size_t
ScoreTable::cell(std::size_t workload, std::size_t machine) const
{
    HM_REQUIRE(workload < workloadCount(), "workload index " << workload
                                                             << " out of "
                                                                "range");
    HM_REQUIRE(machine < machineCount(), "machine index " << machine
                                                          << " out of "
                                                             "range");
    return workload * machineCount() + machine;
}

void
ScoreTable::setRunTimes(std::size_t workload, std::size_t machine,
                        const std::vector<double> &seconds)
{
    HM_REQUIRE(!seconds.empty(), "setRunTimes: no runs");
    double acc = 0.0;
    for (double s : seconds) {
        HM_DOMAIN_CHECK(s > 0.0, "setRunTimes: non-positive time " << s);
        acc += s;
    }
    setTime(workload, machine, acc / static_cast<double>(seconds.size()));
}

void
ScoreTable::setTime(std::size_t workload, std::size_t machine,
                    double seconds)
{
    HM_DOMAIN_CHECK(seconds > 0.0, "setTime: non-positive time "
                                       << seconds);
    const std::size_t c = cell(workload, machine);
    times_[c] = seconds;
    populated_[c] = true;
}

double
ScoreTable::time(std::size_t workload, std::size_t machine) const
{
    const std::size_t c = cell(workload, machine);
    HM_REQUIRE(populated_[c], "time for workload "
                                  << workloadNames_[workload]
                                  << " on machine "
                                  << machineNames_[machine]
                                  << " was never recorded");
    return times_[c];
}

bool
ScoreTable::complete() const
{
    return std::all_of(populated_.begin(), populated_.end(),
                       [](bool b) { return b; });
}

double
ScoreTable::speedup(std::size_t workload, std::size_t machine,
                    std::size_t reference) const
{
    return time(workload, reference) / time(workload, machine);
}

std::vector<double>
ScoreTable::speedups(std::size_t machine, std::size_t reference) const
{
    std::vector<double> out;
    out.reserve(workloadCount());
    for (std::size_t w = 0; w < workloadCount(); ++w)
        out.push_back(speedup(w, machine, reference));
    return out;
}

double
ScoreTable::plainScore(stats::MeanKind kind, std::size_t machine,
                       std::size_t reference) const
{
    return stats::mean(kind, speedups(machine, reference));
}

} // namespace scoring
} // namespace hiermeans
