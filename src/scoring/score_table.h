/**
 * @file
 * Per-workload, per-machine score bookkeeping.
 *
 * Matches the paper's experimental method (Section IV-B): each workload
 * is executed several times per machine, the average execution time is
 * the representative time, and the score of a workload on a machine is
 * its speedup over a designated reference machine
 * (speedup = time_reference / time_machine).
 */

#ifndef HIERMEANS_SCORING_SCORE_TABLE_H
#define HIERMEANS_SCORING_SCORE_TABLE_H

#include <string>
#include <vector>

#include "src/stats/means.h"

namespace hiermeans {
namespace scoring {

/**
 * A workloads x machines table of raw execution times with speedup
 * derivation against a reference machine.
 */
class ScoreTable
{
  public:
    /**
     * @param workload_names one name per workload (row).
     * @param machine_names one name per machine (column).
     */
    ScoreTable(std::vector<std::string> workload_names,
               std::vector<std::string> machine_names);

    std::size_t workloadCount() const { return workloadNames_.size(); }
    std::size_t machineCount() const { return machineNames_.size(); }

    const std::vector<std::string> &workloadNames() const
    {
        return workloadNames_;
    }
    const std::vector<std::string> &machineNames() const
    {
        return machineNames_;
    }

    /** Index of a workload by name; throws when unknown. */
    std::size_t workloadIndex(const std::string &name) const;

    /** Index of a machine by name; throws when unknown. */
    std::size_t machineIndex(const std::string &name) const;

    /**
     * Record the execution times of one workload's repeated runs on one
     * machine; the representative time is their arithmetic mean, as in
     * the paper. Times must be positive.
     */
    void setRunTimes(std::size_t workload, std::size_t machine,
                     const std::vector<double> &seconds);

    /** Record a single representative time directly. */
    void setTime(std::size_t workload, std::size_t machine, double seconds);

    /** Representative time; throws when the cell was never set. */
    double time(std::size_t workload, std::size_t machine) const;

    /** True once every cell has a representative time. */
    bool complete() const;

    /**
     * Speedup of @p workload on @p machine relative to @p reference:
     * time(workload, reference) / time(workload, machine).
     */
    double speedup(std::size_t workload, std::size_t machine,
                   std::size_t reference) const;

    /** Speedups of all workloads on @p machine vs @p reference. */
    std::vector<double> speedups(std::size_t machine,
                                 std::size_t reference) const;

    /** Plain mean of speedups on a machine (the classic suite score). */
    double plainScore(stats::MeanKind kind, std::size_t machine,
                      std::size_t reference) const;

  private:
    std::vector<std::string> workloadNames_;
    std::vector<std::string> machineNames_;
    std::vector<double> times_;     ///< row-major, -1 = unset.
    std::vector<bool> populated_;

    std::size_t cell(std::size_t workload, std::size_t machine) const;
};

} // namespace scoring
} // namespace hiermeans

#endif // HIERMEANS_SCORING_SCORE_TABLE_H
