#include "src/scoring/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "src/scoring/hierarchical_mean.h"
#include "src/util/error.h"

namespace hiermeans {
namespace scoring {

InjectedSuite
injectDuplicates(const std::vector<double> &scores, const Partition &base,
                 std::size_t target, std::size_t copies)
{
    HM_REQUIRE(scores.size() == base.size(),
               "injectDuplicates: scores/partition size mismatch");
    HM_REQUIRE(target < scores.size(), "injectDuplicates: target "
                                           << target << " out of range");
    InjectedSuite out;
    out.scores = scores;
    std::vector<std::size_t> labels = base.labels();
    for (std::size_t i = 0; i < copies; ++i) {
        out.scores.push_back(scores[target]);
        labels.push_back(base.label(target));
    }
    out.partition = Partition::fromLabels(labels);
    return out;
}

std::vector<DriftResult>
redundancyDriftSweep(stats::MeanKind kind, const std::vector<double> &scores,
                     const Partition &base, std::size_t target,
                     std::size_t max_copies)
{
    const double plain0 = stats::mean(kind, scores);
    const double hier0 = hierarchicalMean(kind, scores, base);

    std::vector<DriftResult> results;
    results.reserve(max_copies + 1);
    for (std::size_t copies = 0; copies <= max_copies; ++copies) {
        const InjectedSuite suite =
            injectDuplicates(scores, base, target, copies);
        DriftResult r;
        r.copies = copies;
        r.plainMean = stats::mean(kind, suite.scores);
        r.hierarchicalMean =
            hierarchicalMean(kind, suite.scores, suite.partition);
        r.plainDrift = std::abs(r.plainMean / plain0 - 1.0);
        r.hierarchicalDrift = std::abs(r.hierarchicalMean / hier0 - 1.0);
        results.push_back(r);
    }
    return results;
}

double
gamingHeadroom(stats::MeanKind kind, const std::vector<double> &scores,
               std::size_t copies)
{
    HM_REQUIRE(!scores.empty(), "gamingHeadroom: empty suite");
    const double baseline = stats::mean(kind, scores);
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());

    std::vector<double> gamed = scores;
    for (std::size_t i = 0; i < copies; ++i)
        gamed.push_back(scores[best]);
    return stats::mean(kind, gamed) / baseline - 1.0;
}

std::vector<WorkloadInfluence>
leaveOneOutInfluence(stats::MeanKind kind,
                     const std::vector<double> &scores,
                     const Partition &partition)
{
    HM_REQUIRE(scores.size() == partition.size(),
               "leaveOneOutInfluence: scores/partition size mismatch");
    HM_REQUIRE(scores.size() >= 2,
               "leaveOneOutInfluence: need at least two workloads");

    const double plain_full = stats::mean(kind, scores);
    const double hier_full = hierarchicalMean(kind, scores, partition);

    std::vector<WorkloadInfluence> out;
    out.reserve(scores.size());
    for (std::size_t w = 0; w < scores.size(); ++w) {
        std::vector<double> reduced_scores;
        std::vector<std::size_t> reduced_labels;
        for (std::size_t i = 0; i < scores.size(); ++i) {
            if (i == w)
                continue;
            reduced_scores.push_back(scores[i]);
            reduced_labels.push_back(partition.label(i));
        }
        const Partition reduced =
            Partition::fromLabels(reduced_labels);

        WorkloadInfluence influence;
        influence.workload = w;
        influence.plainWithout = stats::mean(kind, reduced_scores);
        influence.hierarchicalWithout =
            hierarchicalMean(kind, reduced_scores, reduced);
        influence.plainInfluence =
            std::abs(influence.plainWithout / plain_full - 1.0);
        influence.hierarchicalInfluence =
            std::abs(influence.hierarchicalWithout / hier_full - 1.0);
        out.push_back(influence);
    }
    return out;
}

} // namespace scoring
} // namespace hiermeans
