/**
 * @file
 * Redundancy-bias and robustness analysis.
 *
 * The paper's motivation (Section I): redundant workloads amplify their
 * aggregated effect on a plain mean, making the suite score "susceptible
 * to malicious tweaks". These utilities quantify that effect: inject m
 * copies of a workload (or of a whole cluster) and measure how far the
 * plain mean drifts versus the hierarchical mean, assuming the injected
 * copies are correctly identified as cluster-mates.
 */

#ifndef HIERMEANS_SCORING_SENSITIVITY_H
#define HIERMEANS_SCORING_SENSITIVITY_H

#include <cstddef>
#include <vector>

#include "src/scoring/partition.h"
#include "src/stats/means.h"

namespace hiermeans {
namespace scoring {

/** Scores + partition after injecting duplicates of one workload. */
struct InjectedSuite
{
    std::vector<double> scores;
    Partition partition = Partition::single(1);
};

/**
 * Duplicate workload @p target @p copies times (appending to the end of
 * the suite). The returned partition extends @p base by placing every
 * copy in the target's cluster — the clustering a redundancy-aware
 * pipeline would discover.
 */
InjectedSuite injectDuplicates(const std::vector<double> &scores,
                               const Partition &base, std::size_t target,
                               std::size_t copies);

/** Result of one redundancy-drift measurement. */
struct DriftResult
{
    std::size_t copies = 0;
    double plainMean = 0.0;       ///< plain mean after injection.
    double hierarchicalMean = 0.0; ///< hierarchical mean after injection.
    double plainDrift = 0.0;       ///< |plain/plain0 - 1|.
    double hierarchicalDrift = 0.0; ///< |hier/hier0 - 1|.
};

/**
 * Sweep duplicate counts 0..max_copies of workload @p target and record
 * the drift of the plain vs hierarchical mean relative to the
 * unperturbed suite. The hierarchical drift is exactly zero for the
 * geometric/arithmetic/harmonic families because the inner mean of
 * identical copies equals the original value.
 */
std::vector<DriftResult> redundancyDriftSweep(
    stats::MeanKind kind, const std::vector<double> &scores,
    const Partition &base, std::size_t target, std::size_t max_copies);

/**
 * The "gaming headroom" of a suite under a mean: the largest relative
 * score increase a vendor can obtain by duplicating its single best
 * workload @p copies times. Plain means reward this; hierarchical
 * means (with honest clustering) do not.
 */
double gamingHeadroom(stats::MeanKind kind,
                      const std::vector<double> &scores,
                      std::size_t copies);

/** Influence of one workload on the suite score. */
struct WorkloadInfluence
{
    std::size_t workload = 0;
    double plainWithout = 0.0;        ///< plain mean, workload removed.
    double hierarchicalWithout = 0.0; ///< hierarchical mean, removed.
    /** Relative change of the plain mean when the workload is removed. */
    double plainInfluence = 0.0;
    /** Relative change of the hierarchical mean when removed. */
    double hierarchicalInfluence = 0.0;
};

/**
 * Leave-one-out influence of every workload under both the plain mean
 * and the hierarchical mean for @p partition. Under a plain mean every
 * member of a redundant block carries full weight, so each redundant
 * copy shows similar influence; under the hierarchical mean a member
 * of a large cluster has influence ~1/(k*n_i) — removing one SciMark2
 * kernel barely moves the HGM. Clusters emptied by the removal simply
 * disappear (k shrinks by one for singleton clusters).
 */
std::vector<WorkloadInfluence> leaveOneOutInfluence(
    stats::MeanKind kind, const std::vector<double> &scores,
    const Partition &partition);

} // namespace scoring
} // namespace hiermeans

#endif // HIERMEANS_SCORING_SENSITIVITY_H
