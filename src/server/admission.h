/**
 * @file
 * Bounded admission for scoring work: backpressure instead of OOM.
 *
 * Every /v1/score request (and every /v1/batch document) must win a
 * slot before it may touch the engine; when all slots are taken the
 * server answers `503 Retry-After` immediately instead of queueing
 * without bound. The gate counts *admitted-but-unfinished* requests —
 * engine executions plus requests waiting on the engine's queue — so
 * its depth is the server's end-to-end backlog.
 *
 * Two priority lanes share the capacity. Interactive traffic
 * (/v1/score) may fill every slot; bulk traffic (/v1/batch, observe
 * intake) is additionally capped at a fraction of the capacity, so a
 * burst of batch documents can never occupy the whole gate and starve
 * interactive requests. Both lane depths live packed in one atomic,
 * which keeps admission a single lock-free CAS.
 */

#ifndef HIERMEANS_SERVER_ADMISSION_H
#define HIERMEANS_SERVER_ADMISSION_H

#include <atomic>
#include <cstdint>

namespace hiermeans {
namespace server {

/** Admission priority: which lane a request competes in. */
enum class Lane
{
    Interactive = 0, ///< /v1/score — may use the full capacity.
    Bulk = 1         ///< /v1/batch, observe — capped below capacity.
};

inline constexpr std::size_t kLaneCount = 2;

/** Lane name for metrics labels ("interactive" / "bulk"). */
inline const char *
laneName(Lane lane)
{
    return lane == Lane::Bulk ? "bulk" : "interactive";
}

/** A two-lane counting gate with a hard capacity; lock-free. */
class AdmissionGate
{
  public:
    /**
     * Gate with @p capacity total slots (>= 1 enforced by clamping).
     * @p bulk_capacity caps the bulk lane; 0 picks the default of
     * half the capacity (at least one slot), which always leaves
     * interactive headroom on gates with >= 2 slots.
     */
    explicit AdmissionGate(std::size_t capacity,
                           std::size_t bulk_capacity = 0)
        : capacity_(capacity == 0 ? 1 : capacity),
          bulkCapacity_(bulk_capacity == 0
                            ? (capacity_ >= 2 ? capacity_ / 2 : 1)
                            : (bulk_capacity > capacity_ ? capacity_
                                                         : bulk_capacity))
    {}

    AdmissionGate(const AdmissionGate &) = delete;
    AdmissionGate &operator=(const AdmissionGate &) = delete;

    /**
     * Claim a slot in @p lane. False when the gate is full — or, for
     * bulk, when the bulk lane has hit its cap — and the caller sheds
     * the request (counted in shedTotal()/shedTotal(lane)).
     */
    bool
    tryEnter(Lane lane = Lane::Interactive)
    {
        std::uint64_t packed = depths_.load(std::memory_order_relaxed);
        for (;;) {
            const std::size_t interactive = unpackInteractive(packed);
            const std::size_t bulk = unpackBulk(packed);
            if (interactive + bulk >= capacity_ ||
                (lane == Lane::Bulk && bulk >= bulkCapacity_)) {
                shed_[static_cast<std::size_t>(lane)].fetch_add(
                    1, std::memory_order_relaxed);
                return false;
            }
            const std::uint64_t next =
                lane == Lane::Bulk ? packed + (1ULL << 32) : packed + 1;
            if (depths_.compare_exchange_weak(packed, next,
                                              std::memory_order_acq_rel))
                return true;
        }
    }

    /** Release a slot claimed by tryEnter() in the same lane. */
    void
    leave(Lane lane = Lane::Interactive)
    {
        depths_.fetch_sub(lane == Lane::Bulk ? (1ULL << 32) : 1,
                          std::memory_order_acq_rel);
    }

    /** Admitted-but-unfinished requests right now (both lanes). */
    std::size_t
    depth() const
    {
        const std::uint64_t packed =
            depths_.load(std::memory_order_relaxed);
        return unpackInteractive(packed) + unpackBulk(packed);
    }

    /** Admitted-but-unfinished requests in one lane. */
    std::size_t
    depth(Lane lane) const
    {
        const std::uint64_t packed =
            depths_.load(std::memory_order_relaxed);
        return lane == Lane::Bulk ? unpackBulk(packed)
                                  : unpackInteractive(packed);
    }

    std::size_t capacity() const { return capacity_; }

    /** The bulk lane's cap (< capacity on gates with headroom). */
    std::size_t bulkCapacity() const { return bulkCapacity_; }

    /** Cumulative rejections (503s served because the gate was full). */
    std::uint64_t
    shedTotal() const
    {
        return shed_[0].load(std::memory_order_relaxed) +
               shed_[1].load(std::memory_order_relaxed);
    }

    /** Cumulative rejections in one lane. */
    std::uint64_t
    shedTotal(Lane lane) const
    {
        return shed_[static_cast<std::size_t>(lane)].load(
            std::memory_order_relaxed);
    }

  private:
    static std::size_t unpackInteractive(std::uint64_t packed)
    {
        return static_cast<std::size_t>(packed & 0xffffffffULL);
    }
    static std::size_t unpackBulk(std::uint64_t packed)
    {
        return static_cast<std::size_t>(packed >> 32);
    }

    const std::size_t capacity_;
    const std::size_t bulkCapacity_;
    /** Interactive depth in the low 32 bits, bulk in the high 32. */
    std::atomic<std::uint64_t> depths_{0};
    std::atomic<std::uint64_t> shed_[kLaneCount] = {{0}, {0}};
};

/** RAII slot: enters on construction, leaves on destruction. */
class AdmissionTicket
{
  public:
    explicit AdmissionTicket(AdmissionGate &gate,
                             Lane lane = Lane::Interactive)
        : gate_(gate), lane_(lane), admitted_(gate.tryEnter(lane))
    {}

    ~AdmissionTicket()
    {
        if (admitted_)
            gate_.leave(lane_);
    }

    AdmissionTicket(const AdmissionTicket &) = delete;
    AdmissionTicket &operator=(const AdmissionTicket &) = delete;

    /** False when the gate was full — the request must be shed. */
    bool admitted() const { return admitted_; }

    Lane lane() const { return lane_; }

  private:
    AdmissionGate &gate_;
    const Lane lane_;
    const bool admitted_;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_ADMISSION_H
