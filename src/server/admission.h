/**
 * @file
 * Bounded admission for scoring work: backpressure instead of OOM.
 *
 * Every /v1/score request (and every /v1/batch document) must win a
 * slot before it may touch the engine; when all slots are taken the
 * server answers `503 Retry-After` immediately instead of queueing
 * without bound. The gate counts *admitted-but-unfinished* requests —
 * engine executions plus requests waiting on the engine's queue — so
 * its depth is the server's end-to-end backlog.
 */

#ifndef HIERMEANS_SERVER_ADMISSION_H
#define HIERMEANS_SERVER_ADMISSION_H

#include <atomic>
#include <cstdint>

namespace hiermeans {
namespace server {

/** A counting gate with a hard capacity; lock-free. */
class AdmissionGate
{
  public:
    /** Gate with @p capacity slots (>= 1 enforced by clamping). */
    explicit AdmissionGate(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {}

    AdmissionGate(const AdmissionGate &) = delete;
    AdmissionGate &operator=(const AdmissionGate &) = delete;

    /**
     * Claim a slot. False when the gate is full — the caller sheds the
     * request (and the rejection is counted in shedTotal()).
     */
    bool
    tryEnter()
    {
        std::size_t depth = depth_.load(std::memory_order_relaxed);
        while (depth < capacity_) {
            if (depth_.compare_exchange_weak(
                    depth, depth + 1, std::memory_order_acq_rel))
                return true;
        }
        shed_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    /** Release a slot claimed by tryEnter(). */
    void
    leave()
    {
        depth_.fetch_sub(1, std::memory_order_acq_rel);
    }

    /** Admitted-but-unfinished requests right now. */
    std::size_t
    depth() const
    {
        return depth_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return capacity_; }

    /** Cumulative rejections (503s served because the gate was full). */
    std::uint64_t
    shedTotal() const
    {
        return shed_.load(std::memory_order_relaxed);
    }

  private:
    const std::size_t capacity_;
    std::atomic<std::size_t> depth_{0};
    std::atomic<std::uint64_t> shed_{0};
};

/** RAII slot: enters on construction, leaves on destruction. */
class AdmissionTicket
{
  public:
    explicit AdmissionTicket(AdmissionGate &gate)
        : gate_(gate), admitted_(gate.tryEnter())
    {}

    ~AdmissionTicket()
    {
        if (admitted_)
            gate_.leave();
    }

    AdmissionTicket(const AdmissionTicket &) = delete;
    AdmissionTicket &operator=(const AdmissionTicket &) = delete;

    /** False when the gate was full — the request must be shed. */
    bool admitted() const { return admitted_; }

  private:
    AdmissionGate &gate_;
    const bool admitted_;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_ADMISSION_H
