#include "src/server/api.h"

#include "src/server/json.h"

namespace hiermeans {
namespace server {
namespace {

struct CodeEntry
{
    ApiError error;
    const char *code;
    int status;
};

/* Wire contract: append only, never rename. */
const CodeEntry kCodes[] = {
    {ApiError::None, "none", 200},
    {ApiError::BadRequest, "bad_request", 400},
    {ApiError::BodyTooLarge, "body_too_large", 413},
    {ApiError::HeadersTooLarge, "headers_too_large", 431},
    {ApiError::InvalidManifest, "invalid_manifest", 400},
    {ApiError::Timeout, "timeout", 504},
    {ApiError::WatchdogTimeout, "watchdog_timeout", 504},
    {ApiError::Overloaded, "overloaded", 503},
    {ApiError::CircuitOpen, "circuit_open", 503},
    {ApiError::Draining, "draining", 503},
    {ApiError::NotFound, "not_found", 404},
    {ApiError::MethodNotAllowed, "method_not_allowed", 405},
    {ApiError::ScoringFailed, "scoring_failed", 422},
    {ApiError::Internal, "internal", 500},
    {ApiError::SuiteUnknown, "suite_unknown", 404},
    {ApiError::StoreDisabled, "store_disabled", 503},
    {ApiError::MeshUnreachable, "mesh_unreachable", 502},
    {ApiError::DeadlineExpired, "deadline_expired", 504},
    {ApiError::UnsupportedMediaType, "unsupported_media_type", 415},
    {ApiError::NotAcceptable, "not_acceptable", 406},
    {ApiError::SuiteVersionConflict, "suite_version_conflict", 409},
};

std::string
traceIdJson(const std::string &traceId)
{
    return traceId.empty() ? "null" : json::quote(traceId);
}

} // namespace

const char *
apiErrorCode(ApiError error)
{
    for (const CodeEntry &entry : kCodes)
        if (entry.error == error)
            return entry.code;
    return "internal";
}

ApiError
parseApiErrorCode(const std::string &code)
{
    for (const CodeEntry &entry : kCodes)
        if (code == entry.code)
            return entry.error;
    return ApiError::Internal;
}

int
apiErrorStatus(ApiError error)
{
    for (const CodeEntry &entry : kCodes)
        if (entry.error == error)
            return entry.status;
    return 500;
}

std::string
okEnvelope(const std::string &dataJson, const std::string &traceId)
{
    return "{\"ok\":true,\"data\":" + dataJson +
           ",\"error\":null,\"trace_id\":" + traceIdJson(traceId) +
           "}";
}

std::string
errorEnvelope(ApiError error, const std::string &message,
              const std::string &traceId,
              const std::string &extraErrorJson)
{
    std::string body = "{\"ok\":false,\"data\":null,\"error\":{";
    body += "\"code\":\"";
    body += apiErrorCode(error);
    body += "\",\"message\":" + json::quote(message);
    if (!extraErrorJson.empty())
        body += "," + extraErrorJson;
    body += "},\"trace_id\":" + traceIdJson(traceId) + "}";
    return body;
}

HttpResponse
okResponse(const std::string &dataJson, const std::string &traceId)
{
    return jsonResponse(200, okEnvelope(dataJson, traceId) + "\n");
}

HttpResponse
errorResponse(ApiError error, const std::string &message,
              const std::string &traceId,
              const std::string &extraErrorJson)
{
    return jsonResponse(
        apiErrorStatus(error),
        errorEnvelope(error, message, traceId, extraErrorJson) + "\n");
}

std::optional<HttpResponse>
parseListLimit(const RequestContext &ctx, std::size_t fallback,
               std::size_t &limit)
{
    const std::string raw = ctx.http.queryParam("limit", "");
    if (raw.empty()) {
        limit = fallback;
        return std::nullopt;
    }
    std::size_t value = 0;
    bool valid = true;
    for (const char c : raw) {
        if (c < '0' || c > '9' || value > kMaxListLimit) {
            valid = false;
            break;
        }
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    if (!valid || value == 0 || value > kMaxListLimit)
        return errorResponse(
            ApiError::BadRequest,
            "limit must be an integer in [1, " +
                std::to_string(kMaxListLimit) + "], got `" + raw + "`",
            ctx.traceId);
    limit = value;
    return std::nullopt;
}

} // namespace server
} // namespace hiermeans
