/**
 * @file
 * The /v1 API envelope and its stable error-code enum.
 *
 * Every JSON body the daemon serves (and every NDJSON line in a batch
 * response) has one shape:
 *
 *   {"ok":true, "data":{...}, "error":null, "trace_id":"4f2a..."}
 *   {"ok":false,"data":null,
 *    "error":{"code":"overloaded","message":"..."},
 *    "trace_id":null}
 *
 * `trace_id` is the request's trace ID (echoed from `X-Hiermeans-Trace`
 * or generated) when tracing is armed, JSON null otherwise — so bodies
 * stay bit-identical across repeats when tracing is off, which the
 * chaos harness and stale-serving tests rely on.
 *
 * ApiError is the *wire contract*: the code strings are stable, shared
 * verbatim by the server (emitting) and client::ScoringClient
 * (parsing), and may only grow — renaming or renumbering breaks
 * deployed clients.
 */

#ifndef HIERMEANS_SERVER_API_H
#define HIERMEANS_SERVER_API_H

#include <cstddef>
#include <optional>
#include <string>

#include "src/server/http.h"
#include "src/server/router.h"

namespace hiermeans {
namespace server {

/** Stable /v1 error codes (wire contract — append only). */
enum class ApiError
{
    None = 0,         ///< success; error field is null.
    BadRequest,       ///< malformed HTTP or JSON.
    BodyTooLarge,     ///< 413 from the request parser.
    HeadersTooLarge,  ///< 431 from the request parser.
    InvalidManifest,  ///< manifest parsed but failed validation.
    Timeout,          ///< engine deadline exceeded (504).
    WatchdogTimeout,  ///< watchdog answered for a stuck worker (504).
    Overloaded,       ///< admission gate shed the request (503).
    CircuitOpen,      ///< breaker fast-failed the endpoint (503).
    Draining,         ///< graceful shutdown in progress (503).
    NotFound,         ///< no such endpoint or trace ID (404).
    MethodNotAllowed, ///< known path, wrong method (405).
    ScoringFailed,    ///< pipeline raised a domain error.
    Internal,         ///< unexpected exception (500).
    SuiteUnknown,     ///< no such registered suite (404).
    StoreDisabled,    ///< durable store not mounted (503).
    MeshUnreachable,  ///< shard owner unreachable via the mesh (502).
    DeadlineExpired,  ///< client budget spent before execution (504).
    UnsupportedMediaType, ///< request Content-Type not spoken (415).
    NotAcceptable,    ///< no response format satisfies Accept (406).
    SuiteVersionConflict, ///< re-registration changes a version (409).
};

/** The wire string for @p error, e.g. "circuit_open". */
const char *apiErrorCode(ApiError error);

/** Parse a wire string; unknown strings map to Internal. */
ApiError parseApiErrorCode(const std::string &code);

/** Conventional HTTP status for @p error (200 for None). */
int apiErrorStatus(ApiError error);

/**
 * Success envelope. @p dataJson must be a complete JSON value; an
 * empty @p traceId serializes as null.
 */
std::string okEnvelope(const std::string &dataJson,
                       const std::string &traceId);

/**
 * Error envelope. @p extraErrorJson, when non-empty, is spliced into
 * the error object after code/message (e.g. `"timed_out":true`).
 */
std::string errorEnvelope(ApiError error, const std::string &message,
                          const std::string &traceId,
                          const std::string &extraErrorJson = "");

/** okEnvelope wrapped in a 200 application/json response. */
HttpResponse okResponse(const std::string &dataJson,
                        const std::string &traceId);

/** errorEnvelope wrapped in a response with the conventional status. */
HttpResponse errorResponse(ApiError error, const std::string &message,
                           const std::string &traceId,
                           const std::string &extraErrorJson = "");

/** The shared upper bound for list-endpoint `?limit=` parameters
 *  (/v1/traces, /v1/history, /v1/drift, /v1/suites). */
inline constexpr std::size_t kMaxListLimit = 1000;

/**
 * Parse the bounded `?limit=` query parameter every list endpoint
 * shares: absent sets @p limit to @p fallback; a positive integer
 * within kMaxListLimit sets it verbatim. A malformed, zero or
 * over-bound value returns an engaged bad_request envelope whose
 * message names the bound — the caller answers it as-is.
 */
std::optional<HttpResponse> parseListLimit(const RequestContext &ctx,
                                           std::size_t fallback,
                                           std::size_t &limit);

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_API_H
