#include "src/server/client.h"

#include <chrono>

#include "src/util/error.h"

namespace hiermeans {
namespace server {

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port)
{}

void
HttpClient::ensureConnected()
{
    if (!socket_.valid()) {
        socket_ = net::connectTcp(host_, port_);
        parser_ = HttpResponseParser{};
    }
}

void
HttpClient::disconnect()
{
    socket_.close();
    parser_ = HttpResponseParser{};
}

HttpResponseParser::Response
HttpClient::roundTrip(const std::string &method,
                      const std::string &target, const std::string &body,
                      const std::string &content_type)
{
    return roundTrip(method, target, body, content_type, Headers{});
}

HttpResponseParser::Response
HttpClient::roundTrip(const std::string &method,
                      const std::string &target, const std::string &body,
                      const std::string &content_type,
                      const Headers &headers)
{
    ensureConnected();

    std::string wire = method + " " + target + " HTTP/1.1\r\n" +
                       "Host: " + host_ + "\r\n";
    for (const auto &[name, value] : headers)
        wire += name + ": " + value + "\r\n";
    if (!body.empty())
        wire += "Content-Type: " + content_type + "\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) +
            "\r\n\r\n" + body;
    net::writeAll(socket_.fd(), wire);

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(readTimeoutMillis_);

    char buffer[4096];
    while (parser_.state() == HttpResponseParser::State::NeedMore) {
        if (readTimeoutMillis_ > 0) {
            const auto remaining =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (remaining <= 0 ||
                !net::waitReadable(socket_.fd(),
                                   static_cast<int>(remaining))) {
                disconnect();
                throw net::NetError(net::NetError::Kind::TimedOut,
                                    "response timed out after " +
                                        std::to_string(readTimeoutMillis_) +
                                        " ms");
            }
        }
        const std::size_t n =
            net::readSome(socket_.fd(), buffer, sizeof(buffer));
        if (n == 0) {
            disconnect();
            throw net::NetError(net::NetError::Kind::Reset,
                                "connection closed mid-response");
        }
        parser_.feed(std::string_view(buffer, n));
    }
    if (parser_.state() == HttpResponseParser::State::Error) {
        const std::string message = parser_.errorMessage();
        disconnect();
        throw Error("bad response: " + message);
    }

    HttpResponseParser::Response response = parser_.response();
    parser_.reset();
    static const std::string kKeepAlive = "keep-alive";
    if (response.header("connection", kKeepAlive) == "close")
        disconnect();
    return response;
}

} // namespace server
} // namespace hiermeans
