/**
 * @file
 * A small blocking HTTP/1.1 client over the shared codec — the client
 * half of the serving layer, used by `tools/hmload`, the loopback
 * integration tests and `bench/perf_server_throughput`. One client =
 * one connection, kept alive across round trips and transparently
 * reconnected after the server (or a Connection: close) drops it.
 */

#ifndef HIERMEANS_SERVER_CLIENT_H
#define HIERMEANS_SERVER_CLIENT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/server/http.h"
#include "src/util/net.h"

namespace hiermeans {
namespace server {

/** Blocking single-connection HTTP client. */
class HttpClient
{
  public:
    /** Client for @p host:@p port; connects on first use. */
    HttpClient(std::string host, std::uint16_t port);

    /**
     * Cap the time roundTrip may spend waiting for response bytes;
     * 0 (the default) waits forever. On expiry the connection is
     * dropped and a NetError(TimedOut) is thrown — the response can
     * no longer be framed, so the connection cannot be reused.
     */
    void setReadTimeoutMillis(int timeout_millis)
    {
        readTimeoutMillis_ = timeout_millis;
    }

    /** Extra request headers for the overload below. */
    using Headers = std::vector<std::pair<std::string, std::string>>;

    /**
     * Send one request and wait for the full response. Reconnects if
     * the connection is closed; throws hiermeans::Error on connect,
     * I/O or response-parse failures.
     */
    HttpResponseParser::Response roundTrip(const std::string &method,
                                           const std::string &target,
                                           const std::string &body = "",
                                           const std::string &content_type =
                                               "text/plain");

    /** roundTrip with extra request headers (e.g. X-Hiermeans-Trace). */
    HttpResponseParser::Response
    roundTrip(const std::string &method, const std::string &target,
              const std::string &body, const std::string &content_type,
              const Headers &headers);

    /** Drop the connection (next roundTrip reconnects). */
    void disconnect();

    bool connected() const { return socket_.valid(); }

  private:
    void ensureConnected();

    std::string host_;
    std::uint16_t port_;
    int readTimeoutMillis_ = 0;
    net::Socket socket_;
    HttpResponseParser parser_;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_CLIENT_H
