/**
 * @file
 * The seam between the suite-service layer and the mesh subsystem.
 *
 * A single-node daemon runs with no ClusterHooks and every
 * suite-affine request is served locally. In cluster mode (hmserved
 * --mesh-config) the mesh runtime implements this interface and the
 * handlers consult it:
 *
 *   - routeSuite() decides whether the suite named by a request is
 *     owned here; if not, relay() either proxies the request to the
 *     owner (POST bodies) or answers 307 with a Location on the
 *     owner (GETs). Requests already carrying the
 *     X-Hiermeans-Forwarded loop guard are always served locally.
 *   - afterWrite() runs after a local durable commit and ships the
 *     outstanding WAL records to this node's followers before the
 *     response is acknowledged.
 *   - replicaSuite()/replicaHistory() let a surviving node answer
 *     reads for a dead leader's shard from its replica image.
 *   - handleCluster()/handleReplicate() back the two mesh endpoints
 *     (GET /v1/cluster, POST /v1/mesh/replicate).
 *
 * The interface lives in the server library (which knows nothing of
 * the mesh) so the dependency points one way: mesh -> server.
 */

#ifndef HIERMEANS_SERVER_CLUSTER_H
#define HIERMEANS_SERVER_CLUSTER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/prometheus.h"
#include "src/server/http.h"
#include "src/server/router.h"
#include "src/store/state.h"

namespace hiermeans {
namespace server {

/** Where a suite-affine request should be served. */
struct ClusterRoute
{
    enum class Action
    {
        Local,   ///< this node serves it (owner, or promoted).
        Forward, ///< proxy to `nodeId` and relay its response.
        Redirect ///< answer 307 with a Location on `nodeId`.
    };

    Action action = Action::Local;
    std::string nodeId; ///< target member (empty for Local).
    std::string host;
    std::uint16_t port = 0;
};

/** Loop-guard header stamped on proxied requests: a request that
 *  already carries it is served locally, never relayed again. */
inline constexpr const char *kForwardedHeader = "X-Hiermeans-Forwarded";

/** Mesh integration points consulted by the suite-service layer.
 *  Implemented by mesh::MeshRuntime; absent on single-node daemons. */
class ClusterHooks
{
  public:
    virtual ~ClusterHooks() = default;

    /** Route decision for a request naming @p suite. @p isWrite
     *  selects proxying over redirecting for non-local routes. */
    virtual ClusterRoute routeSuite(const std::string &suite,
                                    bool isWrite) = 0;

    /** Execute a non-local route: proxy the request (Forward) or
     *  build the 307 answer (Redirect). Never throws — an
     *  unreachable target becomes an error envelope. */
    virtual HttpResponse relay(const RequestContext &ctx,
                               const ClusterRoute &route) = 0;

    /** Ship outstanding local commits to this node's followers and
     *  wait for their durable acks (bounded; an unreachable follower
     *  is marked lagging, not waited for). Called after every local
     *  durable write, before the response is sent. @p budget_millis
     *  is the requester's remaining deadline budget (0 = none): the
     *  per-follower ack wait is capped to it so replication never
     *  outlives the caller's patience. */
    virtual void afterWrite(double budget_millis) = 0;

    /** Background/no-deadline form: replicate with the full RPC
     *  timeout. */
    void afterWrite() { afterWrite(0.0); }

    /** Resolve @p name from the replica images this node holds —
     *  the read path for a dead leader's shard. */
    virtual std::optional<store::SuiteVersion>
    replicaSuite(const std::string &name, std::uint32_t version) = 0;

    /** History of @p suite from the replica images. */
    virtual std::vector<store::HistoryEntry>
    replicaHistory(const std::string &suite) = 0;

    /** GET /v1/cluster: membership, ring and per-node health. */
    virtual HttpResponse handleCluster(const RequestContext &ctx) = 0;

    /** POST /v1/mesh/replicate: apply a leader's shipped records
     *  and answer the durable ack offset. */
    virtual HttpResponse handleReplicate(const RequestContext &ctx) = 0;

    /** Append the hiermeans_mesh_* family to the /metrics body. */
    virtual void renderMetrics(obs::PrometheusWriter &writer) = 0;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_CLUSTER_H
