#include "src/server/http.h"

#include <algorithm>
#include <cctype>

#include "src/util/str.h"

namespace hiermeans {
namespace server {

namespace {

/** Locate the end of the header block; 0 when incomplete. Returns the
 *  total prefix length including the blank-line terminator. */
std::size_t
headerBlockEnd(const std::string &buffer)
{
    const std::size_t crlf = buffer.find("\r\n\r\n");
    const std::size_t lf = buffer.find("\n\n");
    if (crlf == std::string::npos && lf == std::string::npos)
        return 0;
    if (crlf == std::string::npos)
        return lf + 2;
    if (lf == std::string::npos || crlf < lf)
        return crlf + 4;
    return lf + 2;
}

std::string
stripCr(std::string line)
{
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return line;
}

/**
 * Parse `name: value` lines (everything after the start line) into a
 * lower-cased header map. Returns false on a malformed field line.
 */
bool
parseHeaderFields(const std::vector<std::string> &lines,
                  std::map<std::string, std::string> &headers)
{
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const std::string line = stripCr(lines[i]);
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return false;
        headers[str::toLower(str::trim(line.substr(0, colon)))] =
            str::trim(line.substr(colon + 1));
    }
    return true;
}

/** Parse a non-negative decimal; false on anything else. */
bool
parseContentLength(const std::string &text, std::size_t &value)
{
    if (text.empty())
        return false;
    value = 0;
    for (const char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        if (value > (SIZE_MAX - 9) / 10)
            return false;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return true;
}

const std::string kEmpty;

} // namespace

const char *
statusReason(int status)
{
    switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
    }
}

std::string
HttpRequest::path() const
{
    const std::size_t query = target.find('?');
    return query == std::string::npos ? target : target.substr(0, query);
}

std::string
HttpRequest::queryParam(const std::string &name,
                        const std::string &fallback) const
{
    const std::size_t question = target.find('?');
    if (question == std::string::npos)
        return fallback;
    std::size_t start = question + 1;
    while (start < target.size()) {
        std::size_t end = target.find('&', start);
        if (end == std::string::npos)
            end = target.size();
        const std::string pair = target.substr(start, end - start);
        const std::size_t eq = pair.find('=');
        if (eq != std::string::npos && pair.substr(0, eq) == name)
            return pair.substr(eq + 1);
        if (eq == std::string::npos && pair == name)
            return ""; // bare flag: present, no value.
        start = end + 1;
    }
    return fallback;
}

const std::string &
HttpRequest::header(const std::string &name,
                    const std::string &fallback) const
{
    const auto it = headers.find(name);
    return it == headers.end() ? fallback : it->second;
}

bool
HttpRequest::keepAlive() const
{
    const std::string connection =
        str::toLower(header("connection", kEmpty));
    if (connection == "close")
        return false;
    if (connection == "keep-alive")
        return true;
    return version == "HTTP/1.1"; // 1.1 defaults to persistent.
}

void
HttpResponse::set(std::string name, std::string value)
{
    headers.emplace_back(std::move(name), std::move(value));
}

std::string
HttpResponse::serialize() const
{
    std::string wire = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusReason(status) + "\r\n";
    for (const auto &[name, value] : headers)
        wire += name + ": " + value + "\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    wire += std::string("Connection: ") +
            (closeConnection ? "close" : "keep-alive") + "\r\n\r\n";
    wire += body;
    return wire;
}

HttpResponse
textResponse(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.set("Content-Type", "text/plain; charset=utf-8");
    response.body = std::move(body);
    return response;
}

HttpResponse
jsonResponse(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.set("Content-Type", "application/json");
    response.body = std::move(body);
    return response;
}

HttpRequestParser::HttpRequestParser(Limits limits) : limits_(limits) {}

HttpRequestParser::State
HttpRequestParser::fail(int status, std::string message)
{
    state_ = State::Error;
    errorStatus_ = status;
    errorMessage_ = std::move(message);
    return state_;
}

HttpRequestParser::State
HttpRequestParser::feed(std::string_view data)
{
    if (state_ != State::NeedMore)
        return state_;
    buffer_.append(data.data(), data.size());
    return tryParse();
}

HttpRequestParser::State
HttpRequestParser::tryParse()
{
    if (!headersDone_) {
        const std::size_t end = headerBlockEnd(buffer_);
        if (end == 0) {
            if (buffer_.size() > limits_.maxHeaderBytes)
                return fail(431, "header block exceeds " +
                                     std::to_string(
                                         limits_.maxHeaderBytes) +
                                     " bytes");
            return state_;
        }
        if (end > limits_.maxHeaderBytes)
            return fail(431,
                        "header block exceeds " +
                            std::to_string(limits_.maxHeaderBytes) +
                            " bytes");
        headerBytes_ = end;

        const std::vector<std::string> lines =
            str::split(buffer_.substr(0, end), '\n');
        const std::string start = stripCr(lines.front());
        const std::vector<std::string> parts =
            str::splitWhitespace(start);
        if (parts.size() != 3 ||
            !str::startsWith(parts[2], "HTTP/"))
            return fail(400, "malformed request line `" + start + "`");
        request_.method = parts[0];
        request_.target = parts[1];
        request_.version = parts[2];
        if (!parseHeaderFields(lines, request_.headers))
            return fail(400, "malformed header field");

        contentLength_ = 0;
        const auto it = request_.headers.find("content-length");
        if (it != request_.headers.end() &&
            !parseContentLength(it->second, contentLength_))
            return fail(400, "malformed Content-Length `" + it->second +
                                 "`");
        if (contentLength_ > limits_.maxBodyBytes)
            return fail(413, "body of " +
                                 std::to_string(contentLength_) +
                                 " bytes exceeds limit of " +
                                 std::to_string(limits_.maxBodyBytes));
        headersDone_ = true;
    }

    if (buffer_.size() < headerBytes_ + contentLength_)
        return state_;
    request_.body =
        buffer_.substr(headerBytes_, contentLength_);
    state_ = State::Ready;
    return state_;
}

HttpRequestParser::State
HttpRequestParser::reset()
{
    if (state_ == State::Ready) {
        buffer_.erase(0, headerBytes_ + contentLength_);
    } else {
        buffer_.clear(); // errors close the connection; drop leftovers.
    }
    request_ = HttpRequest{};
    state_ = State::NeedMore;
    errorStatus_ = 400;
    errorMessage_.clear();
    headerBytes_ = 0;
    contentLength_ = 0;
    headersDone_ = false;
    if (!buffer_.empty())
        return tryParse();
    return state_;
}

const std::string &
HttpResponseParser::Response::header(const std::string &name,
                                     const std::string &fallback) const
{
    const auto it = headers.find(name);
    return it == headers.end() ? fallback : it->second;
}

HttpResponseParser::State
HttpResponseParser::feed(std::string_view data)
{
    if (state_ != State::NeedMore)
        return state_;
    buffer_.append(data.data(), data.size());
    return tryParse();
}

HttpResponseParser::State
HttpResponseParser::tryParse()
{
    if (!headersDone_) {
        const std::size_t end = headerBlockEnd(buffer_);
        if (end == 0)
            return state_;
        headerBytes_ = end;

        const std::vector<std::string> lines =
            str::split(buffer_.substr(0, end), '\n');
        const std::string start = stripCr(lines.front());
        const std::vector<std::string> parts =
            str::splitWhitespace(start);
        if (parts.size() < 2 || !str::startsWith(parts[0], "HTTP/")) {
            state_ = State::Error;
            errorMessage_ = "malformed status line `" + start + "`";
            return state_;
        }
        try {
            response_.status = std::stoi(parts[1]);
        } catch (...) {
            state_ = State::Error;
            errorMessage_ = "malformed status code `" + parts[1] + "`";
            return state_;
        }
        if (!parseHeaderFields(lines, response_.headers)) {
            state_ = State::Error;
            errorMessage_ = "malformed header field";
            return state_;
        }
        contentLength_ = 0;
        const auto it = response_.headers.find("content-length");
        if (it != response_.headers.end() &&
            !parseContentLength(it->second, contentLength_)) {
            state_ = State::Error;
            errorMessage_ =
                "malformed Content-Length `" + it->second + "`";
            return state_;
        }
        headersDone_ = true;
    }

    if (buffer_.size() < headerBytes_ + contentLength_)
        return state_;
    response_.body = buffer_.substr(headerBytes_, contentLength_);
    state_ = State::Ready;
    return state_;
}

HttpResponseParser::State
HttpResponseParser::reset()
{
    if (state_ == State::Ready)
        buffer_.erase(0, headerBytes_ + contentLength_);
    else
        buffer_.clear();
    response_ = Response{};
    state_ = State::NeedMore;
    errorMessage_.clear();
    headerBytes_ = 0;
    contentLength_ = 0;
    headersDone_ = false;
    if (!buffer_.empty())
        return tryParse();
    return state_;
}

} // namespace server
} // namespace hiermeans
