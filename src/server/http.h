/**
 * @file
 * A minimal HTTP/1.1 codec for the scoring daemon — request parsing,
 * response serialization, and the client-side response parser the load
 * generator reuses. Deliberately small: no chunked transfer encoding,
 * no multipart, no TLS; bodies are delimited by Content-Length only,
 * which is all the manifest-line API needs.
 *
 * Both parsers are incremental: feed bytes as they arrive off the
 * socket, poll `state()`, and call `reset()` after consuming a message
 * to continue with pipelined/keep-alive leftovers. Limits are enforced
 * while reading, so an oversized header block or body fails fast
 * (431/413) without buffering the whole thing.
 */

#ifndef HIERMEANS_SERVER_HTTP_H
#define HIERMEANS_SERVER_HTTP_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hiermeans {
namespace server {

/** Standard reason phrase for @p status ("OK", "Not Found", ...). */
const char *statusReason(int status);

/** A parsed HTTP request. */
struct HttpRequest
{
    std::string method;  ///< e.g. "GET", upper-case as received.
    std::string target;  ///< full request target, query included.
    std::string version; ///< "HTTP/1.1".
    /** Header fields; names lower-cased, values trimmed. */
    std::map<std::string, std::string> headers;
    std::string body;

    /** The target's path component (query string stripped). */
    std::string path() const;

    /**
     * Value of query parameter @p name from the target, or
     * @p fallback. Splits on `&` and `=` only — no percent-decoding
     * (the /v1 API's parameters are plain identifiers).
     */
    std::string queryParam(const std::string &name,
                           const std::string &fallback) const;

    /** Header value by lower-case name, or @p fallback. */
    const std::string &header(const std::string &name,
                              const std::string &fallback) const;

    /** Keep-alive per HTTP/1.1 defaults + Connection header. */
    bool keepAlive() const;
};

/** An HTTP response under construction. */
struct HttpResponse
{
    int status = 200;
    /** Extra headers (Content-Length and Connection are emitted
     *  automatically by serialize()). */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    bool closeConnection = false;

    /** Add a header field. */
    void set(std::string name, std::string value);

    /** Serialize status line + headers + body to the wire format. */
    std::string serialize() const;
};

/** Convenience builders used across the router and handlers. */
HttpResponse textResponse(int status, std::string body);
HttpResponse jsonResponse(int status, std::string body);

/** Incremental request parser. */
class HttpRequestParser
{
  public:
    struct Limits
    {
        std::size_t maxHeaderBytes = 16 * 1024;
        std::size_t maxBodyBytes = 256 * 1024;
    };

    enum class State
    {
        NeedMore, ///< keep feeding bytes.
        Ready,    ///< request() is complete.
        Error     ///< errorStatus()/errorMessage() describe the 4xx.
    };

    /** Parser with the default limits. */
    HttpRequestParser() : HttpRequestParser(Limits{}) {}

    explicit HttpRequestParser(Limits limits);

    /** Append raw bytes and advance the parse. */
    State feed(std::string_view data);

    State state() const { return state_; }

    /** The parsed request; valid only in State::Ready. */
    const HttpRequest &request() const { return request_; }

    /** Suggested response status in State::Error (400, 413, 431). */
    int errorStatus() const { return errorStatus_; }
    const std::string &errorMessage() const { return errorMessage_; }

    /**
     * Consume the current request (or error) and re-parse any buffered
     * leftover bytes — the keep-alive continuation. May return Ready
     * immediately when a pipelined request was already buffered.
     */
    State reset();

    /** True when bytes of a new request have started arriving (used
     *  by graceful shutdown to decide whether to wait or close). */
    bool midRequest() const { return !buffer_.empty(); }

  private:
    State tryParse();
    State fail(int status, std::string message);

    Limits limits_;
    std::string buffer_;
    HttpRequest request_;
    State state_ = State::NeedMore;
    int errorStatus_ = 400;
    std::string errorMessage_;
    std::size_t headerBytes_ = 0;  ///< prefix length incl. terminator.
    std::size_t contentLength_ = 0;
    bool headersDone_ = false;
};

/** Incremental response parser (client side: hmload, tests, bench). */
class HttpResponseParser
{
  public:
    struct Response
    {
        int status = 0;
        std::map<std::string, std::string> headers; ///< lower-cased.
        std::string body;

        const std::string &header(const std::string &name,
                                  const std::string &fallback) const;
    };

    enum class State
    {
        NeedMore,
        Ready,
        Error
    };

    State feed(std::string_view data);
    State state() const { return state_; }
    const Response &response() const { return response_; }
    const std::string &errorMessage() const { return errorMessage_; }

    /** Consume the current response, keep leftovers (keep-alive). */
    State reset();

  private:
    State tryParse();

    std::string buffer_;
    Response response_;
    State state_ = State::NeedMore;
    std::string errorMessage_;
    std::size_t headerBytes_ = 0;
    std::size_t contentLength_ = 0;
    bool headersDone_ = false;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_HTTP_H
