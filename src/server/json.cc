#include "src/server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hiermeans {
namespace server {
namespace json {

std::string
escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':  out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
quote(std::string_view text)
{
    return "\"" + escape(text) + "\"";
}

std::string
number(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::optional<std::string>
findRawValue(std::string_view object, std::string_view key)
{
    const std::string needle = "\"" + std::string(key) + "\":";
    const std::size_t at = object.find(needle);
    if (at == std::string_view::npos)
        return std::nullopt;
    std::size_t begin = at + needle.size();
    while (begin < object.size() && object[begin] == ' ')
        ++begin;
    std::size_t end = begin;
    while (end < object.size() && object[end] != ',' &&
           object[end] != '}' && object[end] != ']')
        ++end;
    if (begin == end)
        return std::nullopt;
    return std::string(object.substr(begin, end - begin));
}

std::optional<double>
findNumber(std::string_view object, std::string_view key)
{
    const auto raw = findRawValue(object, key);
    if (!raw)
        return std::nullopt;
    char *parse_end = nullptr;
    const double value = std::strtod(raw->c_str(), &parse_end);
    if (parse_end == raw->c_str())
        return std::nullopt;
    return value;
}

std::optional<std::string>
findString(std::string_view object, std::string_view key)
{
    const std::string needle = "\"" + std::string(key) + "\":";
    const std::size_t at = object.find(needle);
    if (at == std::string_view::npos)
        return std::nullopt;
    std::size_t begin = at + needle.size();
    while (begin < object.size() && object[begin] == ' ')
        ++begin;
    if (begin >= object.size() || object[begin] != '"')
        return std::nullopt;
    ++begin;
    std::size_t end = begin;
    while (end < object.size() && object[end] != '"') {
        if (object[end] == '\\')
            ++end;
        ++end;
    }
    if (end >= object.size())
        return std::nullopt;
    return unescape(object.substr(begin, end - begin));
}

std::string
unescape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c != '\\' || i + 1 >= text.size()) {
            out += c;
            continue;
        }
        const char next = text[++i];
        switch (next) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case '/':  out += '/'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u':
            if (i + 4 < text.size()) {
                const std::string hex(text.substr(i + 1, 4));
                char *end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end != nullptr && *end == '\0' && code < 0x80) {
                    out += static_cast<char>(code);
                    i += 4;
                    break;
                }
            }
            out += "\\u"; /* malformed: keep literally */
            break;
        default:
            out += '\\';
            out += next;
        }
    }
    return out;
}

} // namespace json
} // namespace server
} // namespace hiermeans
