/**
 * @file
 * Tiny JSON emission + extraction helpers for the serving layer.
 *
 * The server speaks newline-delimited JSON objects built by hand (no
 * JSON library in the image); these helpers keep escaping and number
 * round-tripping in one place. `number()` prints doubles with 17
 * significant digits so a client parsing the value back gets the
 * bit-identical double — the integration tests rely on this.
 */

#ifndef HIERMEANS_SERVER_JSON_H
#define HIERMEANS_SERVER_JSON_H

#include <optional>
#include <string>
#include <string_view>

namespace hiermeans {
namespace server {
namespace json {

/** Escape for use inside a JSON string literal (quotes not added). */
std::string escape(std::string_view text);

/** A quoted, escaped JSON string literal. */
std::string quote(std::string_view text);

/** Shortest round-trippable decimal for @p value (%.17g; non-finite
 *  values are emitted as null). */
std::string number(double value);

/**
 * Extract the raw value of @p key from a flat JSON object text — a
 * scanner for tests and the load generator, not a general parser.
 * Returns the token after `"key":` (string values unescaped are NOT
 * handled; use for numbers/booleans) or nullopt when absent.
 */
std::optional<std::string> findRawValue(std::string_view object,
                                        std::string_view key);

/** findRawValue parsed as double; nullopt when absent/non-numeric. */
std::optional<double> findNumber(std::string_view object,
                                 std::string_view key);

/**
 * findRawValue for string values: the unescaped contents of the
 * quoted token after `"key":`, or nullopt when absent / not a string.
 */
std::optional<std::string> findString(std::string_view object,
                                      std::string_view key);

/** Undo escape(): resolve \" \\ \n \r \t and \u00XX sequences. */
std::string unescape(std::string_view text);

} // namespace json
} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_JSON_H
