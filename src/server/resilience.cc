#include "src/server/resilience.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace hiermeans {
namespace server {

bool
CircuitBreaker::allow()
{
    if (!enabled())
        return true;
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
    case State::Closed:
        return true;
    case State::HalfOpen:
        // Exactly one probe decides; everyone else keeps fast-failing.
        if (probeInFlight_) {
            fastFailures_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        probeInFlight_ = true;
        return true;
    case State::Open: {
        const double open_for =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      openedAt_)
                .count();
        if (open_for >= config_.openMillis) {
            state_ = State::HalfOpen;
            probeInFlight_ = true;
            return true;
        }
        fastFailures_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    }
    return true; // unreachable.
}

void
CircuitBreaker::onSuccess()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    consecutiveFailures_ = 0;
    probeInFlight_ = false;
    state_ = State::Closed;
}

void
CircuitBreaker::onFailure()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::HalfOpen) {
        // The probe failed: straight back to open, fresh window.
        probeInFlight_ = false;
        state_ = State::Open;
        openedAt_ = Clock::now();
        opens_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (state_ == State::Open)
        return; // already open; nothing new to learn.
    if (++consecutiveFailures_ >= config_.failureThreshold) {
        state_ = State::Open;
        openedAt_ = Clock::now();
        opens_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
CircuitBreaker::onAbandoned()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    probeInFlight_ = false;
}

CircuitBreaker::State
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

const char *
CircuitBreaker::stateName() const
{
    switch (state()) {
    case State::Closed:   return "closed";
    case State::Open:     return "open";
    default:              return "half-open";
    }
}

long
CircuitBreaker::retryAfterSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::Open)
        return 0;
    const double open_for =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  openedAt_)
            .count();
    const double remaining = config_.openMillis - open_for;
    return std::max(1L, static_cast<long>(std::ceil(remaining / 1000.0)));
}

const char *
healthStateName(HealthState state)
{
    switch (state) {
    case HealthState::Ok:       return "ok";
    case HealthState::Degraded: return "degraded";
    default:                    return "draining";
    }
}

HealthMonitor::HealthMonitor(Config config) : config_(config)
{
    HM_REQUIRE(config_.windowSize >= 1,
               "HealthMonitor: windowSize must be >= 1");
    HM_REQUIRE(config_.recoverRatio < config_.degradeRatio,
               "HealthMonitor: recoverRatio ("
                   << config_.recoverRatio
                   << ") must be below degradeRatio ("
                   << config_.degradeRatio << ")");
    window_.assign(config_.windowSize, false);
}

void
HealthMonitor::recordOutcome(bool shed)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (filled_ == window_.size()) {
        if (window_[next_])
            --shedInWindow_;
    } else {
        ++filled_;
    }
    window_[next_] = shed;
    if (shed)
        ++shedInWindow_;
    next_ = (next_ + 1) % window_.size();

    if (filled_ < config_.minSamples)
        return;
    const double ratio = static_cast<double>(shedInWindow_) /
                         static_cast<double>(filled_);
    if (!degraded_ && ratio >= config_.degradeRatio)
        degraded_ = true;
    else if (degraded_ && ratio <= config_.recoverRatio)
        degraded_ = false;
}

void
HealthMonitor::onAdmitted()
{
    recordOutcome(false);
}

void
HealthMonitor::onShed()
{
    recordOutcome(true);
}

void
HealthMonitor::onStuckWorkers(std::size_t stuck)
{
    stuckWorkers_.store(stuck, std::memory_order_relaxed);
}

void
HealthMonitor::setDraining()
{
    draining_.store(true, std::memory_order_relaxed);
}

HealthState
HealthMonitor::state() const
{
    if (draining_.load(std::memory_order_relaxed))
        return HealthState::Draining;
    if (stuckWorkers_.load(std::memory_order_relaxed) > 0)
        return HealthState::Degraded;
    std::lock_guard<std::mutex> lock(mutex_);
    return degraded_ ? HealthState::Degraded : HealthState::Ok;
}

} // namespace server
} // namespace hiermeans
