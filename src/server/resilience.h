/**
 * @file
 * Server-side resilience primitives: a per-endpoint circuit breaker
 * and the daemon's health state machine.
 *
 * The breaker guards the expensive scoring path: consecutive hard
 * failures (engine exceptions, 504s, watchdog trips) open the circuit
 * and the endpoint fast-fails with `503 Retry-After` — no engine work,
 * no queueing — until the open window lapses. Then a half-open probe
 * is let through: success closes the circuit, failure re-opens it.
 *
 * The health state machine (`ok -> degraded -> draining`) is what
 * `/healthz` reports and what degraded-mode serving keys off:
 *  - `degraded` — the admission gate is shedding a high fraction of
 *    recent requests, the watchdog sees stuck workers, or a breaker is
 *    open. The server prefers serving *stale* cached scores (marked
 *    `X-Hiermeans-Stale`) over queueing into a saturated engine.
 *  - `draining` — graceful shutdown has begun; probes get 503 so load
 *    balancers stop routing here while in-flight requests finish.
 * Transitions are hysteretic (enter degraded at a high shed ratio,
 * leave at a low one) so the state doesn't flap at the boundary.
 */

#ifndef HIERMEANS_SERVER_RESILIENCE_H
#define HIERMEANS_SERVER_RESILIENCE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hiermeans {
namespace server {

/** A consecutive-failure circuit breaker (thread-safe). */
class CircuitBreaker
{
  public:
    struct Config
    {
        /** Consecutive failures that open the circuit; 0 disables the
         *  breaker entirely (allow() is always true). */
        std::size_t failureThreshold = 8;

        /** How long the circuit stays open before a half-open probe. */
        double openMillis = 2000.0;
    };

    enum class State
    {
        Closed,   ///< normal operation.
        Open,     ///< fast-failing; no work admitted.
        HalfOpen  ///< one probe in flight decides the next state.
    };

    explicit CircuitBreaker(Config config) : config_(config) {}
    CircuitBreaker() : CircuitBreaker(Config{}) {}

    CircuitBreaker(const CircuitBreaker &) = delete;
    CircuitBreaker &operator=(const CircuitBreaker &) = delete;

    /**
     * May this request proceed? False means fast-fail (the rejection
     * is counted). An open circuit whose window has lapsed transitions
     * to half-open here and admits exactly one probe.
     */
    bool allow();

    /** Report the outcome of an admitted request. */
    void onSuccess();
    void onFailure();

    /** The admitted request was shed before doing real work (gate
     *  full): releases a half-open probe slot without counting the
     *  outcome either way. */
    void onAbandoned();

    State state() const;
    const char *stateName() const;

    /** Times the circuit transitioned Closed/HalfOpen -> Open. */
    std::uint64_t opens() const
    {
        return opens_.load(std::memory_order_relaxed);
    }

    /** Requests fast-failed by allow(). */
    std::uint64_t fastFailures() const
    {
        return fastFailures_.load(std::memory_order_relaxed);
    }

    /** Whole seconds until a half-open probe is due (>= 1), for the
     *  Retry-After header; 0 when the circuit is not open. */
    long retryAfterSeconds() const;

    bool enabled() const { return config_.failureThreshold > 0; }

  private:
    using Clock = std::chrono::steady_clock;

    Config config_;
    mutable std::mutex mutex_;
    State state_ = State::Closed;
    std::size_t consecutiveFailures_ = 0;
    bool probeInFlight_ = false;
    Clock::time_point openedAt_{};
    std::atomic<std::uint64_t> opens_{0};
    std::atomic<std::uint64_t> fastFailures_{0};
};

/** The /healthz states, in order of increasing trouble. */
enum class HealthState
{
    Ok,
    Degraded,
    Draining
};

/** Display name ("ok", "degraded", "draining"). */
const char *healthStateName(HealthState state);

/** Tracks admission outcomes and stuck workers; derives the state. */
class HealthMonitor
{
  public:
    struct Config
    {
        /** Sliding window of recent admission outcomes. */
        std::size_t windowSize = 64;

        /** Shed fraction of the window that enters Degraded. */
        double degradeRatio = 0.5;

        /** Shed fraction at or below which Degraded recovers to Ok
         *  (hysteresis; must be < degradeRatio). */
        double recoverRatio = 0.125;

        /** Outcomes required before the ratio is trusted at all. */
        std::size_t minSamples = 16;
    };

    explicit HealthMonitor(Config config);
    HealthMonitor() : HealthMonitor(Config{}) {}

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** One scoring request admitted past the gate. */
    void onAdmitted();

    /** One scoring request shed because the gate was full. */
    void onShed();

    /** Watchdog feed: how many workers are currently overdue. Any
     *  non-zero count forces Degraded while it lasts. */
    void onStuckWorkers(std::size_t stuck);

    /** Latch Draining (graceful shutdown has begun). One-way. */
    void setDraining();

    HealthState state() const;
    const char *stateName() const { return healthStateName(state()); }

  private:
    void recordOutcome(bool shed); // locks mutex_.

    Config config_;
    mutable std::mutex mutex_;
    std::vector<bool> window_; ///< ring buffer: true = shed.
    std::size_t next_ = 0;
    std::size_t filled_ = 0;
    std::size_t shedInWindow_ = 0;
    bool degraded_ = false;
    std::atomic<std::size_t> stuckWorkers_{0};
    std::atomic<bool> draining_{false};
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_RESILIENCE_H
