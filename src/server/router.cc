#include "src/server/router.h"

#include <exception>

#include "src/util/str.h"

namespace hiermeans {
namespace server {

void
Router::add(const std::string &method, const std::string &path,
            Handler handler)
{
    routes_[path][method] = std::move(handler);
}

HttpResponse
Router::dispatch(const HttpRequest &request) const
{
    const auto by_path = routes_.find(request.path());
    if (by_path == routes_.end()) {
        return textResponse(404, "no such endpoint: " +
                                     request.path() + "\n");
    }
    const auto by_method = by_path->second.find(request.method);
    if (by_method == by_path->second.end()) {
        std::vector<std::string> allowed;
        for (const auto &[method, handler] : by_path->second)
            allowed.push_back(method);
        HttpResponse response = textResponse(
            405, request.method + " not allowed on " + request.path() +
                     "\n");
        response.set("Allow", str::join(allowed, ", "));
        return response;
    }
    try {
        return by_method->second(request);
    } catch (const std::exception &e) {
        return textResponse(500,
                            std::string("handler failed: ") + e.what() +
                                "\n");
    } catch (...) {
        return textResponse(500, "handler failed\n");
    }
}

} // namespace server
} // namespace hiermeans
