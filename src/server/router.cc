#include "src/server/router.h"

#include <exception>
#include <vector>

#include "src/server/api.h"
#include "src/util/str.h"

namespace hiermeans {
namespace server {
namespace {

HttpResponse
methodNotAllowed(const RequestContext &ctx,
                 const std::map<std::string, Router::Handler> &methods)
{
    std::vector<std::string> allowed;
    for (const auto &[method, handler] : methods)
        allowed.push_back(method);
    HttpResponse response = errorResponse(
        ApiError::MethodNotAllowed,
        ctx.http.method + " not allowed on " + ctx.http.path(),
        ctx.traceId);
    response.set("Allow", str::join(allowed, ", "));
    return response;
}

} // namespace

void
Router::add(const std::string &method, const std::string &path,
            Handler handler)
{
    routes_[path][method] = std::move(handler);
}

void
Router::addPrefix(const std::string &method, const std::string &prefix,
                  Handler handler)
{
    prefixes_[prefix][method] = std::move(handler);
}

HttpResponse
Router::dispatch(const RequestContext &ctx) const
{
    const std::string path = ctx.http.path();
    const std::map<std::string, Handler> *methods = nullptr;

    const auto by_path = routes_.find(path);
    if (by_path != routes_.end()) {
        methods = &by_path->second;
    } else {
        /* Longest matching prefix; map order makes the last
         * not-greater key the longest candidate. */
        std::size_t best = 0;
        for (const auto &[prefix, handlers] : prefixes_) {
            if (path.size() >= prefix.size() &&
                path.compare(0, prefix.size(), prefix) == 0 &&
                prefix.size() >= best) {
                best = prefix.size();
                methods = &handlers;
            }
        }
    }

    if (methods == nullptr)
        return errorResponse(ApiError::NotFound,
                             "no such endpoint: " + path, ctx.traceId);

    const auto by_method = methods->find(ctx.http.method);
    if (by_method == methods->end())
        return methodNotAllowed(ctx, *methods);

    try {
        return by_method->second(ctx);
    } catch (const std::exception &e) {
        return errorResponse(ApiError::Internal,
                             std::string("handler failed: ") + e.what(),
                             ctx.traceId);
    } catch (...) {
        return errorResponse(ApiError::Internal, "handler failed",
                             ctx.traceId);
    }
}

} // namespace server
} // namespace hiermeans
