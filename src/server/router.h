/**
 * @file
 * Method+path dispatch for the scoring daemon.
 *
 * Handlers receive a RequestContext — the parsed request plus the
 * request's trace identity — and every synthesized answer (404 on an
 * unknown path, 405 with an `Allow` header on a known path with the
 * wrong method, 500 when a handler throws) is a /v1 envelope carrying
 * the stable error code, so clients never see an ad-hoc text body. A
 * handler bug must never tear down the connection worker.
 *
 * Routing is exact-path for the fixed API surface, plus prefix routes
 * for the one parameterized endpoint (`GET /v1/trace/<id>`); the
 * longest matching prefix wins.
 */

#ifndef HIERMEANS_SERVER_ROUTER_H
#define HIERMEANS_SERVER_ROUTER_H

#include <chrono>
#include <cstddef>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "src/obs/trace.h"
#include "src/server/http.h"
#include "src/wire/wire.h"

namespace hiermeans {
namespace server {

/** Everything a handler needs to answer one request. */
struct RequestContext
{
    const HttpRequest &http;

    /** The request's trace ID ("" when tracing is disarmed and the
     *  client supplied none). Echoed in every envelope. */
    std::string traceId;

    /** Live trace to record spans into (nullptr when not tracing).
     *  Shared so the engine can keep it alive past an abandoned
     *  (watchdog-tripped) request. */
    std::shared_ptr<obs::Trace> trace;

    /** The server.request root span — parent for handler spans. */
    std::size_t rootSpan = obs::kNoParent;

    /**
     * Remaining client budget from X-Hiermeans-Deadline in millis
     * (0 = the client sent none), and when it was read off the wire.
     * remainingMillis() is the budget still left *now*; handlers
     * shed a request whose budget is spent before touching the
     * engine, and forwards hand the remainder downstream.
     */
    double deadlineMillis = 0.0;
    std::chrono::steady_clock::time_point arrived =
        std::chrono::steady_clock::now();

    /**
     * Content negotiation, settled by the transport before dispatch:
     * `binaryBody` is true when the request body is one
     * application/x-hiermeans-wire frame (handlers decode it instead
     * of treating the body as text/JSON), and `accept` is the
     * negotiated response format — Binary only when the Accept
     * header named the wire type explicitly. Unsupported request
     * types (415) and unsatisfiable Accepts (406) never reach a
     * handler.
     */
    bool binaryBody = false;
    wire::ResponseFormat accept = wire::ResponseFormat::Json;

    bool wantsBinary() const
    {
        return accept == wire::ResponseFormat::Binary;
    }

    bool hasDeadline() const { return deadlineMillis > 0.0; }

    /** Budget left right now (may be negative); +inf without one. */
    double remainingMillis() const
    {
        if (!hasDeadline())
            return std::numeric_limits<double>::infinity();
        const double elapsed =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - arrived)
                .count();
        return deadlineMillis - elapsed;
    }
};

/** Wire header carrying the remaining request budget in millis. */
inline constexpr const char *kDeadlineHeader = "X-Hiermeans-Deadline";

/** Routes requests to registered handlers. */
class Router
{
  public:
    using Handler = std::function<HttpResponse(const RequestContext &)>;

    /** Register @p handler for @p method on exact @p path. */
    void add(const std::string &method, const std::string &path,
             Handler handler);

    /**
     * Register @p handler for any path starting with @p prefix (the
     * handler reads the remainder off ctx.http.path()). Exact routes
     * win over prefixes; among prefixes the longest match wins.
     */
    void addPrefix(const std::string &method, const std::string &prefix,
                   Handler handler);

    /**
     * Dispatch @p ctx: the handler's response, or a synthesized
     * envelope 404/405/500. Never throws.
     */
    HttpResponse dispatch(const RequestContext &ctx) const;

  private:
    /** path -> method -> handler. */
    std::map<std::string, std::map<std::string, Handler>> routes_;
    /** prefix -> method -> handler. */
    std::map<std::string, std::map<std::string, Handler>> prefixes_;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_ROUTER_H
