/**
 * @file
 * Method+path dispatch for the scoring daemon.
 *
 * Exact-path routing (no wildcards — the API surface is four
 * endpoints): unknown paths answer 404, known paths with the wrong
 * method answer 405 with an `Allow` header, and a handler that throws
 * answers 500 with the exception text — a handler bug must never tear
 * down the connection worker.
 */

#ifndef HIERMEANS_SERVER_ROUTER_H
#define HIERMEANS_SERVER_ROUTER_H

#include <functional>
#include <map>
#include <string>

#include "src/server/http.h"

namespace hiermeans {
namespace server {

/** Routes requests to registered handlers. */
class Router
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    /** Register @p handler for @p method on exact @p path. */
    void add(const std::string &method, const std::string &path,
             Handler handler);

    /**
     * Dispatch @p request: the handler's response, or a synthesized
     * 404/405/500. Never throws.
     */
    HttpResponse dispatch(const HttpRequest &request) const;

  private:
    /** path -> method -> handler. */
    std::map<std::string, std::map<std::string, Handler>> routes_;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_ROUTER_H
