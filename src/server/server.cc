#include "src/server/server.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>

#include "src/server/json.h"
#include "src/util/error.h"
#include "src/util/fault.h"

namespace hiermeans {
namespace server {

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

Endpoint
endpointFor(const std::string &path)
{
    if (path == "/v1/score")
        return Endpoint::Score;
    if (path == "/v1/batch")
        return Endpoint::Batch;
    if (path == "/metrics")
        return Endpoint::Metrics;
    if (path == "/healthz")
        return Endpoint::Healthz;
    return Endpoint::Other;
}

const char *
servedBy(const engine::ScoreResult &result)
{
    if (result.cacheHit)
        return "cache";
    if (result.deduped)
        return "dedupe";
    return "pipeline";
}

/** One score result as a flat JSON object (shared by both POSTs). */
std::string
resultJson(const engine::ScoreResult &result)
{
    std::ostringstream out;
    out << "{\"id\":" << json::quote(result.id)
        << ",\"ok\":" << (result.ok ? "true" : "false");
    if (!result.ok) {
        out << ",\"timed_out\":" << (result.timedOut ? "true" : "false")
            << ",\"error\":" << json::quote(result.error) << "}";
        return out.str();
    }
    const std::size_t recommended = result.report.recommendedRow();
    out << ",\"served_by\":\"" << servedBy(result) << "\""
        << ",\"fingerprint\":\"" << std::hex << result.fingerprint
        << std::dec << "\""
        << ",\"recommended_k\":" << result.recommendedK
        << ",\"ratio\":"
        << json::number(result.report.rows[recommended].ratio)
        << ",\"plain_ratio\":" << json::number(result.report.plainRatio)
        << ",\"wall_ms\":" << json::number(result.wallMillis)
        << ",\"rows\":[";
    for (std::size_t i = 0; i < result.report.rows.size(); ++i) {
        const auto &row = result.report.rows[i];
        if (i > 0)
            out << ",";
        out << "{\"k\":" << row.clusterCount
            << ",\"score_a\":" << json::number(row.scoreA)
            << ",\"score_b\":" << json::number(row.scoreB)
            << ",\"ratio\":" << json::number(row.ratio) << "}";
    }
    out << "]}";
    return out.str();
}

std::string
errorJson(const std::string &message)
{
    return "{\"ok\":false,\"error\":" + json::quote(message) + "}";
}

} // namespace

Server::Server(Config config)
    : config_(config), engine_(config.engine),
      gate_(config.queueDepth), breaker_(config.breaker),
      health_(config.health), watchdog_(config.watchdog),
      requestDefaults_(util::CommandLine::parse({"hmserved"}))
{
    router_.add("POST", "/v1/score",
                [this](const HttpRequest &r) { return handleScore(r); });
    router_.add("POST", "/v1/batch",
                [this](const HttpRequest &r) { return handleBatch(r); });
    router_.add("GET", "/metrics", [this](const HttpRequest &r) {
        return handleMetrics(r);
    });
    router_.add("GET", "/healthz", [this](const HttpRequest &r) {
        return handleHealthz(r);
    });
}

Server::~Server() { stop(); }

void
Server::start()
{
    HM_REQUIRE(!running_.load() && !stopping_.load(),
               "Server::start: already started");
    net::ignoreSigpipe();
    listener_ = net::listenTcp(config_.port);
    port_ = net::localPort(listener_.fd());
    running_.store(true);

    acceptor_ = std::thread([this]() { acceptLoop(); });
    workers_.reserve(config_.connectionThreads);
    for (std::size_t i = 0; i < config_.connectionThreads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

void
Server::stop()
{
    if (!running_.load())
        return;
    health_.setDraining(); // /healthz flips to 503 for the drain.
    stopping_.store(true);
    pendingCv_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    listener_.close();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
    running_.store(false);
}

void
Server::acceptLoop()
{
    // Accepted connections beyond this bound get an immediate 503 —
    // a closed front door beats an unbounded queue of unserved fds.
    const std::size_t pending_limit = config_.connectionThreads * 2 + 16;

    while (!stopping_.load()) {
        if (!net::waitReadable(listener_.fd(), 100))
            continue; // timeout/EINTR: re-check the stop flag.
        net::Socket accepted = net::acceptConnection(listener_.fd());
        if (!accepted.valid())
            continue;
        metrics_.onConnectionAccepted();

        std::unique_lock<std::mutex> lock(pendingMutex_);
        if (pending_.size() >= pending_limit) {
            lock.unlock();
            metrics_.onConnectionRejected();
            HttpResponse response = overloadedResponse();
            response.closeConnection = true;
            try {
                net::writeAll(accepted.fd(), response.serialize());
            } catch (const Error &) {
                // The rejected peer vanished first; nothing to do.
            }
            continue;
        }
        pending_.push_back(std::move(accepted));
        lock.unlock();
        pendingCv_.notify_one();
    }
}

void
Server::workerLoop()
{
    for (;;) {
        net::Socket socket;
        {
            std::unique_lock<std::mutex> lock(pendingMutex_);
            pendingCv_.wait(lock, [this]() {
                return stopping_.load() || !pending_.empty();
            });
            if (pending_.empty()) {
                if (stopping_.load())
                    return;
                continue;
            }
            socket = std::move(pending_.front());
            pending_.pop_front();
        }
        try {
            serveConnection(std::move(socket));
        } catch (const std::exception &) {
            // Peer I/O failures close that connection; the worker and
            // every other connection are unaffected.
            metrics_.onConnectionClosed();
        }
    }
}

void
Server::serveConnection(net::Socket socket)
{
    metrics_.onConnectionOpened();
    HttpRequestParser::Limits limits;
    limits.maxBodyBytes = config_.maxBodyBytes;
    HttpRequestParser parser(limits);

    // Once shutdown begins, a partially-received request gets this
    // long to finish arriving before the connection is closed.
    constexpr double kDrainWindowMillis = 5000.0;
    const auto serve_start = std::chrono::steady_clock::now();

    char buffer[8192];
    bool close = false;
    while (!close) {
        if (stopping_.load()) {
            if (!parser.midRequest())
                break;
            if (millisSince(serve_start) > kDrainWindowMillis)
                break;
        }
        if (!net::waitReadable(socket.fd(), 100))
            continue;
        const std::size_t n =
            net::readSome(socket.fd(), buffer, sizeof(buffer));
        if (n == 0)
            break; // EOF.

        HttpRequestParser::State state =
            parser.feed(std::string_view(buffer, n));
        while (state == HttpRequestParser::State::Ready) {
            const HttpRequest &request = parser.request();
            metrics_.onRequest();
            const auto started = std::chrono::steady_clock::now();
            HttpResponse response = router_.dispatch(request);
            const Endpoint endpoint = endpointFor(request.path());
            metrics_.recordLatency(endpoint, millisSince(started));
            metrics_.onResponse(response.status);
            if (stopping_.load() || !request.keepAlive())
                response.closeConnection = true;
            if (HM_FAULT("server.response.write"))
                throw net::NetError(net::NetError::Kind::Reset,
                                    "injected: response write reset");
            net::writeAll(socket.fd(), response.serialize());
            if (response.closeConnection) {
                close = true;
                break;
            }
            state = parser.reset(); // may surface a pipelined request.
        }
        // Reached on a malformed feed *or* when pipelined leftovers
        // turned out to be junk after the valid requests were served:
        // either way the offender gets its 400-class answer before the
        // connection closes.
        if (state == HttpRequestParser::State::Error) {
            metrics_.onRequest();
            metrics_.onMalformed();
            HttpResponse response = textResponse(
                parser.errorStatus(), parser.errorMessage() + "\n");
            response.closeConnection = true;
            metrics_.onResponse(response.status);
            if (HM_FAULT("server.response.write"))
                throw net::NetError(net::NetError::Kind::Reset,
                                    "injected: response write reset");
            net::writeAll(socket.fd(), response.serialize());
            break;
        }
    }
    metrics_.onConnectionClosed();
}

HttpResponse
Server::overloadedResponse()
{
    HttpResponse response = jsonResponse(
        503, errorJson("server overloaded, admission queue full"));
    response.set("Retry-After", "1");
    return response;
}

std::optional<HttpResponse>
Server::tryStale(std::uint64_t fingerprint, const std::string &id)
{
    if (!config_.serveStale)
        return std::nullopt;
    std::optional<engine::CachedResult> cached =
        engine_.cache().get(fingerprint);
    if (!cached.has_value())
        return std::nullopt;

    engine::ScoreResult result;
    result.id = id;
    result.ok = true;
    result.cacheHit = true;
    result.fingerprint = fingerprint;
    result.report = std::move(cached->report);
    result.analysis = std::move(cached->analysis);
    result.recommendedK = cached->recommendedK;

    metrics_.onStaleServed();
    HttpResponse response = jsonResponse(200, resultJson(result));
    response.set("X-Hiermeans-Source", "cache");
    response.set("X-Hiermeans-Stale", "1");
    return response;
}

std::optional<HttpResponse>
Server::awaitWithWatchdog(std::future<engine::ScoreResult> &future,
                          const Watchdog::Token &token,
                          engine::ScoreResult &result)
{
    constexpr auto kSlice = std::chrono::milliseconds(20);
    for (;;) {
        if (future.wait_for(kSlice) == std::future_status::ready) {
            result = future.get();
            return std::nullopt;
        }
        if (token.expired()) {
            // Abandon the future: the engine task will resolve into a
            // dead promise; only this connection is rescued.
            metrics_.onWatchdogTrip();
            metrics_.onTimeout();
            breaker_.onFailure();
            health_.onStuckWorkers(watchdog_.overdue());
            return jsonResponse(
                504,
                errorJson("watchdog: request exceeded its budget"));
        }
    }
}

HttpResponse
Server::handleScore(const HttpRequest &request)
{
    std::vector<engine::ManifestLine> lines;
    try {
        lines = engine::parseManifest(request.body);
    } catch (const Error &e) {
        metrics_.onMalformed();
        return jsonResponse(400, errorJson(e.what()));
    }
    if (lines.size() != 1) {
        metrics_.onMalformed();
        return jsonResponse(
            400, errorJson("expected exactly one manifest line, got " +
                           std::to_string(lines.size())));
    }

    engine::ScoreRequest score_request;
    try {
        score_request = engine::buildManifestRequest(
            lines.front(), requestDefaults_, csvs_);
    } catch (const Error &e) {
        metrics_.onMalformed();
        return jsonResponse(400, errorJson(e.what()));
    }
    if (score_request.timeoutMillis <= 0.0)
        score_request.timeoutMillis = config_.defaultTimeoutMillis;

    // The fingerprint is known before admission so the degraded paths
    // below (breaker open, gate full) can consult the result cache.
    const std::uint64_t fingerprint =
        engine::fingerprintRequest(score_request);

    if (!breaker_.allow()) {
        metrics_.onBreakerFastFail();
        if (std::optional<HttpResponse> stale =
                tryStale(fingerprint, score_request.id))
            return std::move(*stale);
        HttpResponse response = jsonResponse(
            503, errorJson("circuit open on /v1/score"));
        response.set("Retry-After",
                     std::to_string(std::max(
                         1L, breaker_.retryAfterSeconds())));
        return response;
    }

    AdmissionTicket ticket(gate_);
    if (!ticket.admitted()) {
        metrics_.onShed();
        health_.onShed();
        breaker_.onAbandoned(); // a shed is not a probe outcome.
        if (std::optional<HttpResponse> stale =
                tryStale(fingerprint, score_request.id))
            return std::move(*stale);
        return overloadedResponse();
    }
    health_.onAdmitted();

    const Watchdog::Token token =
        watchdog_.watch(score_request.timeoutMillis);
    std::future<engine::ScoreResult> future =
        engine_.submit(std::move(score_request));
    engine::ScoreResult result;
    if (std::optional<HttpResponse> tripped =
            awaitWithWatchdog(future, token, result))
        return std::move(*tripped);

    if (!result.ok && result.timedOut) {
        metrics_.onTimeout();
        breaker_.onFailure();
        return jsonResponse(504, resultJson(result));
    }
    if (!result.ok) {
        // A 400 is the caller's fault, not the server's: the scoring
        // path is healthy, so it closes a half-open probe as success.
        breaker_.onSuccess();
        return jsonResponse(400, resultJson(result));
    }

    breaker_.onSuccess();
    HttpResponse response = jsonResponse(200, resultJson(result));
    response.set("X-Hiermeans-Source", servedBy(result));
    return response;
}

HttpResponse
Server::handleBatch(const HttpRequest &request)
{
    std::vector<engine::ManifestLine> lines;
    try {
        lines = engine::parseManifest(request.body);
    } catch (const Error &e) {
        metrics_.onMalformed();
        return jsonResponse(400, errorJson(e.what()));
    }
    if (lines.empty()) {
        metrics_.onMalformed();
        return jsonResponse(400, errorJson("manifest has no requests"));
    }

    // The whole document is one admission unit: it occupies one
    // connection worker and its lines share the engine pool anyway.
    AdmissionTicket ticket(gate_);
    if (!ticket.admitted()) {
        metrics_.onShed();
        health_.onShed();
        return overloadedResponse();
    }
    health_.onAdmitted();

    // Build everything up front so a bad line fails alone without
    // touching the engine, mirroring hmbatch.
    std::vector<std::optional<engine::ScoreRequest>> requests;
    std::vector<engine::ScoreResult> line_errors(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
            engine::ScoreRequest built = engine::buildManifestRequest(
                lines[i], requestDefaults_, csvs_);
            if (built.timeoutMillis <= 0.0)
                built.timeoutMillis = config_.defaultTimeoutMillis;
            requests.push_back(std::move(built));
        } catch (const Error &e) {
            requests.push_back(std::nullopt);
            line_errors[i].id =
                "line" + std::to_string(lines[i].lineNumber);
            line_errors[i].error = e.what();
        }
    }

    std::vector<std::optional<std::future<engine::ScoreResult>>> futures;
    for (auto &built : requests) {
        if (built)
            futures.push_back(engine_.submit(std::move(*built)));
        else
            futures.push_back(std::nullopt);
    }

    // One watchdog budget covers the whole document; once it trips,
    // every remaining line is abandoned as timed out (the futures
    // resolve into dead promises).
    const Watchdog::Token token = watchdog_.watch(0.0);
    constexpr auto kSlice = std::chrono::milliseconds(20);

    std::ostringstream body;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        engine::ScoreResult result = line_errors[i];
        if (futures[i]) {
            bool tripped = false;
            while (futures[i]->wait_for(kSlice) !=
                   std::future_status::ready) {
                if (token.expired()) {
                    tripped = true;
                    break;
                }
            }
            if (tripped) {
                metrics_.onWatchdogTrip();
                health_.onStuckWorkers(watchdog_.overdue());
                result = engine::ScoreResult{};
                result.id = "line" + std::to_string(lines[i].lineNumber);
                result.timedOut = true;
                result.error = "watchdog: batch exceeded its budget";
            } else {
                result = futures[i]->get();
            }
        }
        if (!result.ok && result.timedOut)
            metrics_.onTimeout();
        body << "{\"line\":" << lines[i].lineNumber << ","
             << resultJson(result).substr(1) << "\n";
    }
    HttpResponse response;
    response.status = 200;
    response.set("Content-Type", "application/x-ndjson");
    response.body = body.str();
    return response;
}

HttpResponse
Server::handleMetrics(const HttpRequest &)
{
    return textResponse(200, renderMetrics());
}

HttpResponse
Server::handleHealthz(const HttpRequest &)
{
    health_.onStuckWorkers(watchdog_.overdue());
    const HealthState state = healthState();
    HttpResponse response = textResponse(
        state == HealthState::Draining ? 503 : 200,
        std::string(healthStateName(state)) + "\n");
    response.set("X-Hiermeans-Health", healthStateName(state));
    return response;
}

HealthState
Server::healthState() const
{
    HealthState state = health_.state();
    if (state == HealthState::Ok &&
        breaker_.state() != CircuitBreaker::State::Closed)
        state = HealthState::Degraded;
    return state;
}

std::string
Server::renderMetrics() const
{
    ServerMetricsSnapshot snap =
        metrics_.snapshot(gate_.depth(), gate_.capacity());
    snap.healthState = healthStateName(healthState());
    snap.breakerState = breaker_.stateName();
    snap.breakerOpens = breaker_.opens();
    return "server metrics:\n" + ServerMetrics::render(snap) +
           "\nengine metrics:\n" + engine_.metrics().render();
}

} // namespace server
} // namespace hiermeans
