#include "src/server/server.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>

#include "src/gen/registry.h"
#include "src/obs/prometheus.h"
#include "src/obs/trace.h"
#include "src/server/api.h"
#include "src/server/json.h"
#include "src/server/wire_json.h"
#include "src/util/error.h"
#include "src/util/log.h"
#include "src/util/signal.h"
#include "src/util/version.h"
#include "src/wire/wire.h"

namespace hiermeans {
namespace server {

namespace {

const char *
servedBy(const engine::ScoreResult &result)
{
    if (result.cacheHit)
        return "cache";
    if (result.deduped)
        return "dedupe";
    return "pipeline";
}

/**
 * A successful score result as the codec-neutral wire document —
 * the single source both response formats are rendered from, which
 * is what keeps the JSON and binary answers bit-identical (the JSON
 * body is always scoreDocumentJson() of this struct).
 */
wire::ScoreDocument
resultDocument(const engine::ScoreResult &result)
{
    wire::ScoreDocument doc;
    doc.id = result.id;
    doc.servedBy = servedBy(result);
    doc.fingerprint = result.fingerprint;
    doc.recommendedK = result.recommendedK;
    doc.ratio = result.report.rows[result.report.recommendedRow()].ratio;
    doc.plainRatio = result.report.plainRatio;
    doc.wallMillis = result.wallMillis;
    doc.rows.reserve(result.report.rows.size());
    for (const auto &row : result.report.rows) {
        wire::ScoreRow out;
        out.k = static_cast<std::uint32_t>(row.clusterCount);
        out.scoreA = row.scoreA;
        out.scoreB = row.scoreB;
        out.ratio = row.ratio;
        doc.rows.push_back(out);
    }
    return doc;
}

/** A successful score result as the envelope's `data` value. */
std::string
resultDataJson(const engine::ScoreResult &result)
{
    return scoreDocumentJson(resultDocument(result));
}

/** The negotiated /v1/score success response: the JSON envelope by
 *  default, one binary ScoreReport frame when Accept asked for it. */
HttpResponse
scoredResponse(const engine::ScoreResult &result,
               const RequestContext &ctx)
{
    HttpResponse response;
    if (ctx.wantsBinary()) {
        response.status = 200;
        response.set("Content-Type", wire::kMediaType);
        response.body = wire::encodeScoreReport(resultDocument(result));
    } else {
        response = okResponse(resultDataJson(result), ctx.traceId);
    }
    response.set("X-Hiermeans-Source", servedBy(result));
    return response;
}

/** A failed score result as an error envelope (one score or one
 *  batch line; @p extra is spliced into the error object). */
std::string
resultErrorEnvelope(const engine::ScoreResult &result,
                    const std::string &traceId, std::string extra = "")
{
    ApiError code = ApiError::ScoringFailed;
    if (result.timedOut) {
        code = ApiError::Timeout;
        extra = extra.empty() ? "\"timed_out\":true"
                              : extra + ",\"timed_out\":true";
    } else if (result.cancelled) {
        // Cancelled without an expired deadline: the server gave up
        // (drain), not the work — retryable elsewhere.
        code = ApiError::Draining;
    }
    return errorEnvelope(code, result.error, traceId, extra);
}

/** One span as JSON for the /v1/trace payload. */
std::string
spanJson(const obs::Span &span)
{
    std::ostringstream out;
    out << "{\"name\":" << json::quote(span.name) << ",\"parent\":";
    if (span.parent == obs::kNoParent)
        out << "null";
    else
        out << span.parent;
    out << ",\"start_ms\":"
        << json::number(static_cast<double>(span.startNanos) / 1e6)
        << ",\"duration_ms\":";
    if (span.endNanos == 0)
        out << "null";
    else
        out << json::number(span.durationMillis());
    out << "}";
    return out.str();
}

std::string
idListJson(const std::vector<std::string> &ids)
{
    std::string out = "[";
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i > 0)
            out += ",";
        out += json::quote(ids[i]);
    }
    out += "]";
    return out;
}

HttpTransport::Config
transportConfig(const Server::Config &config)
{
    HttpTransport::Config transport;
    transport.port = config.port;
    transport.connectionThreads = config.connectionThreads;
    transport.maxBodyBytes = config.maxBodyBytes;
    return transport;
}

} // namespace

Server::Server(Config config)
    : config_(config), engine_(config.engine),
      gate_(config.queueDepth, config.bulkQueueDepth),
      breaker_(config.breaker),
      health_(config.health), watchdog_(config.watchdog),
      suites_(metrics_),
      transport_(transportConfig(config), router_, metrics_),
      requestDefaults_(util::CommandLine::parse({"hmserved"}))
{
    suites_.setCluster(config_.cluster);

    router_.add("POST", "/v1/score", [this](const RequestContext &c) {
        return handleScore(c);
    });
    router_.add("POST", "/v1/batch", [this](const RequestContext &c) {
        return handleBatch(c);
    });
    router_.add("GET", "/v1/traces", [this](const RequestContext &c) {
        return handleTraces(c);
    });
    router_.addPrefix("GET", "/v1/trace/",
                      [this](const RequestContext &c) {
                          return handleTrace(c);
                      });
    router_.add("GET", "/metrics", [this](const RequestContext &c) {
        return handleMetrics(c);
    });
    router_.add("GET", "/healthz", [this](const RequestContext &c) {
        return handleHealthz(c);
    });
    router_.add("POST", "/v1/suites", [this](const RequestContext &c) {
        return suites_.handleSuiteRegister(c);
    });
    router_.add("GET", "/v1/suites", [this](const RequestContext &c) {
        return suites_.handleSuiteList(c);
    });
    router_.add("GET", "/v1/history", [this](const RequestContext &c) {
        return suites_.handleHistory(c);
    });
    router_.add("POST", "/v1/admin/snapshot",
                [this](const RequestContext &c) {
                    return suites_.handleSnapshot(c);
                });
    router_.add("GET", "/v1/drift", [this](const RequestContext &c) {
        return handleDriftList(c);
    });
    router_.add("POST", "/v1/admin/recluster",
                [this](const RequestContext &c) {
                    return handleRecluster(c);
                });
    router_.add("POST", "/v1/admin/drain",
                [this](const RequestContext &c) {
                    return handleDrain(c);
                });
    router_.addPrefix("GET", "/v1/suites/",
                      [this](const RequestContext &c) {
                          return handleSuiteGet(c);
                      });
    router_.addPrefix("POST", "/v1/suites/",
                      [this](const RequestContext &c) {
                          return handleSuitePost(c);
                      });
    if (config_.cluster != nullptr) {
        router_.add("GET", "/v1/cluster",
                    [this](const RequestContext &c) {
                        return config_.cluster->handleCluster(c);
                    });
        router_.add("POST", "/v1/mesh/replicate",
                    [this](const RequestContext &c) {
                        return config_.cluster->handleReplicate(c);
                    });
    }
}

Server::~Server() { stop(); }

void
Server::start()
{
    HM_REQUIRE(!started_, "Server::start: already started");
    started_ = true;
    suites_.open(config_.store);
    if (suites_.store() != nullptr) {
        warmedEntries_ = suites_.warmStart(engine_);
        HM_LOG(Info) << "store: cache warmed=" << warmedEntries_;
        drift_ = std::make_unique<drift::DriftMonitor>(
            config_.drift, suites_.store());
        const std::size_t machines = drift_->warmStart();
        if (machines > 0)
            HM_LOG(Info) << "drift: restored " << machines
                         << " suite monitor(s)";
        if (config_.reclusterEverySeconds > 0.0)
            reclusterThread_ = std::thread([this] { reclusterLoop(); });
    }
    transport_.start();
}

void
Server::reclusterLoop()
{
    // Sleep in short slices so stop() never waits a whole period.
    constexpr auto kSlice = std::chrono::milliseconds(20);
    const auto period = std::chrono::duration<double>(
        config_.reclusterEverySeconds);
    auto next = std::chrono::steady_clock::now() + period;
    while (!reclusterStop_.load(std::memory_order_relaxed)) {
        if (std::chrono::steady_clock::now() < next) {
            std::this_thread::sleep_for(kSlice);
            continue;
        }
        next += period;
        try {
            const std::size_t ticked = drift_->tickAll().size();
            if (ticked > 0 && config_.cluster != nullptr)
                config_.cluster->afterWrite();
        } catch (const std::exception &e) {
            HM_LOG(Warn) << "drift: recluster pass failed: "
                         << e.what();
        }
    }
}

void
Server::beginDrain()
{
    if (draining_.exchange(true))
        return;
    health_.setDraining(); // /healthz flips to 503 for the drain.
    metrics_.setDraining();
    HM_LOG(Info) << "drain: started (deadline "
                 << config_.drainDeadlineMillis << " ms)";
}

void
Server::stop()
{
    reclusterStop_.store(true, std::memory_order_relaxed);
    if (reclusterThread_.joinable())
        reclusterThread_.join();
    if (!transport_.running())
        return;

    // The drain state machine: advertise first (new scoring work is
    // shed with the `draining` code, cluster clients fail over), wait
    // for admitted work against the drain deadline, then cancel
    // whatever is still in flight so the transport can drain its
    // connections without a worker wedged mid-pipeline.
    beginDrain();
    constexpr auto kSlice = std::chrono::milliseconds(20);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double, std::milli>(
            config_.drainDeadlineMillis);
    while (gate_.depth() > 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(kSlice);
    if (gate_.depth() > 0) {
        HM_LOG(Warn) << "drain: deadline exceeded with "
                     << gate_.depth()
                     << " request(s) in flight; cancelling";
        drainSource_.cancel();
    }
    transport_.stop();
    try {
        suites_.close(); // final snapshot + WAL compaction.
    } catch (const Error &e) {
        HM_LOG(Warn) << "store: final snapshot failed: " << e.what();
    }
}

HttpResponse
Server::handleDrain(const RequestContext &ctx)
{
    // Flip to draining immediately (this request's own answer already
    // advertises it), then ask the process to shut down: hmserved's
    // main loop observes the flag and runs stop() — the same path a
    // SIGTERM takes.
    beginDrain();
    util::requestShutdown();
    return okResponse("{\"draining\":true,\"drain_deadline_ms\":" +
                          json::number(config_.drainDeadlineMillis) +
                          "}",
                      ctx.traceId);
}

HttpResponse
Server::overloadedResponse(const std::string &traceId)
{
    HttpResponse response =
        errorResponse(ApiError::Overloaded,
                      "server overloaded, admission queue full",
                      traceId);
    response.set("Retry-After", "1");
    return response;
}

std::optional<HttpResponse>
Server::tryStale(std::uint64_t fingerprint, const std::string &id,
                 const RequestContext &ctx)
{
    if (!config_.serveStale)
        return std::nullopt;
    std::optional<engine::CachedResult> cached =
        engine_.cache().get(fingerprint);
    if (!cached.has_value())
        return std::nullopt;

    engine::ScoreResult result;
    result.id = id;
    result.ok = true;
    result.cacheHit = true;
    result.fingerprint = fingerprint;
    result.report = std::move(cached->report);
    result.analysis = std::move(cached->analysis);
    result.recommendedK = cached->recommendedK;

    metrics_.onStaleServed();
    HttpResponse response = scoredResponse(result, ctx);
    response.set("X-Hiermeans-Stale", "1");
    return response;
}

std::optional<HttpResponse>
Server::awaitWithWatchdog(std::future<engine::ScoreResult> &future,
                          const Watchdog::Token &token,
                          engine::CancelSource *cancel,
                          engine::ScoreResult &result,
                          const std::string &traceId)
{
    constexpr auto kSlice = std::chrono::milliseconds(20);
    for (;;) {
        if (future.wait_for(kSlice) == std::future_status::ready) {
            result = future.get();
            return std::nullopt;
        }
        if (token.expired()) {
            // Abandon the future: the engine task will resolve into a
            // dead promise; only this connection is rescued. Cancel
            // the request's token too so a still-queued entry is
            // purged instead of executed into the dead promise.
            if (cancel != nullptr)
                cancel->cancel();
            metrics_.onWatchdogTrip();
            metrics_.onTimeout();
            breaker_.onFailure();
            health_.onStuckWorkers(watchdog_.overdue());
            return errorResponse(
                ApiError::WatchdogTimeout,
                "watchdog: request exceeded its budget", traceId,
                "\"timed_out\":true");
        }
    }
}

HttpResponse
Server::handleScore(const RequestContext &ctx)
{
    // Draining: shed before any work so cluster clients fail over to
    // a peer immediately instead of racing the shutdown.
    if (draining_.load()) {
        metrics_.onDrainShed();
        HttpResponse response =
            errorResponse(ApiError::Draining,
                          "server draining, try another node",
                          ctx.traceId);
        response.set("Retry-After", "1");
        return response;
    }
    // A request whose client budget is already spent is shed before
    // it touches the breaker, the gate or the engine: nobody is
    // waiting for the answer. Not a breaker event — the server is
    // healthy, the budget was just too small.
    if (ctx.hasDeadline() && ctx.remainingMillis() <= 0.0) {
        metrics_.onDeadlineExpired();
        return errorResponse(ApiError::DeadlineExpired,
                             "client deadline spent before admission",
                             ctx.traceId, "\"timed_out\":true");
    }

    // Decode the body to manifest text before expansion: from here
    // on the pipeline is codec-agnostic.
    std::string text = ctx.http.body;
    if (ctx.binaryBody) {
        try {
            text = wire::decodeScoreRequest(ctx.http.body);
        } catch (const Error &e) {
            metrics_.onMalformed();
            return errorResponse(ApiError::BadRequest, e.what(),
                                 ctx.traceId);
        }
    }
    SuiteService::Expansion expanded = suites_.expandScore(ctx, text);
    if (expanded.response.has_value())
        return std::move(*expanded.response);

    engine::ScoreRequest score_request;
    {
        obs::ScopedSpan span("parse.manifest");
        std::vector<engine::ManifestLine> lines;
        try {
            lines = engine::parseManifest(expanded.text);
        } catch (const Error &e) {
            metrics_.onMalformed();
            return errorResponse(ApiError::BadRequest, e.what(),
                                 ctx.traceId);
        }
        if (lines.size() != 1) {
            metrics_.onMalformed();
            return errorResponse(
                ApiError::BadRequest,
                "expected exactly one manifest line, got " +
                    std::to_string(lines.size()),
                ctx.traceId);
        }
        try {
            score_request = engine::buildManifestRequest(
                lines.front(), requestDefaults_, csvs_);
        } catch (const Error &e) {
            metrics_.onMalformed();
            return errorResponse(ApiError::InvalidManifest, e.what(),
                                 ctx.traceId);
        }
    }
    if (score_request.timeoutMillis <= 0.0)
        score_request.timeoutMillis = config_.defaultTimeoutMillis;
    // The remaining client budget caps the engine deadline: any work
    // past it is wasted even when the server-side timeout is looser.
    const double budget = ctx.hasDeadline()
                              ? ctx.remainingMillis()
                              : config_.defaultDeadlineMillis;
    if (budget > 0.0 && (score_request.timeoutMillis <= 0.0 ||
                         budget < score_request.timeoutMillis))
        score_request.timeoutMillis = budget;

    // The fingerprint is known before admission so the degraded paths
    // below (breaker open, gate full) can consult the result cache.
    const std::uint64_t fingerprint =
        engine::fingerprintRequest(score_request);

    obs::ScopedSpan admissionSpan("admission");
    if (!breaker_.allow()) {
        metrics_.onBreakerFastFail();
        if (std::optional<HttpResponse> stale =
                tryStale(fingerprint, score_request.id, ctx))
            return std::move(*stale);
        HttpResponse response =
            errorResponse(ApiError::CircuitOpen,
                          "circuit open on /v1/score", ctx.traceId);
        response.set("Retry-After",
                     std::to_string(std::max(
                         1L, breaker_.retryAfterSeconds())));
        return response;
    }

    AdmissionTicket ticket(gate_, Lane::Interactive);
    if (!ticket.admitted()) {
        metrics_.onShed();
        metrics_.onLaneShed(Lane::Interactive);
        health_.onShed();
        breaker_.onAbandoned(); // a shed is not a probe outcome.
        if (std::optional<HttpResponse> stale =
                tryStale(fingerprint, score_request.id, ctx))
            return std::move(*stale);
        return overloadedResponse(ctx.traceId);
    }
    health_.onAdmitted();
    admissionSpan.close();

    const Watchdog::Token token =
        watchdog_.watch(score_request.timeoutMillis);
    // Per-request cancellation, chained to the drain source: the
    // engine purges this entry from its queue (and stops at the next
    // stage boundary) when the deadline fires, the watchdog trips or
    // the process drains.
    engine::CancelSource cancelSource(drainSource_.token());
    if (score_request.timeoutMillis > 0.0)
        cancelSource.setDeadline(score_request.timeoutMillis);
    score_request.cancel = cancelSource.token();
    if (ctx.trace) {
        // Hand the live trace to the engine: the submit-side spans
        // (cache.lookup, engine.queue) and the worker-side spans
        // (engine.execute, pipeline.*) parent under our root.
        score_request.trace = ctx.trace;
        score_request.traceParent = ctx.rootSpan;
    }
    std::future<engine::ScoreResult> future =
        engine_.submit(std::move(score_request));

    obs::ScopedSpan awaitSpan("server.await");
    engine::ScoreResult result;
    if (std::optional<HttpResponse> tripped = awaitWithWatchdog(
            future, token, &cancelSource, result, ctx.traceId))
        return std::move(*tripped);

    if (!result.ok && result.cancelled) {
        // Cancelled by the drain state machine, not by load: answer
        // the draining code so the client fails over, and release any
        // half-open breaker probe without counting an outcome.
        metrics_.onCancelled();
        breaker_.onAbandoned();
        HttpResponse response = errorResponse(
            ApiError::Draining, result.error, ctx.traceId);
        response.set("Retry-After", "1");
        return response;
    }
    if (!result.ok && result.timedOut) {
        metrics_.onTimeout();
        breaker_.onFailure();
        return jsonResponse(
            504, resultErrorEnvelope(result, ctx.traceId) + "\n");
    }
    if (!result.ok) {
        // A 4xx is the caller's fault, not the server's: the scoring
        // path is healthy, so it closes a half-open probe as success.
        breaker_.onSuccess();
        return jsonResponse(
            apiErrorStatus(ApiError::ScoringFailed),
            resultErrorEnvelope(result, ctx.traceId) + "\n");
    }

    breaker_.onSuccess();
    suites_.persistScore(result, expanded.suite, expanded.suiteVersion,
                         ctx.hasDeadline() ? ctx.remainingMillis()
                                           : 0.0);
    if (ctx.hasDeadline() && ctx.remainingMillis() < 0.0)
        metrics_.onDeadlineMiss();
    return scoredResponse(result, ctx);
}

HttpResponse
Server::handleBatch(const RequestContext &ctx)
{
    if (draining_.load()) {
        metrics_.onDrainShed();
        HttpResponse response =
            errorResponse(ApiError::Draining,
                          "server draining, try another node",
                          ctx.traceId);
        response.set("Retry-After", "1");
        return response;
    }
    if (ctx.hasDeadline() && ctx.remainingMillis() <= 0.0) {
        metrics_.onDeadlineExpired();
        return errorResponse(ApiError::DeadlineExpired,
                             "client deadline spent before admission",
                             ctx.traceId, "\"timed_out\":true");
    }

    std::string text = ctx.http.body;
    if (ctx.binaryBody) {
        try {
            text = wire::BatchView(ctx.http.body).manifestText();
        } catch (const Error &e) {
            metrics_.onMalformed();
            return errorResponse(ApiError::BadRequest, e.what(),
                                 ctx.traceId);
        }
    }
    SuiteService::Expansion expanded = suites_.expandBatch(ctx, text);
    if (expanded.response.has_value())
        return std::move(*expanded.response);

    std::vector<engine::ManifestLine> lines;
    try {
        obs::ScopedSpan span("parse.manifest");
        lines = engine::parseManifest(expanded.text);
    } catch (const Error &e) {
        metrics_.onMalformed();
        return errorResponse(ApiError::BadRequest, e.what(),
                             ctx.traceId);
    }
    if (lines.empty()) {
        metrics_.onMalformed();
        return errorResponse(ApiError::BadRequest,
                             "manifest has no requests", ctx.traceId);
    }

    // The whole document is one admission unit: it occupies one
    // connection worker and its lines share the engine pool anyway.
    // Batch competes in the bulk lane, which is capped below the
    // gate's capacity so it can never starve /v1/score.
    obs::ScopedSpan admissionSpan("admission");
    AdmissionTicket ticket(gate_, Lane::Bulk);
    if (!ticket.admitted()) {
        metrics_.onShed();
        metrics_.onLaneShed(Lane::Bulk);
        health_.onShed();
        return overloadedResponse(ctx.traceId);
    }
    health_.onAdmitted();
    admissionSpan.close();

    // Build everything up front so a bad line fails alone without
    // touching the engine, mirroring hmbatch.
    // One cancel source covers the document: drain (via the chained
    // parent) or the document deadline purges every unfinished line.
    engine::CancelSource batchCancel(drainSource_.token());
    if (ctx.hasDeadline() && ctx.remainingMillis() > 0.0)
        batchCancel.setDeadline(ctx.remainingMillis());

    std::vector<std::optional<engine::ScoreRequest>> requests;
    std::vector<engine::ScoreResult> line_errors(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
            engine::ScoreRequest built = engine::buildManifestRequest(
                lines[i], requestDefaults_, csvs_);
            if (built.timeoutMillis <= 0.0)
                built.timeoutMillis = config_.defaultTimeoutMillis;
            const double line_budget =
                ctx.hasDeadline() ? ctx.remainingMillis()
                                  : config_.defaultDeadlineMillis;
            if (line_budget > 0.0 &&
                (built.timeoutMillis <= 0.0 ||
                 line_budget < built.timeoutMillis))
                built.timeoutMillis = line_budget;
            built.cancel = batchCancel.token();
            if (ctx.trace) {
                built.trace = ctx.trace;
                built.traceParent = ctx.rootSpan;
            }
            requests.push_back(std::move(built));
        } catch (const Error &e) {
            requests.push_back(std::nullopt);
            line_errors[i].id =
                "line" + std::to_string(lines[i].lineNumber);
            line_errors[i].error = e.what();
        }
    }

    std::vector<std::optional<std::future<engine::ScoreResult>>> futures;
    for (auto &built : requests) {
        if (built)
            futures.push_back(engine_.submit(std::move(*built)));
        else
            futures.push_back(std::nullopt);
    }

    // One watchdog budget covers the whole document; once it trips,
    // every remaining line is abandoned as timed out (the futures
    // resolve into dead promises).
    const Watchdog::Token token = watchdog_.watch(0.0);
    constexpr auto kSlice = std::chrono::milliseconds(20);

    obs::ScopedSpan awaitSpan("server.await");
    std::ostringstream body;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        engine::ScoreResult result = line_errors[i];
        bool parse_error = !futures[i].has_value();
        if (futures[i]) {
            bool tripped = false;
            while (futures[i]->wait_for(kSlice) !=
                   std::future_status::ready) {
                if (token.expired()) {
                    tripped = true;
                    break;
                }
            }
            if (tripped) {
                metrics_.onWatchdogTrip();
                health_.onStuckWorkers(watchdog_.overdue());
                result = engine::ScoreResult{};
                result.id = "line" + std::to_string(lines[i].lineNumber);
                result.timedOut = true;
                result.error = "watchdog: batch exceeded its budget";
            } else {
                result = futures[i]->get();
            }
        }
        if (!result.ok && result.timedOut)
            metrics_.onTimeout();
        if (!result.ok && result.cancelled)
            metrics_.onCancelled();

        if (result.ok)
            suites_.persistScore(result, expanded.suite,
                                 expanded.suiteVersion);

        if (ctx.wantsBinary()) {
            // Binary stream: one BatchItem frame per manifest line,
            // in line order (the NDJSON stream's binary twin).
            wire::BatchItem item;
            item.line =
                static_cast<std::uint32_t>(lines[i].lineNumber);
            item.ok = result.ok;
            if (result.ok) {
                item.doc = resultDocument(result);
            } else {
                ApiError code = ApiError::ScoringFailed;
                if (parse_error)
                    code = ApiError::InvalidManifest;
                else if (result.timedOut)
                    code = ApiError::Timeout;
                else if (result.cancelled)
                    code = ApiError::Draining;
                item.errorCode = apiErrorCode(code);
                item.error = result.error;
                item.timedOut = result.timedOut;
            }
            body << wire::encodeBatchItem(item);
            continue;
        }

        const std::string line_field =
            "\"line\":" + std::to_string(lines[i].lineNumber);
        if (result.ok) {
            body << okEnvelope("{" + line_field + "," +
                                   resultDataJson(result).substr(1),
                               ctx.traceId);
        } else if (parse_error) {
            body << errorEnvelope(ApiError::InvalidManifest,
                                  result.error, ctx.traceId,
                                  line_field);
        } else {
            body << resultErrorEnvelope(result, ctx.traceId,
                                        line_field);
        }
        body << "\n";
    }
    HttpResponse response;
    response.status = 200;
    response.set("Content-Type", ctx.wantsBinary()
                                     ? wire::kMediaType
                                     : "application/x-ndjson");
    response.body = body.str();
    return response;
}

HttpResponse
Server::handleMetrics(const RequestContext &)
{
    HttpResponse response;
    response.status = 200;
    response.set("Content-Type",
                 "text/plain; version=0.0.4; charset=utf-8");
    response.body = renderPrometheus();
    return response;
}

HttpResponse
Server::handleHealthz(const RequestContext &)
{
    health_.onStuckWorkers(watchdog_.overdue());
    const HealthState state = healthState();
    HttpResponse response = textResponse(
        state == HealthState::Draining ? 503 : 200,
        std::string(healthStateName(state)) + "\n");
    response.set("X-Hiermeans-Health", healthStateName(state));
    return response;
}

HttpResponse
Server::handleTrace(const RequestContext &ctx)
{
    constexpr const char *kPrefix = "/v1/trace/";
    const std::string path = ctx.http.path();
    const std::string id = path.size() > std::string(kPrefix).size()
                               ? path.substr(std::string(kPrefix).size())
                               : "";
    if (id.empty() || !obs::validTraceId(id))
        return errorResponse(ApiError::BadRequest,
                             "missing or invalid trace id", ctx.traceId);

    std::shared_ptr<const obs::Trace> found =
        obs::Tracer::instance().find(id);
    if (!found) {
        std::string message = "no such trace: " + id;
        if (!obs::tracingEnabled())
            message += " (tracing is disabled; start hmserved with "
                       "--trace)";
        return errorResponse(ApiError::NotFound, message, ctx.traceId);
    }

    const std::vector<obs::Span> spans = found->spans();
    std::ostringstream data;
    data << "{\"id\":" << json::quote(found->id())
         << ",\"root_ms\":" << json::number(found->rootMillis())
         << ",\"spans\":[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (i > 0)
            data << ",";
        data << spanJson(spans[i]);
    }
    data << "],\"tree\":"
         << json::quote(obs::renderSpanTree(found->id(), spans)) << "}";
    return okResponse(data.str(), ctx.traceId);
}

HttpResponse
Server::handleTraces(const RequestContext &ctx)
{
    std::size_t limit = 0;
    if (auto bad = parseListLimit(ctx, kMaxListLimit, limit))
        return std::move(*bad);
    obs::Tracer &tracer = obs::Tracer::instance();
    std::vector<std::string> recent = tracer.recentIds();
    std::vector<std::string> slow = tracer.slowIds();
    if (recent.size() > limit)
        recent.resize(limit);
    if (slow.size() > limit)
        slow.resize(limit);
    std::ostringstream data;
    data << "{\"enabled\":"
         << (obs::tracingEnabled() ? "true" : "false")
         << ",\"slow_ms\":" << json::number(tracer.config().slowMillis)
         << ",\"finished_total\":" << tracer.finishedTotal()
         << ",\"slow_total\":" << tracer.slowTotal()
         << ",\"recent\":" << idListJson(recent)
         << ",\"slow\":" << idListJson(slow) << "}";
    return okResponse(data.str(), ctx.traceId);
}

namespace {

/** One suite's drift report as a JSON object (the /v1 payloads). */
std::string
driftReportJson(const drift::DriftMonitor::Report &report)
{
    std::ostringstream out;
    out << "{\"suite\":" << json::quote(report.suite)
        << ",\"state\":\"" << drift::driftStateName(report.state)
        << "\",\"published\":" << (report.published ? "true" : "false")
        << ",\"published_mean\":" << json::number(report.publishedMean)
        << ",\"published_qe\":" << json::number(report.publishedQe)
        << ",\"churn\":" << json::number(report.metrics.churn)
        << ",\"stability\":" << json::number(report.metrics.stability)
        << ",\"qe_ratio\":" << json::number(report.metrics.qeRatio)
        << ",\"window\":" << report.metrics.window
        << ",\"ticks\":" << report.ticks
        << ",\"observations\":" << report.observations
        << ",\"calm_streak\":" << report.calmStreak
        << ",\"last_sequence\":" << report.lastSequence << "}";
    return out.str();
}

/** Split a /v1/suites/ sub-path into "<name>" and the "<action>"
 *  after the next slash ("" when absent). */
void
splitSuitePath(const std::string &path, std::string &name,
               std::string &action)
{
    static const std::string kPrefix = "/v1/suites/";
    const std::string rest =
        path.size() > kPrefix.size() ? path.substr(kPrefix.size()) : "";
    const std::size_t slash = rest.find('/');
    if (slash == std::string::npos) {
        name = rest;
        action.clear();
    } else {
        name = rest.substr(0, slash);
        action = rest.substr(slash + 1);
    }
}

} // namespace

HttpResponse
Server::handleDriftList(const RequestContext &ctx)
{
    if (drift_ == nullptr)
        return errorResponse(ApiError::StoreDisabled,
                             "drift monitoring needs a durable store "
                             "(start hmserved with --data-dir)",
                             ctx.traceId);
    std::size_t limit = 0;
    if (auto bad = parseListLimit(ctx, kMaxListLimit, limit))
        return std::move(*bad);
    std::vector<drift::DriftMonitor::Report> reports =
        drift_->reports();
    if (reports.size() > limit)
        reports.resize(limit);
    std::ostringstream data;
    data << "{\"count\":" << reports.size()
         << ",\"recluster_every_seconds\":"
         << json::number(config_.reclusterEverySeconds)
         << ",\"suites\":[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i > 0)
            data << ",";
        data << driftReportJson(reports[i]);
    }
    data << "]}";
    return okResponse(data.str(), ctx.traceId);
}

HttpResponse
Server::handleSuiteGet(const RequestContext &ctx)
{
    std::string name, action;
    splitSuitePath(ctx.http.path(), name, action);
    if (name.empty() || action != "drift")
        return errorResponse(ApiError::NotFound,
                             "no such endpoint: " + ctx.http.path(),
                             ctx.traceId);
    const ClusterRoute route = suites_.route(ctx, name, false);
    if (route.action != ClusterRoute::Action::Local)
        return suites_.cluster()->relay(ctx, route);
    if (drift_ == nullptr)
        return errorResponse(ApiError::StoreDisabled,
                             "drift monitoring needs a durable store "
                             "(start hmserved with --data-dir)",
                             ctx.traceId);
    std::optional<drift::DriftMonitor::Report> report =
        drift_->report(name);
    if (!report.has_value()) {
        if (!suites_.store()->resolveSuite(name).has_value())
            return errorResponse(ApiError::SuiteUnknown,
                                 "no registered suite `" + name + "`",
                                 ctx.traceId);
        // Registered but never observed or ticked: a default-fresh
        // report, so pollers need no special case before first tick.
        report = drift::DriftMonitor::Report{};
        report->suite = name;
    }
    return okResponse(driftReportJson(*report), ctx.traceId);
}

HttpResponse
Server::handleSuitePost(const RequestContext &ctx)
{
    std::string name, action;
    splitSuitePath(ctx.http.path(), name, action);
    if (name.empty() || action != "observe")
        return errorResponse(ApiError::NotFound,
                             "no such endpoint: " + ctx.http.path(),
                             ctx.traceId);
    if (draining_.load()) {
        metrics_.onDrainShed();
        HttpResponse shed =
            errorResponse(ApiError::Draining,
                          "server draining, try another node",
                          ctx.traceId);
        shed.set("Retry-After", "1");
        return shed;
    }
    if (ctx.hasDeadline() && ctx.remainingMillis() <= 0.0) {
        metrics_.onDeadlineExpired();
        return errorResponse(ApiError::DeadlineExpired,
                             "client deadline spent before admission",
                             ctx.traceId, "\"timed_out\":true");
    }
    // Observations are feed traffic: bulk lane, so a firehose of
    // observes can never crowd interactive scores out of the gate.
    AdmissionTicket ticket(gate_, Lane::Bulk);
    if (!ticket.admitted()) {
        metrics_.onShed();
        metrics_.onLaneShed(Lane::Bulk);
        health_.onShed();
        return overloadedResponse(ctx.traceId);
    }
    HttpResponse response = suites_.handleObserve(ctx, name);
    // Fold the fresh observation into the online map right away so a
    // drift probe between ticks already sees it.
    if (response.status == 200 && drift_ != nullptr)
        drift_->absorb(name);
    return response;
}

HttpResponse
Server::handleRecluster(const RequestContext &ctx)
{
    obs::ScopedSpan span("drift.recluster");
    if (drift_ == nullptr)
        return errorResponse(ApiError::StoreDisabled,
                             "drift monitoring needs a durable store "
                             "(start hmserved with --data-dir)",
                             ctx.traceId);
    const std::string suite = ctx.http.queryParam("suite", "");
    std::vector<drift::DriftMonitor::Report> reports;
    if (!suite.empty()) {
        if (!suites_.store()->resolveSuite(suite).has_value() &&
            !drift_->report(suite).has_value())
            return errorResponse(ApiError::SuiteUnknown,
                                 "no registered suite `" + suite + "`",
                                 ctx.traceId);
        reports.push_back(drift_->tick(suite));
    } else {
        reports = drift_->tickAll();
    }
    if (!reports.empty() && config_.cluster != nullptr)
        config_.cluster->afterWrite();
    std::ostringstream data;
    data << "{\"ticked\":" << reports.size() << ",\"suites\":[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i > 0)
            data << ",";
        data << driftReportJson(reports[i]);
    }
    data << "]}";
    return okResponse(data.str(), ctx.traceId);
}

std::string
Server::driftSummaryJson() const
{
    if (drift_ == nullptr)
        return "[]";
    const std::vector<drift::DriftMonitor::Report> reports =
        drift_->reports();
    std::string out = "[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "{\"suite\":" + json::quote(reports[i].suite) +
               ",\"state\":\"" +
               drift::driftStateName(reports[i].state) +
               "\",\"published_mean\":" +
               json::number(reports[i].publishedMean) + "}";
    }
    out += "]";
    return out;
}

HealthState
Server::healthState() const
{
    HealthState state = health_.state();
    if (state == HealthState::Ok &&
        breaker_.state() != CircuitBreaker::State::Closed)
        state = HealthState::Degraded;
    return state;
}

std::string
Server::renderMetrics() const
{
    ServerMetricsSnapshot snap =
        metrics_.snapshot(gate_.depth(), gate_.capacity());
    snap.healthState = healthStateName(healthState());
    snap.breakerState = breaker_.stateName();
    snap.breakerOpens = breaker_.opens();
    return "server metrics:\n" + ServerMetrics::render(snap) +
           "\nengine metrics:\n" + engine_.metrics().render();
}

namespace {

/** Shared latency bucket bounds (milliseconds) for every histogram
 *  on /metrics — one scale across server and engine. */
const std::vector<double> &
latencyBounds()
{
    static const std::vector<double> kBounds = {
        0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
        10000};
    return kBounds;
}

void
writeHistogram(obs::PrometheusWriter &writer, const std::string &name,
               const obs::Labels &labels,
               const engine::LatencyHistogram &histogram)
{
    writer.histogram(name, labels, latencyBounds(),
                     histogram.cumulativeCounts(latencyBounds()),
                     histogram.sum(), histogram.count());
}

/** One-hot state gauge: value 1 on the active state's series. */
void
writeStateGauge(obs::PrometheusWriter &writer, const std::string &name,
                const std::vector<const char *> &states,
                const std::string &active)
{
    for (const char *state : states)
        writer.gauge(name, {{"state", state}},
                     active == state ? 1.0 : 0.0);
}

} // namespace

std::string
Server::renderPrometheus() const
{
    ServerMetricsSnapshot snap =
        metrics_.snapshot(gate_.depth(), gate_.capacity());
    const engine::MetricsSnapshot engine_snap =
        engine_.metrics().snapshot();
    obs::PrometheusWriter w;

    w.header("hiermeans_build_info",
             "Build/version of the serving daemon.", "gauge");
    w.gauge("hiermeans_build_info", {{"version", util::kVersion}}, 1.0);

    // --- server: connections + requests -----------------------------
    w.header("hiermeans_server_connections_accepted_total",
             "TCP connections accepted.", "counter");
    w.counter("hiermeans_server_connections_accepted_total", {},
              snap.connectionsAccepted);
    w.header("hiermeans_server_connections_rejected_total",
             "Connections shed before any read.", "counter");
    w.counter("hiermeans_server_connections_rejected_total", {},
              snap.connectionsRejected);
    w.header("hiermeans_server_connections_active",
             "Connections currently being served.", "gauge");
    w.gauge("hiermeans_server_connections_active", {},
            static_cast<double>(snap.connectionsActive));

    w.header("hiermeans_server_requests_total",
             "HTTP requests received.", "counter");
    w.counter("hiermeans_server_requests_total", {}, snap.requests);
    w.header("hiermeans_server_responses_total",
             "HTTP responses by status class.", "counter");
    w.counter("hiermeans_server_responses_total", {{"class", "2xx"}},
              snap.responses2xx);
    w.counter("hiermeans_server_responses_total", {{"class", "4xx"}},
              snap.responses4xx);
    w.counter("hiermeans_server_responses_total", {{"class", "5xx"}},
              snap.responses5xx);

    w.header("hiermeans_server_shed_total",
             "Requests shed by the admission gate (503).", "counter");
    w.counter("hiermeans_server_shed_total", {}, snap.shed503);
    w.header("hiermeans_server_timeouts_total",
             "Requests past their deadline (504).", "counter");
    w.counter("hiermeans_server_timeouts_total", {}, snap.timeouts504);
    w.header("hiermeans_server_malformed_total",
             "Malformed requests (400-class).", "counter");
    w.counter("hiermeans_server_malformed_total", {}, snap.malformed400);
    w.header("hiermeans_server_stale_served_total",
             "Cached scores served on degraded paths.", "counter");
    w.counter("hiermeans_server_stale_served_total", {},
              snap.staleServed);
    w.header("hiermeans_server_watchdog_trips_total",
             "Stuck requests failed by the watchdog (504).", "counter");
    w.counter("hiermeans_server_watchdog_trips_total", {},
              snap.watchdogTrips);
    w.header("hiermeans_server_breaker_fast_fail_total",
             "Requests fast-failed by an open circuit (503).",
             "counter");
    w.counter("hiermeans_server_breaker_fast_fail_total", {},
              snap.breakerFastFail);
    w.header("hiermeans_server_breaker_opens_total",
             "Times the circuit breaker opened.", "counter");
    w.counter("hiermeans_server_breaker_opens_total", {},
              breaker_.opens());

    // --- server: overload & drain -----------------------------------
    w.header("hiermeans_overload_shed_total",
             "Admission sheds by lane (503).", "counter");
    w.counter("hiermeans_overload_shed_total",
              {{"lane", "interactive"}}, snap.shedInteractive);
    w.counter("hiermeans_overload_shed_total", {{"lane", "bulk"}},
              snap.shedBulk);
    w.header("hiermeans_overload_deadline_expired_total",
             "Requests whose client deadline was spent before "
             "admission (504).",
             "counter");
    w.counter("hiermeans_overload_deadline_expired_total", {},
              snap.deadlineExpired);
    w.header("hiermeans_overload_cancelled_total",
             "Admitted requests cancelled mid-pipeline (drain or "
             "deadline).",
             "counter");
    w.counter("hiermeans_overload_cancelled_total", {},
              snap.cancelled);
    w.header("hiermeans_overload_deadline_miss_total",
             "Answers delivered after the client deadline had "
             "passed.",
             "counter");
    w.counter("hiermeans_overload_deadline_miss_total", {},
              snap.deadlineMisses);
    w.header("hiermeans_overload_drain_shed_total",
             "Requests refused because the server is draining.",
             "counter");
    w.counter("hiermeans_overload_drain_shed_total", {},
              snap.drainSheds);
    w.header("hiermeans_overload_draining",
             "1 while the drain state machine is active.", "gauge");
    w.gauge("hiermeans_overload_draining", {},
            snap.draining ? 1.0 : 0.0);

    // --- wire-format negotiation --------------------------------------
    w.header("hiermeans_wire_requests_total",
             "Requests by negotiated wire format.", "counter");
    w.counter("hiermeans_wire_requests_total", {{"format", "json"}},
              snap.wireJson);
    w.counter("hiermeans_wire_requests_total", {{"format", "binary"}},
              snap.wireBinary);
    w.header("hiermeans_wire_supported",
             "1 for each binary wire version this build speaks.",
             "gauge");
    w.gauge("hiermeans_wire_supported",
            {{"version", std::to_string(wire::kWireVersion)}}, 1.0);

    // --- synthetic suite generators ----------------------------------
    // Every family label is pre-seeded at zero so dashboards (and the
    // hmctl --check lint) see the full label set before any traffic.
    w.header("hiermeans_gen_registrations_total",
             "Generator-tagged suite registrations by family.",
             "counter");
    {
        const std::vector<std::string> families = gen::genMetricLabels();
        for (std::size_t s = 0; s < families.size(); ++s)
            w.counter("hiermeans_gen_registrations_total",
                      {{"family", families[s]}},
                      s < snap.genRegistrations.size()
                          ? snap.genRegistrations[s]
                          : 0);
    }

    w.header("hiermeans_server_admission_queue_depth",
             "Admission slots currently held.", "gauge");
    w.gauge("hiermeans_server_admission_queue_depth", {},
            static_cast<double>(snap.queueDepth));
    w.header("hiermeans_server_admission_queue_capacity",
             "Admission slot capacity.", "gauge");
    w.gauge("hiermeans_server_admission_queue_capacity", {},
            static_cast<double>(snap.queueCapacity));

    // --- server: state gauges ---------------------------------------
    w.header("hiermeans_server_health_state",
             "Health state (1 on the active series).", "gauge");
    writeStateGauge(w, "hiermeans_server_health_state",
                    {"ok", "degraded", "draining"},
                    healthStateName(healthState()));
    w.header("hiermeans_server_breaker_state",
             "Circuit-breaker state (1 on the active series).",
             "gauge");
    writeStateGauge(w, "hiermeans_server_breaker_state",
                    {"closed", "open", "half-open"},
                    breaker_.stateName());

    // --- server: per-endpoint latency -------------------------------
    w.header("hiermeans_server_request_duration_ms",
             "Request wall time by endpoint (milliseconds).",
             "histogram");
    for (std::size_t e = 0;
         e < static_cast<std::size_t>(Endpoint::Count_); ++e) {
        const auto endpoint = static_cast<Endpoint>(e);
        writeHistogram(w, "hiermeans_server_request_duration_ms",
                       {{"endpoint", endpointName(endpoint)}},
                       metrics_.histogram(endpoint));
    }

    // --- engine ------------------------------------------------------
    w.header("hiermeans_engine_requests_total",
             "Requests submitted to the scoring engine.", "counter");
    w.counter("hiermeans_engine_requests_total", {},
              engine_snap.requests);
    w.header("hiermeans_engine_cache_hits_total",
             "Requests served straight from the result cache.",
             "counter");
    w.counter("hiermeans_engine_cache_hits_total", {},
              engine_snap.cacheHits);
    w.header("hiermeans_engine_dedup_total",
             "Requests piggybacked on an in-flight twin.", "counter");
    w.counter("hiermeans_engine_dedup_total", {},
              engine_snap.dedupedInFlight);
    w.header("hiermeans_engine_executions_total",
             "Pipelines actually executed.", "counter");
    w.counter("hiermeans_engine_executions_total", {},
              engine_snap.executions);
    w.header("hiermeans_engine_cancellations_total",
             "Requests abandoned on a cancel token (drain or "
             "explicit).",
             "counter");
    w.counter("hiermeans_engine_cancellations_total", {},
              engine_snap.cancellations);
    w.header("hiermeans_engine_failures_total",
             "Executions that raised an error.", "counter");
    w.counter("hiermeans_engine_failures_total", {},
              engine_snap.failures);
    w.header("hiermeans_engine_timeouts_total",
             "Requests past their cooperative deadline.", "counter");
    w.counter("hiermeans_engine_timeouts_total", {},
              engine_snap.timeouts);
    w.header("hiermeans_engine_cache_insert_failures_total",
             "Results served but not cached.", "counter");
    w.counter("hiermeans_engine_cache_insert_failures_total", {},
              engine_snap.cacheInsertFailures);
    w.header("hiermeans_engine_cache_hit_ratio",
             "Cache hits / engine requests.", "gauge");
    w.gauge("hiermeans_engine_cache_hit_ratio", {},
            engine_snap.cacheHitRatio);

    w.header("hiermeans_engine_request_duration_ms",
             "Engine wall time per served request (milliseconds).",
             "histogram");
    writeHistogram(w, "hiermeans_engine_request_duration_ms", {},
                   engine_.metrics().requestHistogram());
    w.header("hiermeans_engine_pipeline_duration_ms",
             "Wall time per executed pipeline (milliseconds).",
             "histogram");
    writeHistogram(w, "hiermeans_engine_pipeline_duration_ms", {},
                   engine_.metrics().pipelineHistogram());

    // --- store (emitted only when persistence is mounted) -------------
    const store::StateStore *mounted = suites_.store();
    if (mounted != nullptr) {
        const store::StoreMetrics sm = mounted->metrics();
        w.header("hiermeans_store_wal_records_total",
                 "Records appended to the write-ahead log.", "counter");
        w.counter("hiermeans_store_wal_records_total", {},
                  sm.walRecords);
        w.header("hiermeans_store_wal_bytes_total",
                 "Bytes appended to the write-ahead log.", "counter");
        w.counter("hiermeans_store_wal_bytes_total", {}, sm.walBytes);
        w.header("hiermeans_store_wal_fsyncs_total",
                 "WAL fsync calls.", "counter");
        w.counter("hiermeans_store_wal_fsyncs_total", {}, sm.walFsyncs);
        w.header("hiermeans_store_wal_append_failures_total",
                 "WAL appends that failed (the response was served "
                 "anyway).",
                 "counter");
        w.counter("hiermeans_store_wal_append_failures_total", {},
                  sm.walAppendFailures);
        w.header("hiermeans_store_wal_size_bytes",
                 "Current WAL file size.", "gauge");
        w.gauge("hiermeans_store_wal_size_bytes", {},
                static_cast<double>(sm.walSizeBytes));

        w.header("hiermeans_store_snapshots_total",
                 "Snapshots written (auto + requested + shutdown).",
                 "counter");
        w.counter("hiermeans_store_snapshots_total", {},
                  sm.snapshotsWritten);
        w.header("hiermeans_store_snapshot_failures_total",
                 "Snapshot attempts that failed.", "counter");
        w.counter("hiermeans_store_snapshot_failures_total", {},
                  sm.snapshotFailures);
        w.header("hiermeans_store_snapshot_age_seconds",
                 "Seconds since the last snapshot (or since boot).",
                 "gauge");
        w.gauge("hiermeans_store_snapshot_age_seconds", {},
                sm.sinceSnapshotSeconds);

        w.header("hiermeans_store_recovery_outcome",
                 "Boot recovery outcome (1 on the active series).",
                 "gauge");
        writeStateGauge(
            w, "hiermeans_store_recovery_outcome",
            {"clean_start", "clean", "truncated_tail",
             "snapshot_fallback"},
            store::recoveryOutcomeName(sm.recoveryOutcome));
        w.header("hiermeans_store_recovered_records",
                 "Records replayed at boot (snapshot + WAL tail).",
                 "gauge");
        w.gauge("hiermeans_store_recovered_records", {},
                static_cast<double>(sm.recoveredRecords));
        w.header("hiermeans_store_recovery_discarded_bytes",
                 "Torn WAL tail bytes truncated at boot.", "gauge");
        w.gauge("hiermeans_store_recovery_discarded_bytes", {},
                static_cast<double>(sm.recoveryDiscardedBytes));
        w.header("hiermeans_store_warmed_cache_entries",
                 "Result-cache entries repopulated at boot.", "gauge");
        w.gauge("hiermeans_store_warmed_cache_entries", {},
                static_cast<double>(warmedEntries_));

        w.header("hiermeans_store_last_sequence",
                 "Highest committed record sequence.", "gauge");
        w.gauge("hiermeans_store_last_sequence", {},
                static_cast<double>(sm.lastSequence));
        w.header("hiermeans_store_suites",
                 "Registered suites.", "gauge");
        w.gauge("hiermeans_store_suites", {},
                static_cast<double>(sm.suiteCount));
        w.header("hiermeans_store_history_entries",
                 "Score-history entries across every ring.", "gauge");
        w.gauge("hiermeans_store_history_entries", {},
                static_cast<double>(sm.historyEntries));
        w.header("hiermeans_store_results",
                 "Retained full score records (warm-startable).",
                 "gauge");
        w.gauge("hiermeans_store_results", {},
                static_cast<double>(sm.resultCount));
    }

    // --- drift (emitted only when the monitor is running) -------------
    if (drift_ != nullptr) {
        const std::vector<drift::DriftMonitor::Report> reports =
            drift_->reports();
        w.header("hiermeans_drift_suites",
                 "Suites with a drift monitor attached.", "gauge");
        w.gauge("hiermeans_drift_suites", {},
                static_cast<double>(reports.size()));
        w.header("hiermeans_drift_state",
                 "Per-suite staleness (1 on the active series).",
                 "gauge");
        for (const drift::DriftMonitor::Report &r : reports) {
            const char *active = drift::driftStateName(r.state);
            for (const char *state : {"fresh", "drifting", "stale"})
                w.gauge("hiermeans_drift_state",
                        {{"suite", r.suite}, {"state", state}},
                        std::string_view(active) == state ? 1.0 : 0.0);
        }
        w.header("hiermeans_drift_churn",
                 "Assignment churn vs the published clustering "
                 "(fraction of the window).",
                 "gauge");
        for (const drift::DriftMonitor::Report &r : reports)
            w.gauge("hiermeans_drift_churn", {{"suite", r.suite}},
                    r.metrics.churn);
        w.header("hiermeans_drift_stability",
                 "Adjusted Rand index vs the published clustering.",
                 "gauge");
        for (const drift::DriftMonitor::Report &r : reports)
            w.gauge("hiermeans_drift_stability", {{"suite", r.suite}},
                    r.metrics.stability);
        w.header("hiermeans_drift_qe_ratio",
                 "Window quantization error over the published "
                 "baseline.",
                 "gauge");
        for (const drift::DriftMonitor::Report &r : reports)
            w.gauge("hiermeans_drift_qe_ratio", {{"suite", r.suite}},
                    r.metrics.qeRatio);
        w.header("hiermeans_drift_published_mean",
                 "Hierarchical geometric mean at last publish.",
                 "gauge");
        for (const drift::DriftMonitor::Report &r : reports)
            w.gauge("hiermeans_drift_published_mean",
                    {{"suite", r.suite}}, r.publishedMean);
        w.header("hiermeans_drift_ticks_total",
                 "Re-cluster ticks per suite.", "counter");
        for (const drift::DriftMonitor::Report &r : reports)
            w.counter("hiermeans_drift_ticks_total",
                      {{"suite", r.suite}}, r.ticks);
        w.header("hiermeans_drift_observations_total",
                 "Observations folded into the online map.", "counter");
        for (const drift::DriftMonitor::Report &r : reports)
            w.counter("hiermeans_drift_observations_total",
                      {{"suite", r.suite}}, r.observations);
    }

    // --- mesh (emitted only in cluster mode) --------------------------
    if (config_.cluster != nullptr)
        config_.cluster->renderMetrics(w);

    // --- tracing ------------------------------------------------------
    const obs::Tracer &tracer = obs::Tracer::instance();
    w.header("hiermeans_trace_enabled",
             "1 when request tracing is armed.", "gauge");
    w.gauge("hiermeans_trace_enabled", {},
            obs::tracingEnabled() ? 1.0 : 0.0);
    w.header("hiermeans_trace_finished_total",
             "Traces recorded since tracing was configured.",
             "counter");
    w.counter("hiermeans_trace_finished_total", {},
              tracer.finishedTotal());
    w.header("hiermeans_trace_slow_sampled_total",
             "Traces kept by the slow-request sampler.", "counter");
    w.counter("hiermeans_trace_slow_sampled_total", {},
              tracer.slowTotal());

    return w.text();
}

} // namespace server
} // namespace hiermeans
