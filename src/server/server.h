/**
 * @file
 * `hmserved`'s core: the scoring daemon, composed of two layers.
 *
 *   HttpTransport (transport.h)     connections, parsing, dispatch
 *        -> Router -> Server handlers (scoring, observability)
 *             -> SuiteService (suite_service.h)   suites + store
 *                  -> AdmissionGate -> ScoringEngine -> HttpResponse
 *
 * Endpoints (every /v1 JSON body is the api.h envelope):
 *   POST /v1/score     body = one manifest line; answers one envelope
 *                      with an `X-Hiermeans-Source: pipeline|cache|
 *                      dedupe` provenance header;
 *   POST /v1/batch     body = a whole manifest; answers one envelope
 *                      per line (NDJSON), failures isolated per line;
 *   GET  /v1/trace/<id> span tree of a finished traced request;
 *   GET  /v1/traces    recent + slow-sampled trace IDs;
 *   POST /v1/suites?name=X  register the body as the next version of
 *                      suite X (durable store; 503 when not mounted);
 *   GET  /v1/suites    registered suites and their versions;
 *   GET  /v1/history?suite=X  the persisted score-history ring;
 *   POST /v1/admin/snapshot  force a snapshot + WAL compaction;
 *   GET  /metrics      Prometheus text exposition of server + engine
 *                      counters, gauges and latency histograms;
 *   GET  /healthz      liveness probe (text).
 *
 * Cluster mode (Config::cluster attached, hmserved --mesh-config):
 *   GET  /v1/cluster        membership, ring and per-node health;
 *   POST /v1/mesh/replicate WAL shipping from a shard leader;
 * and every suite-affine request above is routed by the consistent-
 * hash ring — served locally when this node owns the suite, proxied
 * or 307-redirected to the owner otherwise (see cluster.h).
 *
 * Persistence: with Config::store.dataDir set (hmserved --data-dir),
 * a /v1/score or /v1/batch body may be a `suite=<name>[@version]`
 * reference — plus optional `line=<n>` and override tokens — that
 * expands to the stored manifest text (appended tokens win, the
 * CommandLine last-wins rule). Every pipeline-executed score is
 * WAL-appended to the score history; on boot the engine's result
 * cache warm-starts from the recovered store, so a restarted daemon
 * answers previously-scored requests from cache without
 * re-executing the pipeline.
 *
 * Tracing: when obs tracing is armed (hmserved --trace, or
 * obs::Tracer::configure in tests), every request gets a trace ID —
 * accepted from an `X-Hiermeans-Trace` request header or generated —
 * echoed in the response header and envelope, with spans recorded
 * from accept through admission, queue wait, engine execute and the
 * pipeline stages. Disarmed tracing costs one relaxed atomic load
 * per request.
 *
 * Robustness contract:
 *   - malformed requests answer 400 without touching the engine;
 *   - a full admission queue answers `503 Retry-After: 1` immediately
 *     (backpressure; the connection is never dropped silently) — unless
 *     the result cache already holds this request's score, in which
 *     case the stale copy is served as `200` + `X-Hiermeans-Stale: 1`
 *     (degraded serving beats shedding);
 *   - per-request deadlines (`timeout-ms`) map onto the engine's
 *     cooperative timeouts and answer 504;
 *   - a Watchdog backstops wedged engine work: a worker whose request
 *     blows past its deadline answers `504` instead of hanging the
 *     connection;
 *   - a CircuitBreaker in front of /v1/score fast-fails with
 *     `503 Retry-After` after consecutive hard failures (504s/500s),
 *     probing half-open once per open window;
 *   - /healthz reports the HealthMonitor's `ok|degraded|draining`
 *     state (503 while draining, so balancers stop routing here);
 *   - stop() stops accepting, drains in-flight requests, then joins —
 *     a request already received is always answered.
 *
 * The server is usable fully in-process (port 0 = ephemeral), which is
 * how the integration tests and perf_server_throughput drive it.
 */

#ifndef HIERMEANS_SERVER_SERVER_H
#define HIERMEANS_SERVER_SERVER_H

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "src/drift/monitor.h"
#include "src/engine/engine.h"
#include "src/engine/manifest.h"
#include "src/server/admission.h"
#include "src/server/cluster.h"
#include "src/server/http.h"
#include "src/server/resilience.h"
#include "src/server/router.h"
#include "src/server/server_metrics.h"
#include "src/server/suite_service.h"
#include "src/server/transport.h"
#include "src/server/watchdog.h"
#include "src/store/store.h"

namespace hiermeans {
namespace server {

/** The scoring daemon. One instance per process is typical. */
class Server
{
  public:
    struct Config
    {
        /** TCP port; 0 binds an ephemeral port (see port()). */
        std::uint16_t port = 8377;

        /** Connection workers: concurrent connections being served.
         *  Sized above queueDepth so the admission gate — not the
         *  worker count — is what sheds scoring load. */
        std::size_t connectionThreads = 16;

        /** Admission slots for scoring work (score requests + batch
         *  documents admitted but unfinished). Full gate => 503. */
        std::size_t queueDepth = 8;

        /** Request body limit; larger bodies answer 413. */
        std::size_t maxBodyBytes = 256 * 1024;

        /** Bulk-lane cap inside queueDepth (/v1/batch + observe);
         *  0 = half the queue depth. Interactive /v1/score may use
         *  every slot, so bulk can never starve it. */
        std::size_t bulkQueueDepth = 0;

        /** Deadline for requests that carry no timeout-ms; 0 = none. */
        double defaultTimeoutMillis = 0.0;

        /** Deadline assumed for requests that carry no
         *  X-Hiermeans-Deadline header; 0 = none. */
        double defaultDeadlineMillis = 0.0;

        /** How long stop() waits for admitted work to finish before
         *  cancelling it (the drain state machine's budget). */
        double drainDeadlineMillis = 5000.0;

        /** When the gate is full (or the breaker is open), serve a
         *  cached stale score instead of 503 when one exists. */
        bool serveStale = true;

        engine::ScoringEngine::Config engine;
        CircuitBreaker::Config breaker;
        HealthMonitor::Config health;
        Watchdog::Config watchdog;

        /** Durable state store (WAL + snapshots). An empty
         *  `store.dataDir` leaves persistence off: /v1/suites,
         *  /v1/history and /v1/admin/snapshot answer 503
         *  store_disabled, and nothing touches disk. */
        store::StateStore::Config store;

        /** Mesh integration (nullptr = single-node). Must outlive
         *  the server; routes /v1/cluster, /v1/mesh/replicate and the
         *  suite-affine routing decisions through it. */
        ClusterHooks *cluster = nullptr;

        /** Seconds between automatic drift re-cluster passes
         *  (hmserved --recluster-every). 0 disables the background
         *  job; POST /v1/admin/recluster still ticks on demand. */
        double reclusterEverySeconds = 0.0;

        /** Drift-monitor tuning (window sizes, thresholds, map
         *  shape). Only consulted when the store is mounted. */
        drift::DriftMonitor::Config drift;
    };

    explicit Server(Config config);

    /** Stops and drains if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and spawn the accept loop + workers. Throws when
     *  the port cannot be bound. One-shot: start/stop once. */
    void start();

    /**
     * Graceful shutdown: beginDrain(), wait for admitted work up to
     * Config::drainDeadlineMillis, cancel what is still in flight,
     * serve every request already received, flush a final snapshot,
     * close idle connections, join all threads. Idempotent.
     */
    void stop();

    /**
     * Enter the draining state without stopping yet: /healthz flips
     * to 503, /v1/cluster advertises `draining`, and new scoring
     * work is shed with the `draining` code so clients fail over
     * proactively. One-way; stop() calls this first. Idempotent.
     */
    void beginDrain();

    /** True once beginDrain() (or stop()) has run. */
    bool draining() const { return draining_.load(); }

    bool running() const { return transport_.running(); }

    /** The bound port (resolves port 0 after start()). */
    std::uint16_t port() const { return transport_.port(); }

    engine::ScoringEngine &engine() { return engine_; }
    AdmissionGate &gate() { return gate_; }

    /** The durable store; nullptr when persistence is off. */
    store::StateStore *store() { return suites_.store(); }

    /** The suite-service layer (reference expansion, registry,
     *  history, persistence). */
    SuiteService &suiteService() { return suites_; }

    /** How start() recovered the store (meaningful iff store()). */
    const store::RecoveryInfo &storeRecovery() const
    {
        return suites_.recovery();
    }

    /** Cache entries repopulated from the store at start(). */
    std::size_t warmedCacheEntries() const { return warmedEntries_; }

    /** The drift monitor; nullptr until start(), or when persistence
     *  is off (drift needs the history rings). */
    drift::DriftMonitor *driftMonitor() { return drift_.get(); }

    /** Compact per-suite drift states as a JSON value (the `drift`
     *  field a mesh node splices into /v1/cluster); "[]" when drift
     *  monitoring is off. */
    std::string driftSummaryJson() const;

    const ServerMetrics &metrics() const { return metrics_; }
    CircuitBreaker &breaker() { return breaker_; }
    HealthMonitor &health() { return health_; }
    const Watchdog &watchdog() const { return watchdog_; }

    /** The /healthz state, breaker-aware (an open breaker on the
     *  scoring path degrades an otherwise-ok server). */
    HealthState healthState() const;

    /** Server + engine metrics as human-readable text tables (the
     *  shutdown summary; /metrics serves renderPrometheus()). */
    std::string renderMetrics() const;

    /** Every server/engine/trace metric in Prometheus text
     *  exposition format (the /metrics body). */
    std::string renderPrometheus() const;

  private:
    HttpResponse handleScore(const RequestContext &ctx);
    HttpResponse handleBatch(const RequestContext &ctx);
    HttpResponse handleMetrics(const RequestContext &ctx);
    HttpResponse handleHealthz(const RequestContext &ctx);
    HttpResponse handleTrace(const RequestContext &ctx);
    HttpResponse handleTraces(const RequestContext &ctx);

    /** GET /v1/drift: every tracked suite's drift report. */
    HttpResponse handleDriftList(const RequestContext &ctx);
    /** GET /v1/suites/<name>/drift (and 404s for other suffixes). */
    HttpResponse handleSuiteGet(const RequestContext &ctx);
    /** POST /v1/suites/<name>/observe (other suffixes 404). */
    HttpResponse handleSuitePost(const RequestContext &ctx);
    /** POST /v1/admin/recluster[?suite=X]: force a drift tick. */
    HttpResponse handleRecluster(const RequestContext &ctx);
    /** POST /v1/admin/drain: request a graceful process drain. */
    HttpResponse handleDrain(const RequestContext &ctx);

    /** The --recluster-every background job. */
    void reclusterLoop();

    /** 503 + Retry-After (the admission-shed and overflow answer). */
    static HttpResponse overloadedResponse(const std::string &traceId);

    /** Cached stale score as 200 + X-Hiermeans-Stale (in the
     *  request's negotiated format), when available and allowed;
     *  nullopt sends the caller down the 503 path. */
    std::optional<HttpResponse> tryStale(std::uint64_t fingerprint,
                                         const std::string &id,
                                         const RequestContext &ctx);

    /** Wait for @p future, polling @p token; a watchdog trip abandons
     *  the future and yields a 504 (nullopt = result arrived). */
    std::optional<HttpResponse>
    awaitWithWatchdog(std::future<engine::ScoreResult> &future,
                      const Watchdog::Token &token,
                      engine::CancelSource *cancel,
                      engine::ScoreResult &result,
                      const std::string &traceId);

    Config config_;
    engine::ScoringEngine engine_;
    AdmissionGate gate_;
    ServerMetrics metrics_;
    CircuitBreaker breaker_;
    HealthMonitor health_;
    Watchdog watchdog_;
    Router router_;
    SuiteService suites_;
    HttpTransport transport_;
    engine::CsvCache csvs_;
    util::CommandLine requestDefaults_;
    std::unique_ptr<drift::DriftMonitor> drift_;
    std::thread reclusterThread_;
    std::atomic<bool> reclusterStop_{false};
    std::size_t warmedEntries_ = 0;
    bool started_ = false;

    /** Parent of every per-request cancel source; drain fires it. */
    engine::CancelSource drainSource_;
    std::atomic<bool> draining_{false};
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_SERVER_H
