#include "src/server/server_metrics.h"

#include "src/util/str.h"
#include "src/util/text_table.h"

namespace hiermeans {
namespace server {

const char *
endpointName(Endpoint endpoint)
{
    switch (endpoint) {
    case Endpoint::Score:   return "/v1/score";
    case Endpoint::Batch:   return "/v1/batch";
    case Endpoint::Metrics: return "/metrics";
    case Endpoint::Healthz: return "/healthz";
    case Endpoint::Suites:  return "/v1/suites";
    case Endpoint::History: return "/v1/history";
    case Endpoint::Mesh:    return "/v1/mesh";
    default:                return "(other)";
    }
}

Endpoint
endpointFor(const std::string &path)
{
    if (path == "/v1/score")
        return Endpoint::Score;
    if (path == "/v1/batch")
        return Endpoint::Batch;
    if (path == "/metrics")
        return Endpoint::Metrics;
    if (path == "/healthz")
        return Endpoint::Healthz;
    if (path == "/v1/suites")
        return Endpoint::Suites;
    if (path == "/v1/history")
        return Endpoint::History;
    if (path == "/v1/cluster" || path.rfind("/v1/mesh/", 0) == 0)
        return Endpoint::Mesh;
    return Endpoint::Other;
}

void
ServerMetrics::onResponse(int status)
{
    if (status >= 500)
        ++responses5xx_;
    else if (status >= 400)
        ++responses4xx_;
    else
        ++responses2xx_;
}

void
ServerMetrics::recordLatency(Endpoint endpoint, double millis)
{
    latency_[static_cast<std::size_t>(endpoint)].record(millis);
}

ServerMetricsSnapshot
ServerMetrics::snapshot(std::uint64_t queue_depth,
                        std::uint64_t queue_capacity) const
{
    ServerMetricsSnapshot snap;
    snap.connectionsAccepted = connectionsAccepted_.load();
    snap.connectionsRejected = connectionsRejected_.load();
    snap.connectionsActive = connectionsActive_.load();
    snap.requests = requests_.load();
    snap.responses2xx = responses2xx_.load();
    snap.responses4xx = responses4xx_.load();
    snap.responses5xx = responses5xx_.load();
    snap.shed503 = shed503_.load();
    snap.timeouts504 = timeouts504_.load();
    snap.malformed400 = malformed400_.load();
    snap.staleServed = staleServed_.load();
    snap.watchdogTrips = watchdogTrips_.load();
    snap.breakerFastFail = breakerFastFail_.load();
    snap.shedInteractive = shedInteractive_.load();
    snap.shedBulk = shedBulk_.load();
    snap.deadlineExpired = deadlineExpired_.load();
    snap.cancelled = cancelled_.load();
    snap.deadlineMisses = deadlineMisses_.load();
    snap.drainSheds = drainSheds_.load();
    snap.wireJson = wireJson_.load();
    snap.wireBinary = wireBinary_.load();
    for (std::size_t s = 0; s < genRegistrations_.size(); ++s)
        snap.genRegistrations[s] = genRegistrations_[s].load();
    snap.draining = draining_.load();
    snap.queueDepth = queue_depth;
    snap.queueCapacity = queue_capacity;
    for (std::size_t e = 0; e < latency_.size(); ++e) {
        auto &out = snap.latency[e];
        const engine::LatencyHistogram &hist = latency_[e];
        out.count = hist.count();
        out.p50 = hist.percentile(50.0);
        out.p95 = hist.percentile(95.0);
        out.p99 = hist.percentile(99.0);
        out.max = hist.max();
    }
    return snap;
}

std::string
ServerMetrics::render(const ServerMetricsSnapshot &snap)
{
    util::TextTable counters({"server counter", "value"});
    counters.addRow({"connections accepted",
                     std::to_string(snap.connectionsAccepted)});
    counters.addRow({"connections rejected",
                     std::to_string(snap.connectionsRejected)});
    counters.addRow({"connections active",
                     std::to_string(snap.connectionsActive)});
    counters.addRow({"requests", std::to_string(snap.requests)});
    counters.addRow({"responses 2xx",
                     std::to_string(snap.responses2xx)});
    counters.addRow({"responses 4xx",
                     std::to_string(snap.responses4xx)});
    counters.addRow({"responses 5xx",
                     std::to_string(snap.responses5xx)});
    counters.addRow({"shed (503)", std::to_string(snap.shed503)});
    counters.addRow({"timeouts (504)",
                     std::to_string(snap.timeouts504)});
    counters.addRow({"malformed (400)",
                     std::to_string(snap.malformed400)});
    counters.addRow({"stale served",
                     std::to_string(snap.staleServed)});
    counters.addRow({"watchdog trips",
                     std::to_string(snap.watchdogTrips)});
    counters.addRow({"breaker fast-fails",
                     std::to_string(snap.breakerFastFail)});
    counters.addRow({"shed interactive lane",
                     std::to_string(snap.shedInteractive)});
    counters.addRow({"shed bulk lane",
                     std::to_string(snap.shedBulk)});
    counters.addRow({"deadline expired",
                     std::to_string(snap.deadlineExpired)});
    counters.addRow({"cancelled", std::to_string(snap.cancelled)});
    counters.addRow({"deadline misses",
                     std::to_string(snap.deadlineMisses)});
    counters.addRow({"drain sheds", std::to_string(snap.drainSheds)});
    counters.addRow({"wire format json",
                     std::to_string(snap.wireJson)});
    counters.addRow({"wire format binary",
                     std::to_string(snap.wireBinary)});
    counters.addRow({"admission queue depth",
                     std::to_string(snap.queueDepth) + "/" +
                         std::to_string(snap.queueCapacity)});
    if (!snap.healthState.empty())
        counters.addRow({"health state", snap.healthState});
    if (!snap.breakerState.empty()) {
        counters.addRow({"breaker state", snap.breakerState});
        counters.addRow({"breaker opens",
                         std::to_string(snap.breakerOpens)});
    }

    util::TextTable latency({"endpoint", "count", "p50 ms", "p95 ms",
                             "p99 ms", "max ms"});
    for (std::size_t e = 0;
         e < static_cast<std::size_t>(Endpoint::Count_); ++e) {
        const auto &lat = snap.latency[e];
        if (lat.count == 0)
            continue;
        latency.addRow({endpointName(static_cast<Endpoint>(e)),
                        std::to_string(lat.count),
                        str::fixed(lat.p50, 2), str::fixed(lat.p95, 2),
                        str::fixed(lat.p99, 2), str::fixed(lat.max, 2)});
    }
    return counters.render() + "\n" + latency.render();
}

} // namespace server
} // namespace hiermeans
