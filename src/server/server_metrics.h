/**
 * @file
 * Serving-layer observability: connection/request counters and
 * per-endpoint latency histograms, rendered next to the engine's own
 * metrics on GET /metrics and in the shutdown summary.
 *
 * Counters are lock-free atomics (same discipline as EngineMetrics);
 * the latency histograms reuse engine::LatencyHistogram so percentiles
 * are computed identically across layers.
 */

#ifndef HIERMEANS_SERVER_SERVER_METRICS_H
#define HIERMEANS_SERVER_SERVER_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/engine/metrics.h"
#include "src/server/admission.h"

namespace hiermeans {
namespace server {

/** The endpoints we attribute latency to. */
enum class Endpoint : std::size_t
{
    Score = 0,
    Batch,
    Metrics,
    Healthz,
    Suites,
    History,
    Mesh, ///< /v1/cluster + /v1/mesh/* (cluster mode only).
    Other,
    Count_ // sentinel
};

/**
 * Label slots of the hiermeans_gen_registrations_total counter: one
 * per generator family plus the trailing "other" bucket. Must equal
 * gen::kGenMetricSlots (static_asserted where both are visible) —
 * kept as a plain constant here so the metrics layer stays decoupled
 * from src/gen.
 */
inline constexpr std::size_t kGenFamilySlots = 5;

/** Endpoint display name ("/v1/score", ...). */
const char *endpointName(Endpoint endpoint);

/** Classify a request path into its latency-attribution endpoint. */
Endpoint endpointFor(const std::string &path);

/** Point-in-time copy of every server counter. */
struct ServerMetricsSnapshot
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsRejected = 0; ///< shed before any read.
    std::uint64_t connectionsActive = 0;   ///< gauge.
    std::uint64_t requests = 0;
    std::uint64_t responses2xx = 0;
    std::uint64_t responses4xx = 0;
    std::uint64_t responses5xx = 0;
    std::uint64_t shed503 = 0;     ///< admission queue full.
    std::uint64_t timeouts504 = 0; ///< request deadline lapsed.
    std::uint64_t malformed400 = 0;
    std::uint64_t staleServed = 0;   ///< cached scores served degraded.
    std::uint64_t watchdogTrips = 0; ///< stuck requests failed as 504.
    std::uint64_t breakerFastFail = 0; ///< 503s from an open circuit.

    // Overload-control counters (the hiermeans_overload_* family).
    std::uint64_t shedInteractive = 0; ///< interactive-lane sheds.
    std::uint64_t shedBulk = 0;        ///< bulk-lane sheds.
    std::uint64_t deadlineExpired = 0; ///< shed pre-admission: budget spent.
    std::uint64_t cancelled = 0;       ///< admitted work cancelled mid-flight.
    std::uint64_t deadlineMisses = 0;  ///< answered past the client budget.
    std::uint64_t drainSheds = 0;      ///< 503 draining answers.
    bool draining = false;             ///< gauge: drain in progress.

    // Negotiated wire formats (hiermeans_wire_requests_total).
    std::uint64_t wireJson = 0;   ///< JSON/text requests.
    std::uint64_t wireBinary = 0; ///< binary-wire requests.

    // Generator-family suite registrations, by family slot
    // (hiermeans_gen_registrations_total).
    std::array<std::uint64_t, kGenFamilySlots> genRegistrations{};

    std::uint64_t queueDepth = 0;    ///< gauge (admission gate).
    std::uint64_t queueCapacity = 0;

    // Resilience gauges, filled in by the Server (the breaker and
    // health monitor live there, not in ServerMetrics).
    std::string healthState;   ///< "ok" / "degraded" / "draining".
    std::string breakerState;  ///< "closed" / "open" / "half-open".
    std::uint64_t breakerOpens = 0;

    struct EndpointLatency
    {
        std::size_t count = 0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
        double max = 0.0;
    };
    std::array<EndpointLatency,
               static_cast<std::size_t>(Endpoint::Count_)>
        latency;
};

/** Counters + histograms shared by every connection worker. */
class ServerMetrics
{
  public:
    void onConnectionAccepted() { ++connectionsAccepted_; }
    void onConnectionRejected() { ++connectionsRejected_; }
    void onConnectionOpened() { ++connectionsActive_; }
    void onConnectionClosed() { --connectionsActive_; }
    void onRequest() { ++requests_; }
    void onShed() { ++shed503_; }
    void onTimeout() { ++timeouts504_; }
    void onMalformed() { ++malformed400_; }
    void onStaleServed() { ++staleServed_; }
    void onWatchdogTrip() { ++watchdogTrips_; }
    void onBreakerFastFail() { ++breakerFastFail_; }
    void onLaneShed(Lane lane)
    {
        ++(lane == Lane::Bulk ? shedBulk_ : shedInteractive_);
    }
    void onDeadlineExpired() { ++deadlineExpired_; }
    void onCancelled() { ++cancelled_; }
    void onDeadlineMiss() { ++deadlineMisses_; }
    void onDrainShed() { ++drainSheds_; }
    /** Count one request's negotiated wire format: binary when the
     *  body or the negotiated response format was the wire type. */
    void onWireFormat(bool binary)
    {
        ++(binary ? wireBinary_ : wireJson_);
    }
    /** Count one generator-tagged suite registration; @p slot is a
     *  gen::familyMetricSlot value (out-of-range goes to "other"). */
    void onGenRegistered(std::size_t slot)
    {
        ++genRegistrations_[slot < kGenFamilySlots ? slot
                                                   : kGenFamilySlots - 1];
    }
    void setDraining() { draining_.store(true); }
    bool draining() const { return draining_.load(); }

    /** Classify a response status into its class counter. */
    void onResponse(int status);

    /** Record one served request's wall time for @p endpoint. */
    void recordLatency(Endpoint endpoint, double millis);

    /** Snapshot; queue gauges are supplied by the caller (the gate
     *  lives in the Server, not here). */
    ServerMetricsSnapshot snapshot(std::uint64_t queue_depth,
                                   std::uint64_t queue_capacity) const;

    /** Raw per-endpoint histogram — bucket data for Prometheus. */
    const engine::LatencyHistogram &histogram(Endpoint endpoint) const
    {
        return latency_[static_cast<std::size_t>(endpoint)];
    }

    /** Render @p snap as aligned text tables (the /metrics body). */
    static std::string render(const ServerMetricsSnapshot &snap);

  private:
    std::atomic<std::uint64_t> connectionsAccepted_{0};
    std::atomic<std::uint64_t> connectionsRejected_{0};
    std::atomic<std::uint64_t> connectionsActive_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> responses2xx_{0};
    std::atomic<std::uint64_t> responses4xx_{0};
    std::atomic<std::uint64_t> responses5xx_{0};
    std::atomic<std::uint64_t> shed503_{0};
    std::atomic<std::uint64_t> timeouts504_{0};
    std::atomic<std::uint64_t> malformed400_{0};
    std::atomic<std::uint64_t> staleServed_{0};
    std::atomic<std::uint64_t> watchdogTrips_{0};
    std::atomic<std::uint64_t> breakerFastFail_{0};
    std::atomic<std::uint64_t> shedInteractive_{0};
    std::atomic<std::uint64_t> shedBulk_{0};
    std::atomic<std::uint64_t> deadlineExpired_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::uint64_t> deadlineMisses_{0};
    std::atomic<std::uint64_t> drainSheds_{0};
    std::atomic<std::uint64_t> wireJson_{0};
    std::atomic<std::uint64_t> wireBinary_{0};
    std::array<std::atomic<std::uint64_t>, kGenFamilySlots>
        genRegistrations_{};
    std::atomic<bool> draining_{false};
    std::array<engine::LatencyHistogram,
               static_cast<std::size_t>(Endpoint::Count_)>
        latency_;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_SERVER_METRICS_H
