#include "src/server/suite_service.h"

#include <cctype>
#include <sstream>

#include "src/engine/manifest.h"
#include "src/gen/registry.h"
#include "src/server/api.h"
#include "src/server/json.h"
#include "src/server/wire_json.h"
#include "src/util/error.h"
#include "src/util/log.h"
#include "src/wire/wire.h"

namespace hiermeans {
namespace server {

static_assert(kGenFamilySlots == gen::kGenMetricSlots,
              "server metric slots must track gen::kGenMetricSlots");

namespace {

/** A `suite=<name>[@version]` reference found in a request body. */
struct SuiteRef
{
    bool present = false;
    std::string name;
    std::uint32_t version = 0; ///< 0 = newest.
    std::size_t line = 0;      ///< `line=<n>`, 1-based; 0 = all.
    std::string extras;        ///< leftover tokens, space-joined.
    std::string error;         ///< set when the reference is bad.
};

/**
 * Scan @p body for a `suite=` reference. The body is treated as one
 * token stream (a suite-referencing request is a single logical
 * line); `suite=` and `line=` tokens are consumed, everything else
 * becomes override tokens appended after the stored manifest text —
 * the CommandLine last-wins rule turns them into overrides.
 */
SuiteRef
parseSuiteReference(const std::string &body)
{
    SuiteRef ref;
    for (const std::string &line : manifestLogicalLines(body)) {
        std::istringstream tokens(line);
        std::string token;
        while (tokens >> token) {
            if (token.rfind("suite=", 0) == 0) {
                if (ref.present) {
                    ref.error = "multiple suite= references";
                    return ref;
                }
                ref.present = true;
                std::string spec = token.substr(6);
                const std::size_t at = spec.find('@');
                if (at != std::string::npos) {
                    const std::string digits = spec.substr(at + 1);
                    try {
                        ref.version = static_cast<std::uint32_t>(
                            std::stoul(digits));
                    } catch (const std::exception &) {
                        ref.error = "bad suite version `" + digits + "`";
                        return ref;
                    }
                    spec.resize(at);
                }
                ref.name = spec;
                if (ref.name.empty()) {
                    ref.error = "empty suite name";
                    return ref;
                }
            } else if (token.rfind("line=", 0) == 0) {
                const std::string digits = token.substr(5);
                try {
                    ref.line = std::stoul(digits);
                } catch (const std::exception &) {
                    ref.error = "bad line number `" + digits + "`";
                    return ref;
                }
                if (ref.line == 0) {
                    ref.error = "line= is 1-based";
                    return ref;
                }
            } else {
                if (!ref.extras.empty())
                    ref.extras += ' ';
                ref.extras += token;
            }
        }
    }
    return ref;
}

} // namespace

std::vector<std::string>
manifestLogicalLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string raw;
    while (std::getline(in, raw)) {
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        std::istringstream tokens(raw);
        std::string token, joined;
        while (tokens >> token) {
            if (!joined.empty())
                joined += ' ';
            joined += token;
        }
        if (!joined.empty())
            lines.push_back(std::move(joined));
    }
    return lines;
}

SuiteService::SuiteService(ServerMetrics &metrics) : metrics_(metrics) {}

store::RecoveryInfo
SuiteService::open(const store::StateStore::Config &config)
{
    if (config.dataDir.empty() || store_ != nullptr)
        return recovery_;
    store_ = std::make_unique<store::StateStore>(config);
    recovery_ = store_->open();
    HM_LOG(Info) << "store: " << config.dataDir << " recovered ("
                 << store::recoveryOutcomeName(recovery_.outcome)
                 << "), seq=" << recovery_.lastSequence
                 << ", snapshot records=" << recovery_.snapshotRecords
                 << ", wal applied=" << recovery_.walApplied;
    return recovery_;
}

void
SuiteService::close()
{
    if (store_ != nullptr)
        store_->close(); // final snapshot + WAL compaction.
}

std::size_t
SuiteService::warmStart(engine::ScoringEngine &engine)
{
    if (store_ == nullptr)
        return 0;
    std::size_t warmed = 0;
    for (store::ScoreRecord &record : store_->scoreRecords()) {
        if (record.report.rows.empty())
            continue; // history-only: nothing servable.
        engine::CachedResult cached;
        cached.report = std::move(record.report);
        cached.recommendedK =
            static_cast<std::size_t>(record.recommendedK);
        engine.cache().put(record.fingerprint, std::move(cached));
        ++warmed;
    }
    return warmed;
}

ClusterRoute
SuiteService::routeFor(const RequestContext &ctx,
                       const std::string &suite, bool isWrite) const
{
    static const std::string kEmpty;
    if (cluster_ == nullptr || suite.empty() ||
        !ctx.http.header("x-hiermeans-forwarded", kEmpty).empty())
        return ClusterRoute{}; // Local.
    return cluster_->routeSuite(suite, isWrite);
}

std::optional<store::SuiteVersion>
SuiteService::resolveAnywhere(const std::string &name,
                              std::uint32_t version) const
{
    if (store_ != nullptr) {
        std::optional<store::SuiteVersion> local =
            store_->resolveSuite(name, version);
        if (local.has_value())
            return local;
    }
    if (cluster_ != nullptr)
        return cluster_->replicaSuite(name, version);
    return std::nullopt;
}

SuiteService::Expansion
SuiteService::expandScore(const RequestContext &ctx,
                          const std::string &body)
{
    // A `suite=` reference expands to the stored manifest text before
    // any parsing; appended override tokens win by the CommandLine
    // last-wins rule.
    Expansion out;
    out.text = body;
    const SuiteRef ref = parseSuiteReference(out.text);
    if (!ref.present)
        return out;
    if (!ref.error.empty()) {
        metrics_.onMalformed();
        out.response = errorResponse(ApiError::BadRequest, ref.error,
                                     ctx.traceId);
        return out;
    }
    const ClusterRoute route = routeFor(ctx, ref.name, true);
    if (route.action != ClusterRoute::Action::Local) {
        out.response = cluster_->relay(ctx, route);
        return out;
    }
    if (store_ == nullptr) {
        out.response = errorResponse(
            ApiError::StoreDisabled,
            "suite references need a durable store "
            "(start hmserved with --data-dir)",
            ctx.traceId);
        return out;
    }
    const std::optional<store::SuiteVersion> stored =
        resolveAnywhere(ref.name, ref.version);
    if (!stored.has_value()) {
        out.response = errorResponse(
            ApiError::SuiteUnknown,
            "no registered suite `" + ref.name + "`" +
                (ref.version != 0
                     ? " at version " + std::to_string(ref.version)
                     : ""),
            ctx.traceId);
        return out;
    }
    out.suite = ref.name;
    out.suiteVersion = stored->version;
    const std::vector<std::string> lines =
        manifestLogicalLines(stored->manifest);
    if (ref.line > lines.size()) {
        metrics_.onMalformed();
        out.response = errorResponse(
            ApiError::BadRequest,
            "suite `" + ref.name + "` has " +
                std::to_string(lines.size()) + " lines; line=" +
                std::to_string(ref.line) + " is out of range",
            ctx.traceId);
        return out;
    }
    if (ref.line == 0 && lines.size() != 1) {
        metrics_.onMalformed();
        out.response = errorResponse(
            ApiError::BadRequest,
            "suite `" + ref.name + "` has " +
                std::to_string(lines.size()) +
                " lines; pick one with line=<n> or POST the "
                "suite to /v1/batch",
            ctx.traceId);
        return out;
    }
    out.text = lines[ref.line == 0 ? 0 : ref.line - 1];
    if (!ref.extras.empty())
        out.text += " " + ref.extras;
    return out;
}

SuiteService::Expansion
SuiteService::expandBatch(const RequestContext &ctx,
                          const std::string &body)
{
    // `suite=` expands to the whole stored document (or one line of
    // it with line=<n>), override tokens appended to every line.
    Expansion out;
    out.text = body;
    const SuiteRef ref = parseSuiteReference(out.text);
    if (!ref.present)
        return out;
    if (!ref.error.empty()) {
        metrics_.onMalformed();
        out.response = errorResponse(ApiError::BadRequest, ref.error,
                                     ctx.traceId);
        return out;
    }
    const ClusterRoute route = routeFor(ctx, ref.name, true);
    if (route.action != ClusterRoute::Action::Local) {
        out.response = cluster_->relay(ctx, route);
        return out;
    }
    if (store_ == nullptr) {
        out.response = errorResponse(
            ApiError::StoreDisabled,
            "suite references need a durable store "
            "(start hmserved with --data-dir)",
            ctx.traceId);
        return out;
    }
    const std::optional<store::SuiteVersion> stored =
        resolveAnywhere(ref.name, ref.version);
    if (!stored.has_value()) {
        out.response = errorResponse(
            ApiError::SuiteUnknown,
            "no registered suite `" + ref.name + "`" +
                (ref.version != 0
                     ? " at version " + std::to_string(ref.version)
                     : ""),
            ctx.traceId);
        return out;
    }
    out.suite = ref.name;
    out.suiteVersion = stored->version;
    std::vector<std::string> stored_lines =
        manifestLogicalLines(stored->manifest);
    if (ref.line > stored_lines.size()) {
        metrics_.onMalformed();
        out.response = errorResponse(
            ApiError::BadRequest,
            "suite `" + ref.name + "` has " +
                std::to_string(stored_lines.size()) +
                " lines; line=" + std::to_string(ref.line) +
                " is out of range",
            ctx.traceId);
        return out;
    }
    if (ref.line != 0)
        stored_lines = {stored_lines[ref.line - 1]};
    out.text.clear();
    for (const std::string &stored_line : stored_lines) {
        out.text += stored_line;
        if (!ref.extras.empty())
            out.text += " " + ref.extras;
        out.text += "\n";
    }
    return out;
}

HttpResponse
SuiteService::handleSuiteRegister(const RequestContext &ctx)
{
    const std::string name = ctx.http.queryParam("name", "");
    if (name.empty()) {
        metrics_.onMalformed();
        return errorResponse(ApiError::BadRequest,
                             "missing `name` query parameter",
                             ctx.traceId);
    }
    for (const char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '.' || c == '_' || c == '-';
        if (!ok) {
            metrics_.onMalformed();
            return errorResponse(
                ApiError::BadRequest,
                "suite names are [A-Za-z0-9._-]+, got `" + name + "`",
                ctx.traceId);
        }
    }
    const ClusterRoute route = routeFor(ctx, name, true);
    if (route.action != ClusterRoute::Action::Local)
        return cluster_->relay(ctx, route);
    if (store_ == nullptr)
        return errorResponse(ApiError::StoreDisabled,
                             "no durable store (start hmserved with "
                             "--data-dir)",
                             ctx.traceId);

    // A binary body is a BatchManifest frame; decode it to manifest
    // text so registration is codec-agnostic from here down.
    std::string manifest = ctx.http.body;
    if (ctx.binaryBody) {
        try {
            manifest = wire::BatchView(ctx.http.body).manifestText();
        } catch (const Error &e) {
            metrics_.onMalformed();
            return errorResponse(ApiError::BadRequest, e.what(),
                                 ctx.traceId);
        }
    }

    // Syntax-check the manifest now so junk is never registered;
    // semantic problems (missing CSVs) stay scoring-time concerns.
    std::vector<engine::ManifestLine> lines;
    try {
        lines = engine::parseManifest(manifest);
    } catch (const Error &e) {
        metrics_.onMalformed();
        return errorResponse(ApiError::InvalidManifest, e.what(),
                             ctx.traceId);
    }
    if (lines.empty()) {
        metrics_.onMalformed();
        return errorResponse(ApiError::InvalidManifest,
                             "manifest has no requests", ctx.traceId);
    }

    // `version=` pins the registration: an existing version with an
    // identical payload is an idempotent no-op, a differing payload
    // is refused 409 (versions are immutable), a gap past latest+1
    // is a 400. Absent (or 0) keeps append-next semantics.
    std::uint64_t requested_version = 0;
    const std::string version_param = ctx.http.queryParam("version", "");
    if (!version_param.empty()) {
        std::size_t consumed = 0;
        unsigned long long parsed = 0;
        try {
            parsed = std::stoull(version_param, &consumed);
        } catch (const std::exception &) {
            consumed = 0;
        }
        if (consumed != version_param.size()) {
            metrics_.onMalformed();
            return errorResponse(ApiError::BadRequest,
                                 "version must be a non-negative "
                                 "integer, got `" +
                                     version_param + "`",
                                 ctx.traceId);
        }
        requested_version = parsed;
    }

    try {
        const store::StateStore::RegisterOutcome outcome =
            store_->registerSuiteVersion(name, manifest,
                                         requested_version);
        if (outcome.conflict) {
            metrics_.onMalformed();
            return errorResponse(
                ApiError::SuiteVersionConflict,
                "suite `" + name + "` version " +
                    std::to_string(requested_version) +
                    " already exists with a different manifest; "
                    "versions are immutable — register the next "
                    "version instead",
                ctx.traceId);
        }
        if (outcome.gap) {
            metrics_.onMalformed();
            return errorResponse(
                ApiError::BadRequest,
                "suite `" + name + "` version " +
                    std::to_string(requested_version) +
                    " would leave a gap (latest is " +
                    std::to_string(outcome.version.version) + ")",
                ctx.traceId);
        }
        if (outcome.created && cluster_ != nullptr)
            cluster_->afterWrite(
                ctx.hasDeadline() ? ctx.remainingMillis() : 0.0);
        // Per-family registration counter; unknown family names land
        // in the bounded "other" slot.
        const std::string generator =
            ctx.http.queryParam("generator", "");
        if (outcome.created && !generator.empty())
            metrics_.onGenRegistered(gen::familyMetricSlot(generator));
        std::ostringstream data;
        data << "{\"name\":" << json::quote(name)
             << ",\"version\":" << outcome.version.version
             << ",\"sequence\":" << outcome.version.sequence
             << ",\"lines\":" << lines.size() << ",\"created\":"
             << (outcome.created ? "true" : "false") << "}";
        return okResponse(data.str(), ctx.traceId);
    } catch (const Error &e) {
        // The WAL refused: the registration is not durable, so it is
        // not acknowledged.
        return errorResponse(ApiError::Internal, e.what(), ctx.traceId);
    }
}

HttpResponse
SuiteService::handleSuiteList(const RequestContext &ctx)
{
    if (store_ == nullptr)
        return errorResponse(ApiError::StoreDisabled,
                             "no durable store (start hmserved with "
                             "--data-dir)",
                             ctx.traceId);
    std::size_t limit = 0;
    if (auto bad = parseListLimit(ctx, kMaxListLimit, limit))
        return std::move(*bad);
    std::vector<store::Suite> all = store_->suites();
    const std::size_t total = all.size();
    if (all.size() > limit)
        all.resize(limit);
    std::ostringstream data;
    data << "{\"count\":" << total << ",\"suites\":[";
    bool first_suite = true;
    for (const store::Suite &suite : all) {
        if (!first_suite)
            data << ",";
        first_suite = false;
        data << "{\"name\":" << json::quote(suite.name)
             << ",\"latest\":" << suite.versions.back().version
             << ",\"versions\":[";
        for (std::size_t i = 0; i < suite.versions.size(); ++i) {
            const store::SuiteVersion &version = suite.versions[i];
            if (i > 0)
                data << ",";
            data << "{\"version\":" << version.version
                 << ",\"sequence\":" << version.sequence
                 << ",\"lines\":"
                 << manifestLogicalLines(version.manifest).size()
                 << "}";
        }
        data << "]}";
    }
    data << "]}";
    return okResponse(data.str(), ctx.traceId);
}

HttpResponse
SuiteService::handleHistory(const RequestContext &ctx)
{
    if (store_ == nullptr)
        return errorResponse(ApiError::StoreDisabled,
                             "no durable store (start hmserved with "
                             "--data-dir)",
                             ctx.traceId);
    // `suite=` selects a registered suite's ring; omitted (or empty)
    // reads the ad-hoc ring of non-suite scores.
    const std::string suite = ctx.http.queryParam("suite", "");
    const ClusterRoute route = routeFor(ctx, suite, false);
    if (route.action != ClusterRoute::Action::Local)
        return cluster_->relay(ctx, route);
    std::vector<store::HistoryEntry> entries = store_->history(suite);
    if (!suite.empty()) {
        const bool known_locally =
            store_->resolveSuite(suite).has_value();
        const bool known_replica =
            cluster_ != nullptr &&
            cluster_->replicaSuite(suite, 0).has_value();
        if (!known_locally && !known_replica && entries.empty())
            return errorResponse(ApiError::SuiteUnknown,
                                 "no registered suite `" + suite + "`",
                                 ctx.traceId);
        if (known_replica) {
            // A promoted node answers for its dead leader: the
            // leader's acknowledged history (its sequence space, from
            // the replica mirror) first, our post-promotion entries
            // after.
            std::vector<store::HistoryEntry> merged =
                cluster_->replicaHistory(suite);
            merged.insert(merged.end(), entries.begin(), entries.end());
            entries = std::move(merged);
        }
    }
    // `?limit=` keeps the newest N entries (shared bound with
    // /v1/traces and /v1/drift).
    std::size_t limit = 0;
    if (auto bad = parseListLimit(ctx, kMaxListLimit, limit))
        return std::move(*bad);
    if (entries.size() > limit)
        entries.erase(entries.begin(),
                      entries.end() - static_cast<std::ptrdiff_t>(limit));

    std::ostringstream data;
    data << "{\"suite\":" << json::quote(suite)
         << ",\"count\":" << entries.size() << ",\"entries\":[";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const store::HistoryEntry &entry = entries[i];
        if (i > 0)
            data << ",";
        data << "{\"sequence\":" << entry.sequence
             << ",\"id\":" << json::quote(entry.id)
             << ",\"suite_version\":" << entry.suiteVersion
             << ",\"fingerprint\":\"" << std::hex << entry.fingerprint
             << std::dec << "\""
             << ",\"recommended_k\":" << entry.recommendedK
             << ",\"ratio\":" << json::number(entry.ratio)
             << ",\"plain_ratio\":" << json::number(entry.plainRatio)
             << ",\"wall_ms\":" << json::number(entry.wallMillis)
             << "}";
    }
    data << "]}";
    return okResponse(data.str(), ctx.traceId);
}

HttpResponse
SuiteService::handleSnapshot(const RequestContext &ctx)
{
    if (store_ == nullptr)
        return errorResponse(ApiError::StoreDisabled,
                             "no durable store (start hmserved with "
                             "--data-dir)",
                             ctx.traceId);
    try {
        const std::uint64_t sequence = store_->snapshotNow();
        std::ostringstream data;
        data << "{\"sequence\":" << sequence << "}";
        return okResponse(data.str(), ctx.traceId);
    } catch (const Error &e) {
        return errorResponse(ApiError::Internal, e.what(), ctx.traceId);
    }
}

HttpResponse
SuiteService::handleObserve(const RequestContext &ctx,
                            const std::string &suite)
{
    if (suite.empty()) {
        metrics_.onMalformed();
        return errorResponse(ApiError::BadRequest,
                             "observe needs a suite name in the path",
                             ctx.traceId);
    }
    const ClusterRoute route = routeFor(ctx, suite, true);
    if (route.action != ClusterRoute::Action::Local)
        return cluster_->relay(ctx, route);
    if (store_ == nullptr)
        return errorResponse(ApiError::StoreDisabled,
                             "no durable store (start hmserved with "
                             "--data-dir)",
                             ctx.traceId);
    const std::optional<store::SuiteVersion> stored =
        resolveAnywhere(suite, 0);
    if (!stored.has_value())
        return errorResponse(ApiError::SuiteUnknown,
                             "no registered suite `" + suite + "`",
                             ctx.traceId);

    // Decode the intake from whichever wire format carried it; the
    // rest of the handler consumes the struct, not the codec.
    wire::Observation observation;
    if (ctx.binaryBody) {
        try {
            observation = wire::decodeObservation(ctx.http.body);
        } catch (const Error &e) {
            metrics_.onMalformed();
            return errorResponse(ApiError::BadRequest, e.what(),
                                 ctx.traceId);
        }
    } else if (!observationFromJson(ctx.http.body, observation)) {
        metrics_.onMalformed();
        return errorResponse(
            ApiError::BadRequest,
            "observe body needs a positive numeric `ratio`",
            ctx.traceId);
    }
    if (!(observation.ratio > 0.0)) {
        metrics_.onMalformed();
        return errorResponse(
            ApiError::BadRequest,
            "observe body needs a positive numeric `ratio`",
            ctx.traceId);
    }
    const double plain_ratio = observation.hasPlain
                                   ? observation.plainRatio
                                   : observation.ratio;
    const std::string id =
        observation.id.empty() ? "observe" : observation.id;

    store::ScoreRecord record; // empty report = history-only entry.
    record.suite = suite;
    record.suiteVersion = stored->version;
    record.id = id;
    record.fingerprint = store::crc32(
        suite + "\n" + id + "\n" + json::number(observation.ratio) +
        "\n" + json::number(plain_ratio));
    record.ratio = observation.ratio;
    record.plainRatio = plain_ratio;
    if (!store_->recordScore(std::move(record)))
        return errorResponse(ApiError::Internal,
                             "observation not persisted (WAL append "
                             "failed)",
                             ctx.traceId);
    if (cluster_ != nullptr)
        cluster_->afterWrite(
            ctx.hasDeadline() ? ctx.remainingMillis() : 0.0);

    const std::vector<store::HistoryEntry> entries =
        store_->history(suite);
    std::ostringstream data;
    data << "{\"suite\":" << json::quote(suite)
         << ",\"sequence\":" << store_->lastSequence()
         << ",\"ratio\":" << json::number(observation.ratio)
         << ",\"plain_ratio\":" << json::number(plain_ratio)
         << ",\"history\":" << entries.size() << "}";
    return okResponse(data.str(), ctx.traceId);
}

void
SuiteService::persistScore(const engine::ScoreResult &result,
                           const std::string &suite,
                           std::uint32_t suiteVersion,
                           double budget_millis)
{
    // Only pipeline executions are recorded: a cache/dedupe answer is
    // a replay of a score already in the history, and re-appending it
    // would duplicate ring entries on every retry.
    if (store_ == nullptr || !result.ok || result.cacheHit ||
        result.deduped)
        return;
    store::ScoreRecord record;
    record.suite = suite;
    record.suiteVersion = suiteVersion;
    record.id = result.id;
    record.fingerprint = result.fingerprint;
    record.recommendedK = result.recommendedK;
    record.ratio =
        result.report.rows[result.report.recommendedRow()].ratio;
    record.plainRatio = result.report.plainRatio;
    record.wallMillis = result.wallMillis;
    record.report = result.report;
    if (store_->recordScore(std::move(record)) && cluster_ != nullptr)
        cluster_->afterWrite(budget_millis);
}

} // namespace server
} // namespace hiermeans
