/**
 * @file
 * The suite-service layer, split out of Server: everything between
 * the HTTP handlers and the durable store.
 *
 * Owns the StateStore lifecycle (mount, recovery, warm start, final
 * snapshot), the `suite=<name>[@version]` reference expansion used
 * by /v1/score and /v1/batch, the suite-registry and history
 * endpoints, and score persistence. The scoring handlers stay in
 * Server (they orchestrate admission/breaker/engine); they call in
 * here for anything suite- or store-shaped.
 *
 * Cluster mode: when ClusterHooks are attached (hmserved
 * --mesh-config), every suite-affine operation first consults
 * routeSuite() — a suite owned by another node is proxied or
 * 307-redirected there instead of served locally; local durable
 * writes are followed by afterWrite() (replication shipping); and
 * suite reads fall back to replica images, which is how a promoted
 * follower answers for a dead leader's shard. Requests carrying the
 * X-Hiermeans-Forwarded loop guard always serve locally. Without
 * hooks every decision degenerates to "serve it here" — the
 * single-node behavior, bit-for-bit.
 */

#ifndef HIERMEANS_SERVER_SUITE_SERVICE_H
#define HIERMEANS_SERVER_SUITE_SERVICE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/server/cluster.h"
#include "src/server/http.h"
#include "src/server/router.h"
#include "src/server/server_metrics.h"
#include "src/store/store.h"

namespace hiermeans {
namespace server {

/** Logical manifest lines of @p text: comments stripped, blanks
 *  skipped, surrounding whitespace trimmed. */
std::vector<std::string> manifestLogicalLines(const std::string &text);

/** Store-backed suite registry, reference expansion and history. */
class SuiteService
{
  public:
    explicit SuiteService(ServerMetrics &metrics);

    /** Mount + recover the durable store; a no-op returning a
     *  default RecoveryInfo when config.dataDir is empty. */
    store::RecoveryInfo open(const store::StateStore::Config &config);

    /** Final snapshot + WAL close; throws on snapshot failure. */
    void close();

    /** The durable store; nullptr when persistence is off. */
    store::StateStore *store() { return store_.get(); }
    const store::StateStore *store() const { return store_.get(); }

    const store::RecoveryInfo &recovery() const { return recovery_; }

    /** Attach (or detach, nullptr) the mesh integration. */
    void setCluster(ClusterHooks *cluster) { cluster_ = cluster; }
    ClusterHooks *cluster() const { return cluster_; }

    /** Load every persisted full report into @p engine's result
     *  cache (boot-time warm start). Returns entries repopulated. */
    std::size_t warmStart(engine::ScoringEngine &engine);

    /**
     * A request body after suite-reference expansion. When
     * `response` is set the caller answers it verbatim (a 4xx, or a
     * relayed/redirected answer from another mesh node) and ignores
     * the rest; otherwise `text` is the manifest text to parse and
     * suite/suiteVersion name what was referenced ("" / 0 = ad-hoc).
     */
    struct Expansion
    {
        std::optional<HttpResponse> response;
        std::string text;
        std::string suite;
        std::uint32_t suiteVersion = 0;
    };

    /** Expand a /v1/score body (single manifest line). @p body is
     *  the request body already decoded to manifest text — the
     *  handlers settle the wire format before expansion, so this
     *  layer is codec-agnostic. */
    Expansion expandScore(const RequestContext &ctx,
                          const std::string &body);

    /** Expand a /v1/batch body (whole document, decoded text). */
    Expansion expandBatch(const RequestContext &ctx,
                          const std::string &body);

    HttpResponse handleSuiteRegister(const RequestContext &ctx);
    HttpResponse handleSuiteList(const RequestContext &ctx);
    HttpResponse handleHistory(const RequestContext &ctx);
    HttpResponse handleSnapshot(const RequestContext &ctx);

    /**
     * POST /v1/suites/<name>/observe: append one externally-measured
     * observation (`{"ratio":r[,"plain_ratio":p][,"id":"..."]}`) to
     * @p suite's history ring without re-registering or re-scoring —
     * the streaming feed the drift monitor folds in. Unlike score
     * persistence this write IS the request, so a WAL failure answers
     * 500 instead of being swallowed.
     */
    HttpResponse handleObserve(const RequestContext &ctx,
                               const std::string &suite);

    /** The routing decision for @p suite (public face of routeFor,
     *  for handlers living outside this service). */
    ClusterRoute route(const RequestContext &ctx,
                       const std::string &suite, bool isWrite) const
    {
        return routeFor(ctx, suite, isWrite);
    }

    /** Persist one pipeline-executed score (then replicate, in
     *  cluster mode); no-op without a store. WAL failures are
     *  counted by the store, never propagated. @p budget_millis is
     *  the client's remaining deadline budget (0 = none), forwarded
     *  so replication ack waits stay inside it. */
    void persistScore(const engine::ScoreResult &result,
                      const std::string &suite,
                      std::uint32_t suiteVersion,
                      double budget_millis = 0.0);

  private:
    /** The routing decision for @p suite, honoring the loop guard
     *  (a forwarded request always routes Local). Local when no
     *  cluster hooks are attached. */
    ClusterRoute routeFor(const RequestContext &ctx,
                          const std::string &suite, bool isWrite) const;

    /** Resolve @p name from the local store, then (cluster mode)
     *  from replica images. */
    std::optional<store::SuiteVersion>
    resolveAnywhere(const std::string &name, std::uint32_t version) const;

    ServerMetrics &metrics_;
    std::unique_ptr<store::StateStore> store_;
    store::RecoveryInfo recovery_;
    ClusterHooks *cluster_ = nullptr;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_SUITE_SERVICE_H
