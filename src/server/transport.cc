#include "src/server/transport.h"

#include <chrono>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "src/obs/trace.h"
#include "src/server/api.h"
#include "src/util/error.h"
#include "src/util/fault.h"
#include "src/util/log.h"

namespace hiermeans {
namespace server {

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

/** Request media types any endpoint can consume ("" = no header,
 *  the parser's default). Anything else is answered 415 before
 *  dispatch. */
bool
supportedMediaType(const std::string &content_type)
{
    const std::string type = wire::mediaType(content_type);
    return type.empty() || type == "text/plain" ||
           type == "application/json" ||
           type == "application/x-ndjson" ||
           type == "application/octet-stream" ||
           // curl's default for --data-binary; the manifest grammar
           // is key=value tokens, so honour the claim as text.
           type == "application/x-www-form-urlencoded" ||
           type == wire::kMediaType;
}

} // namespace

HttpTransport::HttpTransport(Config config, const Router &router,
                             ServerMetrics &metrics)
    : config_(config), router_(router), metrics_(metrics)
{}

HttpTransport::~HttpTransport() { stop(); }

void
HttpTransport::start()
{
    HM_REQUIRE(!running_.load() && !stopping_.load(),
               "HttpTransport::start: already started");
    net::ignoreSigpipe();
    listener_ = net::listenTcp(config_.port);
    port_ = net::localPort(listener_.fd());
    running_.store(true);

    acceptor_ = std::thread([this]() { acceptLoop(); });
    workers_.reserve(config_.connectionThreads);
    for (std::size_t i = 0; i < config_.connectionThreads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

void
HttpTransport::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    pendingCv_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    listener_.close();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
    running_.store(false);
}

void
HttpTransport::acceptLoop()
{
    // Accepted connections beyond this bound get an immediate 503 —
    // a closed front door beats an unbounded queue of unserved fds.
    const std::size_t pending_limit = config_.connectionThreads * 2 + 16;

    while (!stopping_.load()) {
        if (!net::waitReadable(listener_.fd(), 100))
            continue; // timeout/EINTR: re-check the stop flag.
        net::Socket accepted = net::acceptConnection(listener_.fd());
        if (!accepted.valid())
            continue;
        metrics_.onConnectionAccepted();

        std::unique_lock<std::mutex> lock(pendingMutex_);
        if (pending_.size() >= pending_limit) {
            lock.unlock();
            metrics_.onConnectionRejected();
            HttpResponse response = errorResponse(
                ApiError::Overloaded,
                "server overloaded, admission queue full", "");
            response.set("Retry-After", "1");
            response.closeConnection = true;
            try {
                net::writeAll(accepted.fd(), response.serialize());
            } catch (const Error &) {
                // The rejected peer vanished first; nothing to do.
            }
            continue;
        }
        pending_.push_back(std::move(accepted));
        lock.unlock();
        pendingCv_.notify_one();
    }
}

void
HttpTransport::workerLoop()
{
    for (;;) {
        net::Socket socket;
        {
            std::unique_lock<std::mutex> lock(pendingMutex_);
            pendingCv_.wait(lock, [this]() {
                return stopping_.load() || !pending_.empty();
            });
            if (pending_.empty()) {
                if (stopping_.load())
                    return;
                continue;
            }
            socket = std::move(pending_.front());
            pending_.pop_front();
        }
        try {
            serveConnection(std::move(socket));
        } catch (const std::exception &) {
            // Peer I/O failures close that connection; the worker and
            // every other connection are unaffected.
            metrics_.onConnectionClosed();
        }
    }
}

void
HttpTransport::serveConnection(net::Socket socket)
{
    metrics_.onConnectionOpened();
    HttpRequestParser::Limits limits;
    limits.maxBodyBytes = config_.maxBodyBytes;
    HttpRequestParser parser(limits);

    // Once shutdown begins, a partially-received request gets this
    // long to finish arriving before the connection is closed.
    constexpr double kDrainWindowMillis = 5000.0;
    const auto serve_start = std::chrono::steady_clock::now();

    char buffer[8192];
    bool close = false;
    while (!close) {
        if (stopping_.load()) {
            if (!parser.midRequest())
                break;
            if (millisSince(serve_start) > kDrainWindowMillis)
                break;
        }
        if (!net::waitReadable(socket.fd(), 100))
            continue;
        const std::size_t n =
            net::readSome(socket.fd(), buffer, sizeof(buffer));
        if (n == 0)
            break; // EOF.

        HttpRequestParser::State state =
            parser.feed(std::string_view(buffer, n));
        while (state == HttpRequestParser::State::Ready) {
            const HttpRequest &request = parser.request();
            metrics_.onRequest();
            const auto started = std::chrono::steady_clock::now();

            // Trace identity: accept the caller's ID when valid;
            // otherwise generate one iff tracing is armed. Disarmed
            // and header-less requests stay on the one-atomic-load
            // fast path with an empty traceId.
            static const std::string kEmpty;
            RequestContext ctx{request, "", nullptr, obs::kNoParent};
            const std::string &supplied =
                request.header("x-hiermeans-trace", kEmpty);
            if (!supplied.empty() && obs::validTraceId(supplied))
                ctx.traceId = supplied;
            // Remaining client budget, if the caller sent one. A
            // malformed value is ignored (no deadline) rather than
            // rejected — the header is advisory, not part of the body
            // contract.
            const std::string &budget =
                request.header("x-hiermeans-deadline", kEmpty);
            if (!budget.empty()) {
                char *end = nullptr;
                const double millis = std::strtod(budget.c_str(), &end);
                if (end != nullptr && *end == '\0' && millis > 0.0)
                    ctx.deadlineMillis = millis;
            }
            if (obs::tracingEnabled()) {
                if (ctx.traceId.empty())
                    ctx.traceId = obs::generateTraceId();
                ctx.trace = obs::Tracer::instance().start(ctx.traceId);
                ctx.rootSpan = ctx.trace->begin("server.request");
            }
            // Content negotiation, settled before dispatch so no
            // handler ever answers a bad Content-Type with a bare
            // 400: unsupported request types get the 415 envelope,
            // unsatisfiable Accepts the 406 envelope, and the
            // negotiated formats ride in the context.
            std::optional<HttpResponse> refused;
            const std::string &content_type =
                request.header("content-type", kEmpty);
            ctx.binaryBody = wire::isWireMediaType(content_type);
            if (!request.body.empty() &&
                !supportedMediaType(content_type)) {
                refused = errorResponse(
                    ApiError::UnsupportedMediaType,
                    "unsupported Content-Type `" + content_type +
                        "` (supported: text/plain, application/json, "
                        "application/x-ndjson, "
                        "application/x-www-form-urlencoded, "
                        "application/octet-stream, " +
                        std::string(wire::kMediaType) + ")",
                    ctx.traceId);
            } else if (ctx.binaryBody &&
                       HM_FAULT("server.wire.reject")) {
                // Deterministic negotiation chaos: pretend this
                // build does not speak the binary format, so client
                // JSON fallback is testable against a real server.
                refused = errorResponse(
                    ApiError::UnsupportedMediaType,
                    "injected: binary wire format refused",
                    ctx.traceId);
            }
            const wire::Negotiated negotiated = wire::negotiateAccept(
                request.header("accept", kEmpty));
            if (!refused && !negotiated.acceptable)
                refused = errorResponse(
                    ApiError::NotAcceptable,
                    "no offered response format satisfies Accept `" +
                        request.header("accept", kEmpty) +
                        "` (offered: application/json, " +
                        std::string(wire::kMediaType) + ")",
                    ctx.traceId);
            ctx.accept = negotiated.format;
            metrics_.onWireFormat(ctx.binaryBody ||
                                  ctx.wantsBinary());

            // Handlers and the engine submit path record their spans
            // through the thread-local context.
            obs::ScopedTraceContext traceContext(ctx.trace.get(),
                                                 ctx.rootSpan);

            HttpResponse response = refused
                                        ? std::move(*refused)
                                        : router_.dispatch(ctx);
            const Endpoint endpoint = endpointFor(request.path());
            const double elapsed = millisSince(started);
            metrics_.recordLatency(endpoint, elapsed);
            metrics_.onResponse(response.status);
            if (!ctx.traceId.empty())
                response.set("X-Hiermeans-Trace", ctx.traceId);
            if (ctx.trace) {
                ctx.trace->end(ctx.rootSpan);
                obs::Tracer::instance().finish(ctx.trace);
                HM_LOG(Debug)
                    << "trace=" << ctx.traceId << " "
                    << request.method << " " << request.path() << " -> "
                    << response.status << " in " << elapsed << " ms";
            }
            if (stopping_.load() || !request.keepAlive())
                response.closeConnection = true;
            if (HM_FAULT("server.response.write"))
                throw net::NetError(net::NetError::Kind::Reset,
                                    "injected: response write reset");
            net::writeAll(socket.fd(), response.serialize());
            if (response.closeConnection) {
                close = true;
                break;
            }
            state = parser.reset(); // may surface a pipelined request.
        }
        // Reached on a malformed feed *or* when pipelined leftovers
        // turned out to be junk after the valid requests were served:
        // either way the offender gets its 400-class answer before the
        // connection closes.
        if (state == HttpRequestParser::State::Error) {
            metrics_.onRequest();
            metrics_.onMalformed();
            ApiError code = ApiError::BadRequest;
            if (parser.errorStatus() == 413)
                code = ApiError::BodyTooLarge;
            else if (parser.errorStatus() == 431)
                code = ApiError::HeadersTooLarge;
            HttpResponse response =
                errorResponse(code, parser.errorMessage(), "");
            response.closeConnection = true;
            metrics_.onResponse(response.status);
            if (HM_FAULT("server.response.write"))
                throw net::NetError(net::NetError::Kind::Reset,
                                    "injected: response write reset");
            net::writeAll(socket.fd(), response.serialize());
            break;
        }
    }
    metrics_.onConnectionClosed();
}

} // namespace server
} // namespace hiermeans
