/**
 * @file
 * The connection-serving half of the daemon, split out of Server:
 *
 *   accept loop -> pending-connection queue -> connection workers
 *        -> HttpRequestParser -> Router::dispatch -> response write
 *
 * HttpTransport owns the listener socket and every thread that
 * touches a connection; it knows nothing about scoring, suites or
 * persistence — handlers are whatever the Router dispatches to. It
 * also owns the per-request bookkeeping every handler benefits from:
 * trace identity (accept or mint the X-Hiermeans-Trace ID, open the
 * server.request root span), per-endpoint latency attribution, and
 * the malformed-request answers synthesized from parser errors.
 *
 * Shutdown contract (stop()): stop accepting, give every mid-parse
 * request a bounded drain window to finish arriving, answer
 * everything already received, then join all threads.
 */

#ifndef HIERMEANS_SERVER_TRANSPORT_H
#define HIERMEANS_SERVER_TRANSPORT_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/server/http.h"
#include "src/server/router.h"
#include "src/server/server_metrics.h"
#include "src/util/net.h"

namespace hiermeans {
namespace server {

/** Accepts, parses and answers HTTP connections for a Router. */
class HttpTransport
{
  public:
    struct Config
    {
        /** TCP port; 0 binds an ephemeral port (see port()). */
        std::uint16_t port = 8377;

        /** Connection workers: concurrent connections being served. */
        std::size_t connectionThreads = 16;

        /** Request body limit; larger bodies answer 413. */
        std::size_t maxBodyBytes = 256 * 1024;
    };

    /** Transport dispatching into @p router; both references must
     *  outlive the transport. */
    HttpTransport(Config config, const Router &router,
                  ServerMetrics &metrics);

    /** Stops and joins if still running. */
    ~HttpTransport();

    HttpTransport(const HttpTransport &) = delete;
    HttpTransport &operator=(const HttpTransport &) = delete;

    /** Bind, listen and spawn the accept loop + workers. Throws when
     *  the port cannot be bound. One-shot: start/stop once. */
    void start();

    /** Stop accepting, drain in-flight requests, join. Idempotent. */
    void stop();

    bool running() const { return running_.load(); }

    /** True once stop() has begun (handlers may consult this to
     *  close keep-alive connections early). */
    bool stopping() const { return stopping_.load(); }

    /** The bound port (resolves port 0 after start()). */
    std::uint16_t port() const { return port_; }

  private:
    void acceptLoop();
    void workerLoop();
    void serveConnection(net::Socket socket);

    Config config_;
    const Router &router_;
    ServerMetrics &metrics_;

    net::Socket listener_;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    std::mutex pendingMutex_;
    std::condition_variable pendingCv_;
    std::deque<net::Socket> pending_;

    std::thread acceptor_;
    std::vector<std::thread> workers_;
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_TRANSPORT_H
