#include "src/server/watchdog.h"

namespace hiermeans {
namespace server {

Watchdog::Watchdog(Config config) : config_(config)
{
    if (enabled())
        scanner_ = std::thread([this]() { scanLoop(); });
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (scanner_.joinable())
        scanner_.join();
}

Watchdog::Token::~Token()
{
    if (owner_ != nullptr)
        owner_->remove(id_);
}

Watchdog::Token::Token(Token &&other) noexcept
    : owner_(other.owner_), id_(other.id_),
      flag_(std::move(other.flag_))
{
    other.owner_ = nullptr;
    other.id_ = 0;
}

Watchdog::Token &
Watchdog::Token::operator=(Token &&other) noexcept
{
    if (this != &other) {
        if (owner_ != nullptr)
            owner_->remove(id_);
        owner_ = other.owner_;
        id_ = other.id_;
        flag_ = std::move(other.flag_);
        other.owner_ = nullptr;
        other.id_ = 0;
    }
    return *this;
}

Watchdog::Token
Watchdog::watch(double deadline_millis)
{
    Token token;
    if (!enabled())
        return token; // never expires.

    const double budget = deadline_millis > 0.0
                              ? deadline_millis + config_.graceMillis
                              : config_.defaultBudgetMillis;

    Entry entry;
    entry.deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(budget));
    entry.flag = std::make_shared<std::atomic<bool>>(false);

    token.owner_ = this;
    token.flag_ = entry.flag;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        token.id_ = nextId_++;
        entries_.emplace(token.id_, std::move(entry));
    }
    return token;
}

void
Watchdog::remove(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(id);
    if (it == entries_.end())
        return;
    entries_.erase(it);
    // Recount the overdue gauge on removal so an abandoned request
    // stops counting as stuck the moment its worker gives up on it.
    std::size_t overdue = 0;
    for (const auto &[entry_id, entry] : entries_) {
        (void)entry_id;
        if (entry.counted)
            ++overdue;
    }
    overdue_.store(overdue, std::memory_order_relaxed);
}

void
Watchdog::scanLoop()
{
    const auto poll = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(config_.pollMillis));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        cv_.wait_for(lock, poll, [this]() { return stopping_; });
        if (stopping_)
            return;
        const Clock::time_point now = Clock::now();
        std::size_t overdue = 0;
        for (auto &[id, entry] : entries_) {
            (void)id;
            if (now < entry.deadline)
                continue;
            entry.flag->store(true, std::memory_order_relaxed);
            if (!entry.counted) {
                entry.counted = true;
                trips_.fetch_add(1, std::memory_order_relaxed);
            }
            ++overdue;
        }
        overdue_.store(overdue, std::memory_order_relaxed);
    }
}

} // namespace server
} // namespace hiermeans
