/**
 * @file
 * A deadline watchdog for the connection workers.
 *
 * The engine's per-request timeout is cooperative: a pipeline stage
 * that wedges (or an injected `engine.stall`) never observes its
 * deadline, and a worker blocked on `future.get()` would wedge the
 * connection with it. The watchdog is the non-cooperative backstop:
 * each in-flight request registers a hard deadline, a background
 * thread marks overdue entries expired, and the waiting worker — which
 * polls its token between short waits — abandons the future and
 * answers `504` instead of hanging. The abandoned engine task keeps
 * running and resolves into a dead future; only the connection is
 * rescued.
 *
 * The watchdog also exposes how many watched requests are overdue
 * *right now*, which feeds the health monitor (stuck workers force
 * the `degraded` state).
 */

#ifndef HIERMEANS_SERVER_WATCHDOG_H
#define HIERMEANS_SERVER_WATCHDOG_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace hiermeans {
namespace server {

/** Background deadline scanner; one per Server. */
class Watchdog
{
  public:
    struct Config
    {
        /** Scan period of the background thread. */
        double pollMillis = 20.0;

        /** Hard budget for requests that carry no deadline of their
         *  own; 0 disables the watchdog (tokens never expire). */
        double defaultBudgetMillis = 30000.0;

        /** Slack added on top of a request's own deadline, so the
         *  engine's cooperative timeout gets to answer first. */
        double graceMillis = 250.0;
    };

    explicit Watchdog(Config config);
    Watchdog() : Watchdog(Config{}) {}

    /** Stops the scanner thread. */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** A watched request. Move-only; deregisters on destruction. */
    class Token
    {
      public:
        Token() = default;
        ~Token();
        Token(Token &&other) noexcept;
        Token &operator=(Token &&other) noexcept;
        Token(const Token &) = delete;
        Token &operator=(const Token &) = delete;

        /** True once the watchdog declared this request overdue. */
        bool
        expired() const
        {
            return flag_ != nullptr &&
                   flag_->load(std::memory_order_relaxed);
        }

      private:
        friend class Watchdog;
        Watchdog *owner_ = nullptr;
        std::uint64_t id_ = 0;
        std::shared_ptr<std::atomic<bool>> flag_;
    };

    /**
     * Watch the current request. @p deadline_millis is the request's
     * own deadline (its timeout-ms); the watchdog allows it plus
     * graceMillis. Pass 0 for "no deadline": the default budget
     * applies (and with a zero default budget the token never
     * expires — the watchdog is effectively off).
     */
    Token watch(double deadline_millis);

    /** Requests declared overdue, cumulatively. */
    std::uint64_t trips() const
    {
        return trips_.load(std::memory_order_relaxed);
    }

    /** Watched requests overdue right now (gauge). */
    std::size_t overdue() const
    {
        return overdue_.load(std::memory_order_relaxed);
    }

    bool enabled() const { return config_.defaultBudgetMillis > 0.0; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Entry
    {
        Clock::time_point deadline;
        std::shared_ptr<std::atomic<bool>> flag;
        bool counted = false; ///< trip already tallied.
    };

    void scanLoop();
    void remove(std::uint64_t id);

    Config config_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::uint64_t, Entry> entries_;
    std::uint64_t nextId_ = 1;
    bool stopping_ = false;
    std::atomic<std::uint64_t> trips_{0};
    std::atomic<std::size_t> overdue_{0};
    std::thread scanner_; ///< last member: joins before the rest dies.
};

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_WATCHDOG_H
