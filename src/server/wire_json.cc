#include "src/server/wire_json.h"

#include <cstdlib>
#include <sstream>

#include "src/server/json.h"
#include "src/util/error.h"

namespace hiermeans {
namespace server {

namespace {

std::uint64_t
parseHex(const std::string &text, const char *what)
{
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 16);
    HM_REQUIRE(end != nullptr && *end == '\0' && !text.empty(),
               what << ": malformed hex value `" << text << "`");
    return static_cast<std::uint64_t>(value);
}

std::uint64_t
parseU64(const std::string &text, const char *what)
{
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    HM_REQUIRE(end != nullptr && *end == '\0' && !text.empty(),
               what << ": malformed integer `" << text << "`");
    return static_cast<std::uint64_t>(value);
}

} // namespace

std::string
scoreDocumentJson(const wire::ScoreDocument &doc)
{
    std::ostringstream out;
    out << "{\"id\":" << json::quote(doc.id)
        << ",\"served_by\":" << json::quote(doc.servedBy)
        << ",\"fingerprint\":\"" << std::hex << doc.fingerprint
        << std::dec << "\""
        << ",\"recommended_k\":" << doc.recommendedK
        << ",\"ratio\":" << json::number(doc.ratio)
        << ",\"plain_ratio\":" << json::number(doc.plainRatio)
        << ",\"wall_ms\":" << json::number(doc.wallMillis)
        << ",\"rows\":[";
    for (std::size_t i = 0; i < doc.rows.size(); ++i) {
        const wire::ScoreRow &row = doc.rows[i];
        if (i > 0)
            out << ",";
        out << "{\"k\":" << row.k
            << ",\"score_a\":" << json::number(row.scoreA)
            << ",\"score_b\":" << json::number(row.scoreB)
            << ",\"ratio\":" << json::number(row.ratio) << "}";
    }
    out << "]}";
    return out.str();
}

wire::ScoreDocument
scoreDocumentFromJson(const std::string &dataJson)
{
    // Split off the rows array first: the top-level `ratio` must be
    // read from the prefix so a row's `ratio` cannot shadow it.
    const std::size_t rows_at = dataJson.find("\"rows\":[");
    HM_REQUIRE(rows_at != std::string::npos,
               "score document: missing `rows` array");
    const std::string head = dataJson.substr(0, rows_at);

    wire::ScoreDocument doc;
    const auto id = json::findString(head, "id");
    const auto served = json::findString(head, "served_by");
    const auto fingerprint = json::findString(head, "fingerprint");
    const auto recommended = json::findRawValue(head, "recommended_k");
    const auto ratio = json::findNumber(head, "ratio");
    const auto plain = json::findNumber(head, "plain_ratio");
    const auto wall = json::findNumber(head, "wall_ms");
    HM_REQUIRE(id && served && fingerprint && recommended && ratio &&
                   plain && wall,
               "score document: missing required fields");
    doc.id = *id;
    doc.servedBy = *served;
    doc.fingerprint = parseHex(*fingerprint, "score document");
    doc.recommendedK = parseU64(*recommended, "score document");
    doc.ratio = *ratio;
    doc.plainRatio = *plain;
    doc.wallMillis = *wall;

    // Rows are flat objects (no nesting), so scanning `{...}` chunks
    // up to the closing `]` is a complete parse.
    std::size_t at = rows_at + std::string("\"rows\":[").size();
    while (at < dataJson.size() && dataJson[at] != ']') {
        const std::size_t open = dataJson.find('{', at);
        HM_REQUIRE(open != std::string::npos,
                   "score document: malformed rows array");
        const std::size_t close = dataJson.find('}', open);
        HM_REQUIRE(close != std::string::npos,
                   "score document: unterminated row object");
        const std::string row_text =
            dataJson.substr(open, close - open + 1);
        const auto k = json::findRawValue(row_text, "k");
        const auto score_a = json::findNumber(row_text, "score_a");
        const auto score_b = json::findNumber(row_text, "score_b");
        const auto row_ratio = json::findNumber(row_text, "ratio");
        HM_REQUIRE(k && score_a && score_b && row_ratio,
                   "score document: row missing required fields");
        wire::ScoreRow row;
        row.k = static_cast<std::uint32_t>(parseU64(*k, "score row"));
        row.scoreA = *score_a;
        row.scoreB = *score_b;
        row.ratio = *row_ratio;
        doc.rows.push_back(row);
        at = close + 1;
        while (at < dataJson.size() &&
               (dataJson[at] == ',' || dataJson[at] == ' '))
            ++at;
    }
    return doc;
}

std::string
observationJson(const wire::Observation &obs)
{
    std::string body = "{\"ratio\":" + json::number(obs.ratio);
    if (obs.hasPlain)
        body += ",\"plain_ratio\":" + json::number(obs.plainRatio);
    if (!obs.id.empty())
        body += ",\"id\":" + json::quote(obs.id);
    body += "}";
    return body;
}

bool
observationFromJson(const std::string &body, wire::Observation &obs)
{
    const auto ratio = json::findNumber(body, "ratio");
    if (!ratio.has_value())
        return false;
    obs.ratio = *ratio;
    const auto plain = json::findNumber(body, "plain_ratio");
    obs.hasPlain = plain.has_value();
    obs.plainRatio = plain.value_or(*ratio);
    obs.id = json::findString(body, "id").value_or("");
    return true;
}

} // namespace server
} // namespace hiermeans
