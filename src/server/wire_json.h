/**
 * @file
 * The JSON face of the wire-format documents: rendering a
 * wire::ScoreDocument as the /v1 envelope's `data` value and parsing
 * one back. This is the bit-identity pivot of the content-negotiation
 * redesign — the JSON path, the binary path, the client's re-rendered
 * envelopes and `hmconvert` all funnel through scoreDocumentJson, so
 * the same manifest produces byte-identical score documents whichever
 * wire format carried them.
 *
 * Lives in the server layer (not src/wire) because it needs the
 * server's canonical JSON helpers (%.17g doubles, string escaping);
 * the wire codec stays JSON-free and below the server in the link
 * graph.
 */

#ifndef HIERMEANS_SERVER_WIRE_JSON_H
#define HIERMEANS_SERVER_WIRE_JSON_H

#include <string>

#include "src/wire/wire.h"

namespace hiermeans {
namespace server {

/** @p doc as the canonical `data` JSON object of a score answer. */
std::string scoreDocumentJson(const wire::ScoreDocument &doc);

/**
 * Parse a score `data` object (the scoreDocumentJson shape) back
 * into a document; throws InvalidArgument on a body missing the
 * required fields. Round-trips bit-identically: parsing a
 * scoreDocumentJson rendering and re-rendering reproduces the input.
 */
wire::ScoreDocument scoreDocumentFromJson(const std::string &dataJson);

/** @p obs as the observe-intake JSON body
 *  (`{"ratio":r[,"plain_ratio":p][,"id":"..."]}`). */
std::string observationJson(const wire::Observation &obs);

/**
 * Parse an observe-intake JSON body. Returns false (leaving @p obs
 * untouched) when the body has no numeric `ratio` — the caller's
 * bad-request path; range checks stay with the caller.
 */
bool observationFromJson(const std::string &body,
                         wire::Observation &obs);

} // namespace server
} // namespace hiermeans

#endif // HIERMEANS_SERVER_WIRE_JSON_H
