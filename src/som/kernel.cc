#include "src/som/kernel.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace som {

const char *
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::Gaussian:
        return "gaussian";
      case KernelKind::Bubble:
        return "bubble";
    }
    return "unknown";
}

KernelKind
parseKernelKind(const std::string &name)
{
    const std::string lower = str::toLower(name);
    if (lower == "gaussian")
        return KernelKind::Gaussian;
    if (lower == "bubble")
        return KernelKind::Bubble;
    throw InvalidArgument("unknown kernel kind `" + name + "`");
}

double
kernelValue(KernelKind kind, double grid_distance_squared, double alpha,
            double sigma)
{
    HM_REQUIRE(grid_distance_squared >= 0.0,
               "kernelValue: negative squared distance");
    HM_REQUIRE(alpha > 0.0, "kernelValue: alpha must be > 0, got "
                                << alpha);
    HM_REQUIRE(sigma > 0.0, "kernelValue: sigma must be > 0, got "
                                << sigma);
    switch (kind) {
      case KernelKind::Gaussian:
        return alpha *
               std::exp(-grid_distance_squared / (2.0 * sigma * sigma));
      case KernelKind::Bubble:
        return grid_distance_squared <= sigma * sigma ? alpha : 0.0;
    }
    throw InternalError("unhandled kernel kind");
}

double
kernelSupportRadius(KernelKind kind, double sigma, double threshold)
{
    HM_REQUIRE(sigma > 0.0, "kernelSupportRadius: sigma must be > 0");
    HM_REQUIRE(threshold > 0.0 && threshold < 1.0,
               "kernelSupportRadius: threshold must be in (0, 1)");
    switch (kind) {
      case KernelKind::Gaussian:
        // alpha * exp(-r^2 / (2 s^2)) < threshold * alpha
        //   <=>  r > s * sqrt(-2 ln(threshold))
        return sigma * std::sqrt(-2.0 * std::log(threshold));
      case KernelKind::Bubble:
        return sigma;
    }
    throw InternalError("unhandled kernel kind");
}

} // namespace som
} // namespace hiermeans
