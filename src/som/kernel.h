/**
 * @file
 * SOM neighborhood kernels.
 *
 * The paper's update rule (Section III-A):
 *
 *   w_i(n+1) = w_i(n) + h_ci(n) * [x(n) - w_i(n)],
 *   h_ci(n)  = alpha(n) * exp(-||r_c - r_i||^2 / (2 sigma^2(n)))
 *
 * The Gaussian kernel is the paper's; the bubble (cut-off) kernel is
 * the classical alternative, provided for ablations. Figure 2 plots the
 * Gaussian kernel shrinking over training steps; bench/fig2_kernel
 * regenerates that series through this interface.
 */

#ifndef HIERMEANS_SOM_KERNEL_H
#define HIERMEANS_SOM_KERNEL_H

#include <string>

namespace hiermeans {
namespace som {

/** Supported neighborhood kernels. */
enum class KernelKind { Gaussian, Bubble };

/** Name of a kernel kind. */
const char *kernelKindName(KernelKind kind);

/** Parse a kernel-kind name; throws InvalidArgument on unknown names. */
KernelKind parseKernelKind(const std::string &name);

/**
 * Kernel value h_ci for a unit at squared grid distance
 * @p grid_distance_squared from the BMU, with learning rate @p alpha
 * and radius @p sigma (both > 0).
 *
 * Gaussian: alpha * exp(-d^2 / (2 sigma^2)).
 * Bubble:   alpha when d <= sigma, else 0.
 */
double kernelValue(KernelKind kind, double grid_distance_squared,
                   double alpha, double sigma);

/**
 * Effective neighborhood cut-off: grid distances beyond this contribute
 * less than @p threshold * alpha (Gaussian) or nothing (bubble). Lets
 * the trainer skip far-away units.
 */
double kernelSupportRadius(KernelKind kind, double sigma,
                           double threshold = 1e-4);

} // namespace som
} // namespace hiermeans

#endif // HIERMEANS_SOM_KERNEL_H
