#include "src/som/render.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace som {

namespace {

/** Tag letter for workload i: a..z then A..Z then '?'. */
char
tagFor(std::size_t i)
{
    if (i < 26)
        return static_cast<char>('a' + i);
    if (i < 52)
        return static_cast<char>('A' + (i - 26));
    return '?';
}

} // namespace

std::string
renderDistributionMap(const SelfOrganizingMap &map,
                      const std::vector<Placement> &placements,
                      const std::string &title)
{
    const GridTopology &topo = map.topology();
    // Occupants per unit, in placement order.
    std::map<std::size_t, std::vector<std::size_t>> occupants;
    for (std::size_t i = 0; i < placements.size(); ++i) {
        HM_REQUIRE(placements[i].unit < topo.unitCount(),
                   "renderDistributionMap: unit " << placements[i].unit
                                                  << " out of range");
        occupants[placements[i].unit].push_back(i);
    }

    std::ostringstream oss;
    oss << title << "\n";
    oss << str::repeat('=', title.size()) << "\n";

    // Column header (Dimension 1).
    oss << "      ";
    for (std::size_t c = 0; c < topo.cols(); ++c)
        oss << " " << c % 10 << " ";
    oss << "  Dimension 1\n";

    for (std::size_t r = 0; r < topo.rows(); ++r) {
        oss << "  " << str::padLeft(std::to_string(r), 2) << "  ";
        for (std::size_t c = 0; c < topo.cols(); ++c) {
            const std::size_t unit = topo.unitIndex(r, c);
            auto it = occupants.find(unit);
            if (it == occupants.end()) {
                oss << " . ";
            } else if (it->second.size() == 1) {
                oss << "[" << tagFor(it->second.front()) << "]";
            } else {
                // Multiple workloads on one cell: the "darker cell" of
                // the paper's figures; show the occupant count.
                oss << "[" << std::min<std::size_t>(it->second.size(), 9)
                    << "]";
            }
        }
        oss << "\n";
    }
    oss << "  Dimension 2 (rows)\n\n";

    oss << "  Legend:\n";
    for (std::size_t i = 0; i < placements.size(); ++i) {
        const GridCell cell = topo.cell(placements[i].unit);
        oss << "    " << tagFor(i) << " = "
            << str::padRight(placements[i].name, 24) << " @ (dim1="
            << cell.col << ", dim2=" << cell.row << ")";
        const auto &cellmates = occupants[placements[i].unit];
        if (cellmates.size() > 1) {
            oss << "  [shared cell: ";
            bool first = true;
            for (std::size_t j : cellmates) {
                if (j == i)
                    continue;
                if (!first)
                    oss << ", ";
                oss << tagFor(j);
                first = false;
            }
            oss << "]";
        }
        oss << "\n";
    }
    return oss.str();
}

std::string
renderDistributionMap(const SelfOrganizingMap &map,
                      const linalg::Matrix &data,
                      const std::vector<std::string> &names,
                      const std::string &title)
{
    HM_REQUIRE(names.size() == data.rows(),
               "renderDistributionMap: " << names.size() << " names for "
                                         << data.rows() << " rows");
    std::vector<Placement> placements;
    placements.reserve(names.size());
    const std::vector<std::size_t> bmus = map.bmuAll(data);
    for (std::size_t i = 0; i < names.size(); ++i)
        placements.push_back(Placement{names[i], bmus[i]});
    return renderDistributionMap(map, placements, title);
}

std::string
renderUMatrix(const linalg::Matrix &umatrix, const std::string &title)
{
    static const char shades[] = {' ', '.', ':', '-', '=', '+', '*', '#'};
    constexpr std::size_t num_shades = sizeof(shades);

    double lo = umatrix(0, 0);
    double hi = umatrix(0, 0);
    for (std::size_t r = 0; r < umatrix.rows(); ++r) {
        for (std::size_t c = 0; c < umatrix.cols(); ++c) {
            lo = std::min(lo, umatrix(r, c));
            hi = std::max(hi, umatrix(r, c));
        }
    }
    const double range = hi - lo;

    std::ostringstream oss;
    oss << title << "\n";
    for (std::size_t r = 0; r < umatrix.rows(); ++r) {
        oss << "  ";
        for (std::size_t c = 0; c < umatrix.cols(); ++c) {
            std::size_t level = 0;
            if (range > 0.0) {
                level = static_cast<std::size_t>(
                    (umatrix(r, c) - lo) / range *
                    static_cast<double>(num_shades - 1));
            }
            oss << shades[level] << shades[level];
        }
        oss << "\n";
    }
    oss << "  scale: ' ' = " << str::fixed(lo, 3) << "  '#' = "
        << str::fixed(hi, 3) << "\n";
    return oss.str();
}

} // namespace som
} // namespace hiermeans
