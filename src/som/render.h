/**
 * @file
 * ASCII rendering of the SOM workload-distribution maps.
 *
 * Regenerates the visual content of Figures 3, 5 and 7: a 2-D grid in
 * which "colored cells represent the location of the workloads on the
 * reduced dimension" and "darker cells indicate that there are multiple
 * workloads that map to the same cell". In text form, a single-occupant
 * cell shows the workload's tag letter, a multi-occupant cell shows the
 * occupant count, and a legend maps tags to workload names and grid
 * coordinates.
 */

#ifndef HIERMEANS_SOM_RENDER_H
#define HIERMEANS_SOM_RENDER_H

#include <string>
#include <vector>

#include "src/som/som.h"

namespace hiermeans {
namespace som {

/** Placement of one named workload on the map. */
struct Placement
{
    std::string name;
    std::size_t unit = 0;
};

/**
 * Render the workload distribution of @p map for named observations.
 * @param map the trained map (provides topology).
 * @param placements one entry per workload (name + BMU unit index).
 * @param title heading line, e.g. "Workload Distribution on Machine A".
 */
std::string renderDistributionMap(const SelfOrganizingMap &map,
                                  const std::vector<Placement> &placements,
                                  const std::string &title);

/**
 * Convenience overload: compute BMUs of @p data rows with @p names.
 * @p names.size() must equal data.rows().
 */
std::string renderDistributionMap(const SelfOrganizingMap &map,
                                  const linalg::Matrix &data,
                                  const std::vector<std::string> &names,
                                  const std::string &title);

/**
 * Render a U-matrix as a grid of shade characters
 * (' ' low .. '#' high), with the numeric scale in the footer.
 */
std::string renderUMatrix(const linalg::Matrix &umatrix,
                          const std::string &title);

} // namespace som
} // namespace hiermeans

#endif // HIERMEANS_SOM_RENDER_H
