#include "src/som/schedule.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace som {

const char *
decayKindName(DecayKind kind)
{
    switch (kind) {
      case DecayKind::Linear:
        return "linear";
      case DecayKind::Exponential:
        return "exponential";
      case DecayKind::InverseTime:
        return "inverse-time";
    }
    return "unknown";
}

DecayKind
parseDecayKind(const std::string &name)
{
    const std::string lower = str::toLower(name);
    if (lower == "linear")
        return DecayKind::Linear;
    if (lower == "exponential" || lower == "exp")
        return DecayKind::Exponential;
    if (lower == "inverse-time" || lower == "inverse" || lower == "inv")
        return DecayKind::InverseTime;
    throw InvalidArgument("unknown decay kind `" + name + "`");
}

DecaySchedule::DecaySchedule(DecayKind kind, double start, double end,
                             std::size_t total_steps)
    : kind_(kind), start_(start), end_(end), totalSteps_(total_steps)
{
    HM_REQUIRE(start_ > 0.0, "DecaySchedule: start must be > 0, got "
                                 << start_);
    HM_REQUIRE(end_ > 0.0 && end_ <= start_,
               "DecaySchedule: end must be in (0, start], got " << end_);
    HM_REQUIRE(totalSteps_ >= 1, "DecaySchedule: total_steps must be >= 1");
}

double
DecaySchedule::value(std::size_t n) const
{
    if (totalSteps_ == 1 || n >= totalSteps_ - 1)
        return end_;
    const double progress = static_cast<double>(n) /
                            static_cast<double>(totalSteps_ - 1);
    switch (kind_) {
      case DecayKind::Linear:
        return start_ + (end_ - start_) * progress;
      case DecayKind::Exponential:
        return start_ * std::pow(end_ / start_, progress);
      case DecayKind::InverseTime: {
        // v(n) = start / (1 + c * n) with c chosen so v(last) == end.
        const double c = (start_ / end_ - 1.0) /
                         static_cast<double>(totalSteps_ - 1);
        return start_ / (1.0 + c * static_cast<double>(n));
      }
    }
    throw InternalError("unhandled decay kind");
}

} // namespace som
} // namespace hiermeans
