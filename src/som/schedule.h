/**
 * @file
 * Decay schedules for the SOM learning-rate factor alpha(n) and the
 * neighborhood radius sigma(n).
 *
 * "Both alpha(n) and sigma(n) monotonically decrease as we progress for
 * each learning step n" (Section III-A). Three standard decay laws are
 * provided; exponential decay is the default used by the pipeline.
 */

#ifndef HIERMEANS_SOM_SCHEDULE_H
#define HIERMEANS_SOM_SCHEDULE_H

#include <cstddef>
#include <string>

namespace hiermeans {
namespace som {

/** Supported decay laws. */
enum class DecayKind { Linear, Exponential, InverseTime };

/** Name of a decay kind. */
const char *decayKindName(DecayKind kind);

/** Parse a decay-kind name; throws InvalidArgument on unknown names. */
DecayKind parseDecayKind(const std::string &name);

/**
 * A monotone decay from @p start at step 0 to @p end at step
 * @p total_steps - 1.
 */
class DecaySchedule
{
  public:
    /**
     * @param kind decay law.
     * @param start initial value (> 0).
     * @param end final value (> 0, <= start).
     * @param total_steps number of training steps (>= 1).
     */
    DecaySchedule(DecayKind kind, double start, double end,
                  std::size_t total_steps);

    /** Value at step @p n; clamped to `end` for n >= total_steps. */
    double value(std::size_t n) const;

    double start() const { return start_; }
    double end() const { return end_; }
    std::size_t totalSteps() const { return totalSteps_; }
    DecayKind kind() const { return kind_; }

  private:
    DecayKind kind_;
    double start_;
    double end_;
    std::size_t totalSteps_;
};

} // namespace som
} // namespace hiermeans

#endif // HIERMEANS_SOM_SCHEDULE_H
