#include "src/som/som.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/linalg/distance.h"
#include "src/linalg/pca.h"
#include "src/util/error.h"
#include "src/util/log.h"

namespace hiermeans {
namespace som {

namespace {

double
defaultSigmaStart(const SomConfig &config)
{
    return config.sigmaStart > 0.0
               ? config.sigmaStart
               : static_cast<double>(std::max(config.rows, config.cols)) /
                     2.0;
}

} // namespace

SelfOrganizingMap::SelfOrganizingMap(const linalg::Matrix &data,
                                     const SomConfig &config)
    : config_(config),
      topology_(config.rows, config.cols, config.grid),
      data_(data),
      weights_(topology_.unitCount(), data.cols()),
      alpha_(config.decay, config.alphaStart, config.alphaEnd,
             std::max<std::size_t>(config.steps, 1)),
      sigma_(config.decay, defaultSigmaStart(config), config.sigmaEnd,
             std::max<std::size_t>(config.steps, 1)),
      engine_(config.seed)
{
    HM_REQUIRE(data.rows() >= 1, "SOM: no observations");
    HM_REQUIRE(data.cols() >= 1, "SOM: observations have no features");
    HM_REQUIRE(config.steps >= 1, "SOM: steps must be >= 1");
    HM_REQUIRE(config.alphaStart > 0.0 && config.alphaEnd > 0.0 &&
                   config.alphaEnd <= config.alphaStart,
               "SOM: invalid alpha schedule");
    HM_REQUIRE(config.sigmaEnd > 0.0 &&
                   config.sigmaEnd <= defaultSigmaStart(config),
               "SOM: invalid sigma schedule");
}

SelfOrganizingMap
SelfOrganizingMap::initialize(const linalg::Matrix &data,
                              const SomConfig &config)
{
    SelfOrganizingMap map(data, config);
    if (config.init == InitKind::Pca && data.rows() >= 2)
        map.initPca();
    else
        map.initRandom();
    return map;
}

SelfOrganizingMap
SelfOrganizingMap::train(const linalg::Matrix &data, const SomConfig &config)
{
    SelfOrganizingMap map = initialize(data, config);
    map.trainToCompletion();
    return map;
}

void
SelfOrganizingMap::initRandom()
{
    // Uniform within each feature's observed range so the initial map
    // already lies inside the data envelope.
    const std::size_t d = data_.cols();
    linalg::Vector lo(d), hi(d);
    for (std::size_t c = 0; c < d; ++c) {
        lo[c] = hi[c] = data_(0, c);
        for (std::size_t r = 1; r < data_.rows(); ++r) {
            lo[c] = std::min(lo[c], data_(r, c));
            hi[c] = std::max(hi[c], data_(r, c));
        }
    }
    for (std::size_t u = 0; u < topology_.unitCount(); ++u) {
        for (std::size_t c = 0; c < d; ++c) {
            weights_(u, c) = lo[c] == hi[c]
                                 ? lo[c]
                                 : engine_.uniform(lo[c], hi[c]);
        }
    }
}

void
SelfOrganizingMap::initPca()
{
    const linalg::Pca pca = linalg::Pca::fit(data_);
    const std::size_t d = data_.cols();
    const std::size_t n_components = std::min<std::size_t>(2, d);

    // Degenerate data (zero variance) cannot seed a subspace.
    if (pca.eigenvalues().empty() || pca.eigenvalues()[0] <= 0.0) {
        HM_LOG(Debug) << "SOM PCA init: degenerate data, falling back to "
                         "random init";
        initRandom();
        return;
    }

    // Span [-2, 2] standard deviations along each principal axis;
    // columns sweep component 1, rows sweep component 2.
    for (std::size_t u = 0; u < topology_.unitCount(); ++u) {
        const GridCell cell = topology_.cell(u);
        const double fx =
            topology_.cols() > 1
                ? 2.0 * static_cast<double>(cell.col) /
                          static_cast<double>(topology_.cols() - 1) -
                      1.0
                : 0.0;
        const double fy =
            topology_.rows() > 1
                ? 2.0 * static_cast<double>(cell.row) /
                          static_cast<double>(topology_.rows() - 1) -
                      1.0
                : 0.0;
        linalg::Vector w = pca.mean();
        const double scale1 = 2.0 * std::sqrt(pca.eigenvalues()[0]);
        for (std::size_t i = 0; i < d; ++i)
            w[i] += fx * scale1 * pca.components()(i, 0);
        if (n_components > 1 && pca.eigenvalues()[1] > 0.0) {
            const double scale2 = 2.0 * std::sqrt(pca.eigenvalues()[1]);
            for (std::size_t i = 0; i < d; ++i)
                w[i] += fy * scale2 * pca.components()(i, 1);
        }
        weights_.setRow(u, w);
    }
}

std::size_t
SelfOrganizingMap::bestMatchingUnit(const linalg::Vector &x) const
{
    HM_REQUIRE(x.size() == weights_.cols(),
               "bestMatchingUnit: vector has " << x.size()
                                               << " features, map expects "
                                               << weights_.cols());
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < topology_.unitCount(); ++u) {
        double acc = 0.0;
        const double *w = weights_.rowData(u);
        for (std::size_t c = 0; c < x.size(); ++c) {
            const double diff = x[c] - w[c];
            acc += diff * diff;
        }
        if (acc < best_dist) {
            best_dist = acc;
            best = u;
        }
    }
    return best;
}

void
SelfOrganizingMap::updateWeights(const linalg::Vector &x, std::size_t bmu,
                                 double alpha, double sigma)
{
    const double support = kernelSupportRadius(config_.kernel, sigma);
    const double support_sq = support * support;
    for (std::size_t u = 0; u < topology_.unitCount(); ++u) {
        const double dist_sq = topology_.gridDistanceSquared(bmu, u);
        if (dist_sq > support_sq)
            continue;
        const double h = kernelValue(config_.kernel, dist_sq, alpha, sigma);
        if (h <= 0.0)
            continue;
        double *w = weights_.rowData(u);
        for (std::size_t c = 0; c < x.size(); ++c)
            w[c] += h * (x[c] - w[c]);
    }
}

void
SelfOrganizingMap::step()
{
    const std::size_t sample = static_cast<std::size_t>(
        engine_.below(static_cast<std::uint64_t>(data_.rows())));
    const linalg::Vector x = data_.row(sample);
    const std::size_t bmu = bestMatchingUnit(x);
    updateWeights(x, bmu, alpha_.value(stepsDone_), sigma_.value(stepsDone_));
    ++stepsDone_;
}

void
SelfOrganizingMap::trainToCompletion()
{
    while (stepsDone_ < config_.steps)
        step();
}

void
SelfOrganizingMap::batchEpoch(double sigma)
{
    HM_REQUIRE(sigma > 0.0, "batchEpoch: sigma must be > 0, got "
                                << sigma);
    const std::size_t units = topology_.unitCount();
    const std::size_t d = data_.cols();

    // BMU of every observation under the current weights.
    const std::vector<std::size_t> bmus = bmuAll(data_);

    // New weight = sum_x h(u, bmu(x)) * x / sum_x h(u, bmu(x)).
    linalg::Matrix numerator(units, d, 0.0);
    std::vector<double> denominator(units, 0.0);
    for (std::size_t r = 0; r < data_.rows(); ++r) {
        for (std::size_t u = 0; u < units; ++u) {
            const double h = kernelValue(
                config_.kernel,
                topology_.gridDistanceSquared(u, bmus[r]), 1.0, sigma);
            if (h <= 0.0)
                continue;
            denominator[u] += h;
            const double *x = data_.rowData(r);
            double *num = numerator.rowData(u);
            for (std::size_t c = 0; c < d; ++c)
                num[c] += h * x[c];
        }
    }
    for (std::size_t u = 0; u < units; ++u) {
        if (denominator[u] <= 0.0)
            continue; // unit saw no mass this epoch; keep its weight.
        double *w = weights_.rowData(u);
        const double *num = numerator.rowData(u);
        for (std::size_t c = 0; c < d; ++c)
            w[c] = num[c] / denominator[u];
    }
}

void
SelfOrganizingMap::trainBatch(std::size_t epochs)
{
    HM_REQUIRE(epochs >= 1, "trainBatch: epochs must be >= 1");
    const double sigma_start = sigma_.start();
    const double sigma_end = sigma_.end();
    for (std::size_t e = 0; e < epochs; ++e) {
        const double progress =
            epochs > 1
                ? static_cast<double>(e) / static_cast<double>(epochs - 1)
                : 1.0;
        const double sigma =
            sigma_start * std::pow(sigma_end / sigma_start, progress);
        batchEpoch(sigma);
    }
}

linalg::Vector
SelfOrganizingMap::weight(std::size_t unit) const
{
    HM_REQUIRE(unit < topology_.unitCount(), "weight: unit " << unit
                                                             << " out of "
                                                                "range");
    return weights_.row(unit);
}

GridPoint
SelfOrganizingMap::mapToGrid(const linalg::Vector &x) const
{
    return topology_.location(bestMatchingUnit(x));
}

linalg::Matrix
SelfOrganizingMap::mapAll(const linalg::Matrix &data) const
{
    linalg::Matrix out(data.rows(), 2);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const GridPoint p = mapToGrid(data.row(r));
        out(r, 0) = p.x;
        out(r, 1) = p.y;
    }
    return out;
}

std::vector<std::size_t>
SelfOrganizingMap::bmuAll(const linalg::Matrix &data) const
{
    std::vector<std::size_t> out;
    out.reserve(data.rows());
    for (std::size_t r = 0; r < data.rows(); ++r)
        out.push_back(bestMatchingUnit(data.row(r)));
    return out;
}

double
SelfOrganizingMap::quantizationError(const linalg::Matrix &data) const
{
    HM_REQUIRE(data.rows() >= 1, "quantizationError: no observations");
    double acc = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const linalg::Vector x = data.row(r);
        acc += linalg::euclidean(x, weight(bestMatchingUnit(x)));
    }
    return acc / static_cast<double>(data.rows());
}

double
SelfOrganizingMap::topographicError(const linalg::Matrix &data) const
{
    HM_REQUIRE(data.rows() >= 1, "topographicError: no observations");
    if (topology_.unitCount() < 2)
        return 0.0;
    std::size_t errors = 0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const linalg::Vector x = data.row(r);
        // Find the two closest units.
        std::size_t best = 0, second = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        double second_dist = std::numeric_limits<double>::infinity();
        for (std::size_t u = 0; u < topology_.unitCount(); ++u) {
            double acc = 0.0;
            const double *w = weights_.rowData(u);
            for (std::size_t c = 0; c < x.size(); ++c) {
                const double diff = x[c] - w[c];
                acc += diff * diff;
            }
            if (acc < best_dist) {
                second_dist = best_dist;
                second = best;
                best_dist = acc;
                best = u;
            } else if (acc < second_dist) {
                second_dist = acc;
                second = u;
            }
        }
        if (!topology_.areNeighbors(best, second))
            ++errors;
    }
    return static_cast<double>(errors) / static_cast<double>(data.rows());
}

} // namespace som
} // namespace hiermeans
