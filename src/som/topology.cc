#include "src/som/topology.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace som {

const char *
gridKindName(GridKind kind)
{
    switch (kind) {
      case GridKind::Rectangular:
        return "rectangular";
      case GridKind::Hexagonal:
        return "hexagonal";
    }
    return "unknown";
}

GridKind
parseGridKind(const std::string &name)
{
    const std::string lower = str::toLower(name);
    if (lower == "rectangular" || lower == "rect")
        return GridKind::Rectangular;
    if (lower == "hexagonal" || lower == "hex")
        return GridKind::Hexagonal;
    throw InvalidArgument("unknown grid kind `" + name + "`");
}

GridTopology::GridTopology(std::size_t rows, std::size_t cols, GridKind kind)
    : rows_(rows), cols_(cols), kind_(kind)
{
    HM_REQUIRE(rows_ > 0 && cols_ > 0, "GridTopology: " << rows_ << "x"
                                                        << cols_);
}

std::size_t
GridTopology::unitIndex(std::size_t row, std::size_t col) const
{
    HM_REQUIRE(row < rows_ && col < cols_, "unitIndex(" << row << ", "
                                                        << col
                                                        << ") out of range");
    return row * cols_ + col;
}

GridCell
GridTopology::cell(std::size_t unit) const
{
    HM_REQUIRE(unit < unitCount(), "cell: unit " << unit
                                                 << " out of range");
    return GridCell{unit / cols_, unit % cols_};
}

GridPoint
GridTopology::location(std::size_t unit) const
{
    const GridCell c = cell(unit);
    if (kind_ == GridKind::Rectangular) {
        return GridPoint{static_cast<double>(c.col),
                         static_cast<double>(c.row)};
    }
    // Hexagonal: odd rows shifted right by half a cell, rows compressed
    // to keep all six neighbors equidistant.
    const double x =
        static_cast<double>(c.col) + (c.row % 2 == 1 ? 0.5 : 0.0);
    const double y = static_cast<double>(c.row) * std::sqrt(3.0) / 2.0;
    return GridPoint{x, y};
}

double
GridTopology::gridDistanceSquared(std::size_t unit_a,
                                  std::size_t unit_b) const
{
    const GridPoint a = location(unit_a);
    const GridPoint b = location(unit_b);
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return dx * dx + dy * dy;
}

double
GridTopology::gridDistance(std::size_t unit_a, std::size_t unit_b) const
{
    return std::sqrt(gridDistanceSquared(unit_a, unit_b));
}

bool
GridTopology::areNeighbors(std::size_t unit_a, std::size_t unit_b) const
{
    if (unit_a == unit_b)
        return false;
    // All lattice neighbors sit at distance ~1 in location space (for
    // rectangular grids the diagonal is sqrt(2), which we exclude).
    return gridDistanceSquared(unit_a, unit_b) <= 1.0 + 1e-9;
}

} // namespace som
} // namespace hiermeans
