/**
 * @file
 * SOM grid topology: unit layout and location vectors.
 *
 * The paper's SOM is "a 2-D array of neurons, called units"; each unit
 * carries a location vector r_i on the grid and the neighborhood kernel
 * is a function of ||r_c - r_i||. Rectangular layout matches the paper;
 * hexagonal layout (Kohonen's default) is provided for ablations.
 */

#ifndef HIERMEANS_SOM_TOPOLOGY_H
#define HIERMEANS_SOM_TOPOLOGY_H

#include <cstddef>
#include <string>

namespace hiermeans {
namespace som {

/** Grid layouts. */
enum class GridKind { Rectangular, Hexagonal };

/** Name of a grid kind. */
const char *gridKindName(GridKind kind);

/** Parse a grid-kind name; throws InvalidArgument on unknown names. */
GridKind parseGridKind(const std::string &name);

/** A unit's 2-D location on the map. */
struct GridPoint
{
    double x = 0.0; ///< Dimension 1 in the paper's figures.
    double y = 0.0; ///< Dimension 2.
};

/** Row/column coordinates of a unit. */
struct GridCell
{
    std::size_t row = 0;
    std::size_t col = 0;

    bool operator==(const GridCell &other) const
    {
        return row == other.row && col == other.col;
    }
};

/** A fixed rows x cols unit grid. */
class GridTopology
{
  public:
    GridTopology(std::size_t rows, std::size_t cols,
                 GridKind kind = GridKind::Rectangular);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    GridKind kind() const { return kind_; }

    /** Total number of units. */
    std::size_t unitCount() const { return rows_ * cols_; }

    /** Linear unit index of a cell. */
    std::size_t unitIndex(std::size_t row, std::size_t col) const;

    /** Cell of a linear unit index. */
    GridCell cell(std::size_t unit) const;

    /**
     * Location vector r_i of a unit. Rectangular grids use integer
     * (col, row); hexagonal grids offset odd rows by 0.5 and compress
     * row spacing by sqrt(3)/2 so inter-unit distances are uniform.
     */
    GridPoint location(std::size_t unit) const;

    /** Euclidean distance between two units' location vectors. */
    double gridDistance(std::size_t unit_a, std::size_t unit_b) const;

    /** Squared grid distance (the quantity the Gaussian kernel uses). */
    double gridDistanceSquared(std::size_t unit_a, std::size_t unit_b) const;

    /** True when two units are lattice neighbors (adjacent cells). */
    bool areNeighbors(std::size_t unit_a, std::size_t unit_b) const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    GridKind kind_;
};

} // namespace som
} // namespace hiermeans

#endif // HIERMEANS_SOM_TOPOLOGY_H
