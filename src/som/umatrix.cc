#include "src/som/umatrix.h"

#include "src/linalg/distance.h"
#include "src/util/error.h"

namespace hiermeans {
namespace som {

linalg::Matrix
uMatrix(const SelfOrganizingMap &map)
{
    const GridTopology &topo = map.topology();
    linalg::Matrix out(topo.rows(), topo.cols(), 0.0);

    for (std::size_t u = 0; u < topo.unitCount(); ++u) {
        const linalg::Vector w = map.weight(u);
        double acc = 0.0;
        std::size_t neighbors = 0;
        for (std::size_t v = 0; v < topo.unitCount(); ++v) {
            if (!topo.areNeighbors(u, v))
                continue;
            acc += linalg::euclidean(w, map.weight(v));
            ++neighbors;
        }
        const GridCell cell = topo.cell(u);
        out(cell.row, cell.col) =
            neighbors > 0 ? acc / static_cast<double>(neighbors) : 0.0;
    }
    return out;
}

} // namespace som
} // namespace hiermeans
