/**
 * @file
 * U-matrix: per-unit average distance to lattice-neighbor weights.
 *
 * The U-matrix is the standard way to visualize cluster boundaries on a
 * trained SOM — large values mark ridges between clusters, small values
 * mark dense plateaus (like the SciMark2 blob in Figures 3/5/7).
 */

#ifndef HIERMEANS_SOM_UMATRIX_H
#define HIERMEANS_SOM_UMATRIX_H

#include "src/linalg/matrix.h"
#include "src/som/som.h"

namespace hiermeans {
namespace som {

/**
 * Compute the U-matrix of @p map as a rows x cols matrix: entry (r, c)
 * is the mean Euclidean distance between unit (r, c)'s weight vector
 * and the weight vectors of its lattice neighbors.
 */
linalg::Matrix uMatrix(const SelfOrganizingMap &map);

} // namespace som
} // namespace hiermeans

#endif // HIERMEANS_SOM_UMATRIX_H
