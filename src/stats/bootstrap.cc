#include "src/stats/bootstrap.h"

#include <algorithm>

#include "src/stats/descriptive.h"
#include "src/util/error.h"

namespace hiermeans {
namespace stats {

BootstrapInterval
bootstrapScore(
    const std::vector<std::vector<double>> &run_times,
    const std::function<double(const std::vector<double> &)> &statistic,
    const BootstrapConfig &config)
{
    HM_REQUIRE(!run_times.empty(), "bootstrapScore: no workloads");
    for (std::size_t w = 0; w < run_times.size(); ++w) {
        HM_REQUIRE(!run_times[w].empty(),
                   "bootstrapScore: workload " << w << " has no runs");
    }
    HM_REQUIRE(config.resamples >= 10,
               "bootstrapScore: need >= 10 resamples");
    HM_REQUIRE(config.level > 0.0 && config.level < 1.0,
               "bootstrapScore: level must be in (0, 1)");

    // Point estimate from the plain per-workload averages.
    std::vector<double> representative(run_times.size());
    for (std::size_t w = 0; w < run_times.size(); ++w) {
        double acc = 0.0;
        for (double t : run_times[w])
            acc += t;
        representative[w] =
            acc / static_cast<double>(run_times[w].size());
    }

    BootstrapInterval interval;
    interval.pointEstimate = statistic(representative);
    interval.level = config.level;
    interval.resamples = config.resamples;

    rng::Engine engine(config.seed);
    std::vector<double> replicates;
    replicates.reserve(config.resamples);
    std::vector<double> resampled(run_times.size());
    for (std::size_t b = 0; b < config.resamples; ++b) {
        for (std::size_t w = 0; w < run_times.size(); ++w) {
            const auto &runs = run_times[w];
            double acc = 0.0;
            for (std::size_t i = 0; i < runs.size(); ++i)
                acc += runs[engine.below(runs.size())];
            resampled[w] = acc / static_cast<double>(runs.size());
        }
        replicates.push_back(statistic(resampled));
    }

    const double alpha = (1.0 - config.level) / 2.0;
    interval.lower = quantile(replicates, alpha);
    interval.upper = quantile(replicates, 1.0 - alpha);
    return interval;
}

} // namespace stats
} // namespace hiermeans
