/**
 * @file
 * Bootstrap confidence intervals for suite scores.
 *
 * The paper reports point scores; a production scoring tool should
 * also say how stable they are under measurement noise. This module
 * resamples per-workload run times (the 10 repetitions of Section
 * IV-B) with replacement and rebuilds the score statistic, yielding
 * percentile confidence intervals for plain and hierarchical means
 * alike (the statistic is caller-supplied).
 */

#ifndef HIERMEANS_STATS_BOOTSTRAP_H
#define HIERMEANS_STATS_BOOTSTRAP_H

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/rng.h"

namespace hiermeans {
namespace stats {

/** A percentile bootstrap interval. */
struct BootstrapInterval
{
    double pointEstimate = 0.0;
    double lower = 0.0;
    double upper = 0.0;
    double level = 0.95;
    std::size_t resamples = 0;
};

/** Bootstrap configuration. */
struct BootstrapConfig
{
    std::size_t resamples = 1000;
    double level = 0.95; ///< two-sided confidence level in (0, 1).
    std::uint64_t seed = 0xB005;
};

/**
 * Generic percentile bootstrap over per-workload run samples.
 *
 * @param run_times one vector of repeated measurements per workload
 *        (each non-empty).
 * @param statistic maps a vector of per-workload representative values
 *        (the mean of a resample of each workload's runs) to the score
 *        of interest, e.g. a hierarchical geometric mean of speedups.
 */
BootstrapInterval bootstrapScore(
    const std::vector<std::vector<double>> &run_times,
    const std::function<double(const std::vector<double> &)> &statistic,
    const BootstrapConfig &config = {});

} // namespace stats
} // namespace hiermeans

#endif // HIERMEANS_STATS_BOOTSTRAP_H
