#include "src/stats/correlation.h"

#include <cmath>

#include "src/stats/descriptive.h"
#include "src/util/error.h"

namespace hiermeans {
namespace stats {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    HM_REQUIRE(x.size() == y.size(), "pearson: size mismatch " << x.size()
                                                               << " vs "
                                                               << y.size());
    HM_REQUIRE(x.size() >= 2, "pearson: need >= 2 points");
    const double n = static_cast<double>(x.size());
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= n;
    my /= n;
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    HM_DOMAIN_CHECK(sxx > 0.0 && syy > 0.0,
                    "pearson: zero variance sample");
    return sxy / std::sqrt(sxx * syy);
}

double
spearman(const std::vector<double> &x, const std::vector<double> &y)
{
    return pearson(ranks(x), ranks(y));
}

} // namespace stats
} // namespace hiermeans
