/**
 * @file
 * Correlation coefficients.
 *
 * Pearson correlation backs the cophenetic correlation coefficient in
 * src/cluster/validity.h (how faithfully a dendrogram preserves the
 * original pairwise distances); Spearman supports rank-based ablations.
 */

#ifndef HIERMEANS_STATS_CORRELATION_H
#define HIERMEANS_STATS_CORRELATION_H

#include <vector>

namespace hiermeans {
namespace stats {

/**
 * Pearson product-moment correlation of two equally-sized samples.
 * Requires >= 2 points and nonzero variance in both samples.
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Spearman rank correlation (Pearson on average ranks). */
double spearman(const std::vector<double> &x, const std::vector<double> &y);

} // namespace stats
} // namespace hiermeans

#endif // HIERMEANS_STATS_CORRELATION_H
