#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/error.h"

namespace hiermeans {
namespace stats {

Summary
summarize(const std::vector<double> &sample)
{
    HM_REQUIRE(!sample.empty(), "summarize: empty sample");
    Summary s;
    s.count = sample.size();
    s.mean = std::accumulate(sample.begin(), sample.end(), 0.0) /
             static_cast<double>(sample.size());
    s.variance = sampleVariance(sample);
    s.stddev = std::sqrt(s.variance);
    auto [lo, hi] = std::minmax_element(sample.begin(), sample.end());
    s.min = *lo;
    s.max = *hi;
    s.median = median(sample);
    return s;
}

double
sampleVariance(const std::vector<double> &sample)
{
    HM_REQUIRE(!sample.empty(), "sampleVariance: empty sample");
    if (sample.size() < 2)
        return 0.0;
    const double m = std::accumulate(sample.begin(), sample.end(), 0.0) /
                     static_cast<double>(sample.size());
    double acc = 0.0;
    for (double v : sample) {
        const double d = v - m;
        acc += d * d;
    }
    return acc / static_cast<double>(sample.size() - 1);
}

double
sampleStddev(const std::vector<double> &sample)
{
    return std::sqrt(sampleVariance(sample));
}

double
median(std::vector<double> sample)
{
    HM_REQUIRE(!sample.empty(), "median: empty sample");
    std::sort(sample.begin(), sample.end());
    const std::size_t n = sample.size();
    if (n % 2 == 1)
        return sample[n / 2];
    return 0.5 * (sample[n / 2 - 1] + sample[n / 2]);
}

double
quantile(std::vector<double> sample, double q)
{
    HM_REQUIRE(!sample.empty(), "quantile: empty sample");
    HM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1], got "
                                         << q);
    std::sort(sample.begin(), sample.end());
    if (sample.size() == 1)
        return sample[0];
    const double pos = q * static_cast<double>(sample.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = std::min(lo + 1, sample.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double
coefficientOfVariation(const std::vector<double> &sample)
{
    HM_REQUIRE(!sample.empty(), "coefficientOfVariation: empty sample");
    const double m = std::accumulate(sample.begin(), sample.end(), 0.0) /
                     static_cast<double>(sample.size());
    HM_REQUIRE(m != 0.0, "coefficientOfVariation: zero mean");
    return sampleStddev(sample) / std::abs(m);
}

std::vector<double>
ranks(const std::vector<double> &sample)
{
    const std::size_t n = sample.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return sample[a] < sample[b];
    });

    std::vector<double> out(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && sample[order[j + 1]] == sample[order[i]])
            ++j;
        // Average rank for the tie group [i, j].
        const double avg_rank =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            out[order[k]] = avg_rank;
        i = j + 1;
    }
    return out;
}

} // namespace stats
} // namespace hiermeans
