/**
 * @file
 * Descriptive statistics over a sample of doubles.
 *
 * Used by the SAR counter characterization stage (the paper collects 15
 * samples per counter and uses the average as the representative value)
 * and by the redundancy/robustness analyses.
 */

#ifndef HIERMEANS_STATS_DESCRIPTIVE_H
#define HIERMEANS_STATS_DESCRIPTIVE_H

#include <cstddef>
#include <vector>

namespace hiermeans {
namespace stats {

/** Summary of a univariate sample. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double variance = 0.0; ///< n-1 sample variance (0 when count < 2).
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
};

/** Compute the full summary; requires a non-empty sample. */
Summary summarize(const std::vector<double> &sample);

/** Sample variance with the n-1 denominator (0 when fewer than 2). */
double sampleVariance(const std::vector<double> &sample);

/** Sample standard deviation. */
double sampleStddev(const std::vector<double> &sample);

/** Median (average of the two middle values for even sizes). */
double median(std::vector<double> sample);

/**
 * Quantile with linear interpolation between order statistics;
 * @p q in [0, 1]. Requires a non-empty sample.
 */
double quantile(std::vector<double> sample, double q);

/**
 * Coefficient of variation stddev/|mean|; requires a nonzero mean.
 * Used to quantify how much hierarchical-mean ratios fluctuate across
 * cluster counts.
 */
double coefficientOfVariation(const std::vector<double> &sample);

/** Ranks of the sample values (1-based, ties averaged). */
std::vector<double> ranks(const std::vector<double> &sample);

} // namespace stats
} // namespace hiermeans

#endif // HIERMEANS_STATS_DESCRIPTIVE_H
