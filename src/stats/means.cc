#include "src/stats/means.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace stats {

namespace {

void
requireNonEmpty(const std::vector<double> &values, const char *op)
{
    HM_REQUIRE(!values.empty(), op << " of an empty set");
}

void
requirePositive(const std::vector<double> &values, const char *op)
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        HM_DOMAIN_CHECK(values[i] > 0.0,
                        op << " requires strictly positive values; value["
                           << i << "] = " << values[i]);
    }
}

double
weightSum(const std::vector<double> &values,
          const std::vector<double> &weights, const char *op)
{
    HM_REQUIRE(values.size() == weights.size(),
               op << ": " << values.size() << " values vs "
                  << weights.size() << " weights");
    HM_REQUIRE(!values.empty(), op << " of an empty set");
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        HM_REQUIRE(weights[i] >= 0.0, op << ": weight[" << i
                                         << "] is negative");
        total += weights[i];
    }
    HM_REQUIRE(total > 0.0, op << ": weights sum to zero");
    return total;
}

} // namespace

const char *
meanKindName(MeanKind kind)
{
    switch (kind) {
      case MeanKind::Arithmetic:
        return "arithmetic";
      case MeanKind::Geometric:
        return "geometric";
      case MeanKind::Harmonic:
        return "harmonic";
    }
    return "unknown";
}

MeanKind
parseMeanKind(const std::string &name)
{
    const std::string lower = str::toLower(name);
    if (lower == "arithmetic" || lower == "am")
        return MeanKind::Arithmetic;
    if (lower == "geometric" || lower == "gm")
        return MeanKind::Geometric;
    if (lower == "harmonic" || lower == "hm")
        return MeanKind::Harmonic;
    throw InvalidArgument("unknown mean kind `" + name + "`");
}

double
arithmeticMean(const std::vector<double> &values)
{
    requireNonEmpty(values, "arithmetic mean");
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    requireNonEmpty(values, "geometric mean");
    requirePositive(values, "geometric mean");
    double log_acc = 0.0;
    for (double v : values)
        log_acc += std::log(v);
    return std::exp(log_acc / static_cast<double>(values.size()));
}

double
harmonicMean(const std::vector<double> &values)
{
    requireNonEmpty(values, "harmonic mean");
    requirePositive(values, "harmonic mean");
    double inv_acc = 0.0;
    for (double v : values)
        inv_acc += 1.0 / v;
    return static_cast<double>(values.size()) / inv_acc;
}

double
mean(MeanKind kind, const std::vector<double> &values)
{
    switch (kind) {
      case MeanKind::Arithmetic:
        return arithmeticMean(values);
      case MeanKind::Geometric:
        return geometricMean(values);
      case MeanKind::Harmonic:
        return harmonicMean(values);
    }
    throw InternalError("unhandled mean kind");
}

double
weightedArithmeticMean(const std::vector<double> &values,
                       const std::vector<double> &weights)
{
    const double total = weightSum(values, weights, "weighted AM");
    double acc = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i)
        acc += weights[i] * values[i];
    return acc / total;
}

double
weightedGeometricMean(const std::vector<double> &values,
                      const std::vector<double> &weights)
{
    const double total = weightSum(values, weights, "weighted GM");
    requirePositive(values, "weighted geometric mean");
    double log_acc = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i)
        log_acc += weights[i] * std::log(values[i]);
    return std::exp(log_acc / total);
}

double
weightedHarmonicMean(const std::vector<double> &values,
                     const std::vector<double> &weights)
{
    const double total = weightSum(values, weights, "weighted HM");
    requirePositive(values, "weighted harmonic mean");
    double inv_acc = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i)
        inv_acc += weights[i] / values[i];
    return total / inv_acc;
}

double
weightedMean(MeanKind kind, const std::vector<double> &values,
             const std::vector<double> &weights)
{
    switch (kind) {
      case MeanKind::Arithmetic:
        return weightedArithmeticMean(values, weights);
      case MeanKind::Geometric:
        return weightedGeometricMean(values, weights);
      case MeanKind::Harmonic:
        return weightedHarmonicMean(values, weights);
    }
    throw InternalError("unhandled mean kind");
}

} // namespace stats
} // namespace hiermeans
