/**
 * @file
 * Plain and weighted means (arithmetic, geometric, harmonic).
 *
 * These are the building blocks of the hierarchical means in
 * src/scoring/hierarchical_mean.h: a hierarchical mean is the plain
 * mean of the per-cluster plain means. The "war of the benchmark means"
 * (Smith 1988, Mashey 2004, John 2004) is about which of these to use;
 * the paper's contribution is orthogonal and applies to all three.
 */

#ifndef HIERMEANS_STATS_MEANS_H
#define HIERMEANS_STATS_MEANS_H

#include <string>
#include <vector>

namespace hiermeans {
namespace stats {

/** The three classical mean families. */
enum class MeanKind { Arithmetic, Geometric, Harmonic };

/** Name of a mean kind ("arithmetic", ...). */
const char *meanKindName(MeanKind kind);

/** Parse a mean-kind name; throws InvalidArgument on unknown names. */
MeanKind parseMeanKind(const std::string &name);

/** Arithmetic mean; requires a non-empty input. */
double arithmeticMean(const std::vector<double> &values);

/**
 * Geometric mean computed in log space; requires non-empty input with
 * strictly positive values (throws DomainError otherwise).
 */
double geometricMean(const std::vector<double> &values);

/**
 * Harmonic mean; requires non-empty input with strictly positive values
 * (throws DomainError otherwise).
 */
double harmonicMean(const std::vector<double> &values);

/** Dispatch to one of the three plain means. */
double mean(MeanKind kind, const std::vector<double> &values);

/**
 * Weighted arithmetic mean: sum(w_i x_i) / sum(w_i). Weights must be
 * non-negative with a positive sum.
 */
double weightedArithmeticMean(const std::vector<double> &values,
                              const std::vector<double> &weights);

/**
 * Weighted geometric mean: exp(sum(w_i ln x_i) / sum(w_i)). Values must
 * be positive; weights non-negative with a positive sum.
 */
double weightedGeometricMean(const std::vector<double> &values,
                             const std::vector<double> &weights);

/**
 * Weighted harmonic mean: sum(w_i) / sum(w_i / x_i). Values must be
 * positive; weights non-negative with a positive sum.
 */
double weightedHarmonicMean(const std::vector<double> &values,
                            const std::vector<double> &weights);

/** Dispatch to one of the three weighted means. */
double weightedMean(MeanKind kind, const std::vector<double> &values,
                    const std::vector<double> &weights);

} // namespace stats
} // namespace hiermeans

#endif // HIERMEANS_STATS_MEANS_H
