#include "src/store/record.h"

#include <array>
#include <cstring>

#include "src/util/error.h"

namespace hiermeans {
namespace store {

namespace {

constexpr char kMagic[4] = {'H', 'M', 'R', '1'};

/** The reflected-polynomial lookup table, built once. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = []() {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

void
appendLe32(std::string &out, std::uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xFF));
    out.push_back(static_cast<char>((value >> 8) & 0xFF));
    out.push_back(static_cast<char>((value >> 16) & 0xFF));
    out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t
readLe32(const char *p)
{
    const auto *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<std::uint32_t>(u[0]) |
           (static_cast<std::uint32_t>(u[1]) << 8) |
           (static_cast<std::uint32_t>(u[2]) << 16) |
           (static_cast<std::uint32_t>(u[3]) << 24);
}

} // namespace

std::uint32_t
crc32(std::string_view data)
{
    const auto &table = crcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const char ch : data)
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^
              (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

bool
knownRecordType(std::uint8_t type)
{
    switch (static_cast<RecordType>(type)) {
    case RecordType::SuiteRegistered:
    case RecordType::ScoreRecorded:
    case RecordType::ConfigChanged:
    case RecordType::DriftUpdated:
    case RecordType::SnapshotHeader:
        return true;
    }
    return false;
}

std::string
frameRecord(RecordType type, std::string_view payload)
{
    std::string checked;
    checked.reserve(1 + payload.size());
    checked.push_back(static_cast<char>(type));
    checked.append(payload);

    std::string frame;
    frame.reserve(kFrameOverhead + payload.size());
    frame.append(kMagic, sizeof(kMagic));
    appendLe32(frame, static_cast<std::uint32_t>(payload.size()));
    appendLe32(frame, crc32(checked));
    frame.append(checked);
    return frame;
}

bool
FrameReader::fail(std::string reason)
{
    corrupt_ = true;
    corruption_ = std::move(reason);
    return false;
}

bool
FrameReader::next(Record &record)
{
    if (corrupt_ || offset_ >= data_.size())
        return false;
    const std::size_t remaining = data_.size() - offset_;
    if (remaining < kFrameOverhead)
        return fail("torn frame header (" + std::to_string(remaining) +
                    " trailing bytes)");
    const char *frame = data_.data() + offset_;
    if (std::memcmp(frame, kMagic, sizeof(kMagic)) != 0)
        return fail("bad record magic at offset " +
                    std::to_string(offset_));
    const std::uint32_t length = readLe32(frame + 4);
    const std::uint32_t expected_crc = readLe32(frame + 8);
    if (remaining < kFrameOverhead + length)
        return fail("torn record payload at offset " +
                    std::to_string(offset_) + " (need " +
                    std::to_string(kFrameOverhead + length) + ", have " +
                    std::to_string(remaining) + ")");
    const std::string_view checked(frame + 12, 1 + length);
    if (crc32(checked) != expected_crc)
        return fail("CRC mismatch at offset " + std::to_string(offset_));
    const auto type = static_cast<std::uint8_t>(checked[0]);
    if (!knownRecordType(type))
        return fail("unknown record type " + std::to_string(type) +
                    " at offset " + std::to_string(offset_));

    record.type = static_cast<RecordType>(type);
    record.payload.assign(checked.substr(1));
    offset_ += kFrameOverhead + length;
    valid_ = offset_;
    return true;
}

void
BinaryWriter::u8(std::uint8_t value)
{
    bytes_.push_back(static_cast<char>(value));
}

void
BinaryWriter::u32(std::uint32_t value)
{
    appendLe32(bytes_, value);
}

void
BinaryWriter::u64(std::uint64_t value)
{
    appendLe32(bytes_, static_cast<std::uint32_t>(value & 0xFFFFFFFFu));
    appendLe32(bytes_, static_cast<std::uint32_t>(value >> 32));
}

void
BinaryWriter::f64(double value)
{
    // Bit-pattern copy: doubles round-trip exactly, NaNs included.
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
BinaryWriter::str(std::string_view value)
{
    u32(static_cast<std::uint32_t>(value.size()));
    bytes_.append(value);
}

void
BinaryWriter::u64Vec(const std::vector<std::uint64_t> &values)
{
    u32(static_cast<std::uint32_t>(values.size()));
    for (const std::uint64_t value : values)
        u64(value);
}

void
BinaryWriter::f64Vec(const std::vector<double> &values)
{
    u32(static_cast<std::uint32_t>(values.size()));
    for (const double value : values)
        f64(value);
}

void
BinaryReader::need(std::size_t n) const
{
    HM_REQUIRE(data_.size() - offset_ >= n,
               "record payload truncated: need "
                   << n << " bytes at offset " << offset_ << " of "
                   << data_.size());
}

std::uint8_t
BinaryReader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(data_[offset_++]);
}

std::uint32_t
BinaryReader::u32()
{
    need(4);
    const std::uint32_t value = readLe32(data_.data() + offset_);
    offset_ += 4;
    return value;
}

std::uint64_t
BinaryReader::u64()
{
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
}

double
BinaryReader::f64()
{
    const std::uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
BinaryReader::str()
{
    const std::uint32_t length = u32();
    need(length);
    std::string value(data_.substr(offset_, length));
    offset_ += length;
    return value;
}

std::vector<std::uint64_t>
BinaryReader::u64Vec()
{
    const std::uint32_t count = u32();
    need(static_cast<std::size_t>(count) * 8);
    std::vector<std::uint64_t> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        values.push_back(u64());
    return values;
}

std::vector<double>
BinaryReader::f64Vec()
{
    const std::uint32_t count = u32();
    need(static_cast<std::size_t>(count) * 8);
    std::vector<double> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        values.push_back(f64());
    return values;
}

void
BinaryReader::expectDone(const char *what) const
{
    HM_REQUIRE(done(), what << ": " << (data_.size() - offset_)
                            << " trailing payload bytes");
}

} // namespace store
} // namespace hiermeans
