/**
 * @file
 * The durable-state record codec: CRC32-framed, length-prefixed
 * binary records (bcsv-style packets) shared by the write-ahead log
 * and the snapshot files.
 *
 * Frame layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic "HMR1" — per-record sync marker
 *   4       4     payload length N (u32)
 *   8       4     CRC32 (IEEE, reflected) of type byte + payload
 *   12      1     record type (RecordType)
 *   13      N     payload (BinaryWriter encoding)
 *
 * The per-record magic plus the CRC make torn tails detectable: a
 * reader walking a file stops at the first frame whose magic, length
 * or checksum does not hold, reporting how many bytes were valid —
 * recovery truncates the rest. The payloads themselves are built with
 * BinaryWriter/BinaryReader, a minimal varint-free encoding (fixed
 * little-endian scalars, u32-length-prefixed strings and vectors)
 * chosen so encodings are canonical: the same value always produces
 * the same bytes, which the snapshot bit-identity tests rely on.
 */

#ifndef HIERMEANS_STORE_RECORD_H
#define HIERMEANS_STORE_RECORD_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hiermeans {
namespace store {

/** CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of @p data. */
std::uint32_t crc32(std::string_view data);

/** Typed records; the wire contract of WAL and snapshot files —
 *  values are stable and append-only. */
enum class RecordType : std::uint8_t
{
    SuiteRegistered = 1, ///< a named, versioned manifest.
    ScoreRecorded = 2,   ///< one executed score (report included).
    ConfigChanged = 3,   ///< a store-level setting changed.
    DriftUpdated = 4,    ///< one suite's drift-monitor state.
    SnapshotHeader = 100 ///< first record of a snapshot file.
};

/** True for types this codec version knows how to apply. */
bool knownRecordType(std::uint8_t type);

/** One decoded frame. */
struct Record
{
    RecordType type = RecordType::SuiteRegistered;
    std::string payload;
};

/** Encode one frame (magic + length + CRC + type + payload). */
std::string frameRecord(RecordType type, std::string_view payload);

/** Fixed frame overhead in bytes (everything but the payload). */
inline constexpr std::size_t kFrameOverhead = 13;

/**
 * Walks the frames of one buffer (a WAL or snapshot file image).
 * Iteration stops at the first torn or corrupt frame; validBytes()
 * then names the prefix worth keeping.
 */
class FrameReader
{
  public:
    explicit FrameReader(std::string_view data) : data_(data) {}

    /** Decode the next frame into @p record; false at end-of-valid. */
    bool next(Record &record);

    /** Bytes consumed by successfully decoded frames. */
    std::size_t validBytes() const { return valid_; }

    /** True when next() stopped on a corrupt/torn frame rather than
     *  a clean end of buffer. */
    bool sawCorruption() const { return corrupt_; }

    /** Human-readable reason iff sawCorruption(). */
    const std::string &corruption() const { return corruption_; }

  private:
    bool fail(std::string reason);

    std::string_view data_;
    std::size_t offset_ = 0;
    std::size_t valid_ = 0;
    bool corrupt_ = false;
    std::string corruption_;
};

/** Canonical little-endian payload builder. */
class BinaryWriter
{
  public:
    void u8(std::uint8_t value);
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    void f64(double value);
    void str(std::string_view value);          ///< u32 length + bytes.
    void u64Vec(const std::vector<std::uint64_t> &values);
    void f64Vec(const std::vector<double> &values);

    const std::string &bytes() const { return bytes_; }
    std::string take() { return std::move(bytes_); }

  private:
    std::string bytes_;
};

/** Bounds-checked payload reader; throws InvalidArgument on any
 *  attempt to read past the end (a malformed payload). */
class BinaryReader
{
  public:
    explicit BinaryReader(std::string_view data) : data_(data) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();
    std::vector<std::uint64_t> u64Vec();
    std::vector<double> f64Vec();

    /** True when every byte has been consumed. */
    bool done() const { return offset_ == data_.size(); }

    /** Throws InvalidArgument unless done() — trailing garbage. */
    void expectDone(const char *what) const;

  private:
    void need(std::size_t n) const;

    std::string_view data_;
    std::size_t offset_ = 0;
};

} // namespace store
} // namespace hiermeans

#endif // HIERMEANS_STORE_RECORD_H
