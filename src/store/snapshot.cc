#include "src/store/snapshot.h"

#include <algorithm>

#include "src/util/error.h"
#include "src/util/fault.h"
#include "src/util/file.h"

namespace hiermeans {
namespace store {

namespace {

constexpr const char kPrefix[] = "snapshot.";
constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
constexpr std::size_t kSequenceDigits = 12;

bool
isSnapshotName(const std::string &name)
{
    if (name.size() != kPrefixLen + kSequenceDigits ||
        name.compare(0, kPrefixLen, kPrefix) != 0)
        return false;
    for (std::size_t i = kPrefixLen; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9')
            return false;
    }
    return true;
}

/**
 * Decode one snapshot file into @p state. Returns false (leaving
 * @p state unspecified — the caller discards it) when the file is
 * torn, checksummed wrong, or structurally invalid.
 */
bool
loadSnapshotFile(const std::string &path, StoreState &state,
                 SnapshotLoad &out)
{
    std::string data;
    try {
        data = util::readFile(path);
    } catch (const Error &) {
        return false;
    }

    FrameReader frames(data);
    Record record;
    if (!frames.next(record) ||
        record.type != RecordType::SnapshotHeader)
        return false;

    try {
        const SnapshotHeader header = decodeSnapshotHeader(record.payload);
        state = StoreState(header.limits);
        std::size_t records = 0;
        while (frames.next(record)) {
            state.apply(record);
            ++records;
        }
        if (frames.sawCorruption())
            return false;
        state.setBaseline(header.lastSequence);
        out.lastSequence = header.lastSequence;
        out.records = records;
        return true;
    } catch (const Error &) {
        return false;
    }
}

} // namespace

std::string
snapshotFileName(std::uint64_t sequence)
{
    std::string digits = std::to_string(sequence);
    HM_REQUIRE(digits.size() <= kSequenceDigits,
               "snapshot sequence " << sequence << " too large");
    return std::string(kPrefix) +
           std::string(kSequenceDigits - digits.size(), '0') + digits;
}

std::vector<std::string>
listSnapshots(const std::string &dir)
{
    std::vector<std::string> names;
    for (const std::string &name : util::listDir(dir)) {
        if (isSnapshotName(name))
            names.push_back(name);
    }
    return names; // listDir sorts; padding makes that oldest-first.
}

std::string
writeSnapshot(const std::string &dir, const StoreState &state)
{
    HM_REQUIRE(!HM_FAULT("store.snapshot.write"),
               "snapshot write to `" << dir << "` failed (injected)");
    const std::string name = snapshotFileName(state.lastSequence());
    std::string content =
        frameRecord(RecordType::SnapshotHeader,
                    encodeSnapshotHeader(state.lastSequence(),
                                         state.limits()));
    content += state.encodeSnapshotBody();
    util::writeFileAtomic(dir + "/" + name, content, /*sync=*/true);
    return name;
}

SnapshotLoad
loadLatestSnapshot(const std::string &dir, StoreState &state)
{
    SnapshotLoad load;
    std::vector<std::string> names = listSnapshots(dir);
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
        StoreState candidate;
        if (loadSnapshotFile(dir + "/" + *it, candidate, load)) {
            state = std::move(candidate);
            load.loaded = true;
            load.file = *it;
            return load;
        }
        load.rejected.push_back(*it);
    }
    load.lastSequence = 0;
    load.records = 0;
    return load;
}

std::size_t
removeOldSnapshots(const std::string &dir, const std::string &keepFile)
{
    std::size_t removed = 0;
    for (const std::string &name : listSnapshots(dir)) {
        if (name == keepFile)
            continue;
        util::removeFile(dir + "/" + name);
        ++removed;
    }
    return removed;
}

} // namespace store
} // namespace hiermeans
