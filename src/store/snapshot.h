/**
 * @file
 * Snapshot files: a whole StoreState captured as one record stream so
 * recovery can skip replaying the full WAL history.
 *
 * A snapshot file is a SnapshotHeader frame (format version, last
 * sequence, limits) followed by the state's canonical body
 * (StoreState::encodeSnapshotBody). Files are named
 * `snapshot.<sequence>` with the sequence zero-padded so
 * lexicographic order is recovery order, and written through
 * util::writeFileAtomic — a crash mid-snapshot leaves only the old
 * files. Loading walks newest to oldest and falls back past any file
 * that fails its header, CRC, or decode checks, so one bad snapshot
 * degrades recovery, never prevents it.
 */

#ifndef HIERMEANS_STORE_SNAPSHOT_H
#define HIERMEANS_STORE_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/store/state.h"

namespace hiermeans {
namespace store {

/** File name for the snapshot at @p sequence (zero-padded, so the
 *  sorted directory listing is oldest-first). */
std::string snapshotFileName(std::uint64_t sequence);

/** Snapshot file names in @p dir, oldest first. */
std::vector<std::string> listSnapshots(const std::string &dir);

/**
 * Write @p state as `snapshot.<lastSequence>` in @p dir (atomic
 * replace, fsync'd). Returns the file name. Fault point:
 * store.snapshot.write.
 */
std::string writeSnapshot(const std::string &dir, const StoreState &state);

/** What loadLatestSnapshot did. */
struct SnapshotLoad
{
    bool loaded = false;
    std::string file;                  ///< the snapshot that loaded.
    std::uint64_t lastSequence = 0;    ///< its header sequence.
    std::size_t records = 0;           ///< body records applied.
    std::vector<std::string> rejected; ///< corrupt files skipped.
};

/**
 * Load the newest valid snapshot in @p dir into @p state (which must
 * be fresh): the header's limits replace the state's, the body is
 * applied record by record, and the baseline is set to the header's
 * last sequence so a WAL tail overlapping the snapshot double-applies
 * nothing. Corrupt snapshots are skipped (recorded in `rejected`),
 * falling back to the next-newest.
 */
SnapshotLoad loadLatestSnapshot(const std::string &dir, StoreState &state);

/**
 * Delete every snapshot in @p dir other than @p keepFile. Called
 * after a new snapshot commits; the old generations are redundant.
 * Returns how many files were removed.
 */
std::size_t removeOldSnapshots(const std::string &dir,
                               const std::string &keepFile);

} // namespace store
} // namespace hiermeans

#endif // HIERMEANS_STORE_SNAPSHOT_H
