#include "src/store/state.h"

#include <algorithm>

#include "src/scoring/partition.h"
#include "src/util/error.h"

namespace hiermeans {
namespace store {

namespace {

/** Insert @p entry into @p ring keeping ascending sequence order.
 *  Appends in O(1) for the common already-ascending case. */
void
insertSorted(std::deque<HistoryEntry> &ring, HistoryEntry entry)
{
    if (ring.empty() || ring.back().sequence < entry.sequence) {
        ring.push_back(std::move(entry));
        return;
    }
    const auto at = std::upper_bound(
        ring.begin(), ring.end(), entry.sequence,
        [](std::uint64_t sequence, const HistoryEntry &other) {
            return sequence < other.sequence;
        });
    ring.insert(at, std::move(entry));
}

} // namespace

// --- payload codecs --------------------------------------------------

std::size_t
validateConfigChange(const std::string &key, const std::string &value)
{
    HM_REQUIRE(key == "history-capacity" || key == "result-capacity" ||
                   key == "suite-versions",
               "ConfigChanged: unknown key `" << key << "`");
    std::size_t parsed = 0;
    try {
        parsed = static_cast<std::size_t>(std::stoull(value));
    } catch (const std::exception &) {
        throw InvalidArgument("ConfigChanged: value `" + value +
                              "` for `" + key + "` is not a number");
    }
    HM_REQUIRE(parsed >= 1, "ConfigChanged: `" << key
                                               << "` must be >= 1");
    return parsed;
}

std::string
encodeSuiteRegistered(const std::string &name,
                      const SuiteVersion &version)
{
    BinaryWriter writer;
    writer.u64(version.sequence);
    writer.str(name);
    writer.u32(version.version);
    writer.str(version.manifest);
    return writer.take();
}

void
encodeScoreReport(BinaryWriter &writer,
                  const scoring::ScoreReport &report)
{
    writer.u8(static_cast<std::uint8_t>(report.kind));
    writer.u32(static_cast<std::uint32_t>(report.rows.size()));
    for (const scoring::ScoreReportRow &row : report.rows) {
        writer.u64(row.clusterCount);
        std::vector<std::uint64_t> labels;
        labels.reserve(row.partition.size());
        for (const std::size_t label : row.partition.labels())
            labels.push_back(label);
        writer.u64Vec(labels);
        writer.f64(row.scoreA);
        writer.f64(row.scoreB);
        writer.f64(row.ratio);
    }
    writer.f64(report.plainA);
    writer.f64(report.plainB);
    writer.f64(report.plainRatio);
}

scoring::ScoreReport
decodeScoreReport(BinaryReader &reader)
{
    scoring::ScoreReport report;
    const std::uint8_t kind = reader.u8();
    HM_REQUIRE(kind <=
                   static_cast<std::uint8_t>(stats::MeanKind::Harmonic),
               "ScoreReport record: bad mean kind " << int(kind));
    report.kind = static_cast<stats::MeanKind>(kind);
    const std::uint32_t rows = reader.u32();
    report.rows.reserve(rows);
    for (std::uint32_t i = 0; i < rows; ++i) {
        scoring::ScoreReportRow row;
        row.clusterCount =
            static_cast<std::size_t>(reader.u64());
        const std::vector<std::uint64_t> raw = reader.u64Vec();
        std::vector<std::size_t> labels;
        labels.reserve(raw.size());
        for (const std::uint64_t label : raw)
            labels.push_back(static_cast<std::size_t>(label));
        row.partition = scoring::Partition::fromLabels(labels);
        row.scoreA = reader.f64();
        row.scoreB = reader.f64();
        row.ratio = reader.f64();
        report.rows.push_back(std::move(row));
    }
    report.plainA = reader.f64();
    report.plainB = reader.f64();
    report.plainRatio = reader.f64();
    return report;
}

std::string
encodeScoreRecorded(const ScoreRecord &record)
{
    BinaryWriter writer;
    writer.u64(record.sequence);
    writer.str(record.suite);
    writer.u32(record.suiteVersion);
    writer.str(record.id);
    writer.u64(record.fingerprint);
    writer.u64(record.recommendedK);
    writer.f64(record.ratio);
    writer.f64(record.plainRatio);
    writer.f64(record.wallMillis);
    writer.u8(record.report.rows.empty() ? 0 : 1);
    if (!record.report.rows.empty())
        encodeScoreReport(writer, record.report);
    return writer.take();
}

std::string
encodeConfigChanged(const ConfigChange &change)
{
    BinaryWriter writer;
    writer.u64(change.sequence);
    writer.str(change.key);
    writer.str(change.value);
    return writer.take();
}

std::string
encodeDriftUpdated(const DriftStateRecord &record)
{
    BinaryWriter writer;
    writer.u64(record.sequence);
    writer.str(record.suite);
    writer.u8(record.state);
    writer.u64(record.ticks);
    writer.u64(record.observations);
    writer.u32(record.calmStreak);
    writer.u64(record.lastSeenSequence);
    writer.f64(record.churn);
    writer.f64(record.stability);
    writer.f64(record.qeRatio);
    writer.u32(record.metricWindow);
    writer.f64(record.publishedQe);
    writer.f64(record.publishedMean);
    writer.u32(record.somRows);
    writer.u32(record.somCols);
    writer.u32(record.dim);
    writer.f64Vec(record.onlineWeights);
    writer.f64Vec(record.publishedWeights);
    return writer.take();
}

std::string
encodeSnapshotHeader(std::uint64_t last_sequence,
                     const StoreLimits &limits)
{
    BinaryWriter writer;
    writer.u32(kFormatVersion);
    writer.u64(last_sequence);
    writer.u64(limits.historyCapacity);
    writer.u64(limits.resultCapacity);
    writer.u64(limits.suiteVersions);
    return writer.take();
}

SnapshotHeader
decodeSnapshotHeader(const std::string &payload)
{
    BinaryReader reader(payload);
    SnapshotHeader header;
    header.formatVersion = reader.u32();
    HM_REQUIRE(header.formatVersion == kFormatVersion,
               "snapshot format version " << header.formatVersion
                                          << " unsupported (expected "
                                          << kFormatVersion << ")");
    header.lastSequence = reader.u64();
    header.limits.historyCapacity =
        static_cast<std::size_t>(reader.u64());
    header.limits.resultCapacity =
        static_cast<std::size_t>(reader.u64());
    header.limits.suiteVersions =
        static_cast<std::size_t>(reader.u64());
    reader.expectDone("SnapshotHeader");
    return header;
}

// --- StoreState ------------------------------------------------------

void
StoreState::setBaseline(std::uint64_t sequence)
{
    baseline_ = sequence;
    lastSequence_ = std::max(lastSequence_, sequence);
}

bool
StoreState::apply(const Record &record)
{
    BinaryReader reader(record.payload);
    // Peek the sequence (first field of every mutating payload)
    // before decoding the rest: the idempotence guard.
    const std::uint64_t sequence = reader.u64();
    if (sequence <= baseline_)
        return false;
    pendingSequence_ = sequence;

    switch (record.type) {
    case RecordType::SuiteRegistered:
        applySuiteRegistered(reader);
        break;
    case RecordType::ScoreRecorded:
        applyScoreRecorded(reader);
        break;
    case RecordType::ConfigChanged:
        applyConfigChanged(reader);
        break;
    case RecordType::DriftUpdated:
        applyDriftUpdated(reader);
        break;
    case RecordType::SnapshotHeader:
        throw InvalidArgument(
            "StoreState::apply: SnapshotHeader is not appliable");
    }
    lastSequence_ = std::max(lastSequence_, sequence);
    return true;
}

void
StoreState::applySuiteRegistered(BinaryReader &reader)
{
    SuiteVersion version;
    version.sequence = pendingSequence_;
    const std::string name = reader.str();
    version.version = reader.u32();
    version.manifest = reader.str();
    reader.expectDone("SuiteRegistered");

    Suite &suite = suites_[name];
    suite.name = name;
    // Re-registration of an existing version replaces it (recovery
    // replays are guarded by the baseline, so this only happens when
    // a caller explicitly re-registers); otherwise versions append
    // in ascending order.
    const auto at = std::find_if(
        suite.versions.begin(), suite.versions.end(),
        [&](const SuiteVersion &v) {
            return v.version == version.version;
        });
    if (at != suite.versions.end()) {
        *at = std::move(version);
    } else {
        suite.versions.push_back(std::move(version));
        std::sort(suite.versions.begin(), suite.versions.end(),
                  [](const SuiteVersion &a, const SuiteVersion &b) {
                      return a.version < b.version;
                  });
    }
    while (suite.versions.size() > limits_.suiteVersions)
        suite.versions.erase(suite.versions.begin());
}

void
StoreState::applyScoreRecorded(BinaryReader &reader)
{
    ScoreRecord record;
    record.sequence = pendingSequence_;
    record.suite = reader.str();
    record.suiteVersion = reader.u32();
    record.id = reader.str();
    record.fingerprint = reader.u64();
    record.recommendedK = reader.u64();
    record.ratio = reader.f64();
    record.plainRatio = reader.f64();
    record.wallMillis = reader.f64();
    const bool has_report = reader.u8() != 0;
    if (has_report)
        record.report = decodeScoreReport(reader);
    reader.expectDone("ScoreRecorded");

    HistoryEntry entry;
    entry.sequence = record.sequence;
    entry.suite = record.suite;
    entry.suiteVersion = record.suiteVersion;
    entry.id = record.id;
    entry.fingerprint = record.fingerprint;
    entry.recommendedK = record.recommendedK;
    entry.ratio = record.ratio;
    entry.plainRatio = record.plainRatio;
    entry.wallMillis = record.wallMillis;
    std::deque<HistoryEntry> &ring = history_[record.suite];
    insertSorted(ring, std::move(entry));
    trimHistory(ring);

    if (has_report) {
        // Latest execution of a fingerprint wins; the superseded
        // record's sequence slot is released.
        const auto it = resultsByFingerprint_.find(record.fingerprint);
        if (it != resultsByFingerprint_.end())
            resultBySequence_.erase(it->second.sequence);
        resultBySequence_[record.sequence] = record.fingerprint;
        resultsByFingerprint_[record.fingerprint] = std::move(record);
        trimResults();
    }
}

void
StoreState::applyConfigChanged(BinaryReader &reader)
{
    const std::string key = reader.str();
    const std::string value = reader.str();
    reader.expectDone("ConfigChanged");

    const std::size_t parsed = validateConfigChange(key, value);
    if (key == "history-capacity") {
        limits_.historyCapacity = parsed;
        trimAllHistory();
    } else if (key == "result-capacity") {
        limits_.resultCapacity = parsed;
        trimResults();
    } else if (key == "suite-versions") {
        limits_.suiteVersions = parsed;
        for (auto &[name, suite] : suites_) {
            while (suite.versions.size() > limits_.suiteVersions)
                suite.versions.erase(suite.versions.begin());
        }
    } else {
        throw InvalidArgument("ConfigChanged: unknown key `" + key +
                              "`");
    }
}

void
StoreState::applyDriftUpdated(BinaryReader &reader)
{
    DriftStateRecord record;
    record.sequence = pendingSequence_;
    record.suite = reader.str();
    record.state = reader.u8();
    record.ticks = reader.u64();
    record.observations = reader.u64();
    record.calmStreak = reader.u32();
    record.lastSeenSequence = reader.u64();
    record.churn = reader.f64();
    record.stability = reader.f64();
    record.qeRatio = reader.f64();
    record.metricWindow = reader.u32();
    record.publishedQe = reader.f64();
    record.publishedMean = reader.f64();
    record.somRows = reader.u32();
    record.somCols = reader.u32();
    record.dim = reader.u32();
    record.onlineWeights = reader.f64Vec();
    record.publishedWeights = reader.f64Vec();
    reader.expectDone("DriftUpdated");
    HM_REQUIRE(record.state <= 2, "DriftUpdated: bad state "
                                      << int(record.state));
    HM_REQUIRE(record.onlineWeights.size() ==
                   std::size_t(record.somRows) * record.somCols *
                       record.dim,
               "DriftUpdated: online codebook shape mismatch");
    HM_REQUIRE(record.publishedWeights.empty() ||
                   record.publishedWeights.size() ==
                       record.onlineWeights.size(),
               "DriftUpdated: published codebook shape mismatch");

    // Latest state wins; stale replays (out-of-order replication
    // batches) must not roll a suite's machine backwards.
    const auto it = drift_.find(record.suite);
    if (it != drift_.end() && it->second.sequence >= record.sequence)
        return;
    drift_[record.suite] = std::move(record);
}

void
StoreState::trimHistory(std::deque<HistoryEntry> &ring)
{
    while (ring.size() > limits_.historyCapacity)
        ring.pop_front();
}

void
StoreState::trimAllHistory()
{
    for (auto &[suite, ring] : history_)
        trimHistory(ring);
}

void
StoreState::trimResults()
{
    while (resultBySequence_.size() > limits_.resultCapacity) {
        const auto oldest = resultBySequence_.begin();
        resultsByFingerprint_.erase(oldest->second);
        resultBySequence_.erase(oldest);
    }
}

std::uint32_t
StoreState::latestVersion(const std::string &name) const
{
    const auto it = suites_.find(name);
    if (it == suites_.end() || it->second.versions.empty())
        return 0;
    return it->second.versions.back().version;
}

const SuiteVersion *
StoreState::findSuite(const std::string &name,
                      std::uint32_t version) const
{
    const auto it = suites_.find(name);
    if (it == suites_.end() || it->second.versions.empty())
        return nullptr;
    if (version == 0)
        return &it->second.versions.back();
    for (const SuiteVersion &v : it->second.versions) {
        if (v.version == version)
            return &v;
    }
    return nullptr;
}

std::vector<HistoryEntry>
StoreState::history(const std::string &suite) const
{
    const auto it = history_.find(suite);
    if (it == history_.end())
        return {};
    return {it->second.begin(), it->second.end()};
}

std::map<std::string, std::size_t>
StoreState::historySizes() const
{
    std::map<std::string, std::size_t> sizes;
    for (const auto &[suite, ring] : history_)
        sizes[suite] = ring.size();
    return sizes;
}

const DriftStateRecord *
StoreState::driftState(const std::string &suite) const
{
    const auto it = drift_.find(suite);
    return it == drift_.end() ? nullptr : &it->second;
}

std::vector<const ScoreRecord *>
StoreState::results() const
{
    std::vector<const ScoreRecord *> records;
    records.reserve(resultBySequence_.size());
    for (const auto &[sequence, fingerprint] : resultBySequence_)
        records.push_back(&resultsByFingerprint_.at(fingerprint));
    return records;
}

std::string
StoreState::encodeSnapshotBody() const
{
    std::string body;

    // 1. Suites: name ascending, versions ascending.
    for (const auto &[name, suite] : suites_) {
        for (const SuiteVersion &version : suite.versions)
            body += frameRecord(RecordType::SuiteRegistered,
                                encodeSuiteRegistered(name, version));
    }

    // 2. Full score records, ascending by sequence.
    for (const auto &[sequence, fingerprint] : resultBySequence_)
        body += frameRecord(
            RecordType::ScoreRecorded,
            encodeScoreRecorded(resultsByFingerprint_.at(fingerprint)));

    // 3. History entries whose full record is gone: re-encode
    //    report-stripped, ascending by sequence across all rings.
    std::vector<const HistoryEntry *> stripped;
    for (const auto &[suite, ring] : history_) {
        for (const HistoryEntry &entry : ring) {
            const auto it = resultBySequence_.find(entry.sequence);
            if (it == resultBySequence_.end())
                stripped.push_back(&entry);
        }
    }
    std::sort(stripped.begin(), stripped.end(),
              [](const HistoryEntry *a, const HistoryEntry *b) {
                  return a->sequence < b->sequence;
              });
    for (const HistoryEntry *entry : stripped) {
        ScoreRecord record;
        record.sequence = entry->sequence;
        record.suite = entry->suite;
        record.suiteVersion = entry->suiteVersion;
        record.id = entry->id;
        record.fingerprint = entry->fingerprint;
        record.recommendedK = entry->recommendedK;
        record.ratio = entry->ratio;
        record.plainRatio = entry->plainRatio;
        record.wallMillis = entry->wallMillis;
        body += frameRecord(RecordType::ScoreRecorded,
                            encodeScoreRecorded(record));
    }

    // 4. Drift state, suite name ascending (one latest record each).
    for (const auto &[suite, record] : drift_)
        body += frameRecord(RecordType::DriftUpdated,
                            encodeDriftUpdated(record));
    return body;
}

} // namespace store
} // namespace hiermeans
