/**
 * @file
 * The in-memory image of the durable store, plus the typed record
 * payload codecs that mutate it.
 *
 * Everything the store persists flows through exactly one path:
 * a typed Record (record.h) whose payload encodes one of the structs
 * below, applied to a StoreState by `apply()`. Live writes append the
 * record to the WAL and then apply it; recovery replays the snapshot
 * body and the WAL tail through the same apply() — so the recovered
 * state matches the pre-crash committed state by construction, which
 * `encodeSnapshotBody` makes checkable: the encoding is canonical
 * (collections ordered by name/sequence, never by apply order), so
 * equal states produce equal bytes regardless of how they were
 * reached.
 *
 * Idempotence: every mutating record carries a monotonically
 * increasing sequence number. Loading a snapshot sets a baseline;
 * apply() ignores records at or below it — a WAL tail that overlaps
 * the snapshot (crash between snapshot rename and WAL truncation)
 * double-applies nothing, and replayed history never duplicates.
 */

#ifndef HIERMEANS_STORE_STATE_H
#define HIERMEANS_STORE_STATE_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/scoring/score_report.h"
#include "src/store/record.h"

namespace hiermeans {
namespace store {

/** Snapshot/WAL format version (bumped on incompatible layout). */
inline constexpr std::uint32_t kFormatVersion = 1;

/** One registered version of a named manifest. */
struct SuiteVersion
{
    std::uint64_t sequence = 0;
    std::uint32_t version = 1;
    std::string manifest; ///< the manifest document text, verbatim.
};

/** A named suite: every retained version, ascending. */
struct Suite
{
    std::string name;
    std::vector<SuiteVersion> versions;
};

/**
 * One executed score, as persisted. `report` is included so a
 * restart can re-serve the score from cache without re-executing the
 * pipeline; history-only records (ring entries whose full report was
 * evicted from the result set) carry an empty report.
 */
struct ScoreRecord
{
    std::uint64_t sequence = 0;
    std::string suite; ///< "" for ad-hoc (non-suite) scores.
    std::uint32_t suiteVersion = 0;
    std::string id;
    std::uint64_t fingerprint = 0;
    std::uint64_t recommendedK = 0;
    double ratio = 0.0;      ///< recommended-row A/B ratio.
    double plainRatio = 0.0; ///< the plain-mean ratio.
    double wallMillis = 0.0;
    scoring::ScoreReport report; ///< empty rows = history-only.
};

/** The history ring's view of one score (the report dropped). */
struct HistoryEntry
{
    std::uint64_t sequence = 0;
    std::string suite;
    std::uint32_t suiteVersion = 0;
    std::string id;
    std::uint64_t fingerprint = 0;
    std::uint64_t recommendedK = 0;
    double ratio = 0.0;
    double plainRatio = 0.0;
    double wallMillis = 0.0;
};

/** A store-level setting change (persisted for audit + replay). */
struct ConfigChange
{
    std::uint64_t sequence = 0;
    std::string key;
    std::string value;
};

/**
 * One suite's drift-monitor state, as persisted (DriftUpdated). The
 * store treats it as opaque latest-wins state keyed by suite; the
 * drift subsystem (src/drift) owns the semantics. Carrying the full
 * online + published codebooks makes recovery bit-identical: a
 * restarted monitor resumes from exactly the machine the crash
 * interrupted, and replication ships drift state to followers for
 * free.
 */
struct DriftStateRecord
{
    std::uint64_t sequence = 0;
    std::string suite;
    std::uint8_t state = 0; ///< drift::DriftState numeric value.
    std::uint64_t ticks = 0;
    std::uint64_t observations = 0;
    std::uint32_t calmStreak = 0;
    /** Highest history-ring sequence folded into the online map. */
    std::uint64_t lastSeenSequence = 0;
    double churn = 0.0;
    double stability = 1.0;
    double qeRatio = 1.0;
    std::uint32_t metricWindow = 0;
    double publishedQe = 0.0;
    double publishedMean = 0.0;
    std::uint32_t somRows = 0;
    std::uint32_t somCols = 0;
    std::uint32_t dim = 0;
    std::vector<double> onlineWeights;
    std::vector<double> publishedWeights; ///< empty = never published.

    bool operator==(const DriftStateRecord &) const = default;
};

/** Retention bounds; changeable at runtime through ConfigChanged
 *  records (keys "history-capacity", "result-capacity",
 *  "suite-versions"). */
struct StoreLimits
{
    std::size_t historyCapacity = 256; ///< entries per suite ring.
    std::size_t resultCapacity = 512;  ///< retained full reports.
    std::size_t suiteVersions = 16;    ///< versions kept per name.

    bool operator==(const StoreLimits &) const = default;
};

// --- payload codecs --------------------------------------------------

/**
 * Validate a ConfigChanged key/value pair (known key, numeric value
 * >= 1) without applying it; returns the parsed value, throws
 * InvalidArgument otherwise. The live write path calls this BEFORE
 * the record reaches the WAL — an invalid change must never become
 * durable, or recovery would replay the throw at every boot.
 */
std::size_t validateConfigChange(const std::string &key,
                                 const std::string &value);

std::string encodeSuiteRegistered(const std::string &name,
                                  const SuiteVersion &version);
std::string encodeScoreRecorded(const ScoreRecord &record);
std::string encodeConfigChanged(const ConfigChange &change);
std::string encodeDriftUpdated(const DriftStateRecord &record);
std::string encodeSnapshotHeader(std::uint64_t last_sequence,
                                 const StoreLimits &limits);

/** Decoded SnapshotHeader payload. */
struct SnapshotHeader
{
    std::uint32_t formatVersion = 0;
    std::uint64_t lastSequence = 0;
    StoreLimits limits;
};
SnapshotHeader decodeSnapshotHeader(const std::string &payload);

/** Serialize a ScoreReport canonically (partitions as label
 *  vectors). Shared by ScoreRecorded payloads and tests. */
void encodeScoreReport(BinaryWriter &writer,
                       const scoring::ScoreReport &report);
scoring::ScoreReport decodeScoreReport(BinaryReader &reader);

/** The store's whole mutable image. Not thread-safe — the owning
 *  StateStore serializes access. */
class StoreState
{
  public:
    StoreState() = default;
    explicit StoreState(StoreLimits limits) : limits_(limits) {}

    /**
     * Apply one record. Returns false (and changes nothing) when the
     * record's sequence is at or below the baseline — the replay
     * idempotence guard. Throws InvalidArgument on a malformed
     * payload or a SnapshotHeader (headers are consumed by snapshot
     * loading, not apply).
     */
    bool apply(const Record &record);

    /** Sequences at or below this are already reflected (set by
     *  snapshot loading); apply() skips them. */
    void setBaseline(std::uint64_t sequence);
    std::uint64_t baseline() const { return baseline_; }

    /** Highest sequence reflected in the state. */
    std::uint64_t lastSequence() const { return lastSequence_; }

    /** The sequence a live writer should stamp next. */
    std::uint64_t nextSequence() const { return lastSequence_ + 1; }

    // --- suite registry ---------------------------------------------
    const std::map<std::string, Suite> &suites() const { return suites_; }

    /** Newest version number of @p name; 0 when unregistered. */
    std::uint32_t latestVersion(const std::string &name) const;

    /** Manifest of @p name at @p version (0 = newest); nullptr when
     *  the name or version is unknown or expired. */
    const SuiteVersion *findSuite(const std::string &name,
                                  std::uint32_t version = 0) const;

    // --- score history ----------------------------------------------
    /** History ring for @p suite ("" = ad-hoc), oldest first. */
    std::vector<HistoryEntry> history(const std::string &suite) const;

    /** Suite name -> entries currently retained (all rings). */
    std::map<std::string, std::size_t> historySizes() const;

    // --- drift state ------------------------------------------------
    /** Latest persisted drift state per suite (DriftUpdated wins). */
    const std::map<std::string, DriftStateRecord> &driftStates() const
    {
        return drift_;
    }

    /** Latest drift state of @p suite; nullptr when never recorded. */
    const DriftStateRecord *driftState(const std::string &suite) const;

    // --- warm-start results -----------------------------------------
    /** Retained full score records, ascending by sequence. */
    std::vector<const ScoreRecord *> results() const;

    std::size_t resultCount() const { return resultBySequence_.size(); }

    const StoreLimits &limits() const { return limits_; }

    /**
     * Canonical encoding of the full state as a flat record stream
     * (no header frame): SuiteRegistered records (name asc, version
     * asc), full ScoreRecorded records (sequence asc), history-only
     * ScoreRecorded records (sequence asc), then DriftUpdated
     * records (suite name asc). Equal states produce equal bytes; a
     * SnapshotHeader frame followed by this body is exactly a
     * snapshot file.
     */
    std::string encodeSnapshotBody() const;

  private:
    void applySuiteRegistered(BinaryReader &reader);
    void applyScoreRecorded(BinaryReader &reader);
    void applyConfigChanged(BinaryReader &reader);
    void applyDriftUpdated(BinaryReader &reader);
    void trimHistory(std::deque<HistoryEntry> &ring);
    void trimResults();
    void trimAllHistory();

    StoreLimits limits_;
    std::uint64_t baseline_ = 0;
    std::uint64_t lastSequence_ = 0;
    /** Sequence of the record apply() is mid-way through (it is the
     *  first payload field, consumed before dispatch). */
    std::uint64_t pendingSequence_ = 0;
    std::map<std::string, Suite> suites_;
    /** suite -> ring, entries ascending by sequence. */
    std::map<std::string, std::deque<HistoryEntry>> history_;
    std::map<std::uint64_t, ScoreRecord> resultsByFingerprint_;
    /** sequence -> fingerprint: canonical result order + trim order. */
    std::map<std::uint64_t, std::uint64_t> resultBySequence_;
    /** suite -> latest drift state (DriftUpdated, latest wins). */
    std::map<std::string, DriftStateRecord> drift_;
};

} // namespace store
} // namespace hiermeans

#endif // HIERMEANS_STORE_STATE_H
