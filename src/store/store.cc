#include "src/store/store.h"

#include <exception>

#include "src/util/error.h"
#include "src/util/file.h"

namespace hiermeans {
namespace store {

const char *
recoveryOutcomeName(RecoveryOutcome outcome)
{
    switch (outcome) {
    case RecoveryOutcome::CleanStart:
        return "clean_start";
    case RecoveryOutcome::Clean:
        return "clean";
    case RecoveryOutcome::TruncatedTail:
        return "truncated_tail";
    case RecoveryOutcome::SnapshotFallback:
        return "snapshot_fallback";
    case RecoveryOutcome::Count_:
        break;
    }
    return "unknown";
}

StateStore::StateStore(Config config)
    : config_(std::move(config)), state_(config_.limits)
{
    HM_REQUIRE(!config_.dataDir.empty(),
               "StateStore: dataDir must not be empty");
}

StateStore::~StateStore()
{
    try {
        close();
    } catch (const std::exception &) {
        // Destructor close is best-effort; the WAL already holds
        // everything a restart needs.
    }
}

RecoveryInfo
StateStore::open()
{
    std::lock_guard<std::mutex> lock(mutex_);
    HM_REQUIRE(wal_ == nullptr, "StateStore::open called twice");
    util::ensureDir(config_.dataDir);

    // 1. Newest valid snapshot (falling back past corrupt ones).
    const SnapshotLoad snapshot =
        loadLatestSnapshot(config_.dataDir, state_);
    recovery_.snapshotLoaded = snapshot.loaded;
    recovery_.snapshotFile = snapshot.file;
    recovery_.snapshotRecords = snapshot.records;
    recovery_.snapshotsRejected = snapshot.rejected.size();
    if (!snapshot.loaded)
        state_ = StoreState(config_.limits);

    // 2. WAL tail through the same apply() path; the baseline set by
    //    the snapshot makes an overlapping tail idempotent.
    const std::string wal_path = config_.dataDir + "/wal.log";
    const ReplayResult replay =
        replayWal(wal_path, [this](const Record &record) {
            if (state_.apply(record))
                ++recovery_.walApplied;
        });
    recovery_.walRecords = replay.records;
    recovery_.walTorn = replay.torn;
    recovery_.tornReason = replay.reason;

    // 3. A torn tail is cut before the writer reopens the file.
    if (replay.torn) {
        recovery_.walBytesDiscarded =
            replay.totalBytes - replay.validBytes;
        truncateWalTail(wal_path, replay.validBytes);
    }

    recovery_.lastSequence = state_.lastSequence();
    const bool touched_disk = snapshot.loaded || replay.totalBytes > 0 ||
                              !snapshot.rejected.empty();
    if (replay.torn)
        recovery_.outcome = RecoveryOutcome::TruncatedTail;
    else if (!snapshot.rejected.empty())
        recovery_.outcome = RecoveryOutcome::SnapshotFallback;
    else if (touched_disk)
        recovery_.outcome = RecoveryOutcome::Clean;
    else
        recovery_.outcome = RecoveryOutcome::CleanStart;

    wal_ = std::make_unique<WalWriter>(
        wal_path, WalWriter::Config{config_.fsyncEvery});
    lastSnapshotSequence_ = snapshot.loaded ? snapshot.lastSequence : 0;
    snapshotTime_ = std::chrono::steady_clock::now();
    return recovery_;
}

bool
StateStore::isOpen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return wal_ != nullptr;
}

void
StateStore::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (wal_ == nullptr)
        return;
    if (state_.lastSequence() > lastSnapshotSequence_)
        snapshotLocked();
    wal_.reset();
}

void
StateStore::commit(RecordType type, const std::string &payload)
{
    HM_REQUIRE(wal_ != nullptr, "StateStore used before open()");
    wal_->append(type, payload);
    const bool applied = state_.apply(Record{type, payload});
    HM_ASSERT(applied, "freshly stamped record below baseline");
    ++sinceSnapshot_;
    if (config_.replicationTail > 0) {
        tail_.push_back(
            {state_.lastSequence(), frameRecord(type, payload)});
        while (tail_.size() > config_.replicationTail)
            tail_.pop_front();
    }
}

SuiteVersion
StateStore::registerSuite(const std::string &name,
                          const std::string &manifest)
{
    HM_REQUIRE(!name.empty(), "suite name must not be empty");
    HM_REQUIRE(!manifest.empty(),
               "suite `" << name << "`: manifest must not be empty");
    std::lock_guard<std::mutex> lock(mutex_);
    SuiteVersion version;
    version.sequence = state_.nextSequence();
    version.version = state_.latestVersion(name) + 1;
    version.manifest = manifest;
    commit(RecordType::SuiteRegistered,
           encodeSuiteRegistered(name, version));
    maybeSnapshot();
    return version;
}

StateStore::RegisterOutcome
StateStore::registerSuiteVersion(const std::string &name,
                                 const std::string &manifest,
                                 std::uint64_t requested_version)
{
    HM_REQUIRE(!name.empty(), "suite name must not be empty");
    HM_REQUIRE(!manifest.empty(),
               "suite `" << name << "`: manifest must not be empty");
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t latest = state_.latestVersion(name);
    RegisterOutcome outcome;
    if (requested_version != 0 && requested_version <= latest) {
        const SuiteVersion *existing =
            state_.findSuite(name, requested_version);
        if (existing != nullptr && existing->manifest == manifest) {
            outcome.version = *existing; // idempotent replay, no WAL write.
            return outcome;
        }
        // Different payload — or a version compacted out of the
        // retained window, which we can no longer prove identical.
        outcome.conflict = true;
        return outcome;
    }
    if (requested_version > latest + 1) {
        outcome.gap = true;
        outcome.version.version = latest; // reported in the error.
        return outcome;
    }
    outcome.version.sequence = state_.nextSequence();
    outcome.version.version = latest + 1;
    outcome.version.manifest = manifest;
    commit(RecordType::SuiteRegistered,
           encodeSuiteRegistered(name, outcome.version));
    maybeSnapshot();
    outcome.created = true;
    return outcome;
}

bool
StateStore::recordScore(ScoreRecord record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    record.sequence = state_.nextSequence();
    try {
        commit(RecordType::ScoreRecorded, encodeScoreRecorded(record));
    } catch (const Error &) {
        return false; // counted by the WAL writer; response unaffected.
    }
    maybeSnapshot();
    return true;
}

bool
StateStore::recordDriftState(DriftStateRecord record)
{
    HM_REQUIRE(!record.suite.empty(),
               "recordDriftState: suite must not be empty");
    std::lock_guard<std::mutex> lock(mutex_);
    record.sequence = state_.nextSequence();
    try {
        commit(RecordType::DriftUpdated, encodeDriftUpdated(record));
    } catch (const Error &) {
        return false; // counted by the WAL writer; monitor unaffected.
    }
    maybeSnapshot();
    return true;
}

void
StateStore::changeConfig(const std::string &key, const std::string &value)
{
    // Reject bad changes before they become durable: a record that
    // cannot apply would otherwise replay its throw at every boot.
    validateConfigChange(key, value);
    std::lock_guard<std::mutex> lock(mutex_);
    ConfigChange change;
    change.sequence = state_.nextSequence();
    change.key = key;
    change.value = value;
    commit(RecordType::ConfigChanged, encodeConfigChanged(change));
    maybeSnapshot();
}

std::uint64_t
StateStore::snapshotNow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    HM_REQUIRE(wal_ != nullptr, "StateStore used before open()");
    return snapshotLocked();
}

std::uint64_t
StateStore::snapshotLocked()
{
    const std::string name = writeSnapshot(config_.dataDir, state_);
    // The snapshot is durable; the log it covers is now redundant.
    if (wal_ != nullptr)
        wal_->reset();
    removeOldSnapshots(config_.dataDir, name);
    ++snapshotsWritten_;
    sinceSnapshot_ = 0;
    lastSnapshotSequence_ = state_.lastSequence();
    snapshotTime_ = std::chrono::steady_clock::now();
    return state_.lastSequence();
}

void
StateStore::maybeSnapshot()
{
    if (config_.snapshotEvery == 0 ||
        sinceSnapshot_ < config_.snapshotEvery)
        return;
    try {
        snapshotLocked();
    } catch (const Error &) {
        ++snapshotFailures_;
        sinceSnapshot_ = 0; // back off a full cadence before retrying.
    }
}

std::vector<HistoryEntry>
StateStore::history(const std::string &suite) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_.history(suite);
}

std::vector<Suite>
StateStore::suites() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Suite> copies;
    copies.reserve(state_.suites().size());
    for (const auto &[name, suite] : state_.suites())
        copies.push_back(suite);
    return copies;
}

std::optional<SuiteVersion>
StateStore::resolveSuite(const std::string &name,
                         std::uint32_t version) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const SuiteVersion *found = state_.findSuite(name, version);
    if (found == nullptr)
        return std::nullopt;
    return *found;
}

std::vector<ScoreRecord>
StateStore::scoreRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ScoreRecord> copies;
    copies.reserve(state_.resultCount());
    for (const ScoreRecord *record : state_.results())
        copies.push_back(*record);
    return copies;
}

std::vector<DriftStateRecord>
StateStore::driftStates() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<DriftStateRecord> copies;
    copies.reserve(state_.driftStates().size());
    for (const auto &[suite, record] : state_.driftStates())
        copies.push_back(record);
    return copies;
}

std::optional<DriftStateRecord>
StateStore::driftState(const std::string &suite) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const DriftStateRecord *found = state_.driftState(suite);
    if (found == nullptr)
        return std::nullopt;
    return *found;
}

std::uint64_t
StateStore::lastSequence() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_.lastSequence();
}

std::string
StateStore::encodeStateBody() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_.encodeSnapshotBody();
}

std::optional<ReplicationBatch>
StateStore::framesSince(std::uint64_t afterSequence) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ReplicationBatch batch;
    batch.lastSequence = state_.lastSequence();
    if (afterSequence >= state_.lastSequence())
        return batch; // caught up; nothing to ship.
    // Commit sequences are contiguous, so the tail covers the delta
    // exactly when its oldest frame starts at afterSequence + 1 or
    // earlier.
    if (tail_.empty() || tail_.front().sequence > afterSequence + 1)
        return std::nullopt; // compacted away: snapshot catch-up.
    for (const TailFrame &frame : tail_) {
        if (frame.sequence <= afterSequence)
            continue;
        batch.frames += frame.framed;
        ++batch.records;
    }
    batch.lastSequence = tail_.back().sequence;
    return batch;
}

std::string
StateStore::snapshotImage() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return frameRecord(RecordType::SnapshotHeader,
                       encodeSnapshotHeader(state_.lastSequence(),
                                            state_.limits())) +
           state_.encodeSnapshotBody();
}

StoreMetrics
StateStore::metrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StoreMetrics m;
    if (wal_ != nullptr) {
        const WalWriter::Counters &wal = wal_->counters();
        m.walRecords = wal.records;
        m.walBytes = wal.bytes;
        m.walFsyncs = wal.fsyncs;
        m.walAppendFailures = wal.appendFailures;
        m.walSizeBytes = wal_->sizeBytes();
    }
    m.snapshotsWritten = snapshotsWritten_;
    m.snapshotFailures = snapshotFailures_;
    m.sinceSnapshotSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      snapshotTime_)
            .count();
    m.recoveryOutcome = recovery_.outcome;
    m.recoveredRecords =
        recovery_.snapshotRecords + recovery_.walApplied;
    m.recoveryDiscardedBytes = recovery_.walBytesDiscarded;
    m.lastSequence = state_.lastSequence();
    m.suiteCount = state_.suites().size();
    std::uint64_t history_total = 0;
    for (const auto &[suite, size] : state_.historySizes())
        history_total += size;
    m.historyEntries = history_total;
    m.resultCount = state_.resultCount();
    return m;
}

} // namespace store
} // namespace hiermeans
