/**
 * @file
 * StateStore: the crash-safe durable store mounted by `hmserved
 * --data-dir`. One directory holds:
 *
 *   wal.log            append-only framed records (wal.h)
 *   snapshot.<seq>     whole-state captures (snapshot.h)
 *
 * Write path: every mutation is encoded as a typed record, appended
 * to the WAL (fsync per cadence), and only then applied to the
 * in-memory StoreState — so the in-memory image never runs ahead of
 * what the disk can reconstruct. Every `snapshotEvery` records the
 * store writes a fresh snapshot, truncates the WAL, and deletes older
 * snapshot generations (compaction).
 *
 * Recovery (open()): load the newest valid snapshot, replay the WAL
 * tail through the same apply() path (the sequence baseline makes an
 * overlapping tail idempotent), CRC-detect any torn final record and
 * truncate it away. The outcome — clean, truncated tail, snapshot
 * fallback — is kept for /metrics.
 *
 * Failure policy: suite registration and config changes throw when
 * the WAL rejects them (the caller's request *is* the persistence).
 * Score recording is best-effort — the score was already computed
 * and served, so a WAL failure is counted and reported, never
 * propagated into the response.
 */

#ifndef HIERMEANS_STORE_STORE_H
#define HIERMEANS_STORE_STORE_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/store/snapshot.h"
#include "src/store/state.h"
#include "src/store/wal.h"

namespace hiermeans {
namespace store {

/** How recovery went; one-hot in the /metrics exposition. */
enum class RecoveryOutcome
{
    CleanStart = 0,    ///< empty data dir, nothing to recover.
    Clean,             ///< snapshot and/or WAL replayed with no damage.
    TruncatedTail,     ///< a torn WAL tail was detected and cut.
    SnapshotFallback,  ///< >=1 corrupt snapshot skipped during load.
    Count_
};

const char *recoveryOutcomeName(RecoveryOutcome outcome);

/** Everything open() learned while rebuilding the state. */
struct RecoveryInfo
{
    RecoveryOutcome outcome = RecoveryOutcome::CleanStart;
    bool snapshotLoaded = false;
    std::string snapshotFile;
    std::size_t snapshotRecords = 0;    ///< records applied from it.
    std::size_t snapshotsRejected = 0;  ///< corrupt files skipped.
    std::size_t walRecords = 0;         ///< frames decoded from WAL.
    std::size_t walApplied = 0;         ///< survived the baseline guard.
    bool walTorn = false;
    std::string tornReason;
    std::size_t walBytesDiscarded = 0;  ///< torn tail cut by truncate.
    std::uint64_t lastSequence = 0;     ///< state after recovery.
};

/** Point-in-time store counters for the /metrics exposition. */
struct StoreMetrics
{
    // WAL (cumulative since open()).
    std::uint64_t walRecords = 0;
    std::uint64_t walBytes = 0;
    std::uint64_t walFsyncs = 0;
    std::uint64_t walAppendFailures = 0;
    std::uint64_t walSizeBytes = 0; ///< current file size (gauge).
    // Snapshots.
    std::uint64_t snapshotsWritten = 0;
    std::uint64_t snapshotFailures = 0;
    double sinceSnapshotSeconds = 0.0; ///< steady-clock age (gauge).
    // Recovery (fixed after open()).
    RecoveryOutcome recoveryOutcome = RecoveryOutcome::CleanStart;
    std::uint64_t recoveredRecords = 0; ///< snapshot + WAL applied.
    std::uint64_t recoveryDiscardedBytes = 0;
    // State gauges.
    std::uint64_t lastSequence = 0;
    std::uint64_t suiteCount = 0;
    std::uint64_t historyEntries = 0; ///< across every ring.
    std::uint64_t resultCount = 0;    ///< warm-startable reports.
};

/** A run of committed records in wire (framed) form, ready to ship
 *  to a replication follower. */
struct ReplicationBatch
{
    std::uint64_t lastSequence = 0; ///< sequence of the last frame.
    std::size_t records = 0;        ///< frames in the batch.
    std::string frames;             ///< concatenated framed records.
};

/**
 * The durable store facade. Thread-safe: one mutex serializes every
 * mutation and read (operations are in-memory map walks plus one
 * file append; contention is not the bottleneck of a scoring
 * pipeline that trains SOMs).
 */
class StateStore
{
  public:
    struct Config
    {
        std::string dataDir;
        /** fsync the WAL after every Nth record; 0 = never. */
        std::size_t fsyncEvery = 1;
        /** Snapshot + compact every Nth applied record; 0 = only on
         *  explicit snapshotNow()/close(). */
        std::size_t snapshotEvery = 256;
        /** Committed records kept in memory (framed) for replication
         *  shipping; followers further behind than this catch up
         *  from snapshotImage(). 0 disables the tail. */
        std::size_t replicationTail = 1024;
        StoreLimits limits;
    };

    explicit StateStore(Config config);
    ~StateStore();

    StateStore(const StateStore &) = delete;
    StateStore &operator=(const StateStore &) = delete;

    /**
     * Create the data dir when absent, recover state (snapshot + WAL
     * tail), truncate any torn tail, and open the WAL for appending.
     * Must be called exactly once, before any other method.
     */
    RecoveryInfo open();

    /** True once open() has succeeded. */
    bool isOpen() const;

    /**
     * Take a final snapshot (when anything changed since the last
     * one) and close the WAL. Safe to call twice; the destructor
     * calls it with failures swallowed.
     */
    void close();

    // --- mutations ---------------------------------------------------

    /**
     * Register @p manifest under @p name as the next version (1 for
     * a new name). Returns the stored version. Throws on WAL failure
     * — an unpersisted registration must not be acknowledged.
     */
    SuiteVersion registerSuite(const std::string &name,
                               const std::string &manifest);

    /** Outcome of a versioned registration attempt. */
    struct RegisterOutcome
    {
        SuiteVersion version;
        /** True when a new version was appended to the WAL. */
        bool created = false;
        /** True when the requested version exists with a *different*
         *  manifest (or was compacted away) — never overwritten. */
        bool conflict = false;
        /** True when the requested version would leave a gap
         *  (> latest + 1). */
        bool gap = false;
    };

    /**
     * Register @p manifest under @p name at @p requested_version:
     * 0 or latest+1 appends the next version (created=true); an
     * existing version with a byte-identical manifest is an
     * idempotent no-op (created=false, the stored version returned);
     * an existing version with a different payload — or one already
     * compacted out of the retained window — is a conflict and the
     * store is left untouched; a version past latest+1 is a gap.
     * All outcomes are decided under the store mutex.
     */
    RegisterOutcome registerSuiteVersion(const std::string &name,
                                         const std::string &manifest,
                                         std::uint64_t requested_version);

    /**
     * Persist one executed score (record.sequence is assigned here).
     * Returns false — and counts the failure — when the WAL append
     * fails; the caller serves the response regardless.
     */
    bool recordScore(ScoreRecord record);

    /** Persist a store-level setting change (see StoreLimits keys).
     *  Throws on a bad key/value or WAL failure. */
    void changeConfig(const std::string &key, const std::string &value);

    /**
     * Persist one suite's drift-monitor state (record.sequence is
     * assigned here; latest record per suite wins on replay). Best
     * effort like recordScore: returns false — and counts the
     * failure — when the WAL append fails; the monitor keeps its
     * in-memory state regardless.
     */
    bool recordDriftState(DriftStateRecord record);

    /**
     * Write a snapshot now, truncate the WAL, and delete older
     * snapshot generations. Returns the sequence it captured.
     * Throws when the snapshot cannot be written (the WAL is left
     * untouched — nothing is lost).
     */
    std::uint64_t snapshotNow();

    // --- reads (copies; safe to use without further locking) ---------

    std::vector<HistoryEntry> history(const std::string &suite) const;

    std::vector<Suite> suites() const;

    /** Manifest of @p name at @p version (0 = newest). */
    std::optional<SuiteVersion> resolveSuite(const std::string &name,
                                             std::uint32_t version = 0) const;

    /** Every retained full score record (warm-start feed). */
    std::vector<ScoreRecord> scoreRecords() const;

    /** Latest persisted drift state per suite (warm-start feed for
     *  the drift monitor). */
    std::vector<DriftStateRecord> driftStates() const;

    /** Latest drift state of @p suite; nullopt when never recorded. */
    std::optional<DriftStateRecord>
    driftState(const std::string &suite) const;

    std::uint64_t lastSequence() const;

    /** Canonical byte image of the whole state (StoreState::
     *  encodeSnapshotBody): equal states produce equal bytes, which
     *  is how the crash-recovery tests and the chaos harness check
     *  that a recovered store matches the pre-crash committed one. */
    std::string encodeStateBody() const;

    /**
     * Framed records with sequence > @p afterSequence, oldest first
     * (a leader's delta for a follower acked through
     * @p afterSequence). Empty batch when the follower is caught
     * up; nullopt when the in-memory tail no longer reaches back to
     * @p afterSequence — the follower must reinstall from
     * snapshotImage() instead.
     */
    std::optional<ReplicationBatch>
    framesSince(std::uint64_t afterSequence) const;

    /** A complete snapshot image — SnapshotHeader frame + canonical
     *  state body, byte-identical to a snapshot file — for follower
     *  catch-up past the replication tail. */
    std::string snapshotImage() const;

    StoreMetrics metrics() const;

    const Config &config() const { return config_; }

    const RecoveryInfo &recovery() const { return recovery_; }

  private:
    /** Append @p payload (already stamped with nextSequence()) to the
     *  WAL, then apply it. Requires mutex_. Throws on WAL failure —
     *  the state is untouched then. */
    void commit(RecordType type, const std::string &payload);

    /** Auto-snapshot when the cadence says so. Requires mutex_.
     *  Failures are counted, never thrown (the record is in the WAL;
     *  durability does not depend on the snapshot). */
    void maybeSnapshot();

    /** snapshotNow() body. Requires mutex_. */
    std::uint64_t snapshotLocked();

    /** One tail entry: a committed record, already framed. */
    struct TailFrame
    {
        std::uint64_t sequence = 0;
        std::string framed;
    };

    Config config_;
    mutable std::mutex mutex_;
    StoreState state_;
    std::unique_ptr<WalWriter> wal_;
    /** Recent commits, contiguous ascending sequence (framesSince). */
    std::deque<TailFrame> tail_;
    RecoveryInfo recovery_;
    std::uint64_t snapshotsWritten_ = 0;
    std::uint64_t snapshotFailures_ = 0;
    std::size_t sinceSnapshot_ = 0; ///< records since last snapshot.
    std::uint64_t lastSnapshotSequence_ = 0;
    /** steady-clock time of the last snapshot (or open()). */
    std::chrono::steady_clock::time_point snapshotTime_;
};

} // namespace store
} // namespace hiermeans

#endif // HIERMEANS_STORE_STORE_H
