#include "src/store/wal.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/util/error.h"
#include "src/util/fault.h"
#include "src/util/file.h"

namespace hiermeans {
namespace store {

namespace {

/** write(2) the whole buffer, retrying EINTR; bytes written so far is
 *  stored through @p written even on failure. */
bool
writeAll(int fd, const char *data, std::size_t size, std::size_t *written)
{
    *written = 0;
    while (*written < size) {
        const ssize_t n = ::write(fd, data + *written, size - *written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        *written += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

WalWriter::WalWriter(std::string path, Config config)
    : path_(std::move(path)), config_(config)
{
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    HM_REQUIRE(fd_ >= 0, "cannot open WAL `"
                             << path_ << "`: " << std::strerror(errno));
    struct stat st;
    if (::fstat(fd_, &st) == 0)
        offset_ = static_cast<std::uint64_t>(st.st_size);
}

WalWriter::~WalWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
WalWriter::repairIfNeeded()
{
    if (!needsRepair_)
        return;
    HM_REQUIRE(::ftruncate(fd_, static_cast<off_t>(offset_)) == 0,
               "cannot repair torn WAL tail in `"
                   << path_ << "`: " << std::strerror(errno));
    needsRepair_ = false;
}

void
WalWriter::append(RecordType type, std::string_view payload)
{
    repairIfNeeded();

    if (HM_FAULT("store.wal.append")) {
        ++counters_.appendFailures;
        throw InvalidArgument("WAL append to `" + path_ +
                              "` failed (injected)");
    }

    const std::string frame = frameRecord(type, payload);

    if (HM_FAULT("store.wal.torn")) {
        // Simulated crash mid-write: half the frame reaches the file
        // and stays there. Recovery (or the next append) must cope.
        std::size_t written = 0;
        writeAll(fd_, frame.data(), frame.size() / 2, &written);
        needsRepair_ = true;
        ++counters_.appendFailures;
        throw InvalidArgument("WAL append to `" + path_ +
                              "` torn mid-write (injected)");
    }

    std::size_t written = 0;
    if (!writeAll(fd_, frame.data(), frame.size(), &written)) {
        const int err = errno;
        ++counters_.appendFailures;
        // Drop the partial frame so later appends stay decodable.
        if (::ftruncate(fd_, static_cast<off_t>(offset_)) != 0)
            needsRepair_ = true;
        throw InvalidArgument("WAL append to `" + path_ +
                              "` failed: " + std::strerror(err));
    }
    offset_ += frame.size();
    ++counters_.records;
    counters_.bytes += frame.size();

    if (config_.fsyncEvery != 0 && ++sinceSync_ >= config_.fsyncEvery) {
        sinceSync_ = 0;
        if (HM_FAULT("store.wal.fsync"))
            throw InvalidArgument("WAL fsync of `" + path_ +
                                  "` failed (injected)");
        HM_REQUIRE(::fsync(fd_) == 0,
                   "WAL fsync of `" << path_
                                    << "` failed: " << std::strerror(errno));
        ++counters_.fsyncs;
    }
}

void
WalWriter::sync()
{
    repairIfNeeded();
    HM_REQUIRE(::fsync(fd_) == 0,
               "WAL fsync of `" << path_
                                << "` failed: " << std::strerror(errno));
    sinceSync_ = 0;
    ++counters_.fsyncs;
}

void
WalWriter::reset()
{
    HM_REQUIRE(::ftruncate(fd_, 0) == 0,
               "cannot reset WAL `" << path_
                                    << "`: " << std::strerror(errno));
    offset_ = 0;
    sinceSync_ = 0;
    needsRepair_ = false;
}

ReplayResult
replayWal(const std::string &path,
          const std::function<void(const Record &)> &handler)
{
    ReplayResult result;
    if (!util::fileExists(path))
        return result;

    const std::string data = util::readFile(path);
    result.totalBytes = data.size();

    FrameReader frames(data);
    Record record;
    while (frames.next(record)) {
        handler(record);
        ++result.records;
    }
    result.validBytes = frames.validBytes();
    result.torn = frames.sawCorruption();
    if (result.torn)
        result.reason = frames.corruption();
    return result;
}

void
truncateWalTail(const std::string &path, std::size_t validBytes)
{
    HM_REQUIRE(::truncate(path.c_str(),
                          static_cast<off_t>(validBytes)) == 0,
               "cannot truncate WAL `" << path << "` to " << validBytes
                                       << " bytes: "
                                       << std::strerror(errno));
}

} // namespace store
} // namespace hiermeans
