/**
 * @file
 * The write-ahead log: an append-only file of framed records
 * (record.h) that makes every store mutation durable before it is
 * applied.
 *
 * Durability contract: WalWriter::append returns only after the frame
 * is fully written (and, per the fsync cadence, flushed to stable
 * storage). A crash mid-append leaves a torn final frame; replayWal
 * detects it by magic/length/CRC, reports the valid prefix, and
 * recovery truncates the rest — committed records are never lost,
 * uncommitted ones never half-applied.
 *
 * Fault points (deterministic, see util/fault.h):
 *   store.wal.append  the append fails before any byte is written.
 *   store.wal.torn    only a prefix of the frame reaches the file,
 *                     then the append throws — a simulated crash
 *                     mid-write. The torn bytes stay on disk (that is
 *                     the point); the writer self-heals by truncating
 *                     them away at the start of the next append.
 *   store.wal.fsync   the cadence fsync fails after a clean write.
 */

#ifndef HIERMEANS_STORE_WAL_H
#define HIERMEANS_STORE_WAL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/store/record.h"

namespace hiermeans {
namespace store {

/** Appends framed records to one WAL file. Not thread-safe — the
 *  owning StateStore serializes access. */
class WalWriter
{
  public:
    struct Config
    {
        /** fsync after every Nth appended record; 0 = never fsync
         *  (rely on the OS page cache — fast, not crash-durable). */
        std::size_t fsyncEvery = 1;
    };

    /** Cumulative counters (monotonic while the writer is open). */
    struct Counters
    {
        std::uint64_t records = 0; ///< frames fully appended.
        std::uint64_t bytes = 0;   ///< payload+frame bytes appended.
        std::uint64_t fsyncs = 0;
        std::uint64_t appendFailures = 0;
    };

    /** Open @p path for appending, creating it when absent. */
    WalWriter(std::string path, Config config);
    ~WalWriter();

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;

    /**
     * Frame and append one record, fsync'ing per the cadence. Throws
     * InvalidArgument on any failure; a failed append never leaves
     * the file in a state that loses *earlier* records — a partial
     * write is truncated away (immediately, or at the next append
     * when the fault left it in place deliberately).
     */
    void append(RecordType type, std::string_view payload);

    /** Force an fsync now (e.g. before a snapshot cutover). */
    void sync();

    /** Discard every record: truncate the file to zero bytes. Done
     *  after a snapshot makes the log redundant. */
    void reset();

    /** Current file offset = bytes of fully appended frames. */
    std::uint64_t sizeBytes() const { return offset_; }

    const Counters &counters() const { return counters_; }

    const std::string &path() const { return path_; }

  private:
    void repairIfNeeded();

    std::string path_;
    Config config_;
    int fd_ = -1;
    std::uint64_t offset_ = 0;
    std::size_t sinceSync_ = 0;
    /** A deliberate torn write left trailing garbage after offset_;
     *  truncate before the next append. */
    bool needsRepair_ = false;
    Counters counters_;
};

/** What replayWal found in a WAL file. */
struct ReplayResult
{
    std::size_t records = 0;    ///< frames decoded and handed out.
    std::size_t validBytes = 0; ///< prefix worth keeping.
    std::size_t totalBytes = 0; ///< file size as read.
    bool torn = false;          ///< trailing corruption detected.
    std::string reason;         ///< iff torn: what was wrong.
};

/**
 * Replay every valid frame of the WAL at @p path through @p handler
 * in file order. A missing file is an empty log. Corruption after the
 * valid prefix is reported, not thrown — the caller decides to
 * truncate (truncateWalTail) and carry on.
 */
ReplayResult replayWal(const std::string &path,
                       const std::function<void(const Record &)> &handler);

/** Truncate the file at @p path to @p validBytes, discarding a torn
 *  tail found by replayWal. */
void truncateWalTail(const std::string &path, std::size_t validBytes);

} // namespace store
} // namespace hiermeans

#endif // HIERMEANS_STORE_WAL_H
