#include "src/util/cli.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <set>

#include "src/util/error.h"
#include "src/util/fault.h"
#include "src/util/str.h"
#include "src/util/version.h"

namespace hiermeans {
namespace util {

double
parseDurationMillis(const std::string &text, const std::string &what)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    HM_REQUIRE(!text.empty() && end != text.c_str(),
               what << " expects a duration (250ms, 2s, 1m), got `"
                    << text << "`");
    const std::string suffix(end);
    double scale = 1.0;
    if (suffix.empty() || suffix == "ms")
        scale = 1.0;
    else if (suffix == "s")
        scale = 1000.0;
    else if (suffix == "m")
        scale = 60.0 * 1000.0;
    else
        throw InvalidArgument(what + " has unknown duration suffix `" +
                              suffix + "` (want ms, s or m) in `" + text +
                              "`");
    return value * scale;
}

CommandLine
CommandLine::parse(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i)
        args.emplace_back(argv[i]);
    return parse(args);
}

CommandLine
CommandLine::parse(const std::vector<std::string> &args)
{
    CommandLine cl;
    std::size_t start = 0;
    if (!args.empty()) {
        cl.program_ = args[0];
        start = 1;
    }
    for (std::size_t i = start; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!str::startsWith(arg, "--")) {
            cl.positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        HM_REQUIRE(!body.empty(), "bare `--` is not a valid flag");
        const std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            const std::string name = body.substr(0, eq);
            HM_REQUIRE(!name.empty(), "flag `" << arg << "` has no name");
            cl.flags_[name] = body.substr(eq + 1);
        } else if (i + 1 < args.size() &&
                   !str::startsWith(args[i + 1], "--")) {
            cl.flags_[body] = args[i + 1];
            ++i;
        } else {
            cl.flags_[body] = "";
        }
    }
    return cl;
}

bool
CommandLine::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CommandLine::getString(const std::string &name,
                       const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

std::int64_t
CommandLine::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    HM_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" << name << " expects an integer, got `"
                         << it->second << "`");
    return value;
}

double
CommandLine::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    HM_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" << name << " expects a number, got `"
                         << it->second << "`");
    return value;
}

double
CommandLine::getDurationMillis(const std::string &name,
                               double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    return parseDurationMillis(it->second, "flag --" + name);
}

bool
CommandLine::getBool(const std::string &name, bool fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    const std::string value = str::toLower(it->second);
    if (value.empty() || value == "true" || value == "1" || value == "yes" ||
        value == "on") {
        return true;
    }
    if (value == "false" || value == "0" || value == "no" || value == "off")
        return false;
    throw InvalidArgument("flag --" + name + " expects a boolean, got `" +
                          it->second + "`");
}

std::vector<std::string>
CommandLine::flagNames() const
{
    std::vector<std::string> names;
    names.reserve(flags_.size());
    for (const auto &[name, value] : flags_)
        names.push_back(name);
    return names; // map iteration is already sorted.
}

FlagSet::FlagSet(std::string tool, std::string summary)
    : tool_(std::move(tool)), summary_(std::move(summary))
{}

FlagSet &
FlagSet::section(std::string title)
{
    Entry entry;
    entry.isSection = true;
    entry.name = std::move(title);
    entries_.push_back(std::move(entry));
    return *this;
}

FlagSet &
FlagSet::flag(std::string name, std::string value, std::string help)
{
    Entry entry;
    entry.name = std::move(name);
    entry.value = std::move(value);
    entry.help = std::move(help);
    entries_.push_back(std::move(entry));
    return *this;
}

FlagSet &
FlagSet::tracing()
{
    return section("tracing flags")
        .flag("trace", "",
              "arm request tracing (spans + trace IDs)")
        .flag("trace-slow-ms", "N",
              "slow-request sampler threshold (default 250)")
        .flag("trace-keep", "N",
              "recent traces kept for /v1/trace (default 64)")
        .flag("trace-keep-slow", "N",
              "slow traces kept by the sampler (default 16)");
}

FlagSet &
FlagSet::standard()
{
    return section("standard flags")
        .flag("faults", "SPEC",
              "deterministic fault spec (util/fault.h grammar),\n"
              "e.g. net.write.short=p:0.1,engine.task=nth:7")
        .flag("fault-seed", "N", "seed for probabilistic fault triggers")
        .flag("help", "", "print this help and exit")
        .flag("version", "", "print the version and exit");
}

FlagSet &
FlagSet::epilogue(std::string text)
{
    epilogue_ = std::move(text);
    return *this;
}

std::string
FlagSet::usage() const
{
    std::string out =
        tool_ + " (" + kVersionString + "): " + summary_ + "\n";

    std::size_t column = 0;
    for (const Entry &entry : entries_) {
        if (entry.isSection)
            continue;
        // "  --name=VALUE  " drives the help column.
        std::size_t width = 4 + entry.name.size();
        if (!entry.value.empty())
            width += 1 + entry.value.size();
        column = std::max(column, width + 2);
    }

    for (const Entry &entry : entries_) {
        if (entry.isSection) {
            out += "\n" + entry.name + ":\n";
            continue;
        }
        std::string lead = "  --" + entry.name;
        if (!entry.value.empty())
            lead += "=" + entry.value;
        lead += std::string(column - lead.size(), ' ');
        bool first = true;
        for (const std::string &line : str::split(entry.help, '\n')) {
            out += first ? lead : std::string(column, ' ');
            out += line;
            out += '\n';
            first = false;
        }
    }
    if (!epilogue_.empty())
        out += "\n" + epilogue_;
    return out;
}

std::vector<std::string>
FlagSet::unknown(const CommandLine &cl) const
{
    std::set<std::string> known;
    for (const Entry &entry : entries_)
        if (!entry.isSection)
            known.insert(entry.name);
    std::vector<std::string> result;
    for (const std::string &name : cl.flagNames())
        if (known.count(name) == 0)
            result.push_back(name);
    return result;
}

bool
FlagSet::handleStandard(const CommandLine &cl, std::ostream &out) const
{
    if (cl.has("help")) {
        out << usage();
        return true;
    }
    if (cl.has("version")) {
        out << tool_ << " " << kVersionString << "\n";
        return true;
    }
    for (const std::string &name : unknown(cl))
        out << tool_ << ": warning: unknown flag --" << name << "\n";

    // Env first, flags second: --faults overrides HIERMEANS_FAULTS.
    fault::configureFromEnv();
    if (cl.has("faults"))
        fault::configure(cl.getString("faults", ""),
                         static_cast<std::uint64_t>(
                             cl.getInt("fault-seed", 0)));
    return false;
}

} // namespace util
} // namespace hiermeans
