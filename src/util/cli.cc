#include "src/util/cli.h"

#include <cstdlib>

#include "src/util/error.h"
#include "src/util/str.h"

namespace hiermeans {
namespace util {

CommandLine
CommandLine::parse(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i)
        args.emplace_back(argv[i]);
    return parse(args);
}

CommandLine
CommandLine::parse(const std::vector<std::string> &args)
{
    CommandLine cl;
    std::size_t start = 0;
    if (!args.empty()) {
        cl.program_ = args[0];
        start = 1;
    }
    for (std::size_t i = start; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!str::startsWith(arg, "--")) {
            cl.positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        HM_REQUIRE(!body.empty(), "bare `--` is not a valid flag");
        const std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            const std::string name = body.substr(0, eq);
            HM_REQUIRE(!name.empty(), "flag `" << arg << "` has no name");
            cl.flags_[name] = body.substr(eq + 1);
        } else if (i + 1 < args.size() &&
                   !str::startsWith(args[i + 1], "--")) {
            cl.flags_[body] = args[i + 1];
            ++i;
        } else {
            cl.flags_[body] = "";
        }
    }
    return cl;
}

bool
CommandLine::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CommandLine::getString(const std::string &name,
                       const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

std::int64_t
CommandLine::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    HM_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" << name << " expects an integer, got `"
                         << it->second << "`");
    return value;
}

double
CommandLine::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    HM_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" << name << " expects a number, got `"
                         << it->second << "`");
    return value;
}

bool
CommandLine::getBool(const std::string &name, bool fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    const std::string value = str::toLower(it->second);
    if (value.empty() || value == "true" || value == "1" || value == "yes" ||
        value == "on") {
        return true;
    }
    if (value == "false" || value == "0" || value == "no" || value == "off")
        return false;
    throw InvalidArgument("flag --" + name + " expects a boolean, got `" +
                          it->second + "`");
}

} // namespace util
} // namespace hiermeans
