/**
 * @file
 * A tiny command-line flag parser for the tool and bench binaries,
 * plus the shared flag spec (FlagSet) that keeps the five tools'
 * standard flags — `--help`, `--version`, `--faults=SPEC`,
 * `--fault-seed=N` and the `--trace-*` family — spelled and
 * documented identically.
 *
 * Supported syntax: `--name=value`, `--name value`, and bare boolean
 * flags `--name`. Every binary in bench/ accepts `--help`, `--seed=N`
 * and experiment-specific flags through this parser.
 */

#ifndef HIERMEANS_UTIL_CLI_H
#define HIERMEANS_UTIL_CLI_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace hiermeans {
namespace util {

/**
 * Parse a duration literal to milliseconds: a bare number is millis,
 * and the suffixes `ms`, `s`, `m` scale it (`250ms`, `2s`, `1.5s`,
 * `1m`). Throws InvalidArgument on anything else; @p what names the
 * offending flag in the message.
 */
double parseDurationMillis(const std::string &text, const std::string &what);

/** Parsed command line: named flags plus positional arguments. */
class CommandLine
{
  public:
    /**
     * Parse argv. Unrecognized tokens that do not start with `--` become
     * positional arguments. Throws InvalidArgument on `--name=` misuse.
     */
    static CommandLine parse(int argc, const char *const *argv);

    /** Parse from a vector (useful in tests). */
    static CommandLine parse(const std::vector<std::string> &args);

    /** Program name (argv[0]) if available. */
    const std::string &program() const { return program_; }

    /** True when `--name` or `--name=...` was present. */
    bool has(const std::string &name) const;

    /** String value of a flag, or @p fallback when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** Integer value of a flag; throws on malformed numbers. */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;

    /** Double value of a flag; throws on malformed numbers. */
    double getDouble(const std::string &name, double fallback) const;

    /**
     * Duration value in milliseconds. Accepts a bare number (millis)
     * or a number with a `ms`, `s` or `m` suffix: `250ms`, `2s`,
     * `1.5s`, `1m`. Throws on malformed values or unknown suffixes.
     */
    double getDurationMillis(const std::string &name, double fallback) const;

    /**
     * Boolean value: `--name`, `--name=true/1/yes/on` are true,
     * `--name=false/0/no/off` false. Throws otherwise.
     */
    bool getBool(const std::string &name, bool fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Names of every flag present, sorted (FlagSet validation). */
    std::vector<std::string> flagNames() const;

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

/**
 * A tool's declared flags: usage-text rendering, unknown-flag
 * detection, and uniform handling of the standard block. Typical
 * front-end shape:
 *
 *   util::FlagSet flags("hmctl", "probe a running scoring daemon");
 *   flags.section("probe flags")
 *        .flag("port", "N", "daemon port (required)")
 *        .standard();
 *   const auto cl = util::CommandLine::parse(argc, argv);
 *   if (flags.handleStandard(cl, std::cout))
 *       return 0; // --help or --version answered
 *
 * handleStandard also arms fault injection from the environment and
 * the `--faults`/`--fault-seed` flags, so every tool honours the same
 * chaos contract. The `--trace-*` flags are declared by tracing() and
 * *applied* by obs::traceConfigFromCommandLine (the util layer cannot
 * depend on obs).
 */
class FlagSet
{
  public:
    /** Spec for @p tool; @p summary is the one-line banner tail. */
    FlagSet(std::string tool, std::string summary);

    /** Start a titled section ("resilience flags:"). */
    FlagSet &section(std::string title);

    /**
     * Declare `--name`; @p value is the placeholder shown after `=`
     * ("" for bare booleans) and @p help may span lines with '\n'.
     */
    FlagSet &flag(std::string name, std::string value, std::string help);

    /** Declare the `--trace` family (arm, slow-ms, keep, keep-slow). */
    FlagSet &tracing();

    /** Declare the standard block: --help, --version, --faults=SPEC,
     *  --fault-seed=N. Call last so it renders at the bottom. */
    FlagSet &standard();

    /** Append free-form lines after the flags (e.g. an endpoints
     *  table); rendered verbatim at the end of usage(). */
    FlagSet &epilogue(std::string text);

    /** The full usage text. */
    std::string usage() const;

    /** Flags present on @p cl but never declared here, sorted. */
    std::vector<std::string> unknown(const CommandLine &cl) const;

    /**
     * Uniform front-end behaviour: `--help` prints usage() and
     * `--version` prints "tool hiermeans X.Y.Z" (both return true:
     * the tool should exit 0). Otherwise arms fault injection (env
     * first, flags override), warns on undeclared flags via @p out,
     * and returns false.
     */
    bool handleStandard(const CommandLine &cl, std::ostream &out) const;

  private:
    struct Entry
    {
        bool isSection = false;
        std::string name;  ///< flag name, or the section title.
        std::string value; ///< placeholder after `=`; "" = bare flag.
        std::string help;
    };

    std::string tool_;
    std::string summary_;
    std::string epilogue_;
    std::vector<Entry> entries_;
};

} // namespace util
} // namespace hiermeans

#endif // HIERMEANS_UTIL_CLI_H
